#!/usr/bin/env sh
# Canonical nightly scenario matrix. CI and local runs must invoke the lab
# through this script so the arguments can never drift from the golden file.
#
# Usage: ci/run_nightly_matrix.sh <build-dir> [threads]
#
# Writes JSONL to stdout. Regenerate the golden after an intentional format
# or semantics change with:
#   ci/run_nightly_matrix.sh build > ci/golden/nightly_matrix.jsonl
set -eu
BUILD_DIR="${1:?usage: run_nightly_matrix.sh <build-dir> [threads]}"
THREADS="${2:-1}"
exec "${BUILD_DIR}/decycle_lab" \
  --family=cycle,planted,layered,ckfree_highgirth,ckfree_forest \
  --k=4,5 \
  --n=24 \
  --eps=0.125 \
  --adversary=none,uniform:0.25 \
  --algo=tester,edge_checker,threshold,color_coding \
  --budget=8 \
  --track=4 \
  --trials=12 \
  --seed=2026 \
  --threads="${THREADS}"
