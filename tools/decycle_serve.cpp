/// \file decycle_serve.cpp
/// \brief The multi-tenant detection daemon over an AF_UNIX socket.
///
/// Serves the serve::Server request grammar (protocol.hpp) on a local
/// stream socket with length-prefixed frames. Each accepted connection gets
/// a reader thread feeding a FrameReader; complete payloads go through
/// Server::submit, and replies are framed back on the same socket (a
/// per-connection write mutex serializes concurrent worker replies). A
/// garbled frame gets one final ERROR bad_frame reply and the connection is
/// closed — the length-prefix desync is unrecoverable by design.
///
///   decycle_serve --socket=/tmp/decycle.sock --workers=8
///   echo -n '5 stats' | nc -U /tmp/decycle.sock   # (nc appends the \n)
///
/// Flags (both --key=value and "--key value" forms are accepted):
///   --socket=PATH     AF_UNIX socket path (required; unlinked on start/exit)
///   --workers=N       server worker threads (default 4)
///   --queue-capacity=N   admission queue bound (default 1024)
///   --tenant-cap=N    per-tenant in-flight cap (default 64)
///   --max-batch=N     per-worker query batch bound (default 32)
///   --cache=N         verdict-cache capacity, 0 disables (default 65536)
///   --stats-out=FILE  write the JSONL stats dump here at shutdown
///   --enable-stall    accept the test-only stall verb (never in production)
///
/// Shutdown: a `shutdown` request (or SIGINT/SIGTERM) drains admitted work,
/// dumps stats JSONL (to --stats-out and stderr), and exits 0.
#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_signal_stop{false};

void on_signal(int) { g_signal_stop.store(true, std::memory_order_release); }

std::vector<std::string> normalize_args(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--", 0) == 0 && arg.find('=') == std::string::npos && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      arg += "=";
      arg += argv[++i];
    }
    out.push_back(std::move(arg));
  }
  return out;
}

/// One connection: owns the fd and the write-side mutex that serializes
/// replies coming back from arbitrary worker threads.
struct Connection {
  explicit Connection(int descriptor) : fd(descriptor) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void send_frame(const std::string& payload) {
    const std::string frame = decycle::serve::encode_frame(payload);
    std::lock_guard lock(write_mutex);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer went away; replies to the void are fine
      sent += static_cast<std::size_t>(n);
    }
  }

  int fd;
  std::mutex write_mutex;
};

void serve_connection(decycle::serve::Server& server, std::shared_ptr<Connection> conn) {
  decycle::serve::FrameReader reader;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // EOF or error: client is gone
    reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    for (;;) {
      std::string payload;
      const auto status = reader.next(payload);
      if (status == decycle::serve::FrameReader::Status::kNeedMore) break;
      if (status == decycle::serve::FrameReader::Status::kError) {
        conn->send_frame(decycle::serve::format_error(decycle::serve::ErrorCode::kBadFrame,
                                                      reader.error()));
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      // Replies may arrive from worker threads after this loop moved on;
      // the shared_ptr keeps the connection alive until the last lands.
      server.submit(std::move(payload),
                    [conn](std::string reply) { conn->send_frame(reply); });
    }
  }
}

int run(const decycle::util::Args& args) {
  using namespace decycle;

  const std::string socket_path = args.get_string("socket", "");
  DECYCLE_CHECK_MSG(!socket_path.empty(), "decycle_serve requires --socket=PATH");
  serve::ServerOptions options;
  options.workers = args.get_u64("workers", options.workers);
  options.queue_capacity = args.get_u64("queue-capacity", options.queue_capacity);
  options.tenant_inflight_cap = args.get_u64("tenant-cap", options.tenant_inflight_cap);
  options.max_batch = args.get_u64("max-batch", options.max_batch);
  options.verdict_cache_capacity = args.get_u64("cache", options.verdict_cache_capacity);
  options.enable_stall = args.get_bool("enable-stall", false);
  const std::string stats_out = args.get_string("stats-out", "");
  args.reject_unknown();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DECYCLE_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
                    "--socket path too long for sockaddr_un");
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DECYCLE_CHECK_MSG(listen_fd >= 0, "socket() failed");
  ::unlink(socket_path.c_str());
  DECYCLE_CHECK_MSG(
      ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind() failed on " + socket_path);
  DECYCLE_CHECK_MSG(::listen(listen_fd, 64) == 0, "listen() failed");

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  serve::Server server(options);
  server.start();
  std::cerr << "decycle_serve: listening on " << socket_path << " workers=" << options.workers
            << " queue=" << options.queue_capacity << "\n";

  std::vector<std::thread> connection_threads;
  std::vector<std::weak_ptr<Connection>> connections;
  std::mutex connections_mutex;

  while (!g_signal_stop.load(std::memory_order_acquire) && !server.shutdown_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard lock(connections_mutex);
      connections.push_back(conn);
    }
    connection_threads.emplace_back(
        [&server, conn = std::move(conn)]() mutable { serve_connection(server, std::move(conn)); });
  }

  ::close(listen_fd);
  {
    // Nudge readers off recv() so their threads can join.
    std::lock_guard lock(connections_mutex);
    for (const std::weak_ptr<Connection>& weak : connections) {
      if (const std::shared_ptr<Connection> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (std::thread& t : connection_threads) t.join();
  server.stop();

  const std::string stats = server.stats_jsonl();
  if (!stats_out.empty()) {
    std::ofstream out(stats_out, std::ios::binary);
    DECYCLE_CHECK_MSG(out.good(), "cannot open --stats-out file: " + stats_out);
    out << stats;
  }
  std::cerr << stats;
  ::unlink(socket_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace decycle;
  try {
    const std::vector<std::string> normalized = normalize_args(argc, argv);
    std::vector<const char*> argv2 = {argc > 0 ? argv[0] : "decycle_serve"};
    for (const std::string& a : normalized) argv2.push_back(a.c_str());
    const util::Args args(static_cast<int>(argv2.size()), argv2.data());
    return run(args);
  } catch (const util::CheckError& e) {
    std::cerr << "decycle_serve: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "decycle_serve: " << e.what() << "\n";
    return 3;
  }
}
