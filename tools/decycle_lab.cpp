/// \file decycle_lab.cpp
/// \brief Scenario-matrix lab runner CLI.
///
/// Sweeps graph families × k × ε × sizes × adversaries × communication
/// models × algorithms and emits one JSONL record per cell (meta record
/// first). Output is
/// byte-identical for any --threads value — nightly CI diffs it against a
/// checked-in golden file (ci/golden/).
///
/// Example:
///   decycle_lab --family=planted,ckfree_highgirth --k=4,5 --n=24,48
///               --eps=0.125 --trials=24 --seed=2026 --threads=8
///               --algo=tester,edge_checker,threshold --budget=16 --track=8
/// (one command line; wrapped here for readability)
///
/// Runner flags (everything else is forwarded to the scenario parser):
///   --threads=N    trial-level worker threads (0 = serial, default)
///   --out=FILE     write JSONL to FILE instead of stdout
///   --reuse=0|1    Simulator reuse across trials (default 1)
///   --timing=0|1   add wall-clock fields (breaks golden diffs; default 0)
///   --progress     per-cell progress lines on stderr
///   --engine-stats print the engine's session-cache counters (hits,
///                  misses, evictions, purges, purged sessions) on stderr
///                  after the run — stderr so the JSONL golden contract on
///                  stdout is untouched
///   --list         print the known graph families and exit
///   --list-algos   print every registered detector's name and capabilities
///                  (k range, knobs, accepted models) and exit — the
///                  authoritative list of what algo= and model= accept
#include <fstream>
#include <iostream>
#include <memory>

#include "core/detector.hpp"
#include "lab/runner.hpp"
#include "lab/scenario.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  try {
    const util::Args args(argc, argv);
    if (args.get_bool("list", false)) {
      for (const lab::FamilyInfo& info : lab::known_families()) {
        std::cout << info.name << " — " << info.summary << "\n";
      }
      return 0;
    }
    if (args.get_bool("list-algos", false)) {
      // Straight from the registry, so this listing can never drift from
      // what the scenario parser actually accepts.
      for (const core::Detector* d : core::DetectorRegistry::builtin().detectors()) {
        std::cout << core::capability_line(*d) << "\n";
      }
      return 0;
    }
    const std::uint64_t threads = args.get_u64("threads", 0);
    const std::string out_path = args.get_string("out", "");
    const bool reuse = args.get_bool("reuse", true);
    const bool timing = args.get_bool("timing", false);
    const bool progress = args.get_bool("progress", false);
    const bool engine_stats = args.get_bool("engine-stats", false);

    // Everything not consumed above is a scenario token; unknown-key errors
    // belong to the scenario parser, which names the accepted keys.
    const auto scenario_pairs = args.take_unconsumed();
    const lab::ScenarioSpec spec = lab::ScenarioSpec::parse(scenario_pairs);
    const std::vector<lab::ScenarioCell> cells = spec.expand();

    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);

    lab::LabOptions opts;
    opts.pool = pool.get();
    opts.reuse_simulators = reuse;
    opts.include_timing = timing;
    opts.progress = progress ? &std::cerr : nullptr;

    const lab::LabRunner runner(opts);
    const std::vector<lab::CellResult> results = runner.run_matrix(cells);
    const std::string doc = lab::matrix_jsonl(spec, results, timing);
    if (engine_stats) {
      const engine::SessionStats s = runner.session_stats();
      std::cerr << "[engine] sessions: hits=" << s.hits << " misses=" << s.misses
                << " evictions=" << s.evictions << " purges=" << s.purges
                << " purged_sessions=" << s.purged_sessions << "\n";
    }

    if (out_path.empty()) {
      std::cout << doc;
    } else {
      std::ofstream out(out_path, std::ios::binary);
      DECYCLE_CHECK_MSG(out.good(), "cannot open --out file: " + out_path);
      out << doc;
      out.flush();
      DECYCLE_CHECK_MSG(out.good(), "failed writing --out file (disk full?): " + out_path);
    }
    return 0;
  } catch (const util::CheckError& e) {
    std::cerr << "decycle_lab: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // bad_alloc on a huge matrix, system_error from thread creation, ...:
    // still a loud diagnostic and a controlled exit, never SIGABRT.
    std::cerr << "decycle_lab: " << e.what() << "\n";
    return 3;
  }
}
