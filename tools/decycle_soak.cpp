/// \file decycle_soak.cpp
/// \brief Differential soak campaign CLI.
///
/// Walks the randomized soak instance space, runs every capability-
/// compatible detector of the built-in registry on each instance, cross-
/// checks all verdicts against the DFS oracle (soundness, exact-regime
/// completeness), shrinks every mismatch to a minimal repro file, and emits
/// a JSONL campaign log. Output is byte-identical for any --threads value;
/// a campaign is fully replayable from its --seed.
///
/// Campaign mode (one of --instances / --seconds required):
///   decycle_soak --instances=500 --seed=1 --threads=8 --repro-dir=repros
///   decycle_soak --seconds=120 --seed=42 --out=soak.jsonl
///
/// Replay mode:
///   decycle_soak --repro=repros/soak_repro_i17_tester.txt
/// exits 0 when the recorded mismatch still reproduces, 1 when it does not.
///
/// Serve mode (--serve): the same drawn instances are loaded into an
/// in-process decycle_serve server (empty create + incremental inserts) and
/// every capability-compatible detector is queried through the client path,
/// cross-checked byte-for-byte against a direct engine run — the serving
/// stack's differential. --serve-repro=FILE replays one recorded divergence.
///
/// Flags (both --key=value and "--key value" forms are accepted):
///   --instances=N   stop after N instances
///   --seconds=S     stop after ~S wall-clock seconds (batch granularity)
///   --seed=S        campaign seed (default 1)
///   --threads=N     instance-level worker threads (0 = serial, default)
///   --out=FILE      write the JSONL log to FILE instead of stdout
///   --repro-dir=DIR write one shrunk repro file per mismatch into DIR
///   --shrink=0|1    shrink mismatches before reporting (default 1)
///   --max-k=K --max-n=N  upper bounds of the drawn instance space
///   --progress      per-batch progress lines on stderr
///   --repro=FILE    replay a repro file instead of running a campaign
///   --serve         run the serve differential campaign instead
///   --serve-workers=N  server worker threads in --serve mode (default 4)
///   --serve-repro=FILE replay a serve repro file
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "soak/campaign.hpp"
#include "soak/repro.hpp"
#include "soak/serve_campaign.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

/// util::Args insists on --key=value; the soak CLI also accepts the
/// conventional "--key value" spelling (the ISSUE and CI scripts use both).
/// A bare --flag followed by a token that is not itself a flag is joined.
std::vector<std::string> normalize_args(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--", 0) == 0 && arg.find('=') == std::string::npos && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      arg += "=";
      arg += argv[++i];
    }
    out.push_back(std::move(arg));
  }
  return out;
}

int replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DECYCLE_CHECK_MSG(in.good(), "cannot open --repro file: " + path);
  const decycle::soak::ReproCase repro = decycle::soak::read_repro(in);
  const decycle::soak::ReplayResult result = decycle::soak::replay_repro(repro);
  std::cout << "repro: detector=" << repro.detector
            << " recorded=" << decycle::soak::mismatch_kind_name(repro.kind)
            << " observed=" << decycle::soak::mismatch_kind_name(result.observed)
            << " vertices=" << repro.graph.num_vertices()
            << " edges=" << repro.graph.num_edges() << "\n";
  if (!result.detail.empty()) std::cout << "detail: " << result.detail << "\n";
  std::cout << (result.reproduced ? "REPRODUCED" : "DID NOT REPRODUCE") << "\n";
  return result.reproduced ? 0 : 1;
}

int replay_serve(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DECYCLE_CHECK_MSG(in.good(), "cannot open --serve-repro file: " + path);
  const decycle::soak::ServeRepro repro = decycle::soak::read_serve_repro(in);
  const decycle::soak::ServeReplayResult result = decycle::soak::replay_serve_repro(repro);
  std::cout << "serve repro: requests=" << repro.requests.size() << "\n";
  std::cout << "served: " << result.served << "\n";
  std::cout << "direct: " << result.direct << "\n";
  std::cout << (result.reproduced ? "REPRODUCED" : "DID NOT REPRODUCE") << "\n";
  return result.reproduced ? 0 : 1;
}

int run_serve(const decycle::util::Args& args) {
  using namespace decycle;
  DECYCLE_CHECK_MSG(!args.has("threads"),
                    "--threads does not apply to --serve mode (use --serve-workers "
                    "for the server's worker pool)");
  DECYCLE_CHECK_MSG(!args.has("shrink"),
                    "--shrink does not apply to --serve mode (serve repros are "
                    "request transcripts, not graphs)");
  soak::ServeCampaignOptions opts;
  opts.seed = args.get_u64("seed", 1);
  opts.instances = args.get_u64("instances", 0);
  opts.seconds = args.get_double("seconds", 0.0);
  opts.repro_dir = args.get_string("repro-dir", "");
  opts.space.max_k = static_cast<unsigned>(args.get_u64("max-k", opts.space.max_k));
  opts.space.max_n = static_cast<graph::Vertex>(args.get_u64("max-n", opts.space.max_n));
  opts.server.workers = args.get_u64("serve-workers", opts.server.workers);
  const std::string out_path = args.get_string("out", "");
  if (args.get_bool("progress", false)) opts.progress = &std::cerr;
  args.reject_unknown();

  if (!opts.repro_dir.empty()) {
    std::filesystem::create_directories(opts.repro_dir);
  }
  const soak::ServeCampaignSummary summary = soak::run_serve_campaign(opts);

  if (out_path.empty()) {
    std::cout << summary.jsonl;
  } else {
    std::ofstream out(out_path, std::ios::binary);
    DECYCLE_CHECK_MSG(out.good(), "cannot open --out file: " + out_path);
    out << summary.jsonl;
    out.flush();
    DECYCLE_CHECK_MSG(out.good(), "failed writing --out file (disk full?): " + out_path);
  }

  std::cerr << "decycle_soak --serve: " << summary.instances << " instances, "
            << summary.queries << " queries cross-checked, " << summary.edges_inserted
            << " edges inserted, " << summary.mismatches.size() << " mismatches\n";
  for (const soak::ServeMismatch& m : summary.mismatches) {
    std::cerr << "  mismatch instance=" << m.instance_index << " request='" << m.request
              << "'" << (m.repro_path.empty() ? "" : " repro=" + m.repro_path) << "\n";
    std::cerr << "    served: " << m.served << "\n";
    std::cerr << "    direct: " << m.direct << "\n";
  }
  return summary.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace decycle;
  try {
    const std::vector<std::string> normalized = normalize_args(argc, argv);
    std::vector<const char*> argv2 = {argc > 0 ? argv[0] : "decycle_soak"};
    for (const std::string& a : normalized) argv2.push_back(a.c_str());
    const util::Args args(static_cast<int>(argv2.size()), argv2.data());

    const std::string repro_path = args.get_string("repro", "");
    if (!repro_path.empty()) {
      args.reject_unknown();
      return replay(repro_path);
    }
    const std::string serve_repro_path = args.get_string("serve-repro", "");
    if (!serve_repro_path.empty()) {
      args.reject_unknown();
      return replay_serve(serve_repro_path);
    }
    if (args.get_bool("serve", false)) {
      return run_serve(args);
    }

    soak::CampaignOptions opts;
    opts.seed = args.get_u64("seed", 1);
    opts.instances = args.get_u64("instances", 0);
    opts.seconds = args.get_double("seconds", 0.0);
    opts.shrink = args.get_bool("shrink", true);
    opts.repro_dir = args.get_string("repro-dir", "");
    opts.space.max_k = static_cast<unsigned>(args.get_u64("max-k", opts.space.max_k));
    opts.space.max_n =
        static_cast<graph::Vertex>(args.get_u64("max-n", opts.space.max_n));
    const std::uint64_t threads = args.get_u64("threads", 0);
    const std::string out_path = args.get_string("out", "");
    const bool progress = args.get_bool("progress", false);
    args.reject_unknown();

    if (!opts.repro_dir.empty()) {
      std::filesystem::create_directories(opts.repro_dir);
    }
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    opts.pool = pool.get();
    if (progress) opts.progress = &std::cerr;

    const soak::CampaignSummary summary = soak::run_campaign(opts);

    if (out_path.empty()) {
      std::cout << summary.jsonl;
    } else {
      std::ofstream out(out_path, std::ios::binary);
      DECYCLE_CHECK_MSG(out.good(), "cannot open --out file: " + out_path);
      out << summary.jsonl;
      out.flush();
      DECYCLE_CHECK_MSG(out.good(), "failed writing --out file (disk full?): " + out_path);
    }

    std::cerr << "decycle_soak: " << summary.instances << " instances, "
              << summary.detector_runs << " detector runs, " << summary.mismatches.size()
              << " mismatches, far audit " << summary.far_rejections << "/"
              << summary.far_trials << "\n";
    for (const soak::MismatchRecord& m : summary.mismatches) {
      std::cerr << "  mismatch instance=" << m.instance_index << " detector="
                << m.repro.detector << " kind=" << soak::mismatch_kind_name(m.repro.kind)
                << " shrunk to " << m.repro.graph.num_vertices() << "v/"
                << m.repro.graph.num_edges() << "e"
                << (m.repro_path.empty() ? "" : " repro=" + m.repro_path) << "\n";
    }
    if (summary.completeness_violation) {
      std::cerr << "  completeness violation: certified-far amplified rejection rate "
                   "below 2/3\n";
    }
    return summary.failed() ? 1 : 0;
  } catch (const util::CheckError& e) {
    std::cerr << "decycle_soak: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "decycle_soak: " << e.what() << "\n";
    return 3;
  }
}
