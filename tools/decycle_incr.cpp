/// \file decycle_incr.cpp
/// \brief Incremental cycle-detection CLI: stream generator, replay, and
/// insertion-prefix differential.
///
/// Generate mode — draw a duplicate-free insert stream and write the plain-
/// text replay file (stream.hpp format, stdout when --out is omitted):
///   decycle_incr --gen --n=1000 --inserts=2000 --seed=7 --out=stream.txt
///   decycle_incr --gen --n=64 --directed=1 --acyclic=1
///
/// Replay mode — stream the file through the matching incremental detector
/// (ForestConnectivity, or DagLevels for directed streams) and report
/// throughput:
///   decycle_incr --replay=stream.txt
///
/// Differential mode — replay insertion prefixes pinning the incremental
/// verdicts against the BFS/DFS oracle and batch detectors through the
/// IncrementalSession bridge (differential.hpp); exits 1 on any mismatch
/// and writes the failing prefix as a replayable stream file when
/// --repro-dir is given:
///   decycle_incr --replay=stream.txt --differential --prefixes=50
///                --repro-dir=incr_repros
///
/// Flags (both --key=value and "--key value" forms are accepted):
///   --gen            generate a stream (requires --n; --inserts --seed
///                    --directed --acyclic optional; --out=FILE or stdout)
///   --replay=FILE    replay a stream file ("-" reads stdin)
///   --differential   cross-check insertion prefixes instead of timing
///   --prefixes=N     cap checked prefixes (0 = every insert, default)
///   --detectors=a,b  registry detectors to pin (default threshold,edge_checker)
///   --max-k=K        longest cycle forwarded to oracle/detectors (default
///                    10 — exact-regime C_k scans grow exponentially in k)
///   --repro-dir=DIR  write the failing prefix stream into DIR
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "incremental/differential.hpp"
#include "incremental/incremental.hpp"
#include "incremental/stream.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

/// util::Args insists on --key=value; this CLI also accepts the
/// conventional "--key value" spelling, like decycle_soak.
std::vector<std::string> normalize_args(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--", 0) == 0 && arg.find('=') == std::string::npos && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      arg += "=";
      arg += argv[++i];
    }
    out.push_back(std::move(arg));
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

decycle::incremental::InsertStream load_stream(const std::string& path) {
  if (path == "-") return decycle::incremental::read_stream(std::cin);
  std::ifstream in(path, std::ios::binary);
  DECYCLE_CHECK_MSG(in.good(), "cannot open --replay file: " + path);
  return decycle::incremental::read_stream(in);
}

int generate(const decycle::util::Args& args) {
  using namespace decycle;
  incremental::StreamSpec spec;
  DECYCLE_CHECK_MSG(args.has("n"), "--gen requires --n");
  spec.n = static_cast<graph::Vertex>(args.get_u64("n", 0));
  spec.inserts = args.get_u64("inserts", 2 * static_cast<std::size_t>(spec.n));
  spec.directed = args.get_bool("directed", false);
  spec.acyclic = args.get_bool("acyclic", false);
  spec.seed = args.get_u64("seed", 1);
  const std::string out_path = args.get_string("out", "");
  args.reject_unknown();

  const incremental::InsertStream stream = incremental::generate_stream(spec);
  if (out_path.empty()) {
    incremental::write_stream(std::cout, stream);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    DECYCLE_CHECK_MSG(out.good(), "cannot open --out file: " + out_path);
    incremental::write_stream(out, stream);
    out.flush();
    DECYCLE_CHECK_MSG(out.good(), "failed writing --out file (disk full?): " + out_path);
  }
  std::cerr << "decycle_incr: generated n=" << stream.n << " directed=" << stream.directed
            << " inserts=" << stream.inserts.size() << " seed=" << stream.seed << "\n";
  return 0;
}

int replay_timed(const decycle::incremental::InsertStream& stream) {
  using namespace decycle;
  using Clock = std::chrono::steady_clock;
  std::uint64_t closures = 0;
  std::size_t applied = 0;
  const Clock::time_point start = Clock::now();
  if (stream.directed) {
    incremental::DagLevels dag(stream.n);
    for (const auto& [u, v] : stream.inserts) {
      ++applied;
      if (dag.insert(u, v).closed_cycle) {
        ++closures;
        break;  // DagLevels' contract ends at the first directed cycle
      }
    }
  } else {
    incremental::ForestConnectivity fc(stream.n);
    for (const auto& [u, v] : stream.inserts) {
      ++applied;
      closures += fc.insert_fast(u, v) ? 1 : 0;
    }
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  const double rate = seconds > 0.0 ? static_cast<double>(applied) / seconds : 0.0;
  std::cout << "replay: n=" << stream.n << " directed=" << stream.directed
            << " inserts=" << applied << "/" << stream.inserts.size()
            << " closures=" << closures << " inserts_per_sec=" << static_cast<std::uint64_t>(rate)
            << "\n";
  return 0;
}

int replay_differential(const decycle::incremental::InsertStream& stream,
                        const decycle::util::Args& args) {
  using namespace decycle;
  incremental::PrefixCheckOptions opts;
  opts.max_prefixes = args.get_u64("prefixes", 0);
  opts.max_query_k = static_cast<unsigned>(args.get_u64("max-k", opts.max_query_k));
  const std::string detectors_csv = args.get_string("detectors", "");
  if (!detectors_csv.empty()) opts.detectors = split_csv(detectors_csv);
  const std::string repro_dir = args.get_string("repro-dir", "");
  args.reject_unknown();

  const incremental::PrefixCheckReport report = incremental::check_stream_prefixes(stream, opts);
  std::cout << "differential: prefixes_checked=" << report.prefixes_checked
            << " closures=" << report.closures << " oracle_queries=" << report.oracle_queries
            << " batch_queries=" << report.batch_queries
            << " mismatches=" << report.mismatches.size() << "\n";
  for (const incremental::PrefixMismatch& m : report.mismatches) {
    std::cerr << "  mismatch prefix=" << m.prefix << ": " << m.detail << "\n";
  }
  if (report.failed() && !repro_dir.empty()) {
    // The failing prefix travels as a replayable stream: same header, the
    // first (prefix+1) inserts.
    std::filesystem::create_directories(repro_dir);
    const incremental::PrefixMismatch& first = report.mismatches.front();
    incremental::InsertStream repro = stream;
    repro.inserts.resize(std::min(repro.inserts.size(), first.prefix + 1));
    const std::string path =
        repro_dir + "/incr_repro_p" + std::to_string(first.prefix) + ".txt";
    std::ofstream out(path, std::ios::binary);
    DECYCLE_CHECK_MSG(out.good(), "cannot open repro file: " + path);
    incremental::write_stream(out, repro);
    std::cerr << "  repro=" << path << "\n";
  }
  return report.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace decycle;
  try {
    const std::vector<std::string> normalized = normalize_args(argc, argv);
    std::vector<const char*> argv2 = {argc > 0 ? argv[0] : "decycle_incr"};
    for (const std::string& a : normalized) argv2.push_back(a.c_str());
    const util::Args args(static_cast<int>(argv2.size()), argv2.data());

    if (args.get_bool("gen", false)) {
      return generate(args);
    }
    const std::string replay_path = args.get_string("replay", "");
    DECYCLE_CHECK_MSG(!replay_path.empty(),
                      "decycle_incr needs a mode: --gen or --replay=FILE (see file header)");
    const incremental::InsertStream stream = load_stream(replay_path);
    if (args.get_bool("differential", false)) {
      return replay_differential(stream, args);
    }
    args.reject_unknown();
    return replay_timed(stream);
  } catch (const util::CheckError& e) {
    std::cerr << "decycle_incr: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "decycle_incr: " << e.what() << "\n";
    return 3;
  }
}
