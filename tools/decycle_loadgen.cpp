/// \file decycle_loadgen.cpp
/// \brief Closed-loop load generator / determinism checker for decycle_serve.
///
/// Drives the seeded mixed read/mutate workload (serve/loadgen.hpp) either
/// against an in-process Server or over an AF_UNIX socket, and prints the
/// per-tenant + aggregate JSONL report. Every digest in the report is a
/// pure function of (seed, tenants, ops, axes) — the serving determinism
/// contract made checkable from the command line.
///
/// In-process (spawns its own server; the test/CI path):
///   decycle_loadgen --in-process --tenants=8 --ops=64 --workers=8
///   decycle_loadgen --check-determinism --tenants=6 --ops=32
///
/// Against a running daemon:
///   decycle_loadgen --socket=/tmp/decycle.sock --tenants=4 --ops=64
///   decycle_loadgen --socket=/tmp/decycle.sock --shutdown
///
/// Flags (both --key=value and "--key value" forms are accepted):
///   --in-process        run against an internal Server (default if no --socket)
///   --socket=PATH       connect to a daemon instead
///   --check-determinism run the workload twice in-process (--workers=1 vs
///                       the configured --workers) and exit 1 unless the
///                       reports match digest-for-digest
///   --tenants=N --ops=N --n=N --threads=N   workload shape (defaults 4/64/64/2)
///   --mutate=F --checkpoints=F              op-mix ratios (defaults 0.25/0.05)
///   --seed=S            workload seed (default 1)
///   --algos=a,b --ks=3,5 --eps=0.25,0.5 --reps=N   query axes
///   --workers=N         in-process server workers (default 8)
///   --queue-capacity=N --tenant-cap=N --cache=N    in-process server knobs
///   --out=FILE          write the JSONL report here (stdout always gets it)
///   --stats             also fetch and print the server's stats dump
///   --shutdown          (socket mode) send `shutdown` and exit
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

std::vector<std::string> normalize_args(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind("--", 0) == 0 && arg.find('=') == std::string::npos && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      arg += "=";
      arg += argv[++i];
    }
    out.push_back(std::move(arg));
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Blocking request/reply client over one AF_UNIX connection.
class SocketClient final : public decycle::serve::Client {
 public:
  explicit SocketClient(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    DECYCLE_CHECK_MSG(path.size() < sizeof(addr.sun_path), "--socket path too long");
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DECYCLE_CHECK_MSG(fd_ >= 0, "socket() failed");
    DECYCLE_CHECK_MSG(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
                      "connect() failed on " + path + " (is decycle_serve running?)");
  }

  ~SocketClient() override {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] std::string call(const std::string& payload) override {
    const std::string frame = decycle::serve::encode_frame(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      DECYCLE_CHECK_MSG(n > 0, "send() failed (daemon gone?)");
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      std::string reply;
      const auto status = reader_.next(reply);
      if (status == decycle::serve::FrameReader::Status::kFrame) return reply;
      DECYCLE_CHECK_MSG(status == decycle::serve::FrameReader::Status::kNeedMore,
                        "garbled reply stream: " + reader_.error());
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      DECYCLE_CHECK_MSG(n > 0, "connection closed mid-reply");
      reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  decycle::serve::FrameReader reader_;
};

decycle::serve::LoadgenSpec parse_spec(const decycle::util::Args& args) {
  decycle::serve::LoadgenSpec spec;
  spec.tenants = args.get_u64("tenants", spec.tenants);
  spec.client_threads = args.get_u64("threads", 2);
  spec.n = static_cast<decycle::graph::Vertex>(args.get_u64("n", spec.n));
  spec.ops_per_tenant = args.get_u64("ops", spec.ops_per_tenant);
  spec.mutate_ratio = args.get_double("mutate", spec.mutate_ratio);
  spec.checkpoint_ratio = args.get_double("checkpoints", spec.checkpoint_ratio);
  spec.seed = args.get_u64("seed", spec.seed);
  spec.repetitions = args.get_u64("reps", spec.repetitions);
  if (const std::string csv = args.get_string("algos", ""); !csv.empty()) {
    spec.algos = split_csv(csv);
  }
  if (const std::string csv = args.get_string("ks", ""); !csv.empty()) {
    spec.ks.clear();
    for (const std::string& k : split_csv(csv)) {
      spec.ks.push_back(static_cast<unsigned>(std::stoul(k)));
    }
  }
  if (const std::string csv = args.get_string("eps", ""); !csv.empty()) {
    spec.epsilons.clear();
    for (const std::string& e : split_csv(csv)) spec.epsilons.push_back(std::stod(e));
  }
  return spec;
}

decycle::serve::ServerOptions parse_server_options(const decycle::util::Args& args) {
  decycle::serve::ServerOptions options;
  options.workers = args.get_u64("workers", 8);
  options.queue_capacity = args.get_u64("queue-capacity", options.queue_capacity);
  options.tenant_inflight_cap = args.get_u64("tenant-cap", options.tenant_inflight_cap);
  options.verdict_cache_capacity = args.get_u64("cache", options.verdict_cache_capacity);
  return options;
}

decycle::serve::LoadgenReport run_in_process(const decycle::serve::LoadgenSpec& spec,
                                             decycle::serve::ServerOptions options,
                                             bool print_stats) {
  decycle::serve::Server server(std::move(options));
  server.start();
  const decycle::serve::LoadgenReport report = decycle::serve::run_loadgen(
      spec, [&server] { return std::make_unique<decycle::serve::InProcessClient>(server); });
  if (print_stats) std::cout << server.stats_jsonl();
  server.stop();
  return report;
}

bool reports_match(const decycle::serve::LoadgenReport& a,
                   const decycle::serve::LoadgenReport& b) {
  if (a.aggregate_digest != b.aggregate_digest || a.tenants.size() != b.tenants.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const auto& ta = a.tenants[i];
    const auto& tb = b.tenants[i];
    if (ta.reply_digest != tb.reply_digest || ta.verdict_multiset != tb.verdict_multiset ||
        ta.final_hash != tb.final_hash || ta.queries != tb.queries ||
        ta.accepted != tb.accepted || ta.errors != tb.errors) {
      return false;
    }
  }
  return true;
}

void write_report(const decycle::serve::LoadgenReport& report, const std::string& out_path) {
  const std::string jsonl = report.jsonl();
  std::cout << jsonl;
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    DECYCLE_CHECK_MSG(out.good(), "cannot open --out file: " + out_path);
    out << jsonl;
  }
}

int run(const decycle::util::Args& args) {
  using namespace decycle;

  const std::string socket_path = args.get_string("socket", "");
  const bool check_determinism = args.get_bool("check-determinism", false);
  const bool want_stats = args.get_bool("stats", false);
  const bool want_shutdown = args.get_bool("shutdown", false);
  const std::string out_path = args.get_string("out", "");
  (void)args.get_bool("in-process", false);  // accepted for explicitness
  const serve::LoadgenSpec spec = parse_spec(args);
  serve::ServerOptions options = parse_server_options(args);
  args.reject_unknown();

  if (want_shutdown) {
    DECYCLE_CHECK_MSG(!socket_path.empty(), "--shutdown requires --socket=PATH");
    SocketClient client(socket_path);
    std::cout << client.call("shutdown") << "\n";
    return 0;
  }

  if (check_determinism) {
    DECYCLE_CHECK_MSG(socket_path.empty(),
                      "--check-determinism is in-process only (it owns the worker count)");
    serve::ServerOptions single = options;
    single.workers = 1;
    const serve::LoadgenReport base = run_in_process(spec, std::move(single), false);
    const serve::LoadgenReport wide = run_in_process(spec, std::move(options), false);
    write_report(wide, out_path);
    if (!reports_match(base, wide)) {
      std::cerr << "decycle_loadgen: DETERMINISM MISMATCH between workers=1 and workers="
                << parse_server_options(args).workers << "\n--- workers=1 ---\n"
                << base.jsonl();
      return 1;
    }
    std::cerr << "decycle_loadgen: deterministic across worker counts (aggregate_digest="
              << wide.aggregate_digest << ")\n";
    return 0;
  }

  serve::LoadgenReport report;
  if (socket_path.empty()) {
    report = run_in_process(spec, std::move(options), want_stats);
  } else {
    report = serve::run_loadgen(
        spec, [&socket_path] { return std::make_unique<SocketClient>(socket_path); });
    if (want_stats) {
      SocketClient client(socket_path);
      std::cout << client.call("stats") << "\n";
    }
  }
  write_report(report, out_path);
  return report.total_errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace decycle;
  try {
    const std::vector<std::string> normalized = normalize_args(argc, argv);
    std::vector<const char*> argv2 = {argc > 0 ? argv[0] : "decycle_loadgen"};
    for (const std::string& a : normalized) argv2.push_back(a.c_str());
    const util::Args args(static_cast<int>(argv2.size()), argv2.data());
    return run(args);
  } catch (const util::CheckError& e) {
    std::cerr << "decycle_loadgen: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "decycle_loadgen: " << e.what() << "\n";
    return 3;
  }
}
