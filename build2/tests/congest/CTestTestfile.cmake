# CMake generated Testfile for 
# Source directory: /root/repo/tests/congest
# Build directory: /root/repo/build2/tests/congest
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/congest/congest_aggregation_test[1]_include.cmake")
include("/root/repo/build2/tests/congest/congest_algorithms_test[1]_include.cmake")
include("/root/repo/build2/tests/congest/congest_message_test[1]_include.cmake")
include("/root/repo/build2/tests/congest/congest_simulator_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1")
