# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("baselines")
subdirs("congest")
subdirs("core")
subdirs("fuzz")
subdirs("graph")
subdirs("harness")
subdirs("integration")
subdirs("lab")
subdirs("soak")
subdirs("util")
