# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build2/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/core/core_census_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_cycle_detector_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_detect_state_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_detector_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_erratum_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_faults_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_phase1_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_protocol_sweep_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_pruning_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_representative_family_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_scan_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_sequence_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_tester_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_threshold_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_trace_test[1]_include.cmake")
include("/root/repo/build2/tests/core/core_witness_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1")
