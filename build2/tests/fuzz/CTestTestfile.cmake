# CMake generated Testfile for 
# Source directory: /root/repo/tests/fuzz
# Build directory: /root/repo/build2/tests/fuzz
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/fuzz/fuzz_message_fuzz_test[1]_include.cmake")
include("/root/repo/build2/tests/fuzz/fuzz_soundness_fuzz_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1;fuzz")
