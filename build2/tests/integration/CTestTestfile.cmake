# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build2/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/integration/integration_detector_registry_test[1]_include.cmake")
include("/root/repo/build2/tests/integration/integration_integration_test[1]_include.cmake")
include("/root/repo/build2/tests/integration/integration_oracle_cross_test[1]_include.cmake")
include("/root/repo/build2/tests/integration/integration_threshold_cross_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1;integration")
