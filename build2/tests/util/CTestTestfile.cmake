# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build2/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/util/util_check_test[1]_include.cmake")
include("/root/repo/build2/tests/util/util_cli_test[1]_include.cmake")
include("/root/repo/build2/tests/util/util_hash_logging_test[1]_include.cmake")
include("/root/repo/build2/tests/util/util_rng_test[1]_include.cmake")
include("/root/repo/build2/tests/util/util_small_vector_test[1]_include.cmake")
include("/root/repo/build2/tests/util/util_stats_test[1]_include.cmake")
include("/root/repo/build2/tests/util/util_table_test[1]_include.cmake")
include("/root/repo/build2/tests/util/util_thread_pool_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1")
