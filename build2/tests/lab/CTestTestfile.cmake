# CMake generated Testfile for 
# Source directory: /root/repo/tests/lab
# Build directory: /root/repo/build2/tests/lab
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/lab/lab_runner_test[1]_include.cmake")
include("/root/repo/build2/tests/lab/lab_scenario_test[1]_include.cmake")
include("/root/repo/build2/tests/lab/lab_seed_stability_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1")
