# CMake generated Testfile for 
# Source directory: /root/repo/tests/graph
# Build directory: /root/repo/build2/tests/graph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/graph/graph_analysis_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_far_generators_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_generators_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_graph_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_induced_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_io_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_packing_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_subgraph_test[1]_include.cmake")
include("/root/repo/build2/tests/graph/graph_topologies_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1")
