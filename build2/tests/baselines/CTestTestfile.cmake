# CMake generated Testfile for 
# Source directory: /root/repo/tests/baselines
# Build directory: /root/repo/build2/tests/baselines
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/baselines/baselines_c4_test[1]_include.cmake")
include("/root/repo/build2/tests/baselines/baselines_color_coding_test[1]_include.cmake")
include("/root/repo/build2/tests/baselines/baselines_triangle_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1")
