# CMake generated Testfile for 
# Source directory: /root/repo/tests/soak
# Build directory: /root/repo/build2/tests/soak
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/soak/soak_campaign_test[1]_include.cmake")
include("/root/repo/build2/tests/soak/soak_differential_test[1]_include.cmake")
include("/root/repo/build2/tests/soak/soak_repro_test[1]_include.cmake")
include("/root/repo/build2/tests/soak/soak_shrink_test[1]_include.cmake")
include("/root/repo/build2/tests/soak/soak_space_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1;soak")
