# CMake generated Testfile for 
# Source directory: /root/repo/tests/harness
# Build directory: /root/repo/build2/tests/harness
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/harness/harness_estimator_test[1]_include.cmake")
set_directory_properties(PROPERTIES LABELS "tier1")
