/// \file comm_model_test.cpp
/// \brief CommModel layer: singleton registry and lookup errors, the
/// kind/mask correspondence, link-topology construction (clique = K_n while
/// graph() stays the input), Broadcast-CONGEST send-time enforcement, and
/// byte-identity of the congest model with the pre-model constructors.
#include "congest/comm_model.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "congest/simulator.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace decycle::congest {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

TEST(CommModel, SingletonsExposeNamesKindsAndBandwidth) {
  EXPECT_EQ(CommModel::congest().name(), "congest");
  EXPECT_EQ(CommModel::broadcast().name(), "broadcast");
  EXPECT_EQ(CommModel::clique().name(), "clique");
  EXPECT_EQ(CommModel::congest().kind(), CommModelKind::kCongest);
  EXPECT_EQ(CommModel::broadcast().kind(), CommModelKind::kBroadcastCongest);
  EXPECT_EQ(CommModel::clique().kind(), CommModelKind::kClique);
  // Only broadcast enforces a budget; congest/clique account in RunStats.
  EXPECT_EQ(CommModel::congest().bandwidth_bits(), 0u);
  EXPECT_EQ(CommModel::clique().bandwidth_bits(), 0u);
  EXPECT_EQ(CommModel::broadcast().bandwidth_bits(),
            BroadcastCongestModel::kDefaultBandwidthBits);
}

TEST(CommModel, FindRequireAndKnownNames) {
  EXPECT_EQ(CommModel::find("congest"), &CommModel::congest());
  EXPECT_EQ(CommModel::find("broadcast"), &CommModel::broadcast());
  EXPECT_EQ(CommModel::find("clique"), &CommModel::clique());
  EXPECT_EQ(CommModel::find("CLIQUE"), nullptr);  // names are exact
  EXPECT_EQ(CommModel::find(""), nullptr);
  EXPECT_EQ(&CommModel::require("clique"), &CommModel::clique());
  EXPECT_EQ(CommModel::known_names(), "congest, broadcast, clique");
  try {
    (void)CommModel::require("quantum");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quantum"), std::string::npos) << msg;
    EXPECT_NE(msg.find("congest, broadcast, clique"), std::string::npos) << msg;
  }
}

TEST(CommModel, KindBitsAndMaskNames) {
  // The enum values ARE the mask bit positions — the static mask constants
  // and model_bit() can never drift apart.
  EXPECT_EQ(model_bit(CommModelKind::kCongest), kModelCongest);
  EXPECT_EQ(model_bit(CommModelKind::kBroadcastCongest), kModelBroadcast);
  EXPECT_EQ(model_bit(CommModelKind::kClique), kModelClique);
  EXPECT_EQ(kModelCongest | kModelBroadcast | kModelClique, kModelAll);

  EXPECT_EQ(model_mask_names(kModelAll), "congest, broadcast, clique");
  EXPECT_EQ(model_mask_names(kModelClique), "clique");
  EXPECT_EQ(model_mask_names(kModelCongest | kModelClique), "congest, clique");
  EXPECT_EQ(model_mask_names(0), "");
}

TEST(CommModel, CliqueBuildsCompleteLinksWhileGraphStaysInput) {
  const Graph input = graph::path(6);  // 5 edges
  const IdAssignment ids = IdAssignment::identity(6);
  Simulator sim(input, ids, CommModel::clique());
  // The object under test is untouched...
  EXPECT_EQ(&sim.graph(), &input);
  EXPECT_EQ(sim.graph().num_edges(), 5u);
  // ...but the link topology is K_6: every pair, degree n-1 everywhere.
  EXPECT_NE(&sim.comm_graph(), &input);
  EXPECT_EQ(sim.comm_graph().num_vertices(), 6u);
  EXPECT_EQ(sim.comm_graph().num_edges(), 15u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(sim.comm_graph().degree(v), 5u);
  EXPECT_EQ(&sim.model(), &CommModel::clique());
}

TEST(CommModel, CongestAndBroadcastCommunicateOnTheInputGraph) {
  const Graph input = graph::cycle(7);
  const IdAssignment ids = IdAssignment::identity(7);
  Simulator congest_sim(input, ids, CommModel::congest());
  Simulator bcast_sim(input, ids, CommModel::broadcast());
  // No copy: the simulator communicates on the input graph itself.
  EXPECT_EQ(&congest_sim.comm_graph(), &input);
  EXPECT_EQ(&bcast_sim.comm_graph(), &input);
}

/// Round 0: broadcast one small message everywhere (model-compliant).
class CompliantBroadcaster final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0) {
      MessageWriter w;
      w.put_u64(ctx.my_id());
      ctx.send_all(w.finish());
      return;
    }
    heard_ += inbox.size();
  }
  std::size_t heard_ = 0;
};

/// Round 0: one oversized message on port 0.
class OversizedSender final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() != 0 || ctx.degree() == 0) return;
    MessageWriter w;
    for (int i = 0; i < 64; ++i) w.put_u64(0xFFFF'FFFF'FFFF'FFFFULL);
    ctx.send(0, w.finish());
  }
};

/// Round 0: two *different* messages on two ports — legal CONGEST, a
/// violation under broadcast.
class TwoFacedSender final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() != 0 || ctx.degree() < 2) return;
    MessageWriter a;
    a.put_u64(1);
    ctx.send(0, a.finish());
    MessageWriter b;
    b.put_u64(2);
    ctx.send(1, b.finish());
  }
};

TEST(CommModel, BroadcastAcceptsOneIdenticalSmallMessage) {
  const Graph g = graph::cycle(5);
  const IdAssignment ids = IdAssignment::identity(5);
  Simulator sim(g, ids, CommModel::broadcast(),
                [](Vertex) { return std::make_unique<CompliantBroadcaster>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(static_cast<const CompliantBroadcaster&>(sim.program(v)).heard_, 2u);
  }
}

TEST(CommModel, BroadcastRejectsOversizedMessageNamingTheBudget) {
  const Graph g = graph::path(4);
  const IdAssignment ids = IdAssignment::identity(4);
  // A tiny custom budget makes even a single varint word oversized.
  const BroadcastCongestModel tight(16);
  Simulator sim(g, ids, tight, [](Vertex) { return std::make_unique<OversizedSender>(); });
  try {
    (void)sim.run();
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("Broadcast-CONGEST violation"), std::string::npos) << msg;
    EXPECT_NE(msg.find("B=16"), std::string::npos) << msg;
    EXPECT_NE(msg.find("round 0"), std::string::npos) << msg;
  }
}

TEST(CommModel, BroadcastRejectsTwoDifferentMessagesInOneRound) {
  const Graph g = graph::star(4);  // hub 0 has degree 3
  const IdAssignment ids = IdAssignment::identity(4);
  Simulator sim(g, ids, CommModel::broadcast(),
                [](Vertex) { return std::make_unique<TwoFacedSender>(); });
  try {
    (void)sim.run();
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("two different messages"), std::string::npos) << msg;
    EXPECT_NE(msg.find("one identical broadcast"), std::string::npos) << msg;
  }
  // The same program is legal CONGEST: no budget, per-link slots only.
  Simulator ok(g, ids, [](Vertex) { return std::make_unique<TwoFacedSender>(); });
  EXPECT_TRUE(ok.run().halted);
}

TEST(CommModel, CongestModelMatchesPreModelConstructorByteForByte) {
  const Graph g = graph::cycle(9);
  const IdAssignment ids = IdAssignment::identity(9);
  const auto factory = [](Vertex) { return std::make_unique<CompliantBroadcaster>(); };
  Simulator legacy_ctor(g, ids, factory);
  Simulator explicit_model(g, ids, CommModel::congest(), factory);
  const RunStats a = legacy_ctor.run();
  const RunStats b = explicit_model.run();
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.max_link_bits, b.max_link_bits);
  EXPECT_EQ(a.halted, b.halted);
  for (Vertex v = 0; v < 9; ++v) {
    EXPECT_EQ(static_cast<const CompliantBroadcaster&>(legacy_ctor.program(v)).heard_,
              static_cast<const CompliantBroadcaster&>(explicit_model.program(v)).heard_);
  }
}

}  // namespace
}  // namespace decycle::congest
