#include "congest/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace decycle::congest {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

/// Echo program: round 0 sends own ID everywhere; afterwards records what it
/// hears and stays silent.
class EchoProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0) {
      MessageWriter w;
      w.put_u64(ctx.my_id());
      ctx.send_all(w.finish());
      return;
    }
    for (const Envelope& env : inbox) {
      MessageReader r(env.payload);
      heard_.push_back(r.get_u64());
      ports_.push_back(env.port);
    }
  }
  std::vector<NodeId> heard_;
  std::vector<std::uint32_t> ports_;
};

TEST(Simulator, DeliversToAllNeighborsOnce) {
  const Graph g = graph::cycle(5);
  const IdAssignment ids = IdAssignment::identity(5);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.rounds_executed, 2u);  // broadcast round + hearing round
  EXPECT_EQ(stats.total_messages, 10u);  // one per directed edge
  for (Vertex v = 0; v < 5; ++v) {
    const auto& prog = static_cast<const EchoProgram&>(sim.program(v));
    ASSERT_EQ(prog.heard_.size(), 2u);
    // Inbox sorted by port; ports map to sorted neighbor vertices.
    EXPECT_EQ(prog.ports_[0], 0u);
    EXPECT_EQ(prog.ports_[1], 1u);
    const auto nb = g.neighbors(v);
    EXPECT_EQ(prog.heard_[0], nb[0]);
    EXPECT_EQ(prog.heard_[1], nb[1]);
  }
}

/// Forwards a token along a path: vertex 0 starts, each node forwards to the
/// next higher port.
class RelayProgram final : public NodeProgram {
 public:
  explicit RelayProgram(bool starter) : starter_(starter) {}
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0 && starter_) {
      MessageWriter w;
      w.put_u64(1);
      ctx.send(static_cast<std::uint32_t>(ctx.degree() - 1), w.finish());
      return;
    }
    for (const Envelope& env : inbox) {
      MessageReader r(env.payload);
      const std::uint64_t hops = r.get_u64();
      received_at_ = ctx.round();
      hops_ = hops;
      if (env.port + 1 < ctx.degree()) {  // forward "rightwards" along the path
        MessageWriter w;
        w.put_u64(hops + 1);
        ctx.send(static_cast<std::uint32_t>(ctx.degree() - 1), w.finish());
      }
    }
  }
  bool starter_;
  std::uint64_t received_at_ = 0;
  std::uint64_t hops_ = 0;
};

TEST(Simulator, EventDrivenRelayTiming) {
  const Graph g = graph::path(6);
  const IdAssignment ids = IdAssignment::identity(6);
  Simulator sim(g, ids, [](Vertex v) { return std::make_unique<RelayProgram>(v == 0); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  for (Vertex v = 1; v < 6; ++v) {
    const auto& prog = static_cast<const RelayProgram&>(sim.program(v));
    EXPECT_EQ(prog.received_at_, v) << "token reaches vertex v at round v";
    EXPECT_EQ(prog.hops_, v);
  }
  // Active sets shrink to the relay front: never more than n active after
  // round 0.
  EXPECT_EQ(stats.max_active_nodes, 6u);
}

class WakeupProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    rounds_seen_.push_back(ctx.round());
    if (ctx.round() == 0) ctx.request_wakeup_at(5);
  }
  std::vector<std::uint64_t> rounds_seen_;
};

TEST(Simulator, WakeupSkipsIdleRounds) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<WakeupProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.rounds_executed, 2u);  // rounds 1-4 are fast-forwarded
  const auto& prog = static_cast<const WakeupProgram&>(sim.program(0));
  ASSERT_EQ(prog.rounds_seen_.size(), 2u);
  EXPECT_EQ(prog.rounds_seen_[1], 5u);
}

class DoubleSendProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() > 0) return;
    MessageWriter w;
    w.put_u64(1);
    ctx.send(0, w.finish());
    MessageWriter w2;
    w2.put_u64(2);
    ctx.send(0, w2.finish());  // CONGEST violation
  }
};

TEST(Simulator, RejectsTwoMessagesPerLinkPerRound) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<DoubleSendProgram>(); });
  EXPECT_THROW((void)sim.run(), util::CheckError);
}

class PastWakeupProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    ctx.request_wakeup_at(ctx.round());  // not in the future
  }
};

TEST(Simulator, RejectsPastWakeup) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<PastWakeupProgram>(); });
  EXPECT_THROW((void)sim.run(), util::CheckError);
}

class ChattyProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    MessageWriter w;
    w.put_u64(ctx.round());
    ctx.send_all(w.finish());
    ctx.request_wakeup_at(ctx.round() + 1);  // run forever
  }
};

TEST(Simulator, RoundCapStopsRunaways) {
  const Graph g = graph::cycle(4);
  const IdAssignment ids = IdAssignment::identity(4);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<ChattyProgram>(); });
  Simulator::Options opt;
  opt.max_rounds = 10;
  const RunStats stats = sim.run(opt);
  EXPECT_FALSE(stats.halted);
  EXPECT_LE(stats.rounds_executed, 12u);
}

TEST(Simulator, StatsBitsAndLinkMaxima) {
  const Graph g = graph::star(4);  // hub 0
  const IdAssignment ids = IdAssignment::identity(4);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); });
  Simulator::Options opt;
  opt.record_rounds = true;
  const RunStats stats = sim.run(opt);
  EXPECT_EQ(stats.total_messages, 6u);  // hub sends 3, leaves send 1 each
  EXPECT_GT(stats.total_bits, 0u);
  ASSERT_FALSE(stats.per_round.empty());
  std::uint64_t sum = 0;
  for (const auto& r : stats.per_round) sum += r.bits;
  EXPECT_EQ(sum, stats.total_bits);
  EXPECT_GE(stats.max_link_bits, 8u);
  EXPECT_EQ(stats.normalized_rounds(0), stats.rounds_executed);
  EXPECT_GE(stats.normalized_rounds(8), stats.rounds_executed);
}

TEST(Simulator, IdenticalResultsAcrossThreadCounts) {
  const Graph g = graph::grid(8, 8);
  util::Rng rng(42);
  const IdAssignment ids = IdAssignment::shuffled(g.num_vertices(), rng);

  auto run_with = [&](util::ThreadPool* pool) {
    Simulator sim(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); });
    Simulator::Options opt;
    opt.pool = pool;
    opt.parallel_threshold = 1;  // force parallel path when pool given
    const RunStats stats = sim.run(opt);
    std::vector<std::vector<NodeId>> heard;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      heard.push_back(static_cast<const EchoProgram&>(sim.program(v)).heard_);
    }
    return std::make_pair(stats.total_bits, heard);
  };

  const auto serial = run_with(nullptr);
  util::ThreadPool pool2(2);
  util::ThreadPool pool7(7);
  const auto par2 = run_with(&pool2);
  const auto par7 = run_with(&pool7);
  EXPECT_EQ(serial.first, par2.first);
  EXPECT_EQ(serial.second, par2.second);
  EXPECT_EQ(serial.first, par7.first);
  EXPECT_EQ(serial.second, par7.second);
}

TEST(Simulator, MismatchedIdAssignmentRejected) {
  const Graph g = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(2);
  EXPECT_THROW(Simulator(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); }),
               util::CheckError);
}

TEST(Simulator, NullProgramRejected) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  EXPECT_THROW(Simulator(g, ids, [](Vertex) { return std::unique_ptr<NodeProgram>{}; }),
               util::CheckError);
}

}  // namespace
}  // namespace decycle::congest
