#include "congest/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "graph/generators.hpp"
#include "support/alloc_probe.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::congest {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

/// Echo program: round 0 sends own ID everywhere; afterwards records what it
/// hears and stays silent.
class EchoProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0) {
      MessageWriter w;
      w.put_u64(ctx.my_id());
      ctx.send_all(w.finish());
      return;
    }
    for (const Envelope& env : inbox) {
      MessageReader r(env.payload);
      heard_.push_back(r.get_u64());
      ports_.push_back(env.port);
    }
  }
  std::vector<NodeId> heard_;
  std::vector<std::uint32_t> ports_;
};

TEST(Simulator, DeliversToAllNeighborsOnce) {
  const Graph g = graph::cycle(5);
  const IdAssignment ids = IdAssignment::identity(5);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.rounds_executed, 2u);  // broadcast round + hearing round
  EXPECT_EQ(stats.total_messages, 10u);  // one per directed edge
  for (Vertex v = 0; v < 5; ++v) {
    const auto& prog = static_cast<const EchoProgram&>(sim.program(v));
    ASSERT_EQ(prog.heard_.size(), 2u);
    // Inbox sorted by port; ports map to sorted neighbor vertices.
    EXPECT_EQ(prog.ports_[0], 0u);
    EXPECT_EQ(prog.ports_[1], 1u);
    const auto nb = g.neighbors(v);
    EXPECT_EQ(prog.heard_[0], nb[0]);
    EXPECT_EQ(prog.heard_[1], nb[1]);
  }
}

/// Forwards a token along a path: vertex 0 starts, each node forwards to the
/// next higher port.
class RelayProgram final : public NodeProgram {
 public:
  explicit RelayProgram(bool starter) : starter_(starter) {}
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0 && starter_) {
      MessageWriter w;
      w.put_u64(1);
      ctx.send(static_cast<std::uint32_t>(ctx.degree() - 1), w.finish());
      return;
    }
    for (const Envelope& env : inbox) {
      MessageReader r(env.payload);
      const std::uint64_t hops = r.get_u64();
      received_at_ = ctx.round();
      hops_ = hops;
      if (env.port + 1 < ctx.degree()) {  // forward "rightwards" along the path
        MessageWriter w;
        w.put_u64(hops + 1);
        ctx.send(static_cast<std::uint32_t>(ctx.degree() - 1), w.finish());
      }
    }
  }
  bool starter_;
  std::uint64_t received_at_ = 0;
  std::uint64_t hops_ = 0;
};

TEST(Simulator, EventDrivenRelayTiming) {
  const Graph g = graph::path(6);
  const IdAssignment ids = IdAssignment::identity(6);
  Simulator sim(g, ids, [](Vertex v) { return std::make_unique<RelayProgram>(v == 0); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  for (Vertex v = 1; v < 6; ++v) {
    const auto& prog = static_cast<const RelayProgram&>(sim.program(v));
    EXPECT_EQ(prog.received_at_, v) << "token reaches vertex v at round v";
    EXPECT_EQ(prog.hops_, v);
  }
  // Active sets shrink to the relay front: never more than n active after
  // round 0.
  EXPECT_EQ(stats.max_active_nodes, 6u);
}

class WakeupProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    rounds_seen_.push_back(ctx.round());
    if (ctx.round() == 0) ctx.request_wakeup_at(5);
  }
  std::vector<std::uint64_t> rounds_seen_;
};

TEST(Simulator, WakeupSkipsIdleRounds) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<WakeupProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.rounds_executed, 2u);  // rounds 1-4 are fast-forwarded
  const auto& prog = static_cast<const WakeupProgram&>(sim.program(0));
  ASSERT_EQ(prog.rounds_seen_.size(), 2u);
  EXPECT_EQ(prog.rounds_seen_[1], 5u);
}

class DoubleSendProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() > 0) return;
    MessageWriter w;
    w.put_u64(1);
    ctx.send(0, w.finish());
    MessageWriter w2;
    w2.put_u64(2);
    ctx.send(0, w2.finish());  // CONGEST violation
  }
};

TEST(Simulator, RejectsTwoMessagesPerLinkPerRound) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<DoubleSendProgram>(); });
  EXPECT_THROW((void)sim.run(), util::CheckError);
}

class PastWakeupProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    ctx.request_wakeup_at(ctx.round());  // not in the future
  }
};

TEST(Simulator, RejectsPastWakeup) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<PastWakeupProgram>(); });
  EXPECT_THROW((void)sim.run(), util::CheckError);
}

class ChattyProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    MessageWriter w;
    w.put_u64(ctx.round());
    ctx.send_all(w.finish());
    ctx.request_wakeup_at(ctx.round() + 1);  // run forever
  }
};

TEST(Simulator, RoundCapStopsRunaways) {
  const Graph g = graph::cycle(4);
  const IdAssignment ids = IdAssignment::identity(4);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<ChattyProgram>(); });
  Simulator::Options opt;
  opt.max_rounds = 10;
  const RunStats stats = sim.run(opt);
  EXPECT_FALSE(stats.halted);
  EXPECT_LE(stats.rounds_executed, 12u);
}

TEST(Simulator, StatsBitsAndLinkMaxima) {
  const Graph g = graph::star(4);  // hub 0
  const IdAssignment ids = IdAssignment::identity(4);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); });
  Simulator::Options opt;
  opt.record_rounds = true;
  const RunStats stats = sim.run(opt);
  EXPECT_EQ(stats.total_messages, 6u);  // hub sends 3, leaves send 1 each
  EXPECT_GT(stats.total_bits, 0u);
  ASSERT_FALSE(stats.per_round.empty());
  std::uint64_t sum = 0;
  for (const auto& r : stats.per_round) sum += r.bits;
  EXPECT_EQ(sum, stats.total_bits);
  EXPECT_GE(stats.max_link_bits, 8u);
  EXPECT_EQ(stats.normalized_rounds(0), stats.rounds_executed);
  EXPECT_GE(stats.normalized_rounds(8), stats.rounds_executed);
}

TEST(Simulator, IdenticalResultsAcrossThreadCounts) {
  const Graph g = graph::grid(8, 8);
  util::Rng rng(42);
  const IdAssignment ids = IdAssignment::shuffled(g.num_vertices(), rng);

  auto run_with = [&](util::ThreadPool* pool) {
    Simulator sim(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); });
    Simulator::Options opt;
    opt.pool = pool;
    opt.parallel_threshold = 1;  // force parallel path when pool given
    const RunStats stats = sim.run(opt);
    std::vector<std::vector<NodeId>> heard;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      heard.push_back(static_cast<const EchoProgram&>(sim.program(v)).heard_);
    }
    return std::make_pair(stats.total_bits, heard);
  };

  const auto serial = run_with(nullptr);
  util::ThreadPool pool2(2);
  util::ThreadPool pool7(7);
  const auto par2 = run_with(&pool2);
  const auto par7 = run_with(&pool7);
  EXPECT_EQ(serial.first, par2.first);
  EXPECT_EQ(serial.second, par2.second);
  EXPECT_EQ(serial.first, par7.first);
  EXPECT_EQ(serial.second, par7.second);
}

/// Multi-round gossip that exercises every delivery feature at once: port-
/// dependent sends, silent rounds, timer-wheel wake-ups (near and far), and
/// a full inbox transcript for bit-identity checks.
class GossipProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    transcript_.push_back(0xf00d0000u + ctx.round());
    for (const Envelope& env : inbox) {
      transcript_.push_back(env.port);
      MessageReader r(env.payload);
      while (!r.at_end()) transcript_.push_back(r.get_u64());
    }
    if (ctx.round() >= kLastRound) return;
    for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
      if ((ctx.round() + ctx.vertex() + p) % 3 == 0) continue;  // stay silent on some links
      MessageWriter w;
      w.put_u64(ctx.my_id()).put_u64(ctx.round()).put_u64(p);
      ctx.send(p, w.finish());
    }
    if (ctx.round() % 4 == 0) ctx.request_wakeup_at(ctx.round() + 3);
    if (ctx.vertex() % 7 == 0 && ctx.round() == 0) {
      ctx.request_wakeup_at(kLastRound + 80);  // far target: exercises the heap
    }
  }

  static constexpr std::uint64_t kLastRound = 12;
  std::vector<std::uint64_t> transcript_;
};

struct RunOutcome {
  RunStats stats;
  std::vector<std::vector<std::uint64_t>> transcripts;
};

bool same_round_stats(const RoundStats& a, const RoundStats& b) {
  return a.round == b.round && a.active_nodes == b.active_nodes && a.messages == b.messages &&
         a.bits == b.bits && a.max_link_bits == b.max_link_bits;
}

void expect_identical(const RunOutcome& a, const RunOutcome& b, const std::string& label) {
  EXPECT_EQ(a.stats.rounds_executed, b.stats.rounds_executed) << label;
  EXPECT_EQ(a.stats.total_messages, b.stats.total_messages) << label;
  EXPECT_EQ(a.stats.total_bits, b.stats.total_bits) << label;
  EXPECT_EQ(a.stats.max_link_bits, b.stats.max_link_bits) << label;
  EXPECT_EQ(a.stats.max_active_nodes, b.stats.max_active_nodes) << label;
  EXPECT_EQ(a.stats.dropped_messages, b.stats.dropped_messages) << label;
  EXPECT_EQ(a.stats.halted, b.stats.halted) << label;
  ASSERT_EQ(a.stats.per_round.size(), b.stats.per_round.size()) << label;
  for (std::size_t i = 0; i < a.stats.per_round.size(); ++i) {
    EXPECT_TRUE(same_round_stats(a.stats.per_round[i], b.stats.per_round[i]))
        << label << " round " << i;
  }
  EXPECT_EQ(a.transcripts, b.transcripts) << label;
}

RunOutcome run_gossip(const Graph& g, const IdAssignment& ids, util::ThreadPool* pool,
                      DeliveryMode mode, bool with_drops) {
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<GossipProgram>(); });
  Simulator::Options opt;
  opt.pool = pool;
  opt.parallel_threshold = 1;  // force the parallel paths whenever a pool is given
  opt.record_rounds = true;
  opt.delivery = mode;
  if (with_drops) {
    const Vertex n = g.num_vertices();
    opt.drop = [n](std::uint64_t round, Vertex from, Vertex to) {
      return util::splitmix64(round * n + from * 31 + to) % 5 == 0;
    };
  }
  RunOutcome out;
  out.stats = sim.run(opt);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    out.transcripts.push_back(static_cast<const GossipProgram&>(sim.program(v)).transcript_);
  }
  return out;
}

/// The determinism contract (DESIGN.md §3.2), property-tested: identical
/// RunStats (including per-round records) and bit-identical inbox
/// transcripts on 1, 4 and 8 threads, with and without the drop-filter
/// adversary — and the parallel arena path agrees with the serial legacy
/// oracle.
TEST(Simulator, DeterminismAcrossThreadCountsAndAdversary) {
  util::Rng rng(7);
  const Graph graphs[] = {graph::grid(9, 9), graph::wheel(40),
                          graph::random_regular(60, 6, rng)};
  util::ThreadPool pool4(4);
  util::ThreadPool pool8(8);
  for (std::size_t gi = 0; gi < std::size(graphs); ++gi) {
    const Graph& g = graphs[gi];
    util::Rng id_rng(13 + gi);
    const IdAssignment ids = IdAssignment::shuffled(g.num_vertices(), id_rng);
    for (const bool drops : {false, true}) {
      const std::string label =
          "graph " + std::to_string(gi) + (drops ? " with drops" : " no drops");
      const RunOutcome oracle = run_gossip(g, ids, nullptr, DeliveryMode::kLegacy, drops);
      const RunOutcome serial = run_gossip(g, ids, nullptr, DeliveryMode::kArena, drops);
      const RunOutcome par4 = run_gossip(g, ids, &pool4, DeliveryMode::kArena, drops);
      const RunOutcome par8 = run_gossip(g, ids, &pool8, DeliveryMode::kArena, drops);
      const RunOutcome legacy4 = run_gossip(g, ids, &pool4, DeliveryMode::kLegacy, drops);
      expect_identical(serial, oracle, label + ": arena vs legacy oracle");
      expect_identical(par4, serial, label + ": 4 threads vs serial");
      expect_identical(par8, serial, label + ": 8 threads vs serial");
      expect_identical(legacy4, oracle, label + ": legacy 4 threads vs serial");
    }
  }
}

/// Messages that fit the inline buffer (every legal CONGEST payload) must
/// round-trip through the delivery path without the payload ever moving to
/// the heap; oversized ones must still round-trip correctly.
TEST(Simulator, ArenaHandlesOversizedPayloads) {
  class BigSender final : public NodeProgram {
   public:
    void on_round(Context& ctx, std::span<const Envelope> inbox) override {
      if (ctx.round() == 0) {
        MessageWriter w;
        for (std::uint64_t i = 0; i < 40; ++i) w.put_u64(~std::uint64_t{0} - i);
        ctx.send_all(w.finish());
        return;
      }
      for (const Envelope& env : inbox) {
        MessageReader r(env.payload);
        for (std::uint64_t i = 0; i < 40; ++i) {
          if (r.get_u64() != ~std::uint64_t{0} - i) return;  // leave ok_ false
        }
        ok_ = r.at_end();
      }
    }
    bool ok_ = false;
  };
  const Graph g = graph::cycle(6);
  const IdAssignment ids = IdAssignment::identity(6);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<BigSender>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_GE(stats.max_link_bits, 40u * 10u * 8u);  // 40 max-size varints
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_TRUE(static_cast<const BigSender&>(sim.program(v)).ok_) << v;
  }
}

/// Steady-state rounds of the arena path perform zero heap allocations —
/// the acceptance bar for the zero-allocation delivery rewrite. The first
/// run warms every reusable buffer (arena, outboxes, timer wheel); the
/// second run on the same Simulator must then be allocation-free from
/// begin_run to quiescence, serial and pooled alike.
TEST(Simulator, SteadyStateDeliveryIsAllocationFree) {
  ASSERT_TRUE(testsupport::allocation_probe_active());

  /// Chatty gossip with no per-node state at all, so every allocation in
  /// the run belongs to the simulator.
  class StatelessChatter final : public NodeProgram {
   public:
    void on_round(Context& ctx, std::span<const Envelope> inbox) override {
      std::uint64_t acc = 0;
      for (const Envelope& env : inbox) {
        MessageReader r(env.payload);
        while (!r.at_end()) acc ^= r.get_u64();
      }
      if (ctx.round() >= 24) return;
      MessageWriter w;
      w.put_u64(ctx.my_id()).put_u64(acc);
      ctx.send_all(w.finish());
      if (ctx.round() % 5 == 0) ctx.request_wakeup_at(ctx.round() + 2);
    }
  };

  const Graph g = graph::grid(12, 12);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  util::ThreadPool pool(4);

  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    Simulator sim(g, ids, [](Vertex) { return std::make_unique<StatelessChatter>(); });
    Simulator::Options opt;
    opt.pool = p;
    opt.parallel_threshold = 1;
    const RunStats warm = sim.run(opt);
    EXPECT_TRUE(warm.halted);

    const std::uint64_t before = testsupport::allocation_count();
    const RunStats steady = sim.run(opt);
    const std::uint64_t after = testsupport::allocation_count();
    EXPECT_TRUE(steady.halted);
    EXPECT_EQ(steady.total_messages, warm.total_messages);
    EXPECT_EQ(after - before, 0u) << (p == nullptr ? "serial" : "pooled")
                                  << " steady-state run allocated";
  }
}

TEST(Simulator, MismatchedIdAssignmentRejected) {
  const Graph g = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(2);
  EXPECT_THROW(Simulator(g, ids, [](Vertex) { return std::make_unique<EchoProgram>(); }),
               util::CheckError);
}

TEST(Simulator, NullProgramRejected) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  EXPECT_THROW(Simulator(g, ids, [](Vertex) { return std::unique_ptr<NodeProgram>{}; }),
               util::CheckError);
}

// --- Simulator reuse (reset) -----------------------------------------------

RunOutcome run_gossip_on(Simulator& sim, const Graph& g, util::ThreadPool* pool,
                         DeliveryMode mode, bool with_drops) {
  sim.reset([](Vertex) { return std::make_unique<GossipProgram>(); });
  Simulator::Options opt;
  opt.pool = pool;
  opt.parallel_threshold = 1;
  opt.record_rounds = true;
  opt.delivery = mode;
  if (with_drops) {
    const Vertex n = g.num_vertices();
    opt.drop = [n](std::uint64_t round, Vertex from, Vertex to) {
      return util::splitmix64(round * n + from * 31 + to) % 5 == 0;
    };
  }
  RunOutcome out;
  out.stats = sim.run(opt);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    out.transcripts.push_back(static_cast<const GossipProgram&>(sim.program(v)).transcript_);
  }
  return out;
}

/// The Simulator::reset contract (DESIGN.md §6): a reset-then-run on a
/// reused simulator is bit-identical to a fresh-build run — same RunStats
/// (incl. per-round records) and inbox transcripts — across thread counts,
/// delivery modes, and the drop adversary, even when the reused simulator
/// previously ran a *different* configuration (stale arenas, stale wheel).
TEST(Simulator, ResetRunMatchesFreshBuild) {
  util::Rng rng(7);  // same stream as DeterminismAcrossThreadCountsAndAdversary
  const Graph g = graph::random_regular(60, 6, rng);
  util::Rng id_rng(22);
  const IdAssignment ids = IdAssignment::shuffled(g.num_vertices(), id_rng);
  util::ThreadPool pool8(8);

  Simulator reused(g, ids);  // topology-only construction
  // Dirty the reusable state with an unrelated run first.
  reused.reset([](Vertex) { return std::make_unique<EchoProgram>(); });
  (void)reused.run();

  for (util::ThreadPool* pool : {static_cast<util::ThreadPool*>(nullptr), &pool8}) {
    for (const DeliveryMode mode : {DeliveryMode::kArena, DeliveryMode::kLegacy}) {
      for (const bool drops : {false, true}) {
        const std::string label = std::string(pool ? "8 threads" : "1 thread") +
                                  (mode == DeliveryMode::kArena ? " arena" : " legacy") +
                                  (drops ? " drops" : "");
        const RunOutcome fresh = run_gossip(g, ids, pool, mode, drops);
        const RunOutcome reset_run = run_gossip_on(reused, g, pool, mode, drops);
        expect_identical(reset_run, fresh, label);
      }
    }
  }
}

/// Back-to-back reset trials on one simulator must not interfere: the same
/// program config gives the same outcome on every repeat.
TEST(Simulator, RepeatedResetTrialsAreIndependent) {
  const Graph g = graph::grid(7, 7);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  Simulator sim(g, ids);
  const RunOutcome first = run_gossip_on(sim, g, nullptr, DeliveryMode::kArena, false);
  for (int i = 0; i < 3; ++i) {
    const RunOutcome again = run_gossip_on(sim, g, nullptr, DeliveryMode::kArena, false);
    expect_identical(again, first, "repeat " + std::to_string(i));
  }
}

// --- Work-stealing scale path (PR 6) ---------------------------------------

/// The determinism contract at oversubscribed thread counts through the
/// work-stealing scheduler: 1, 4 and 16 threads must agree bit-for-bit —
/// RunStats, per-round records, and inbox transcripts — on a topology dense
/// enough to engage the grouped parallel delivery, vector- and
/// bitset-backed alike.
TEST(Simulator, WorkStealDeterminismAtSixteenThreads) {
  for (const graph::AdjacencyMode mode :
       {graph::AdjacencyMode::kVector, graph::AdjacencyMode::kBitset}) {
    const Graph g = graph::circulant(96, 6, mode);
    util::Rng id_rng(31);
    const IdAssignment ids = IdAssignment::shuffled(g.num_vertices(), id_rng);
    util::ThreadPool pool4(4);
    util::ThreadPool pool16(16);
    const std::string rep = mode == graph::AdjacencyMode::kBitset ? " (bitset)" : " (vector)";
    for (const bool drops : {false, true}) {
      const std::string label = (drops ? "with drops" : "no drops") + rep;
      const RunOutcome serial = run_gossip(g, ids, nullptr, DeliveryMode::kArena, drops);
      const RunOutcome par4 = run_gossip(g, ids, &pool4, DeliveryMode::kArena, drops);
      const RunOutcome par16 = run_gossip(g, ids, &pool16, DeliveryMode::kArena, drops);
      expect_identical(par4, serial, label + ": 4 threads vs serial");
      expect_identical(par16, serial, label + ": 16 threads vs serial");
    }
  }
}

/// The zero-allocation bar re-pinned across the pooled-program lifecycle:
/// after a warm trial, a full reset(factory) + run — which tears down and
/// reconstructs every NodeProgram — must be heap-silent, because program
/// storage recycles through the simulator's size-classed pool and delivery
/// recycles the arenas. Serial and work-stealing pooled lanes alike.
TEST(Simulator, PooledResetTrialsAreAllocationFree) {
  ASSERT_TRUE(testsupport::allocation_probe_active());

  /// Stateless chatter: all allocation in a trial belongs to the simulator
  /// and the program pool.
  class StatelessChatter final : public NodeProgram {
   public:
    void on_round(Context& ctx, std::span<const Envelope> inbox) override {
      std::uint64_t acc = 0;
      for (const Envelope& env : inbox) {
        MessageReader r(env.payload);
        while (!r.at_end()) acc ^= r.get_u64();
      }
      if (ctx.round() >= 12) return;
      MessageWriter w;
      w.put_u64(ctx.my_id() ^ acc);
      ctx.send_all(w.finish());
    }
  };
  const auto factory = [](Vertex) { return std::make_unique<StatelessChatter>(); };

  const Graph g = graph::grid(10, 10);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  util::ThreadPool pool(4);

  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    Simulator sim(g, ids, factory);
    Simulator::Options opt;
    opt.pool = p;
    opt.parallel_threshold = 1;
    const RunStats warm = sim.run(opt);
    EXPECT_TRUE(warm.halted);
    // One warm reset sets the pool's high-water mark for program blocks.
    sim.reset(factory);
    (void)sim.run(opt);

    const std::uint64_t before = testsupport::allocation_count();
    sim.reset(factory);
    const RunStats steady = sim.run(opt);
    const std::uint64_t after = testsupport::allocation_count();
    EXPECT_TRUE(steady.halted);
    EXPECT_EQ(steady.total_messages, warm.total_messages);
    EXPECT_EQ(after - before, 0u)
        << (p == nullptr ? "serial" : "pooled") << " reset trial allocated";
  }
}

TEST(Simulator, TopologyOnlyConstructionRequiresReset) {
  const Graph g = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(3);
  Simulator sim(g, ids);
  EXPECT_THROW((void)sim.run(), util::CheckError);
  sim.reset([](Vertex) { return std::make_unique<EchoProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.total_messages, 4u);
}

TEST(Simulator, ResetRejectsNullPrograms) {
  const Graph g = graph::path(2);
  const IdAssignment ids = IdAssignment::identity(2);
  Simulator sim(g, ids);
  EXPECT_THROW(sim.reset([](Vertex) { return std::unique_ptr<NodeProgram>{}; }),
               util::CheckError);
  // A failed reset must fall back to the needs-reset state (run refuses),
  // not leave half-programmed nulls behind; a later good reset recovers.
  EXPECT_THROW((void)sim.run(), util::CheckError);
  sim.reset([](Vertex) { return std::make_unique<EchoProgram>(); });
  EXPECT_TRUE(sim.run().halted);
}

}  // namespace
}  // namespace decycle::congest
