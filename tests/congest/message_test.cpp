#include "congest/message.hpp"

#include <gtest/gtest.h>

#include "core/wire.hpp"
#include "util/check.hpp"

namespace decycle::congest {
namespace {

TEST(Message, EmptyByDefault) {
  const Message m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.bit_size(), 0u);
}

TEST(Codec, RoundTripsSmallValues) {
  MessageWriter w;
  w.put_u64(0).put_u64(1).put_u64(127);
  const Message m = w.finish();
  EXPECT_EQ(m.byte_size(), 3u);  // each fits one varint byte
  MessageReader r(m);
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_EQ(r.get_u64(), 1u);
  EXPECT_EQ(r.get_u64(), 127u);
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, RoundTripsBoundaryValues) {
  const std::vector<std::uint64_t> values{127, 128, 16383, 16384, (1ULL << 32),
                                          ~std::uint64_t{0}};
  MessageWriter w;
  for (const auto v : values) w.put_u64(v);
  const Message m = w.finish();
  MessageReader r(m);
  for (const auto v : values) EXPECT_EQ(r.get_u64(), v);
}

TEST(Codec, VarintSizeGrowsLogarithmically) {
  MessageWriter small;
  small.put_u64(100);
  MessageWriter large;
  large.put_u64(1ULL << 40);
  EXPECT_EQ(small.finish().byte_size(), 1u);
  EXPECT_EQ(large.finish().byte_size(), 6u);  // ceil(41/7)
}

TEST(Codec, UnderflowThrows) {
  MessageWriter w;
  w.put_u64(5);
  const Message m = w.finish();
  MessageReader r(m);
  (void)r.get_u64();
  EXPECT_THROW((void)r.get_u64(), util::CheckError);
}

TEST(Codec, U32OverflowThrows) {
  MessageWriter w;
  w.put_u64(1ULL << 40);
  const Message m = w.finish();
  MessageReader r(m);
  EXPECT_THROW((void)r.get_u32(), util::CheckError);
}

TEST(Codec, U32RoundTrip) {
  MessageWriter w;
  w.put_u32(0xffffffffU);
  const Message m = w.finish();
  MessageReader r(m);
  EXPECT_EQ(r.get_u32(), 0xffffffffU);
}

TEST(Codec, MalformedVarintThrows) {
  // 11 continuation bytes exceed the 64-bit budget.
  std::vector<std::uint8_t> bytes(11, 0x80);
  const Message m(std::move(bytes));
  MessageReader r(m);
  EXPECT_THROW((void)r.get_u64(), util::CheckError);
}

TEST(WireFormat, SequencesRoundTrip) {
  std::vector<core::IdSeq> seqs;
  seqs.push_back(core::IdSeq{1, 2, 3});
  seqs.push_back(core::IdSeq{900000, 5});
  seqs.push_back(core::IdSeq{});
  MessageWriter w;
  core::write_sequences(w, seqs);
  const Message m = w.finish();
  MessageReader r(m);
  const auto back = core::read_sequences(r);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], seqs[0]);
  EXPECT_EQ(back[1], seqs[1]);
  EXPECT_TRUE(back[2].empty());
  EXPECT_TRUE(r.at_end());
}

TEST(WireFormat, EmptyBundle) {
  MessageWriter w;
  core::write_sequences(w, {});
  const Message m = w.finish();
  MessageReader r(m);
  EXPECT_TRUE(core::read_sequences(r).empty());
}

TEST(WireFormat, BitSizeTracksIdMagnitude) {
  std::vector<core::IdSeq> small_ids{core::IdSeq{1, 2, 3, 4}};
  std::vector<core::IdSeq> big_ids{core::IdSeq{1ULL << 40, 1ULL << 41, 1ULL << 42, 1ULL << 43}};
  MessageWriter ws, wb;
  core::write_sequences(ws, small_ids);
  core::write_sequences(wb, big_ids);
  EXPECT_LT(ws.finish().bit_size(), wb.finish().bit_size());
}

}  // namespace
}  // namespace decycle::congest
