#include <gtest/gtest.h>

#include <memory>

#include "congest/algorithms/bfs.hpp"
#include "congest/algorithms/flood_max.hpp"
#include "congest/simulator.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"

namespace decycle::congest {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

void expect_bfs_matches_centralized(const Graph& g, Vertex root) {
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  Simulator sim(g, ids, [root](Vertex v) { return std::make_unique<BfsProgram>(v == root); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  const auto expected = graph::bfs_distances(g, root);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto& prog = static_cast<const BfsProgram&>(sim.program(v));
    if (expected[v] == graph::kUnreachable) {
      EXPECT_FALSE(prog.distance().has_value());
    } else {
      ASSERT_TRUE(prog.distance().has_value()) << "v=" << v;
      EXPECT_EQ(*prog.distance(), expected[v]) << "v=" << v;
    }
  }
}

TEST(DistributedBfs, MatchesCentralizedOnPath) { expect_bfs_matches_centralized(graph::path(10), 0); }

TEST(DistributedBfs, MatchesCentralizedOnGrid) {
  expect_bfs_matches_centralized(graph::grid(6, 7), 3);
}

TEST(DistributedBfs, MatchesCentralizedOnRandom) {
  util::Rng rng(8);
  expect_bfs_matches_centralized(graph::random_connected(60, 120, rng), 17);
}

TEST(DistributedBfs, DisconnectedStaysUnreached) {
  const std::vector<Graph> parts{graph::path(3), graph::path(3)};
  expect_bfs_matches_centralized(graph::disjoint_union(parts), 0);
}

TEST(DistributedBfs, ParentPointersFormTree) {
  const Graph g = graph::grid(4, 4);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  Simulator sim(g, ids, [](Vertex v) { return std::make_unique<BfsProgram>(v == 0); });
  (void)sim.run();
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    const auto& prog = static_cast<const BfsProgram&>(sim.program(v));
    ASSERT_TRUE(prog.parent_port().has_value());
    const Vertex parent = g.neighbors(v)[*prog.parent_port()];
    const auto& parent_prog = static_cast<const BfsProgram&>(sim.program(parent));
    EXPECT_EQ(*parent_prog.distance() + 1, *prog.distance());
  }
}

void expect_leader_is_max(const Graph& g, const IdAssignment& ids) {
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<FloodMaxProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  NodeId max_id = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) max_id = std::max(max_id, ids.id_of(v));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto& prog = static_cast<const FloodMaxProgram&>(sim.program(v));
    EXPECT_EQ(prog.leader(), max_id);
  }
}

TEST(FloodMax, ElectsMaxOnCycle) {
  expect_leader_is_max(graph::cycle(9), IdAssignment::identity(9));
}

TEST(FloodMax, ElectsMaxWithShuffledIds) {
  util::Rng rng(4);
  const Graph g = graph::grid(5, 5);
  expect_leader_is_max(g, IdAssignment::shuffled(g.num_vertices(), rng));
}

TEST(FloodMax, ElectsMaxWithSparseRandomIds) {
  util::Rng rng(5);
  const Graph g = graph::random_connected(40, 60, rng);
  expect_leader_is_max(g, IdAssignment::random_quadratic(g.num_vertices(), rng));
}

TEST(FloodMax, ConvergesWithinDiameterPlusOneRounds) {
  const Graph g = graph::path(20);  // worst case: max at one end
  std::vector<NodeId> ids_vec(20);
  for (Vertex v = 0; v < 20; ++v) ids_vec[v] = 19 - v;  // max ID at vertex 0
  const IdAssignment ids = IdAssignment::from_ids(ids_vec);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<FloodMaxProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_LE(stats.rounds_executed, 21u);
  const auto& far_end = static_cast<const FloodMaxProgram&>(sim.program(19));
  EXPECT_EQ(far_end.leader(), 19u);
}

}  // namespace
}  // namespace decycle::congest
