#include <gtest/gtest.h>

#include <memory>

#include "congest/algorithms/neighbor_discovery.hpp"
#include "congest/algorithms/or_flood.hpp"
#include "congest/simulator.hpp"
#include "core/tester.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace decycle::congest {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

void expect_or_flood(const Graph& g, const std::vector<bool>& inputs, bool expected,
                     std::uint64_t max_rounds_hint = 0) {
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  Simulator sim(g, ids,
                [&](Vertex v) { return std::make_unique<OrFloodProgram>(inputs[v]); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto& prog = static_cast<const OrFloodProgram&>(sim.program(v));
    EXPECT_EQ(prog.value(), expected) << "v=" << v;
  }
  if (max_rounds_hint != 0) {
    EXPECT_LE(stats.rounds_executed, max_rounds_hint);
  }
}

TEST(OrFlood, AllZerosQuiesceImmediately) {
  expect_or_flood(graph::grid(5, 5), std::vector<bool>(25, false), false, 2);
}

TEST(OrFlood, SingleOneReachesEveryone) {
  std::vector<bool> inputs(20, false);
  inputs[0] = true;
  // Path: worst case diameter 19; +2 slack for seed/quiesce rounds.
  expect_or_flood(graph::path(20), inputs, true, 22);
}

TEST(OrFlood, ManyOnesStillOneAnnouncementEach) {
  const Graph g = graph::complete(10);
  const IdAssignment ids = IdAssignment::identity(10);
  Simulator sim(g, ids, [&](Vertex) { return std::make_unique<OrFloodProgram>(true); });
  const RunStats stats = sim.run();
  // Each node announces exactly once: 10 * 9 directed messages.
  EXPECT_EQ(stats.total_messages, 90u);
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_TRUE(static_cast<const OrFloodProgram&>(sim.program(v)).value());
  }
}

TEST(OrFlood, ComposesWithTesterForGlobalVerdict) {
  // The deployment pipeline: run the tester, then disseminate the OR of the
  // per-node verdicts so every node knows whether the network has a C5.
  util::Rng rng(4);
  const Graph g = graph::wheel(12);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  core::TesterOptions topt;
  topt.k = 5;
  topt.repetitions = 6;
  topt.seed = 2;

  // Stage 1: the tester (harness view of per-node outputs).
  congest::Simulator tester_sim(g, ids, [&](Vertex v) {
    core::DetectParams params;
    params.k = topt.k;
    return std::make_unique<core::TesterProgram>(params, topt.repetitions, topt.seed,
                                                 g.num_vertices(), ids.id_of(v));
  });
  congest::Simulator::Options sim_opt;
  sim_opt.max_rounds = topt.repetitions * (5 / 2 + 2) + 4;
  (void)tester_sim.run(sim_opt);
  std::vector<bool> rejected(g.num_vertices(), false);
  bool any = false;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    rejected[v] = static_cast<const core::TesterProgram&>(tester_sim.program(v)).rejected();
    any = any || rejected[v];
  }
  ASSERT_TRUE(any);  // the wheel is rich in C5s

  // Stage 2: OR-flood the verdict; every node must learn "reject".
  expect_or_flood(g, rejected, true);
}

TEST(NeighborDiscovery, LearnsAllPortIds) {
  util::Rng rng(9);
  const Graph g = graph::random_connected(30, 60, rng);
  const IdAssignment ids = IdAssignment::random_quadratic(30, rng);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<NeighborDiscoveryProgram>(); });
  const RunStats stats = sim.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_LE(stats.rounds_executed, 2u);  // KT0 -> KT1 costs one exchange round
  for (Vertex v = 0; v < 30; ++v) {
    const auto& prog = static_cast<const NeighborDiscoveryProgram&>(sim.program(v));
    const auto nb = g.neighbors(v);
    ASSERT_EQ(prog.learned().size(), nb.size());
    for (std::size_t p = 0; p < nb.size(); ++p) {
      EXPECT_EQ(prog.learned()[p], ids.id_of(nb[p]));
    }
  }
}

TEST(NeighborDiscovery, IsolatedVertexLearnsNothing) {
  graph::GraphBuilder b;
  b.add_edge(0, 1);
  b.ensure_vertices(3);
  const Graph g = b.build();
  const IdAssignment ids = IdAssignment::identity(3);
  Simulator sim(g, ids, [](Vertex) { return std::make_unique<NeighborDiscoveryProgram>(); });
  (void)sim.run();
  EXPECT_TRUE(static_cast<const NeighborDiscoveryProgram&>(sim.program(2)).learned().empty());
}

}  // namespace
}  // namespace decycle::congest
