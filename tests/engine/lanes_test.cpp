/// engine/lanes.hpp: the shared lane/seed substrate.
///
/// for_lanes is the one dispatch under the estimator, the lab runner, the
/// soak campaign, and DetectionEngine::run_batch, so its partition
/// properties ARE the byte-identity contract: every unit visited exactly
/// once, lanes contiguous and ordered, the uniform path reproducing
/// lane_range exactly, and the weighted path never producing an empty lane.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/lanes.hpp"
#include "util/thread_pool.hpp"

namespace decycle::engine {
namespace {

/// Runs for_lanes and returns per-unit visit counts plus the observed lane
/// blocks, validated for contiguity.
struct Coverage {
  std::vector<int> visits;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;  // by lane index
};

Coverage cover(util::ThreadPool* pool, std::size_t count, const std::uint64_t* weights) {
  Coverage out;
  out.visits.assign(count, 0);
  out.blocks.assign(std::max<std::size_t>(lane_count(pool, count), 1), {0, 0});
  std::mutex mu;
  for_lanes(pool, count, weights, [&](std::size_t lane, std::size_t begin, std::size_t end) {
    const std::lock_guard<std::mutex> lock(mu);
    out.blocks.at(lane) = {begin, end};
    for (std::size_t i = begin; i < end; ++i) ++out.visits.at(i);
  });
  return out;
}

void expect_exact_cover(const Coverage& c, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(c.visits[i], 1) << "unit " << i;
  }
  // Blocks sorted by lane index must tile [0, count) without gaps.
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : c.blocks) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LE(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, count);
}

TEST(Lanes, LaneRangeTilesExactly) {
  for (const std::size_t total : {1u, 7u, 16u, 97u}) {
    for (const std::size_t lanes : {1u, 2u, 3u, 8u}) {
      if (lanes > total) continue;
      std::size_t prev_end = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const auto [begin, end] = lane_range(total, lane, lanes);
        EXPECT_EQ(begin, prev_end);
        prev_end = end;
      }
      EXPECT_EQ(prev_end, total);
    }
  }
}

TEST(Lanes, LaneCountPolicy) {
  EXPECT_EQ(lane_count(nullptr, 100), 1u);
  util::ThreadPool pool(4);
  EXPECT_EQ(lane_count(&pool, 100), 4u);
  EXPECT_EQ(lane_count(&pool, 2), 2u);   // never more lanes than units
  EXPECT_EQ(lane_count(&pool, 0), 1u);   // clamped to at least one
}

TEST(Lanes, SerialWithoutPoolUsesOneLane) {
  const Coverage c = cover(nullptr, 13, nullptr);
  expect_exact_cover(c, 13);
  EXPECT_EQ(c.blocks.size(), 1u);
  EXPECT_EQ(c.blocks[0], (std::pair<std::size_t, std::size_t>{0, 13}));
}

TEST(Lanes, UniformMatchesLaneRange) {
  util::ThreadPool pool(3);
  const std::size_t count = 17;
  const Coverage c = cover(&pool, count, nullptr);
  expect_exact_cover(c, count);
  ASSERT_EQ(c.blocks.size(), 3u);
  for (std::size_t lane = 0; lane < 3; ++lane) {
    EXPECT_EQ(c.blocks[lane], lane_range(count, lane, 3));
  }
}

TEST(Lanes, ZeroUnitsNeverInvokesTheCallback) {
  util::ThreadPool pool(2);
  bool invoked = false;
  for_lanes(&pool, 0, nullptr, [&](std::size_t, std::size_t, std::size_t) { invoked = true; });
  EXPECT_FALSE(invoked);
}

TEST(Lanes, WeightedCoversEveryUnitOnceWithNonEmptyLanes) {
  util::ThreadPool pool(4);
  // Heavily skewed weights: unit 0 dwarfs the rest.
  std::vector<std::uint64_t> weights(23, 1);
  weights[0] = 10'000;
  const Coverage c = cover(&pool, weights.size(), weights.data());
  expect_exact_cover(c, weights.size());
  for (const auto& [begin, end] : c.blocks) EXPECT_LT(begin, end) << "empty lane";
}

TEST(Lanes, WeightedToleratesZeroWeights) {
  util::ThreadPool pool(3);
  const std::vector<std::uint64_t> weights(9, 0);  // all zero: treated as uniform cost
  const Coverage c = cover(&pool, weights.size(), weights.data());
  expect_exact_cover(c, weights.size());
}

TEST(Lanes, WeightedIsDeterministicAcrossRuns) {
  util::ThreadPool pool(4);
  std::vector<std::uint64_t> weights;
  for (std::size_t i = 0; i < 31; ++i) weights.push_back((i * 7919) % 13);
  const Coverage a = cover(&pool, weights.size(), weights.data());
  const Coverage b = cover(&pool, weights.size(), weights.data());
  EXPECT_EQ(a.blocks, b.blocks);
}

}  // namespace
}  // namespace decycle::engine
