/// engine/graph_store.hpp + engine/session_pool.hpp — the epoch/purge
/// contract under the concurrency the incremental service creates.
///
/// IncrementalSession::apply is the first real mutation path wired into
/// GraphStore::bump_epoch: every mutating batch bumps the pinned graph's
/// epoch and purges its cached sessions while query lanes may be leasing
/// concurrently. The safety property: an in-flight Lease owns its session
/// outright — it completes on the old epoch untouched by any bump or purge —
/// while leases taken after a bump key on the new epoch, never match a
/// stale session, and rebuild. The stress suites here run under TSan (the
/// CI lane selects them by the "Incremental" name) with writers hammering
/// bump_epoch+purge against reader lanes leasing and releasing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "congest/comm_model.hpp"
#include "engine/graph_store.hpp"
#include "engine/session_pool.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"

namespace decycle::engine {
namespace {

constexpr graph::Vertex kRing = 16;

void intern_ring(GraphStore& store, const char* name) {
  (void)store.intern(name, graph::cycle(kRing), graph::IdAssignment::identity(kRing));
}

TEST(IncrementalEpoch, InFlightLeaseCompletesOnTheOldEpoch) {
  GraphStore store;
  intern_ring(store, "stream");
  const PinnedGraphPtr pin = store.require("stream");
  SessionPool pool(4);

  SessionPool::Lease held = pool.lease(pin, congest::CommModel::congest());
  const std::uint64_t old_epoch = held.key().epoch;

  // Mutation while the lease is in flight: bump + purge (the apply() path).
  const std::uint64_t new_epoch = store.bump_epoch("stream");
  pool.purge(pin->hash);
  EXPECT_GT(new_epoch, old_epoch);

  // The held lease is untouched: same old-epoch key, simulator fully usable.
  EXPECT_EQ(held.key().epoch, old_epoch);
  EXPECT_EQ(held.sim().graph().num_vertices(), kRing);
  held.release();

  // A post-bump lease keys on the new epoch: the released old-epoch session
  // can never match again, so this is a rebuild, not a stale hit.
  SessionPool::Lease fresh = pool.lease(pin, congest::CommModel::congest());
  EXPECT_FALSE(fresh.cached());
  EXPECT_EQ(fresh.key().epoch, new_epoch);
}

TEST(IncrementalEpochStress, ConcurrentBumpPurgeVersusLeases) {
  GraphStore store;
  intern_ring(store, "stream");
  const PinnedGraphPtr pin = store.require("stream");
  SessionPool pool(8);

  constexpr int kReaders = 4;
  constexpr int kLeasesPerReader = 150;
  constexpr int kBumps = 150;
  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> stale_hits{0};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kLeasesPerReader; ++i) {
        const std::uint64_t epoch_floor = pin->epoch.load(std::memory_order_acquire);
        SessionPool::Lease lease = pool.lease(pin, congest::CommModel::congest());
        // The leased session's epoch can never predate what this thread
        // already observed: purge removed older idle sessions and the key
        // folds the epoch, so a match at an older epoch is impossible.
        if (lease.key().epoch < epoch_floor) stale_hits.fetch_add(1);
        // Touch the simulator: TSan flags any unsynchronized overlap with a
        // concurrent purge destroying sessions.
        if (lease.sim().graph().num_vertices() != kRing) stale_hits.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < kBumps; ++i) {
      (void)store.bump_epoch("stream");
      pool.purge(pin->hash);
    }
  });

  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(stale_hits.load(), 0u);

  // Quiesced: one final bump retires every surviving idle session, so the
  // next lease must be a rebuild at the final epoch.
  const std::uint64_t final_epoch = store.bump_epoch("stream");
  SessionPool::Lease lease = pool.lease(pin, congest::CommModel::congest());
  EXPECT_FALSE(lease.cached());
  EXPECT_EQ(lease.key().epoch, final_epoch);
  const SessionStats stats = pool.stats();
  EXPECT_EQ(stats.purges, static_cast<std::uint64_t>(kBumps));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kReaders * kLeasesPerReader) + 1);
}

TEST(IncrementalEpochStress, ConcurrentLeasesNeverShareASession) {
  // Two lanes lease the same key simultaneously: each must get its own
  // session (the second is a concurrent miss, not a shared hit).
  GraphStore store;
  intern_ring(store, "stream");
  const PinnedGraphPtr pin = store.require("stream");
  SessionPool pool(8);

  constexpr int kLanes = 4;
  std::atomic<bool> start{false};
  std::atomic<int> overlap_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kLanes);
  for (int l = 0; l < kLanes; ++l) {
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 100; ++i) {
        SessionPool::Lease a = pool.lease(pin, congest::CommModel::congest());
        SessionPool::Lease b = pool.lease(pin, congest::CommModel::congest());
        if (&a.sim() == &b.sim()) overlap_errors.fetch_add(1);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(overlap_errors.load(), 0);
}

}  // namespace
}  // namespace decycle::engine
