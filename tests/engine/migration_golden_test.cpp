/// Migration byte-identity: the engine-backed lab runner and soak campaign
/// must reproduce the checked-in goldens bit-for-bit.
///
/// These are the same documents nightly CI diffs through the CLIs
/// (ci/run_nightly_matrix.sh, decycle_soak) — regenerated here in-process so
/// the refactor onto DetectionEngine/SessionPool is gated by `ctest` alone,
/// at 1/3/8 threads and with simulator reuse on and off. Any divergence in
/// lane partitioning, session reuse, or seed derivation shows up as a byte
/// diff against ci/golden/.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lab/runner.hpp"
#include "lab/scenario.hpp"
#include "soak/campaign.hpp"
#include "util/thread_pool.hpp"

namespace decycle {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// First line of the first divergence, for a readable failure message.
std::string first_diff(const std::string& a, const std::string& b) {
  if (a == b) return "";
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t pos = 0;
  while (pos < n && a[pos] == b[pos]) ++pos;
  std::size_t line = 1;
  for (std::size_t i = 0; i < pos; ++i) line += a[i] == '\n' ? 1 : 0;
  std::ostringstream out;
  out << "first divergence at byte " << pos << " (line " << line << "), sizes " << a.size()
      << " vs " << b.size();
  return out.str();
}

/// The canonical nightly matrix — MUST stay in lockstep with
/// ci/run_nightly_matrix.sh, which is the only other place these arguments
/// are spelled out.
lab::ScenarioSpec nightly_spec() {
  return lab::ScenarioSpec::parse_tokens({
      "family=cycle,planted,layered,ckfree_highgirth,ckfree_forest",
      "k=4,5",
      "n=24",
      "eps=0.125",
      "adversary=none,uniform:0.25",
      "algo=tester,edge_checker,threshold,color_coding",
      "budget=8",
      "track=4",
      "trials=12",
      "seed=2026",
  });
}

std::string run_nightly(std::size_t threads, bool reuse) {
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  lab::LabOptions opts;
  opts.pool = pool.get();
  opts.reuse_simulators = reuse;
  const lab::LabRunner runner(opts);
  const lab::ScenarioSpec spec = nightly_spec();
  const std::vector<lab::CellResult> results = runner.run_matrix(spec.expand());
  return lab::matrix_jsonl(spec, results, /*include_timing=*/false);
}

std::string run_soak(std::size_t threads) {
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  soak::CampaignOptions opts;  // seed=1, shrink=true: the golden's settings
  opts.instances = 200;
  opts.pool = pool.get();
  return soak::run_campaign(opts).jsonl;
}

class NightlyGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NightlyGolden, ByteIdenticalWithSessionReuse) {
  const std::string golden = read_file(DECYCLE_REPO_DIR "/ci/golden/nightly_matrix.jsonl");
  const std::string got = run_nightly(GetParam(), /*reuse=*/true);
  EXPECT_EQ(got, golden) << first_diff(got, golden);
}

TEST_P(NightlyGolden, ByteIdenticalWithFreshSimulators) {
  const std::string golden = read_file(DECYCLE_REPO_DIR "/ci/golden/nightly_matrix.jsonl");
  const std::string got = run_nightly(GetParam(), /*reuse=*/false);
  EXPECT_EQ(got, golden) << first_diff(got, golden);
}

class SoakGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SoakGolden, ByteIdenticalCampaignLog) {
  const std::string golden = read_file(DECYCLE_REPO_DIR "/ci/golden/soak_campaign_200.jsonl");
  const std::string got = run_soak(GetParam());
  EXPECT_EQ(got, golden) << first_diff(got, golden);
}

INSTANTIATE_TEST_SUITE_P(Threads, NightlyGolden, ::testing::Values(1, 3, 8),
                         [](const auto& info) { return "t" + std::to_string(info.param); });
INSTANTIATE_TEST_SUITE_P(Threads, SoakGolden, ::testing::Values(1, 3, 8),
                         [](const auto& info) { return "t" + std::to_string(info.param); });

}  // namespace
}  // namespace decycle
