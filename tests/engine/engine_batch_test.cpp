/// engine/engine.hpp: DetectionEngine batch execution.
///
/// The contract under test: run_batch returns verdicts in submission order,
/// bit-identical to one-at-a-time execution on fresh simulators (run_fresh)
/// for any thread count, any cost weighting, and with the session cache on
/// or off. Plus the serial typed-counter reduction (reduce_counters) and
/// the capability gates.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "congest/comm_model.hpp"
#include "core/detector.hpp"
#include "engine/engine.hpp"
#include "engine/lanes.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace decycle::engine {
namespace {

PinnedGraphPtr pinned_wheel(graph::Vertex n) {
  graph::Graph g = graph::wheel(n);
  graph::IdAssignment ids = graph::IdAssignment::identity(n);
  return pin(std::move(g), std::move(ids));
}

std::vector<Query> tester_batch(const core::Detector& tester, std::size_t count,
                                std::uint64_t base_seed) {
  std::vector<Query> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries[i].detector = &tester;
    queries[i].options.k = 5;
    queries[i].options.epsilon = 0.25;
    queries[i].options.seed = trial_seed(base_seed, i);
    queries[i].options.repetitions = 2;
  }
  return queries;
}

bool verdicts_equal(const core::Verdict& a, const core::Verdict& b) {
  return a.accepted == b.accepted && a.rejecting_nodes == b.rejecting_nodes &&
         a.witness == b.witness && a.repetitions == b.repetitions && a.overflow == b.overflow &&
         a.truncated == b.truncated && a.max_bundle_sequences == b.max_bundle_sequences &&
         a.stats.rounds_executed == b.stats.rounds_executed &&
         a.stats.total_messages == b.stats.total_messages &&
         a.stats.total_bits == b.stats.total_bits && a.counters == b.counters;
}

TEST(DetectionEngine, BatchMatchesFreshRunsInSubmissionOrder) {
  const core::Detector& tester = core::DetectorRegistry::builtin().require("tester");
  const PinnedGraphPtr g = pinned_wheel(24);
  const std::vector<Query> queries = tester_batch(tester, 12, 77);

  const DetectionEngine eng;
  const std::vector<core::Verdict> batch = eng.run_batch(g, queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const core::Verdict fresh = tester.run_fresh(g->graph, g->ids, queries[i].options);
    EXPECT_TRUE(verdicts_equal(batch[i], fresh)) << "query " << i;
  }
}

TEST(DetectionEngine, ByteIdenticalAcrossThreadCountsWeightsAndCaching) {
  const core::Detector& tester = core::DetectorRegistry::builtin().require("tester");
  const PinnedGraphPtr g = pinned_wheel(20);
  std::vector<Query> queries = tester_batch(tester, 17, 99);

  const DetectionEngine serial;
  const std::vector<core::Verdict> baseline = serial.run_batch(g, queries);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    const DetectionEngine eng{EngineOptions{.pool = &pool}};
    const std::vector<core::Verdict> got = eng.run_batch(g, queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(verdicts_equal(got[i], baseline[i])) << threads << " threads, query " << i;
    }
  }
  // Skewed cost weights change the partition, never the verdicts.
  for (std::size_t i = 0; i < queries.size(); ++i) queries[i].weight = 1 + (i % 5) * 10;
  util::ThreadPool pool(4);
  const DetectionEngine weighted{EngineOptions{.pool = &pool}};
  const std::vector<core::Verdict> got = weighted.run_batch(g, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(verdicts_equal(got[i], baseline[i])) << "weighted, query " << i;
  }
  // Cache off: every query on a fresh build — same bytes (the reuse
  // contract read backwards).
  const DetectionEngine uncached{EngineOptions{.pool = nullptr, .cache_sessions = false}};
  const std::vector<core::Verdict> cold = uncached.run_batch(g, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(verdicts_equal(cold[i], baseline[i])) << "uncached, query " << i;
  }
  EXPECT_EQ(uncached.session_stats().misses, 0u);  // the cache was never consulted
}

TEST(DetectionEngine, HomogeneousBatchLeasesOncePerLane) {
  const core::Detector& tester = core::DetectorRegistry::builtin().require("tester");
  const PinnedGraphPtr g = pinned_wheel(16);
  const DetectionEngine eng;  // no pool: one lane
  (void)eng.run_batch(g, tester_batch(tester, 10, 5));
  const SessionStats s = eng.session_stats();
  EXPECT_EQ(s.misses, 1u);  // one lease for the whole lane, not one per query
  EXPECT_EQ(s.hits, 0u);
  // A second batch on the same content is a warm start.
  (void)eng.run_batch(g, tester_batch(tester, 10, 6));
  EXPECT_EQ(eng.session_stats().hits, 1u);
}

TEST(DetectionEngine, RunOneAndRunUncachedAgree) {
  const core::Detector& tester = core::DetectorRegistry::builtin().require("tester");
  const PinnedGraphPtr g = pinned_wheel(18);
  Query q = tester_batch(tester, 1, 123)[0];
  const DetectionEngine eng;
  const core::Verdict a = eng.run_one(g, q);
  const core::Verdict b = DetectionEngine::run_uncached(g->graph, g->ids, q);
  EXPECT_TRUE(verdicts_equal(a, b));
}

TEST(DetectionEngine, RejectsModelTheDetectorCannotRun) {
  const core::Detector& tester = core::DetectorRegistry::builtin().require("tester");
  const PinnedGraphPtr g = pinned_wheel(12);
  Query q = tester_batch(tester, 1, 1)[0];
  q.model = &congest::CommModel::clique();  // the tester is congest-only
  const DetectionEngine eng;
  EXPECT_THROW((void)eng.run_one(g, q), util::CheckError);
}

TEST(DetectionEngine, EmptyBatchAndMissingDetectorFailFast) {
  const PinnedGraphPtr g = pinned_wheel(12);
  const DetectionEngine eng;
  EXPECT_TRUE(eng.run_batch(g, {}).empty());
  Query q;  // detector left null
  EXPECT_THROW((void)eng.run_one(g, q), util::CheckError);
}

TEST(ReduceCounters, FoldsSumAndMaxPerCounterKind) {
  // The threshold detector declares a mixed-kind counter table (sums plus
  // peak_tracked as kMax) — drive it for real and check the fold against a
  // hand reduction.
  const core::Detector& threshold = core::DetectorRegistry::builtin().require("threshold");
  ASSERT_FALSE(threshold.counters().empty());
  const PinnedGraphPtr g = pinned_wheel(20);
  std::vector<Query> queries(6);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].detector = &threshold;
    queries[i].options.k = 4;
    queries[i].options.seed = trial_seed(31, i);
  }
  const DetectionEngine eng;
  const std::vector<core::Verdict> verdicts = eng.run_batch(g, queries);
  const std::vector<std::uint64_t> reduced = reduce_counters(threshold, verdicts);

  const std::span<const core::CounterDef> defs = threshold.counters();
  ASSERT_EQ(reduced.size(), defs.size());
  for (std::size_t c = 0; c < defs.size(); ++c) {
    std::uint64_t expect = 0;
    for (const core::Verdict& v : verdicts) {
      expect = defs[c].kind == core::CounterKind::kSum ? expect + v.counters[c]
                                                       : std::max(expect, v.counters[c]);
    }
    EXPECT_EQ(reduced[c], expect) << defs[c].name;
  }
}

TEST(SharedEngine, IsProcessWideAndCachesAcrossCalls) {
  DetectionEngine& a = shared_engine();
  DetectionEngine& b = shared_engine();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace decycle::engine
