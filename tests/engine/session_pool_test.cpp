/// engine/session_pool.hpp: capacity-bounded LRU session cache with
/// lane-confined leases.
///
/// The safety property under test everywhere here: eviction touches idle
/// sessions only. A leased session is owned by its lane — the pool has
/// forgotten it — so no eviction, purge, or capacity pressure can free a
/// Simulator mid-run (lease-while-evicted safety).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "congest/comm_model.hpp"
#include "engine/graph_store.hpp"
#include "engine/session_pool.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"

namespace decycle::engine {
namespace {

PinnedGraphPtr pinned_ring(graph::Vertex n) {
  graph::Graph g = graph::cycle(n);
  graph::IdAssignment ids = graph::IdAssignment::identity(n);
  return pin(std::move(g), std::move(ids));
}

TEST(SessionPool, MissThenHitOnSameKey) {
  SessionPool pool(4);
  const PinnedGraphPtr g = pinned_ring(12);
  {
    SessionPool::Lease lease = pool.lease(g, congest::CommModel::congest());
    EXPECT_FALSE(lease.cached());
    EXPECT_TRUE(static_cast<bool>(lease));
  }  // released -> idle
  EXPECT_EQ(pool.idle_count(), 1u);
  {
    SessionPool::Lease lease = pool.lease(g, congest::CommModel::congest());
    EXPECT_TRUE(lease.cached());
  }
  const SessionStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(SessionPool, DistinctKeysNeverShareSessions) {
  SessionPool pool(8);
  const PinnedGraphPtr g = pinned_ring(12);
  { (void)pool.lease(g, congest::CommModel::congest()); }
  // Different model and different delivery are different keys: all misses.
  { (void)pool.lease(g, congest::CommModel::clique()); }
  {
    (void)pool.lease(g, congest::CommModel::congest(), congest::DeliveryMode::kLegacy);
  }
  const SessionStats s = pool.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(pool.idle_count(), 3u);
}

TEST(SessionPool, EpochBumpRetiresCachedSessions) {
  SessionPool pool(4);
  const PinnedGraphPtr g = pinned_ring(12);
  { (void)pool.lease(g, congest::CommModel::congest()); }
  g->epoch.fetch_add(1);
  SessionPool::Lease lease = pool.lease(g, congest::CommModel::congest());
  EXPECT_FALSE(lease.cached());  // old-epoch session never matches again
}

TEST(SessionPool, LruEvictionUnderMixedKeys) {
  SessionPool pool(2);  // capacity bounds idle sessions
  const PinnedGraphPtr a = pinned_ring(8);
  const PinnedGraphPtr b = pinned_ring(9);
  const PinnedGraphPtr c = pinned_ring(10);
  { (void)pool.lease(a, congest::CommModel::congest()); }  // idle: a
  { (void)pool.lease(b, congest::CommModel::congest()); }  // idle: a, b
  { (void)pool.lease(c, congest::CommModel::congest()); }  // a is LRU -> evicted
  EXPECT_EQ(pool.idle_count(), 2u);
  EXPECT_EQ(pool.stats().evictions, 1u);
  // b and c were kept, a was not.
  EXPECT_TRUE(pool.lease(b, congest::CommModel::congest()).cached());
  EXPECT_TRUE(pool.lease(c, congest::CommModel::congest()).cached());
  EXPECT_FALSE(pool.lease(a, congest::CommModel::congest()).cached());
}

TEST(SessionPool, TouchRefreshesLruOrder) {
  SessionPool pool(2);
  const PinnedGraphPtr a = pinned_ring(8);
  const PinnedGraphPtr b = pinned_ring(9);
  const PinnedGraphPtr c = pinned_ring(10);
  { (void)pool.lease(a, congest::CommModel::congest()); }
  { (void)pool.lease(b, congest::CommModel::congest()); }
  { (void)pool.lease(a, congest::CommModel::congest()); }  // touch a: b is now LRU
  { (void)pool.lease(c, congest::CommModel::congest()); }  // evicts b
  EXPECT_TRUE(pool.lease(a, congest::CommModel::congest()).cached());
  EXPECT_FALSE(pool.lease(b, congest::CommModel::congest()).cached());
}

TEST(SessionPool, CapacityZeroCachesNothing) {
  SessionPool pool(0);
  const PinnedGraphPtr g = pinned_ring(8);
  { (void)pool.lease(g, congest::CommModel::congest()); }
  EXPECT_EQ(pool.idle_count(), 0u);
  EXPECT_FALSE(pool.lease(g, congest::CommModel::congest()).cached());
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(SessionPool, LeasedSessionSurvivesEvictionPressureAndPurge) {
  SessionPool pool(1);
  const PinnedGraphPtr g = pinned_ring(16);
  SessionPool::Lease held = pool.lease(g, congest::CommModel::congest());
  // Pressure: churn other keys through the capacity-1 idle cache, and purge
  // the held session's graph hash outright. Neither may touch the lease —
  // the pool no longer owns it.
  for (graph::Vertex n = 8; n < 12; ++n) {
    (void)pool.lease(pinned_ring(n), congest::CommModel::congest());
  }
  pool.purge(g->hash);
  // The leased simulator is fully usable after all that.
  EXPECT_EQ(held.sim().graph().num_vertices(), 16u);
  EXPECT_EQ(held.key().graph_hash, g->hash);
  held.release();  // and returns to the pool without incident
  EXPECT_GE(pool.idle_count(), 1u);
}

TEST(SessionPool, PurgeDropsEveryIdleSessionOfTheGraph) {
  SessionPool pool(8);
  const PinnedGraphPtr g = pinned_ring(12);
  const PinnedGraphPtr other = pinned_ring(20);
  { (void)pool.lease(g, congest::CommModel::congest()); }
  { (void)pool.lease(g, congest::CommModel::clique()); }
  { (void)pool.lease(other, congest::CommModel::congest()); }
  EXPECT_EQ(pool.idle_count(), 3u);
  pool.purge(g->hash);
  EXPECT_EQ(pool.idle_count(), 1u);  // only `other` remains
  EXPECT_TRUE(pool.lease(other, congest::CommModel::congest()).cached());
  // Purge counters are distinct from capacity evictions (--engine-stats
  // reports both): one purge() call, two idle sessions of g destroyed.
  const SessionStats s = pool.stats();
  EXPECT_EQ(s.purges, 1u);
  EXPECT_EQ(s.purged_sessions, 2u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(SessionPool, ReleaseIsIdempotentAndMoveSafe) {
  SessionPool pool(4);
  const PinnedGraphPtr g = pinned_ring(8);
  SessionPool::Lease a = pool.lease(g, congest::CommModel::congest());
  a.release();
  a.release();  // second release is a no-op
  EXPECT_EQ(pool.idle_count(), 1u);
  SessionPool::Lease b = pool.lease(g, congest::CommModel::congest());
  SessionPool::Lease c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(static_cast<bool>(c));
  c.release();
  EXPECT_EQ(pool.idle_count(), 1u);
}

/// Concurrent lease/release stress across mixed keys — run under TSan via
/// `ctest -L engine` in the sanitize lane. Lock discipline, LRU bookkeeping,
/// and the lease-ownership handoff must all be race-free.
TEST(SessionPool, ConcurrentLeaseStress) {
  SessionPool pool(4);
  std::vector<PinnedGraphPtr> graphs;
  for (graph::Vertex n = 8; n < 14; ++n) graphs.push_back(pinned_ring(n));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &graphs, t] {
      for (int i = 0; i < 50; ++i) {
        const PinnedGraphPtr& g = graphs[(t + i) % graphs.size()];
        SessionPool::Lease lease = pool.lease(g, congest::CommModel::congest());
        // Touch the leased simulator: concurrent use of *distinct* sessions
        // must be safe by construction.
        EXPECT_EQ(lease.sim().graph().num_vertices(), g->graph.num_vertices());
        if (i % 7 == 0) pool.purge(g->hash);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const SessionStats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, 8u * 50u);
  EXPECT_LE(pool.idle_count(), pool.capacity());
}

}  // namespace
}  // namespace decycle::engine
