/// engine/graph_store.hpp: content-addressed pinned graphs + epochs.
#include <gtest/gtest.h>

#include "engine/graph_store.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/check.hpp"

namespace decycle::engine {
namespace {

graph::Graph ring(graph::Vertex n) { return graph::cycle(n); }

graph::IdAssignment ident(const graph::Graph& g) {
  return graph::IdAssignment::identity(g.num_vertices());
}

TEST(StructuralHash, IdenticalContentHashesEqual) {
  const graph::Graph a = ring(16);
  const graph::Graph b = ring(16);
  EXPECT_EQ(structural_hash(a, ident(a)), structural_hash(b, ident(b)));
}

TEST(StructuralHash, EdgeVertexAndIdChangesAllShift) {
  const graph::Graph base = ring(16);
  const std::uint64_t h0 = structural_hash(base, ident(base));

  EXPECT_NE(structural_hash(ring(17), ident(ring(17))), h0);

  graph::GraphBuilder b(16);
  for (const graph::Edge& e : base.edges()) b.add_edge(e.first, e.second);
  b.add_edge(0, 8);  // one chord
  const graph::Graph chord = b.build();
  EXPECT_NE(structural_hash(chord, ident(chord)), h0);

  // Same topology, different node ids.
  std::vector<graph::NodeId> ids(16);
  for (graph::Vertex v = 0; v < 16; ++v) ids[v] = 1000 + v;
  EXPECT_NE(structural_hash(base, graph::IdAssignment::from_ids(std::move(ids))), h0);
}

TEST(Pin, ComputesHashAndStartsAtEpochZero) {
  const graph::Graph g = ring(8);
  const PinnedGraphPtr p = pin(g, ident(g));
  EXPECT_EQ(p->hash, structural_hash(g, ident(g)));
  EXPECT_EQ(p->epoch.load(), 0u);
  EXPECT_EQ(p->graph.num_vertices(), 8u);
}

TEST(Pin, AcceptsPrecomputedContentHash) {
  const graph::Graph g = ring(8);
  const PinnedGraphPtr p = pin(g, ident(g), 0xabcdULL);
  EXPECT_EQ(p->hash, 0xabcdULL);
}

TEST(GraphStore, InternFindRequireRoundTrip) {
  GraphStore store;
  const graph::Graph g = ring(12);
  const PinnedGraphPtr p = store.intern("ring12", g, ident(g));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find("ring12"), p);
  EXPECT_EQ(store.require("ring12"), p);
  EXPECT_EQ(store.find("nope"), nullptr);
  EXPECT_THROW((void)store.require("nope"), util::CheckError);
}

TEST(GraphStore, RequireNamesTheStoredGraphs) {
  GraphStore store;
  const graph::Graph g = ring(6);
  (void)store.intern("alpha", g, ident(g));
  try {
    (void)store.require("missing");
    FAIL() << "require should throw";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos);
  }
}

TEST(GraphStore, ReinternReplacesButOldPinSurvives) {
  GraphStore store;
  const graph::Graph small = ring(6);
  const graph::Graph big = ring(30);
  const PinnedGraphPtr first = store.intern("g", small, ident(small));
  const PinnedGraphPtr second = store.intern("g", big, ident(big));
  EXPECT_EQ(store.find("g"), second);
  EXPECT_NE(first, second);
  // The replaced pin stays fully usable for anyone still co-owning it.
  EXPECT_EQ(first->graph.num_vertices(), 6u);
}

TEST(GraphStore, BumpEpochIsMonotonicAndVisibleThroughThePin) {
  GraphStore store;
  const graph::Graph g = ring(10);
  const PinnedGraphPtr p = store.intern("g", g, ident(g));
  EXPECT_EQ(store.bump_epoch("g"), 1u);
  EXPECT_EQ(store.bump_epoch("g"), 2u);
  EXPECT_EQ(p->epoch.load(), 2u);
  EXPECT_THROW((void)store.bump_epoch("nope"), util::CheckError);
}

TEST(GraphStore, NamesAreSortedLexicographically) {
  GraphStore store;
  const graph::Graph g = ring(4);
  (void)store.intern("zeta", g, ident(g));
  (void)store.intern("alpha", g, ident(g));
  (void)store.intern("mid", g, ident(g));
  EXPECT_EQ(store.names(), (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace decycle::engine
