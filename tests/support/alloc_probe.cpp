#include "support/alloc_probe.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (std::max<std::size_t>(size, 1) + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, padded)) return p;
  throw std::bad_alloc{};
}

}  // namespace

namespace decycle::testsupport {

std::uint64_t allocation_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

bool allocation_probe_active() noexcept { return true; }

}  // namespace decycle::testsupport

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

// Over-aligned forms: libstdc++'s defaults do not route through the plain
// operator new, so they must be replaced too or aligned allocations become
// invisible to the zero-allocation assertions.
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
