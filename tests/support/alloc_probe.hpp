/// \file alloc_probe.hpp
/// \brief Process-wide heap allocation counter for zero-allocation tests.
///
/// Binaries that link the companion alloc_probe.cpp get global operator
/// new/delete replaced with counting versions. Tests snapshot the counter
/// around a region that must not allocate (e.g. the simulator's steady-state
/// delivery path) and assert the delta is zero. The counter is atomic and
/// counts every thread's allocations, so regions under test must keep their
/// own threads allocation-free too — which is exactly the property the
/// simulator guarantees.
#pragma once

#include <cstdint>

namespace decycle::testsupport {

/// Total number of heap allocations (operator new calls) since process
/// start. Monotonic; never reset. Only binaries that link alloc_probe.cpp
/// may call this.
[[nodiscard]] std::uint64_t allocation_count() noexcept;

/// True when the counting operator new/delete replacement is active.
[[nodiscard]] bool allocation_probe_active() noexcept;

}  // namespace decycle::testsupport
