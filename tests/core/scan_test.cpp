#include "core/scan.hpp"

#include <gtest/gtest.h>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::IdAssignment;

ScanResult run_scan(const Graph& g, unsigned k, bool stop_at_first = true,
                    util::ThreadPool* pool = nullptr) {
  ScanOptions opt;
  opt.detect.k = k;
  opt.stop_at_first = stop_at_first;
  opt.pool = pool;
  return exhaustive_ck_scan(g, IdAssignment::identity(g.num_vertices()), opt);
}

TEST(Scan, ExactOnRandomGraphs) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::erdos_renyi_gnm(14, 22, rng);
    for (const unsigned k : {3u, 4u, 5u, 6u}) {
      const auto result = run_scan(g, k);
      EXPECT_EQ(result.found, graph::has_cycle(g, k)) << "k=" << k << " trial=" << trial;
      if (result.found) {
        EXPECT_TRUE(graph::validate_cycle(g, result.witness));
      }
    }
  }
}

TEST(Scan, FindsTheSingleHiddenCycle) {
  // No farness, no randomness: a needle in a big acyclic haystack.
  util::Rng rng(2);
  graph::PlantedOptions popt;
  popt.k = 6;
  popt.num_cycles = 1;
  popt.padding_leaves = 200;
  const auto inst = graph::planted_cycles_instance(popt, rng);
  const auto result = run_scan(inst.graph, 6);
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(graph::validate_cycle(inst.graph, result.witness));
}

TEST(Scan, EarlyExitStopsCheckingEdges) {
  const Graph g = graph::complete(10);
  const auto eager = run_scan(g, 5, /*stop_at_first=*/true);
  const auto full = run_scan(g, 5, /*stop_at_first=*/false);
  EXPECT_TRUE(eager.found);
  EXPECT_TRUE(full.found);
  EXPECT_LT(eager.edges_checked, full.edges_checked);
  EXPECT_EQ(full.edges_checked, g.num_edges());
}

TEST(Scan, ScheduleRoundsFormula) {
  const Graph g = graph::path(12);  // no cycles: full sweep
  const auto result = run_scan(g, 7);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.edges_checked, g.num_edges());
  EXPECT_EQ(result.schedule_rounds, g.num_edges() * (7 / 2 + 1));
}

TEST(Scan, ParallelFullSweepMatchesSerial) {
  util::Rng rng(3);
  const Graph g = graph::random_connected(30, 45, rng);
  const auto serial = run_scan(g, 5, /*stop_at_first=*/false);
  util::ThreadPool pool(4);
  const auto parallel = run_scan(g, 5, /*stop_at_first=*/false, &pool);
  EXPECT_EQ(serial.found, parallel.found);
  EXPECT_EQ(serial.total_bits, parallel.total_bits);
  EXPECT_EQ(serial.witness, parallel.witness);
}

TEST(Scan, EmptyGraph) {
  const Graph g = Graph::from_edges(4, {});
  const auto result = run_scan(g, 4);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.edges_checked, 0u);
}

}  // namespace
}  // namespace decycle::core
