#include "core/cycle_detector.hpp"

#include <gtest/gtest.h>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

EdgeDetectionResult run_detector(const Graph& g, const IdAssignment& ids, unsigned k,
                                 graph::Edge e, PruningMode mode = PruningMode::kRepresentative) {
  EdgeDetectionOptions opt;
  opt.detect.k = k;
  opt.detect.pruning = mode;
  return detect_cycle_through_edge(g, ids, e, opt);
}

TEST(EdgeChecker, DetectsPureCyclesAllK) {
  for (unsigned k = 3; k <= 11; ++k) {
    const Graph g = graph::cycle(k);
    const IdAssignment ids = IdAssignment::identity(k);
    for (const auto& e : g.edges()) {
      const auto result = run_detector(g, ids, k, e);
      ASSERT_TRUE(result.found) << "k=" << k;
      EXPECT_EQ(result.witness.size(), k);
      EXPECT_TRUE(graph::validate_cycle(g, result.witness));
      EXPECT_FALSE(result.overflow);
    }
  }
}

TEST(EdgeChecker, NoFalsePositivesOnPaths) {
  const Graph g = graph::path(12);
  const IdAssignment ids = IdAssignment::identity(12);
  for (unsigned k = 3; k <= 8; ++k) {
    for (const auto& e : g.edges()) {
      EXPECT_FALSE(run_detector(g, ids, k, e).found);
    }
  }
}

TEST(EdgeChecker, WrongLengthCycleNotReported) {
  const Graph g = graph::cycle(8);
  const IdAssignment ids = IdAssignment::identity(8);
  for (const unsigned k : {3u, 4u, 5u, 6u, 7u, 9u, 10u}) {
    EXPECT_FALSE(run_detector(g, ids, k, {0, 1}).found) << "k=" << k;
  }
}

TEST(EdgeChecker, RoundComplexityIsHalfKPlusOne) {
  for (unsigned k = 3; k <= 9; ++k) {
    const Graph g = graph::cycle(k);
    const IdAssignment ids = IdAssignment::identity(k);
    const auto result = run_detector(g, ids, k, {0, 1});
    EXPECT_LE(result.stats.rounds_executed, static_cast<std::uint64_t>(k / 2) + 1) << "k=" << k;
  }
}

TEST(EdgeChecker, SingleCycleNoFarnessNeeded) {
  // Lemma 2 commentary: even a single k-cycle through e is found — no ε-far
  // assumption. Bury one C7 inside a big tree.
  util::Rng rng(5);
  graph::GraphBuilder b;
  const Graph tree = graph::random_tree(300, rng);
  for (const auto& [u, v] : tree.edges()) b.add_edge(u, v);
  // A C7 hanging off vertex 100: vertices 300..305 plus 100.
  const std::vector<Vertex> cyc{100, 300, 301, 302, 303, 304, 305};
  for (std::size_t i = 0; i < cyc.size(); ++i) {
    b.add_edge(cyc[i], cyc[(i + 1) % cyc.size()]);
  }
  const Graph g = b.build();
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  const auto result = run_detector(g, ids, 7, {100, 300});
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(graph::validate_cycle(g, result.witness));
  // Edges far from the cycle stay clean.
  EXPECT_FALSE(run_detector(g, ids, 7, g.edge(0)).found ||
               graph::has_cycle_through_edge(g, 7, g.edge(0).first, g.edge(0).second));
}

struct ExactnessCase {
  unsigned k;
  graph::Vertex n;
  std::size_t m;
  std::uint64_t seed;
  bool shuffled_ids;
};

class EdgeCheckerExactness : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(EdgeCheckerExactness, MatchesExactOracleOnEveryEdge) {
  const auto [k, n, m, seed, shuffled] = GetParam();
  util::Rng rng(seed);
  const Graph g = graph::erdos_renyi_gnm(n, m, rng);
  const IdAssignment ids =
      shuffled ? IdAssignment::random_quadratic(n, rng) : IdAssignment::identity(n);
  for (const auto& e : g.edges()) {
    const bool expected = graph::has_cycle_through_edge(g, k, e.first, e.second);
    const auto result = run_detector(g, ids, k, e);
    ASSERT_EQ(result.found, expected)
        << "k=" << k << " edge=(" << e.first << "," << e.second << ") seed=" << seed;
    if (result.found) {
      EXPECT_EQ(result.witness.size(), k);
      EXPECT_TRUE(graph::validate_cycle(g, result.witness));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphSweep, EdgeCheckerExactness,
    ::testing::Values(ExactnessCase{3, 12, 22, 1, false}, ExactnessCase{3, 12, 22, 2, true},
                      ExactnessCase{4, 12, 20, 3, false}, ExactnessCase{4, 14, 24, 4, true},
                      ExactnessCase{5, 12, 20, 5, false}, ExactnessCase{5, 13, 21, 6, true},
                      ExactnessCase{6, 12, 18, 7, false}, ExactnessCase{6, 13, 20, 8, true},
                      ExactnessCase{7, 13, 19, 9, false}, ExactnessCase{7, 14, 20, 10, true},
                      ExactnessCase{8, 14, 20, 11, false}, ExactnessCase{8, 14, 19, 12, true}));

TEST(EdgeChecker, PruningModesAgreeOnVerdict) {
  util::Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = graph::erdos_renyi_gnm(11, 17, rng);
    const IdAssignment ids = IdAssignment::identity(11);
    for (const unsigned k : {4u, 5u, 6u}) {
      for (const auto& e : g.edges()) {
        const bool fast = run_detector(g, ids, k, e, PruningMode::kRepresentative).found;
        const bool ref = run_detector(g, ids, k, e, PruningMode::kReference).found;
        const bool naive = run_detector(g, ids, k, e, PruningMode::kNaive).found;
        EXPECT_EQ(fast, ref) << "k=" << k;
        EXPECT_EQ(fast, naive) << "k=" << k;
      }
    }
  }
}

TEST(EdgeChecker, Lemma3BundleBoundHolds) {
  // Dense neighborhoods: complete bipartite graphs stress the bundle size.
  for (const unsigned k : {4u, 5u, 6u, 7u}) {
    const Graph g = graph::complete_bipartite(8, 8);
    const IdAssignment ids = IdAssignment::identity(16);
    const auto result = run_detector(g, ids, k, g.edge(0));
    std::uint64_t max_bound = 0;
    for (unsigned t = 2; t <= k / 2; ++t) max_bound = std::max(max_bound, lemma3_bound(k, t));
    max_bound = std::max<std::uint64_t>(max_bound, 1);  // seeds
    EXPECT_LE(result.max_bundle_sequences, max_bound) << "k=" << k;
  }
}

TEST(EdgeChecker, DenseGraphHighK) {
  const Graph g = graph::complete(12);
  const IdAssignment ids = IdAssignment::identity(12);
  for (const unsigned k : {5u, 8u, 11u}) {
    const auto result = run_detector(g, ids, k, {0, 1});
    ASSERT_TRUE(result.found) << "k=" << k;
    EXPECT_TRUE(graph::validate_cycle(g, result.witness));
  }
}

TEST(EdgeChecker, NonEdgeRejected) {
  const Graph g = graph::path(5);
  const IdAssignment ids = IdAssignment::identity(5);
  EXPECT_THROW((void)run_detector(g, ids, 4, {0, 4}), util::CheckError);
}

TEST(EdgeChecker, PlantedFarInstanceEveryPlantedEdgeDetects) {
  util::Rng rng(31);
  graph::PlantedOptions opt;
  opt.k = 6;
  opt.num_cycles = 5;
  opt.padding_leaves = 15;
  const auto inst = graph::planted_cycles_instance(opt, rng);
  const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());
  for (const auto& cyc : inst.planted) {
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const graph::Edge e{cyc[i], cyc[(i + 1) % cyc.size()]};
      EXPECT_TRUE(run_detector(inst.graph, ids, 6, e).found);
    }
  }
}

}  // namespace
}  // namespace decycle::core
