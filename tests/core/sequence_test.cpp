#include "core/sequence.hpp"

#include <gtest/gtest.h>

namespace decycle::core {
namespace {

TEST(Sequence, Contains) {
  const IdSeq s{3, 1, 4};
  EXPECT_TRUE(seq_contains(s, 1));
  EXPECT_FALSE(seq_contains(s, 2));
}

TEST(Sequence, Disjointness) {
  EXPECT_TRUE(seqs_disjoint(IdSeq{1, 2}, IdSeq{3, 4}));
  EXPECT_FALSE(seqs_disjoint(IdSeq{1, 2}, IdSeq{2, 3}));
  EXPECT_TRUE(seqs_disjoint(IdSeq{}, IdSeq{1}));
  EXPECT_TRUE(seqs_disjoint(IdSeq{}, IdSeq{}));
}

TEST(Sequence, UnionSize) {
  EXPECT_EQ(union_size(IdSeq{1, 2}, IdSeq{3, 4}, 5), 5u);
  EXPECT_EQ(union_size(IdSeq{1, 2}, IdSeq{2, 3}, 1), 3u);   // overlaps collapse
  EXPECT_EQ(union_size(IdSeq{}, IdSeq{}, 9), 1u);
  EXPECT_EQ(union_size(IdSeq{7}, IdSeq{7}, 7), 1u);
}

TEST(Sequence, UnionSizeMatchesPaperCondition) {
  // |L1 ∪ L2 ∪ {myid}| = k for the C5 of Figure 1: L1=(u,x), L2=(v,y), z.
  const IdSeq l1{10, 20};
  const IdSeq l2{11, 21};
  EXPECT_EQ(union_size(l1, l2, 30), 5u);
}

TEST(Sequence, CanonicalizeSortsAndDedupes) {
  std::vector<IdSeq> seqs;
  seqs.push_back(IdSeq{2, 1});
  seqs.push_back(IdSeq{1, 2});
  seqs.push_back(IdSeq{2, 1});
  seqs.push_back(IdSeq{1});
  canonicalize(seqs);
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], IdSeq{1});
  EXPECT_EQ(seqs[1], (IdSeq{1, 2}));
  EXPECT_EQ(seqs[2], (IdSeq{2, 1}));
}

TEST(Sequence, ToString) {
  EXPECT_EQ(to_string(IdSeq{1, 2, 3}), "(1 2 3)");
  EXPECT_EQ(to_string(IdSeq{}), "()");
}

}  // namespace
}  // namespace decycle::core
