#include "core/representative_family.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace decycle::core {
namespace {

TEST(HittingSet, EmptyFamilyAlwaysHittable) {
  EXPECT_TRUE(exists_bounded_hitting_set({}, IdSeq{1, 2}, 0));
}

TEST(HittingSet, SingleSetNeedsBudget) {
  std::vector<IdSeq> family{IdSeq{1, 2, 3}};
  EXPECT_FALSE(exists_bounded_hitting_set(family, IdSeq{}, 0));
  EXPECT_TRUE(exists_bounded_hitting_set(family, IdSeq{}, 1));
}

TEST(HittingSet, AvoidBlocksOnlyOption) {
  std::vector<IdSeq> family{IdSeq{5}};
  EXPECT_FALSE(exists_bounded_hitting_set(family, IdSeq{5}, 3));
  EXPECT_TRUE(exists_bounded_hitting_set(family, IdSeq{6}, 1));
}

TEST(HittingSet, SharedElementHitsAll) {
  std::vector<IdSeq> family{IdSeq{1, 9}, IdSeq{2, 9}, IdSeq{3, 9}};
  EXPECT_TRUE(exists_bounded_hitting_set(family, IdSeq{}, 1));  // {9}
  EXPECT_FALSE(exists_bounded_hitting_set(family, IdSeq{9}, 2));  // must pick 1,2,3
  EXPECT_TRUE(exists_bounded_hitting_set(family, IdSeq{9}, 3));
}

TEST(HittingSet, DisjointSetsNeedOneEach) {
  std::vector<IdSeq> family{IdSeq{1, 2}, IdSeq{3, 4}, IdSeq{5, 6}};
  EXPECT_FALSE(exists_bounded_hitting_set(family, IdSeq{}, 2));
  EXPECT_TRUE(exists_bounded_hitting_set(family, IdSeq{}, 3));
}

TEST(HittingSet, MatchesBruteForceOnRandomInstances) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t universe = 6;
    const std::size_t sets = 1 + rng.next_below(5);
    std::vector<IdSeq> family;
    for (std::size_t i = 0; i < sets; ++i) {
      const auto ids = rng.sample_distinct(universe, 1 + rng.next_below(3));
      IdSeq s;
      for (const auto id : ids) s.push_back(id + 1);
      family.push_back(std::move(s));
    }
    IdSeq avoid;
    if (rng.next_bool(0.5)) avoid.push_back(1 + rng.next_below(universe));
    const auto budget = static_cast<unsigned>(rng.next_below(4));

    // Brute force over all subsets of {1..universe} of size <= budget.
    bool brute = false;
    for (std::uint32_t mask = 0; mask < (1u << universe) && !brute; ++mask) {
      if (static_cast<unsigned>(std::popcount(mask)) > budget) continue;
      bool ok = true;
      for (const IdSeq& s : family) {
        bool hit = false;
        for (const NodeId e : s) {
          if (mask & (1u << (e - 1))) hit = true;
        }
        if (!hit) ok = false;
      }
      if (ok) {
        for (std::uint64_t b = 0; b < universe; ++b) {
          if ((mask & (1u << b)) && avoid.contains(b + 1)) ok = false;
        }
      }
      brute = brute || ok;
    }
    EXPECT_EQ(exists_bounded_hitting_set(family, avoid, budget), brute) << "trial=" << trial;
  }
}

TEST(RepresentativeFamily, KeepsEverythingWhenBudgetHuge) {
  std::vector<IdSeq> family{IdSeq{1}, IdSeq{2}, IdSeq{3}};
  const auto idx = representative_subfamily(family, 10);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(RepresentativeFamily, SizeBound) {
  // p = 2, q = 2: size <= (q+1)^p = 9 regardless of input size.
  util::Rng rng(9);
  std::vector<IdSeq> family;
  for (int i = 0; i < 300; ++i) {
    const auto ids = rng.sample_distinct(30, 2);
    family.push_back(IdSeq{ids[0] + 1, ids[1] + 1});
  }
  const auto idx = representative_subfamily(family, 2);
  EXPECT_LE(idx.size(), 9u);
  EXPECT_GE(idx.size(), 1u);
}

TEST(RepresentativeFamily, RepresentationProperty) {
  // For every C with |C| <= q: some member avoids C iff some chosen member
  // avoids C (the Erdős–Hajnal–Moon guarantee).
  util::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    constexpr std::uint64_t kUniverse = 8;
    constexpr unsigned q = 3;
    std::vector<IdSeq> family;
    const std::size_t count = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < count; ++i) {
      const auto ids = rng.sample_distinct(kUniverse, 1 + rng.next_below(3));
      IdSeq s;
      for (const auto id : ids) s.push_back(id + 1);
      family.push_back(std::move(s));
    }
    const auto idx = representative_subfamily(family, q);

    // Exhaustive over all C ⊆ {1..8} with |C| <= 3.
    for (std::uint32_t mask = 0; mask < (1u << kUniverse); ++mask) {
      if (std::popcount(mask) > static_cast<int>(q)) continue;
      IdSeq c;
      for (std::uint64_t b = 0; b < kUniverse; ++b) {
        if (mask & (1u << b)) c.push_back(b + 1);
      }
      const auto avoids = [&](const IdSeq& s) { return seqs_disjoint(s, c); };
      const bool in_family = std::any_of(family.begin(), family.end(), avoids);
      bool in_chosen = false;
      for (const std::size_t i : idx) in_chosen = in_chosen || avoids(family[i]);
      ASSERT_EQ(in_family, in_chosen) << "trial=" << trial << " C=" << to_string(c);
    }
  }
}

TEST(RepresentativeFamily, IndicesAreSortedAndValid) {
  std::vector<IdSeq> family{IdSeq{1}, IdSeq{1}, IdSeq{2}};
  const auto idx = representative_subfamily(family, 1);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  for (const auto i : idx) EXPECT_LT(i, family.size());
}

TEST(EhmBound, Values) {
  EXPECT_DOUBLE_EQ(ehm_bound(2, 2), 6.0);    // C(4,2)
  EXPECT_DOUBLE_EQ(ehm_bound(3, 4), 35.0);   // C(7,3)
  EXPECT_DOUBLE_EQ(ehm_bound(0, 5), 1.0);
}

TEST(EhmBound, GreedyCanExceedOptimalButNotLemma3) {
  // The greedy respects (q+1)^p which is >= C(p+q, p); sanity-check ordering.
  for (unsigned p = 1; p <= 4; ++p) {
    for (unsigned q = 1; q <= 4; ++q) {
      double greedy_bound = 1;
      for (unsigned i = 0; i < p; ++i) greedy_bound *= q + 1;
      EXPECT_GE(greedy_bound, ehm_bound(p, q));
    }
  }
}

}  // namespace
}  // namespace decycle::core
