/// Unit tests for the unified Detector interface and registry: fixed
/// registration order, capability metadata, loud lookup errors, counter
/// tables, and custom-registry registration rules.
#include "core/detector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/check.hpp"

namespace decycle::core {
namespace {

TEST(DetectorRegistry, BuiltinRegistersAllSevenInFixedOrder) {
  const DetectorRegistry& registry = DetectorRegistry::builtin();
  ASSERT_EQ(registry.size(), 7u);
  const char* expected[] = {"tester",
                            "edge_checker",
                            "threshold",
                            "c4",
                            "triangle",
                            "color_coding",
                            "clique_hcycle"};
  const auto detectors = registry.detectors();
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(detectors[i]->name(), expected[i]) << "registration order drifted at " << i;
  }
  EXPECT_EQ(registry.known_names(),
            "tester, edge_checker, threshold, c4, triangle, color_coding, clique_hcycle");
}

TEST(DetectorRegistry, FindAndRequire) {
  const DetectorRegistry& registry = DetectorRegistry::builtin();
  EXPECT_EQ(registry.find("tester"), &registry.require("tester"));
  EXPECT_EQ(registry.find("nope"), nullptr);
  try {
    (void)registry.require("nope");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown detection algorithm 'nope'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("color_coding"), std::string::npos) << msg;
  }
}

TEST(DetectorRegistry, CapabilitiesMatchTheAlgorithms) {
  const DetectorRegistry& registry = DetectorRegistry::builtin();

  const DetectorCapabilities& tester = registry.require("tester").capabilities();
  EXPECT_TRUE(tester.uses_epsilon);
  EXPECT_TRUE(tester.has_repetitions);
  EXPECT_TRUE(tester.distributed);

  const DetectorCapabilities& edge = registry.require("edge_checker").capabilities();
  EXPECT_FALSE(edge.has_repetitions);
  EXPECT_TRUE(edge.draws_edge);

  const DetectorCapabilities& threshold = registry.require("threshold").capabilities();
  EXPECT_TRUE(threshold.uses_threshold_knobs);

  const DetectorCapabilities& c4 = registry.require("c4").capabilities();
  EXPECT_EQ(c4.min_k, 4u);
  EXPECT_EQ(c4.max_k, 4u);

  const DetectorCapabilities& triangle = registry.require("triangle").capabilities();
  EXPECT_EQ(triangle.min_k, 3u);
  EXPECT_EQ(triangle.max_k, 3u);

  const DetectorCapabilities& cc = registry.require("color_coding").capabilities();
  EXPECT_FALSE(cc.distributed);
  EXPECT_EQ(cc.models, congest::kModelAll);  // centralized: reads topology only

  const DetectorCapabilities& chc = registry.require("clique_hcycle").capabilities();
  EXPECT_EQ(chc.models, congest::kModelClique);
  EXPECT_TRUE(chc.exact_when_lossless);
  EXPECT_FALSE(chc.has_repetitions);
  EXPECT_EQ(chc.min_k, 3u);
}

TEST(DetectorRegistry, ModelCapabilitiesAndValidation) {
  const DetectorRegistry& registry = DetectorRegistry::builtin();
  const Detector& tester = registry.require("tester");
  const Detector& chc = registry.require("clique_hcycle");

  // Defaults: classic detectors are congest-only and run_fresh builds
  // congest (the historical behaviour); clique_hcycle defaults to clique.
  EXPECT_TRUE(supports_model(tester.capabilities(), congest::CommModelKind::kCongest));
  EXPECT_FALSE(supports_model(tester.capabilities(), congest::CommModelKind::kClique));
  EXPECT_EQ(&default_comm_model(tester.capabilities()), &congest::CommModel::congest());
  EXPECT_EQ(&default_comm_model(chc.capabilities()), &congest::CommModel::clique());

  EXPECT_EQ(registry.validate_model(tester, congest::CommModel::congest()), "");
  EXPECT_EQ(registry.validate_model(chc, congest::CommModel::clique()), "");

  const std::string err = registry.validate_model(tester, congest::CommModel::clique());
  EXPECT_NE(err.find("algorithm 'tester' runs under models [congest]"), std::string::npos)
      << err;
  EXPECT_NE(err.find("got model 'clique'"), std::string::npos) << err;
  EXPECT_NE(err.find("clique_hcycle"), std::string::npos) << err;  // named alternative
  EXPECT_NE(err.find("color_coding"), std::string::npos) << err;   // kModelAll qualifies

  EXPECT_EQ(registry.names_supporting_model(congest::CommModelKind::kClique),
            "color_coding, clique_hcycle");
  EXPECT_EQ(registry.names_supporting_model(congest::CommModelKind::kBroadcastCongest),
            "color_coding");
}

TEST(DetectorRegistry, ValidateKNamesRangeAndAlternatives) {
  const DetectorRegistry& registry = DetectorRegistry::builtin();
  EXPECT_EQ(registry.validate_k(registry.require("tester"), 5), "");
  EXPECT_EQ(registry.validate_k(registry.require("c4"), 4), "");

  const std::string err = registry.validate_k(registry.require("c4"), 5);
  EXPECT_NE(err.find("algorithm 'c4' supports k in [4, 4]"), std::string::npos) << err;
  EXPECT_NE(err.find("got k=5"), std::string::npos) << err;
  EXPECT_NE(err.find("tester"), std::string::npos) << err;
  EXPECT_NE(err.find("edge_checker"), std::string::npos) << err;
  EXPECT_EQ(err.find("triangle"), std::string::npos) << err;  // k=3 only, not an alternative

  EXPECT_EQ(registry.names_supporting_k(3),
            "tester, edge_checker, threshold, triangle, color_coding, clique_hcycle");
  EXPECT_EQ(registry.names_supporting_k(64), "tester, edge_checker, threshold");
}

TEST(DetectorRegistry, ThresholdCounterTableIsTheJsonContract) {
  // Names and order are what algo=threshold JSONL cells emit — changing
  // them breaks the nightly golden diff.
  const auto defs = DetectorRegistry::builtin().require("threshold").counters();
  ASSERT_EQ(defs.size(), 6u);
  const char* names[] = {"seeded_total",         "seed_capped_total",
                         "evictions_total",      "discarded_seqs_total",
                         "budget_truncated_total", "peak_tracked"};
  for (std::size_t i = 0; i < std::size(names); ++i) {
    EXPECT_EQ(defs[i].name, names[i]);
    EXPECT_TRUE(defs[i].emit);
    EXPECT_EQ(defs[i].kind, i + 1 == std::size(names) ? CounterKind::kMax : CounterKind::kSum);
  }
}

TEST(DetectorRegistry, TesterCountersAggregateWithoutEmission) {
  // switches/discards are reachable programmatically but must not appear in
  // JSONL: pre-registry tester cells carry no counter fields and their
  // bytes are pinned by golden CI.
  const auto defs = DetectorRegistry::builtin().require("tester").counters();
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "switches_total");
  EXPECT_EQ(defs[1].name, "discarded_total");
  for (const CounterDef& def : defs) EXPECT_FALSE(def.emit);
}

TEST(DetectorRegistry, CapabilityLineDescribesEachDetector) {
  const DetectorRegistry& registry = DetectorRegistry::builtin();
  const std::string tester = capability_line(registry.require("tester"));
  EXPECT_NE(tester.find("tester: k in [3, 64]"), std::string::npos) << tester;
  EXPECT_NE(tester.find("eps"), std::string::npos) << tester;
  EXPECT_NE(tester.find("distributed"), std::string::npos) << tester;

  const std::string threshold = capability_line(registry.require("threshold"));
  EXPECT_NE(threshold.find("budget, track"), std::string::npos) << threshold;

  const std::string cc = capability_line(registry.require("color_coding"));
  EXPECT_NE(cc.find("centralized"), std::string::npos) << cc;

  const std::string edge = capability_line(registry.require("edge_checker"));
  EXPECT_NE(edge.find("knobs: none"), std::string::npos) << edge;
  EXPECT_NE(edge.find("target edge"), std::string::npos) << edge;
}

/// Minimal stub for registration-rule tests.
class StubDetector final : public Detector {
 public:
  explicit StubDetector(std::string name, unsigned min_k = 3, unsigned max_k = 8)
      : name_(std::move(name)) {
    caps_.min_k = min_k;
    caps_.max_k = max_k;
    caps_.summary = "stub";
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    return caps_;
  }
  [[nodiscard]] Verdict run(congest::Simulator&, const DetectorOptions&) const override {
    return {};
  }

 private:
  std::string name_;
  DetectorCapabilities caps_;
};

TEST(DetectorRegistry, AddRejectsDuplicatesNullsAndEmptyRanges) {
  DetectorRegistry registry;
  registry.add(std::make_unique<StubDetector>("alpha"));
  EXPECT_NE(registry.find("alpha"), nullptr);
  EXPECT_THROW(registry.add(std::make_unique<StubDetector>("alpha")), util::CheckError);
  EXPECT_THROW(registry.add(nullptr), util::CheckError);
  EXPECT_THROW(registry.add(std::make_unique<StubDetector>("")), util::CheckError);
  EXPECT_THROW(registry.add(std::make_unique<StubDetector>("beta", 6, 4)), util::CheckError);
  // A failed registration leaves the registry usable and unchanged.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.known_names(), "alpha");
}

}  // namespace
}  // namespace decycle::core
