#include "core/threshold/threshold_tester.hpp"

#include <gtest/gtest.h>

#include "core/tester.hpp"
#include "core/threshold/budget.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::core::threshold {
namespace {

using graph::Graph;
using graph::IdAssignment;

ThresholdOptions unlimited(unsigned k, std::uint64_t seed) {
  ThresholdOptions opt;
  opt.k = k;
  opt.seed = seed;
  opt.budget = BudgetSchedule::none();
  opt.max_tracked = 0;
  return opt;
}

TEST(BudgetSchedule, ParseNameRoundTrip) {
  EXPECT_TRUE(BudgetSchedule::parse("none").unlimited());
  EXPECT_TRUE(BudgetSchedule::parse("0").unlimited());
  EXPECT_EQ(BudgetSchedule::parse("none").name(), "none");
  EXPECT_EQ(BudgetSchedule::parse("16").name(), "16");
  EXPECT_EQ(BudgetSchedule::parse("4,8,16").name(), "4,8,16");
  EXPECT_EQ(BudgetSchedule::parse("4,8,16"), BudgetSchedule::parse("4,8,16"));
}

TEST(BudgetSchedule, AtRepeatsLastEntryAndZeroMeansUnlimited) {
  const BudgetSchedule sched = BudgetSchedule::parse("4,8,16");
  EXPECT_EQ(sched.at(0), 4u);
  EXPECT_EQ(sched.at(1), 8u);
  EXPECT_EQ(sched.at(2), 16u);
  EXPECT_EQ(sched.at(99), 16u);  // last value repeats
  EXPECT_EQ(BudgetSchedule::none().at(7), 0u);
  EXPECT_EQ(BudgetSchedule::constant(0).at(0), 0u);  // constant(0) = unlimited
}

TEST(BudgetSchedule, RejectsMalformedTokens) {
  EXPECT_THROW((void)BudgetSchedule::parse(""), util::CheckError);
  EXPECT_THROW((void)BudgetSchedule::parse("abc"), util::CheckError);
  EXPECT_THROW((void)BudgetSchedule::parse("4,x"), util::CheckError);
  EXPECT_THROW((void)BudgetSchedule::parse("4,0"), util::CheckError);  // zero inside a list
  EXPECT_THROW((void)BudgetSchedule::parse("9999999"), util::CheckError);  // > 2^20
}

TEST(ThresholdTester, DetectsPlantedCyclesInOneSweep) {
  util::Rng rng(41);
  graph::PlantedOptions popt;
  popt.k = 5;
  popt.num_cycles = 4;
  const auto inst = graph::planted_cycles_instance(popt, rng);
  const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());

  const ThresholdVerdict tv = test_ck_freeness_threshold(inst.graph, ids, unlimited(5, 7));
  EXPECT_FALSE(tv.verdict.accepted);
  EXPECT_GE(tv.verdict.rejecting_nodes, 1u);
  ASSERT_EQ(tv.verdict.witness.size(), 5u);  // validated k-cycle
  EXPECT_EQ(tv.verdict.repetitions, 1u);     // a single sweep suffices
  EXPECT_FALSE(tv.verdict.truncated);
  EXPECT_GT(tv.threshold.seeded_executions, 0u);
  // One sweep is ⌊k/2⌋+2 rounds plus the final delivery — two orders of
  // magnitude below the amplified tester.
  EXPECT_LE(tv.verdict.stats.rounds_executed, 5u);
}

TEST(ThresholdTester, SoundOnCkFreeFamilies) {
  util::Rng rng(11);
  const Graph forest = graph::random_tree(40, rng);
  const IdAssignment ids = IdAssignment::identity(forest.num_vertices());
  for (const unsigned k : {4u, 5u, 6u}) {
    const ThresholdVerdict tv = test_ck_freeness_threshold(forest, ids, unlimited(k, 3));
    EXPECT_TRUE(tv.verdict.accepted) << "k=" << k;
    EXPECT_TRUE(tv.verdict.witness.empty());
  }
}

TEST(ThresholdTester, UnlimitedBudgetsMatchExactOracle) {
  // With no budgets the sweep is an exhaustive parallel edge scan: every
  // edge runs Lemma 2's deterministic checker, so the verdict must equal
  // the DFS oracle on every instance.
  util::Rng rng(0x7123);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::erdos_renyi_gnm(13, 20, rng);
    const IdAssignment ids = IdAssignment::identity(g.num_vertices());
    for (const unsigned k : {4u, 5u, 6u}) {
      const bool exact = graph::has_cycle(g, k);
      const ThresholdVerdict tv =
          test_ck_freeness_threshold(g, ids, unlimited(k, 100 + trial));
      EXPECT_EQ(!tv.verdict.accepted, exact) << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(ThresholdTester, TightThresholdsStaySoundAndCountTheSqueeze) {
  util::Rng rng(5);
  const Graph g = graph::erdos_renyi_gnm(24, 48, rng);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  ThresholdOptions opt;
  opt.k = 5;
  opt.seed = 9;
  opt.budget = BudgetSchedule::constant(1);
  opt.max_tracked = 1;
  const ThresholdVerdict tv = test_ck_freeness_threshold(g, ids, opt);
  // The squeeze must be visible in the counters...
  EXPECT_GT(tv.threshold.seed_capped + tv.threshold.evictions + tv.threshold.budget_truncated +
                tv.threshold.discarded_sequences,
            0u);
  EXPECT_EQ(tv.threshold.peak_tracked, 1u);
  // ...and a rejection under any squeeze still carries a validated witness.
  if (!tv.verdict.accepted) {
    EXPECT_EQ(tv.verdict.witness.size(), 5u);
    EXPECT_TRUE(graph::has_cycle(g, 5));
  }
}

TEST(ThresholdTester, BudgetOnlyLosesDetectionsNeverFabricates) {
  // C5-free bipartite-ish instance under brutal truncation: soundness is a
  // structural property (witness validation), not a budget property.
  const Graph g = graph::grid(5, 5);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  ThresholdOptions opt;
  opt.k = 5;  // odd cycles cannot exist in a bipartite grid
  opt.budget = BudgetSchedule::parse("1,2");
  opt.max_tracked = 2;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    opt.seed = seed;
    const ThresholdVerdict tv = test_ck_freeness_threshold(g, ids, opt);
    EXPECT_TRUE(tv.verdict.accepted) << "seed=" << seed;
  }
}

TEST(ThresholdTester, SimulatorReuseIsBitIdentical) {
  util::Rng rng(77);
  const Graph g = graph::erdos_renyi_gnm(20, 40, rng);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  ThresholdOptions opt;
  opt.k = 5;
  opt.seed = 31;

  const ThresholdVerdict fresh = test_ck_freeness_threshold(g, ids, opt);
  congest::Simulator sim(g, ids);
  // Two consecutive reused runs: both must equal the fresh-build verdict.
  for (int round = 0; round < 2; ++round) {
    const ThresholdVerdict reused = test_ck_freeness_threshold(sim, opt);
    EXPECT_EQ(reused.verdict.accepted, fresh.verdict.accepted);
    EXPECT_EQ(reused.verdict.rejecting_nodes, fresh.verdict.rejecting_nodes);
    EXPECT_EQ(reused.verdict.witness, fresh.verdict.witness);
    EXPECT_EQ(reused.verdict.stats.total_messages, fresh.verdict.stats.total_messages);
    EXPECT_EQ(reused.verdict.stats.total_bits, fresh.verdict.stats.total_bits);
    EXPECT_EQ(reused.verdict.max_bundle_sequences, fresh.verdict.max_bundle_sequences);
    EXPECT_EQ(reused.threshold.evictions, fresh.threshold.evictions);
    EXPECT_EQ(reused.threshold.budget_truncated, fresh.threshold.budget_truncated);
  }
}

TEST(ThresholdTester, TotalMessageLossSuppressesEverything) {
  util::Rng rng(2);
  graph::PlantedOptions popt;
  popt.k = 4;
  popt.num_cycles = 3;
  const auto inst = graph::planted_cycles_instance(popt, rng);
  const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());
  ThresholdOptions opt = unlimited(4, 13);
  opt.drop = [](std::uint64_t, graph::Vertex, graph::Vertex) { return true; };
  const ThresholdVerdict tv = test_ck_freeness_threshold(inst.graph, ids, opt);
  EXPECT_TRUE(tv.verdict.accepted);  // loss can only lose detections
  EXPECT_GT(tv.verdict.stats.dropped_messages, 0u);
}

TEST(ThresholdTester, MultiSweepReshufflesPriorities) {
  util::Rng rng(19);
  const Graph g = graph::erdos_renyi_gnm(16, 28, rng);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  ThresholdOptions opt;
  opt.k = 4;
  opt.seed = 55;
  opt.sweeps = 3;
  opt.budget = BudgetSchedule::constant(2);
  opt.max_tracked = 2;
  const ThresholdVerdict tv = test_ck_freeness_threshold(g, ids, opt);
  EXPECT_EQ(tv.verdict.repetitions, 3u);
  EXPECT_FALSE(tv.verdict.truncated);
  // Three sweeps seed three waves of executions.
  EXPECT_GE(tv.threshold.seeded_executions, 3u * g.num_edges());
}

TEST(ThresholdTester, RejectsBadParameters) {
  const Graph g = graph::cycle(6);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  ThresholdOptions opt;
  opt.k = 2;
  EXPECT_THROW((void)test_ck_freeness_threshold(g, ids, opt), util::CheckError);
  opt.k = 4;
  opt.sweeps = 0;
  EXPECT_THROW((void)test_ck_freeness_threshold(g, ids, opt), util::CheckError);
}

}  // namespace
}  // namespace decycle::core::threshold
