/// Fault-injection tests: the tester under message loss.
///
/// The 1-sided error argument only uses that every received sequence is a
/// real path trace (Lemma 1), which message LOSS cannot break — dropping
/// mail can only suppress detections. These tests make the simulator's drop
/// adversary exercise that: no false rejection may ever appear, at any drop
/// rate, while detection degrades gracefully.
#include <gtest/gtest.h>

#include "core/cycle_detector.hpp"
#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::IdAssignment;

congest::Simulator::DropFilter random_drops(double rate, std::uint64_t seed) {
  // Stateless per-(round, from, to) coin so the filter is deterministic and
  // thread-safe.
  return [rate, seed](std::uint64_t round, graph::Vertex from, graph::Vertex to) {
    std::uint64_t h = util::splitmix64(seed ^ util::splitmix64(round));
    h = util::splitmix64(h ^ from);
    h = util::splitmix64(h ^ to);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
  };
}

TEST(Faults, SoundnessSurvivesAnyDropRate) {
  // Ck-free graphs stay accepted under 0%..90% loss (witness validation
  // would throw on any fabricated cycle).
  util::Rng rng(1);
  for (const unsigned k : {4u, 5u, 6u}) {
    const Graph g = graph::ck_free_instance(graph::CkFreeFamily::kHighGirth, k, 40, rng);
    const IdAssignment ids = IdAssignment::identity(g.num_vertices());
    for (const double rate : {0.1, 0.5, 0.9}) {
      TesterOptions opt;
      opt.k = k;
      opt.repetitions = 5;
      opt.seed = 3;
      opt.drop = random_drops(rate, 77);
      const auto verdict = test_ck_freeness(g, ids, opt);
      EXPECT_TRUE(verdict.accepted) << "k=" << k << " rate=" << rate;
    }
  }
}

TEST(Faults, RejectionsUnderLossAreStillGenuine) {
  // On cyclic graphs with loss, any rejection that does occur must carry a
  // real cycle — validated internally, asserted again here.
  const Graph g = graph::complete(9);
  const IdAssignment ids = IdAssignment::identity(9);
  for (const double rate : {0.05, 0.2, 0.4}) {
    TesterOptions opt;
    opt.k = 5;
    opt.repetitions = 4;
    opt.seed = 11;
    opt.drop = random_drops(rate, 99);
    const auto verdict = test_ck_freeness(g, ids, opt);
    if (!verdict.accepted) {
      EXPECT_TRUE(graph::validate_cycle(g, verdict.witness)) << "rate=" << rate;
    }
  }
}

TEST(Faults, DetectionDegradesMonotonicallyOnAverage) {
  // Not a strict per-seed monotonicity (drops are random), but at the
  // extremes the behaviour is forced: 0% loss detects the pure cycle, 100%
  // loss cannot detect anything.
  const Graph g = graph::cycle(6);
  const IdAssignment ids = IdAssignment::identity(6);

  TesterOptions clean;
  clean.k = 6;
  clean.repetitions = 1;
  clean.seed = 5;
  EXPECT_FALSE(test_ck_freeness(g, ids, clean).accepted);

  TesterOptions dead = clean;
  dead.drop = [](std::uint64_t, graph::Vertex, graph::Vertex) { return true; };
  const auto verdict = test_ck_freeness(g, ids, dead);
  EXPECT_TRUE(verdict.accepted);
  EXPECT_GT(verdict.stats.dropped_messages, 0u);
}

TEST(Faults, DropCounterTallies) {
  const Graph g = graph::cycle(5);
  const IdAssignment ids = IdAssignment::identity(5);
  EdgeDetectionOptions opt;
  opt.detect.k = 5;
  std::size_t filter_calls_dropped = 0;
  opt.drop = [&](std::uint64_t, graph::Vertex from, graph::Vertex) {
    if (from == 2) {
      ++filter_calls_dropped;
      return true;
    }
    return false;
  };
  const auto result = detect_cycle_through_edge(g, ids, {0, 1}, opt);
  EXPECT_EQ(result.stats.dropped_messages, filter_calls_dropped);
  EXPECT_GT(result.stats.dropped_messages, 0u);
}

TEST(Faults, TargetedDropSuppressesTheOnlyWitnessPath) {
  // Cutting every message out of one antipodal node of a pure C6 kills the
  // only detection route for edge (0,1)... unless the other direction still
  // pairs up; cut both candidates to be sure.
  const Graph g = graph::cycle(6);
  const IdAssignment ids = IdAssignment::identity(6);
  EdgeDetectionOptions opt;
  opt.detect.k = 6;
  opt.drop = [](std::uint64_t, graph::Vertex from, graph::Vertex) {
    return from == 3 || from == 4;  // sever the far side both ways
  };
  const auto result = detect_cycle_through_edge(g, ids, {0, 1}, opt);
  EXPECT_FALSE(result.found);
  // Sanity: without drops the same edge detects.
  EdgeDetectionOptions clean;
  clean.detect.k = 6;
  EXPECT_TRUE(detect_cycle_through_edge(g, ids, {0, 1}, clean).found);
}

}  // namespace
}  // namespace decycle::core
