#include "core/phase1.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace decycle::core {
namespace {

TEST(EdgePriority, OrderedByRankThenEndpoints) {
  const EdgePriority a{5, 1, 2};
  const EdgePriority b{6, 0, 1};
  const EdgePriority c{5, 1, 3};
  const EdgePriority d{5, 0, 9};
  EXPECT_LT(a, b);  // rank dominates
  EXPECT_LT(a, c);  // then (u, v)
  EXPECT_LT(d, a);
  EXPECT_EQ(a, (EdgePriority{5, 1, 2}));
}

TEST(RankRange, GrowsWithNAndSaturates) {
  EXPECT_EQ(rank_range_for(2), 16u);
  EXPECT_EQ(rank_range_for(10), 10000u);
  EXPECT_GE(rank_range_for(100000), 1ULL << 62);  // saturated
  EXPECT_EQ(rank_range_for(1ULL << 40), 1ULL << 62);
}

TEST(RankRange, AlwaysCoversMSquared) {
  // m <= n(n-1)/2, and the tester draws from >= n^4 >= m^2 (pre-saturation),
  // so Lemma 5's analysis applies verbatim.
  for (const std::uint64_t n : {3ULL, 10ULL, 100ULL, 1000ULL}) {
    const std::uint64_t m = n * (n - 1) / 2;
    EXPECT_GE(rank_range_for(n), m * m) << n;
  }
}

TEST(DrawRank, WithinRange) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t r = draw_rank(rng, 100);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(DrawRank, NeverCollidesWithMissingSentinel) {
  // Phase 1 stores kRankMissing per port until the owner's rank arrives; a
  // draw equal to the sentinel would silently disqualify a live edge in
  // select_and_seed. draw_rank returns 1 + [0, range), so the minimum draw
  // is 1 > kRankMissing for every seed and every range — pinned here
  // across seeds, tiny ranges, and the saturated range.
  static_assert(kRankMissing == 0);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    util::Rng rng(seed);
    const std::uint64_t ranges[] = {1, 2, 4, rank_range_for(std::uint64_t{1} << 40)};
    for (const std::uint64_t range : ranges) {
      const std::uint64_t r = draw_rank(rng, range);
      EXPECT_GT(r, kRankMissing) << "seed=" << seed << " range=" << range;
      EXPECT_LE(r, range);
    }
  }
}

TEST(DrawRank, RangeOneDrawsTheMinimumDeterministically) {
  // The smallest legal range pins the minimum-rank draw: every seed must
  // produce exactly 1 (never the sentinel 0).
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    util::Rng rng(seed);
    EXPECT_EQ(draw_rank(rng, 1), 1u) << "seed=" << seed;
  }
}

TEST(UniqueMinRank, SingleEdgeAlwaysUnique) {
  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(unique_min_rank_trial(1, rng));
}

TEST(UniqueMinRank, Lemma5BoundEmpirically) {
  // Lemma 5: Pr[unique min] >= 1/e² ≈ 0.1353 with ranks from [1, m²].
  // The truth is far higher; assert the bound with a 95% Wilson interval.
  util::Rng rng(3);
  for (const std::size_t m : {2UL, 10UL, 100UL, 1000UL}) {
    std::uint64_t unique = 0;
    constexpr std::uint64_t kTrials = 2000;
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      if (unique_min_rank_trial(m, rng)) ++unique;
    }
    const auto ci = util::wilson_interval(unique, kTrials);
    EXPECT_GT(ci.low, 1.0 / (2.718281828 * 2.718281828)) << "m=" << m;
  }
}

TEST(UniqueMinRank, RejectsZeroEdges) {
  util::Rng rng(4);
  EXPECT_THROW((void)unique_min_rank_trial(0, rng), util::CheckError);
}

TEST(Repetitions, MatchesFormula) {
  // ceil(e² ln 3 / ε): e²·ln3 ≈ 8.1175.
  EXPECT_EQ(recommended_repetitions(1.0), 9u);
  EXPECT_EQ(recommended_repetitions(0.5), 17u);
  EXPECT_EQ(recommended_repetitions(0.1), 82u);
  EXPECT_EQ(recommended_repetitions(0.01), 812u);
}

TEST(Repetitions, ScalesLinearlyInInverseEpsilon) {
  const auto r1 = static_cast<double>(recommended_repetitions(0.02));
  const auto r2 = static_cast<double>(recommended_repetitions(0.01));
  EXPECT_NEAR(r2 / r1, 2.0, 0.01);
}

TEST(Repetitions, ClampsDegenerateEpsilon) {
  EXPECT_GE(recommended_repetitions(0.0), recommended_repetitions(1e-6));
  EXPECT_GE(recommended_repetitions(-1.0), 1u);
  EXPECT_GE(recommended_repetitions(2.0), 1u);
}

}  // namespace
}  // namespace decycle::core
