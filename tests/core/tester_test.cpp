#include "core/tester.hpp"

#include <gtest/gtest.h>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::IdAssignment;

TestVerdict run_tester(const Graph& g, const IdAssignment& ids, unsigned k, std::size_t reps,
                       std::uint64_t seed = 1) {
  TesterOptions opt;
  opt.k = k;
  opt.repetitions = reps;
  opt.seed = seed;
  return test_ck_freeness(g, ids, opt);
}

TEST(Tester, PureCycleAlwaysRejectedInOneRepetition) {
  // Every edge lies on the unique Ck, so whichever edge wins Phase 1, its
  // Phase 2 must fire (Lemma 2 needs no farness).
  for (unsigned k = 3; k <= 9; ++k) {
    const Graph g = graph::cycle(k);
    const IdAssignment ids = IdAssignment::identity(k);
    const auto verdict = run_tester(g, ids, k, 1);
    EXPECT_FALSE(verdict.accepted) << "k=" << k;
    EXPECT_EQ(verdict.witness.size(), k);
    EXPECT_TRUE(graph::validate_cycle(g, verdict.witness));
  }
}

struct SoundnessCase {
  unsigned k;
  graph::CkFreeFamily family;
  std::uint64_t seed;
};

class TesterSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(TesterSoundness, OneSidedErrorNeverRejectsFreeGraphs) {
  const auto [k, family, seed] = GetParam();
  util::Rng rng(seed);
  const Graph g = graph::ck_free_instance(family, k, 48, rng);
  const IdAssignment ids = IdAssignment::random_quadratic(g.num_vertices(), rng);
  // validate_witnesses is on: any bogus rejection would throw, and the
  // verdict must be accept regardless of repetitions.
  const auto verdict = run_tester(g, ids, k, 12, seed);
  EXPECT_TRUE(verdict.accepted)
      << "family=" << graph::family_name(family) << " k=" << k << " seed=" << seed;
  EXPECT_EQ(verdict.rejecting_nodes, 0u);
}

std::vector<SoundnessCase> soundness_cases() {
  std::vector<SoundnessCase> cases;
  std::uint64_t seed = 100;
  for (const unsigned k : {3u, 4u, 5u, 6u, 7u}) {
    for (const auto family : graph::ck_free_families_for(k)) {
      cases.push_back({k, family, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Families, TesterSoundness, ::testing::ValuesIn(soundness_cases()));

TEST(Tester, DetectsPlantedInstances) {
  util::Rng rng(7);
  for (const unsigned k : {3u, 4u, 5u, 6u, 7u}) {
    graph::PlantedOptions opt;
    opt.k = k;
    opt.num_cycles = 6;
    opt.padding_leaves = 10;
    const auto inst = graph::planted_cycles_instance(opt, rng);
    const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());
    // With certified ε ≈ 6/m, the recommended repetitions give >= 2/3
    // detection; with a fixed seed and this many cycles it is effectively
    // certain. Use the recommended count (repetitions = 0).
    TesterOptions topt;
    topt.k = k;
    topt.epsilon = inst.certified_epsilon();
    topt.seed = 11 * k;
    const auto verdict = test_ck_freeness(inst.graph, ids, topt);
    EXPECT_FALSE(verdict.accepted) << "k=" << k;
    EXPECT_TRUE(graph::validate_cycle(inst.graph, verdict.witness));
  }
}

TEST(Tester, RepetitionCountDefaultsToFormula) {
  const Graph g = graph::path(4);
  const IdAssignment ids = IdAssignment::identity(4);
  TesterOptions opt;
  opt.k = 5;
  opt.epsilon = 0.25;
  const auto verdict = test_ck_freeness(g, ids, opt);
  EXPECT_EQ(verdict.repetitions, recommended_repetitions(0.25));
  EXPECT_TRUE(verdict.accepted);
}

TEST(Tester, RoundsMatchSchedule) {
  const Graph g = graph::cycle(6);
  const IdAssignment ids = IdAssignment::identity(6);
  const std::size_t reps = 5;
  const auto verdict = run_tester(g, ids, 6, reps);
  // Each repetition spans (k/2 + 2) rounds; the simulator may stop early
  // only if nothing is in flight.
  EXPECT_LE(verdict.stats.rounds_executed, reps * (6 / 2 + 2) + 1);
  EXPECT_GE(verdict.stats.rounds_executed, reps * (6 / 2 + 2) - 1);
}

TEST(Tester, MinimumDrawnRankStillQualifiesItsEdge) {
  // Regression for the Phase-1 sentinel: select_and_seed treats
  // port_rank_ == kRankMissing (0) as "rank message lost". The minimum
  // value draw_rank can produce is 1, so a minimum-rank edge must still be
  // selected and seeded. Pin a seed whose very first draw for node 0 on
  // K2 is the minimum of its range, then check the edge participates.
  const Graph g = graph::path(2);  // a single edge; node 0 owns it
  const IdAssignment ids = IdAssignment::identity(2);
  const std::uint64_t range = rank_range_for(2);
  ASSERT_EQ(range, 16u);
  std::uint64_t pinned = ~std::uint64_t{0};
  for (std::uint64_t seed = 0; seed < 100000; ++seed) {
    // Mirrors TesterProgram::start_repetition's stream: (seed, rep 0, id 0).
    util::Rng rng = util::Rng(seed).fork(0).fork(0);
    if (draw_rank(rng, range) == 1) {
      pinned = seed;
      break;
    }
  }
  ASSERT_NE(pinned, ~std::uint64_t{0}) << "no seed drawing the minimum rank in range";

  const auto verdict = run_tester(g, ids, 5, 1, pinned);
  EXPECT_TRUE(verdict.accepted);  // a single edge carries no cycle
  // Participation proof: both endpoints seeded Phase 2 for the rank-1 edge
  // (a sentinel collision would leave the whole repetition silent).
  EXPECT_GE(verdict.max_bundle_sequences, 1u);
  EXPECT_GT(verdict.stats.total_messages, 2u);  // more than just the rank round
}

TEST(Tester, BoundaryRoundBudgetCompletesFinalRepetition) {
  // The internal cap is repetitions·(⌊k/2⌋+2) + 4: at the boundary
  // (repetitions = 1, large k) the final repetition's Phase 2 must have
  // quiesced on its own, never been cut by the cap. A long cycle keeps
  // Phase-2 traffic alive through the very last round (two sequences per
  // node per round) without the path-count blowup of dense graphs.
  const Graph g = graph::cycle(64);
  const IdAssignment ids = IdAssignment::identity(64);
  for (const unsigned k : {31u, 32u}) {  // odd and even ⌊k/2⌋ boundaries
    const auto verdict = run_tester(g, ids, k, 1, 77);
    EXPECT_TRUE(verdict.accepted) << "k=" << k;  // C64 contains no shorter cycle
    EXPECT_FALSE(verdict.truncated) << "k=" << k;
    EXPECT_TRUE(verdict.stats.halted) << "k=" << k;
    // Traffic survives to the final-check round, so the run uses the whole
    // schedule — and still fits under the cap with slack to spare.
    EXPECT_GE(verdict.stats.rounds_executed, static_cast<std::uint64_t>(k / 2 + 1)) << "k=" << k;
    EXPECT_LE(verdict.stats.rounds_executed, static_cast<std::uint64_t>(k / 2 + 2) + 4)
        << "k=" << k;
  }
}

TEST(Tester, DeterministicForFixedSeed) {
  util::Rng rng(9);
  const Graph g = graph::random_connected(40, 70, rng);
  const IdAssignment ids = IdAssignment::identity(40);
  const auto v1 = run_tester(g, ids, 5, 10, 42);
  const auto v2 = run_tester(g, ids, 5, 10, 42);
  EXPECT_EQ(v1.accepted, v2.accepted);
  EXPECT_EQ(v1.rejecting_nodes, v2.rejecting_nodes);
  EXPECT_EQ(v1.stats.total_bits, v2.stats.total_bits);
  EXPECT_EQ(v1.witness, v2.witness);
}

TEST(Tester, ParallelSimulationMatchesSerial) {
  util::Rng rng(10);
  const Graph g = graph::random_connected(60, 110, rng);
  const IdAssignment ids = IdAssignment::identity(60);
  TesterOptions opt;
  opt.k = 5;
  opt.repetitions = 8;
  opt.seed = 3;
  const auto serial = test_ck_freeness(g, ids, opt);
  util::ThreadPool pool(4);
  opt.pool = &pool;
  const auto parallel = test_ck_freeness(g, ids, opt);
  EXPECT_EQ(serial.accepted, parallel.accepted);
  EXPECT_EQ(serial.rejecting_nodes, parallel.rejecting_nodes);
  EXPECT_EQ(serial.stats.total_bits, parallel.stats.total_bits);
}

TEST(Tester, ConcurrentExecutionsStaySound) {
  // Dense graph with many overlapping cycles: every node serves some edge,
  // executions preempt each other, and every rejection must still be a real
  // k-cycle (validated internally).
  const Graph g = graph::complete(10);
  const IdAssignment ids = IdAssignment::identity(10);
  const auto verdict = run_tester(g, ids, 5, 4);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_TRUE(graph::validate_cycle(g, verdict.witness));
  EXPECT_GT(verdict.rejecting_nodes, 0u);
}

TEST(Tester, PrioritySwitchesHappenOnDenseGraphs) {
  const Graph g = graph::complete(12);
  const IdAssignment ids = IdAssignment::identity(12);
  const auto verdict = run_tester(g, ids, 4, 6);
  // With 66 edges and 12 nodes, most nodes must discard or switch at least
  // once across 6 repetitions.
  EXPECT_GT(verdict.total_discarded + verdict.total_switches, 0u);
}

TEST(Tester, HandlesDisconnectedGraphsAndIsolatedVertices) {
  graph::GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);  // triangle
  b.ensure_vertices(6);  // vertices 3..5 isolated
  const Graph g = b.build();
  const IdAssignment ids = IdAssignment::identity(6);
  const auto verdict = run_tester(g, ids, 3, 2);
  EXPECT_FALSE(verdict.accepted);
}

TEST(Tester, NaivePruningModeAgreesOnSmallGraphs) {
  util::Rng rng(13);
  const Graph g = graph::random_connected(20, 30, rng);
  const IdAssignment ids = IdAssignment::identity(20);
  TesterOptions opt;
  opt.k = 5;
  opt.repetitions = 6;
  opt.seed = 5;
  const auto fast = test_ck_freeness(g, ids, opt);
  opt.detect.pruning = PruningMode::kNaive;
  const auto naive = test_ck_freeness(g, ids, opt);
  EXPECT_EQ(fast.accepted, naive.accepted);
}

TEST(Tester, FakeIdAblationStaysSoundOnFreeGraphs) {
  util::Rng rng(14);
  const Graph g = graph::ck_free_instance(graph::CkFreeFamily::kHighGirth, 7, 40, rng);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  TesterOptions opt;
  opt.k = 7;
  opt.repetitions = 6;
  opt.detect.fake_ids = false;
  const auto verdict = test_ck_freeness(g, ids, opt);
  EXPECT_TRUE(verdict.accepted);  // dropping fake IDs can only lose detections
}

TEST(Tester, FakeIdAblationMissesLongCycle) {
  // §3.3: on a bare C9 the information pool I is too small without fake
  // IDs, nothing propagates past round 2, and the cycle escapes.
  const Graph g = graph::cycle(9);
  const IdAssignment ids = IdAssignment::identity(9);
  TesterOptions opt;
  opt.k = 9;
  opt.repetitions = 3;
  opt.detect.fake_ids = false;
  const auto without = test_ck_freeness(g, ids, opt);
  EXPECT_TRUE(without.accepted);  // detection lost

  opt.detect.fake_ids = true;
  const auto with = test_ck_freeness(g, ids, opt);
  EXPECT_FALSE(with.accepted);  // restored
}

TEST(Tester, RejectsBadK) {
  const Graph g = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(3);
  TesterOptions opt;
  opt.k = 2;
  EXPECT_THROW((void)test_ck_freeness(g, ids, opt), util::CheckError);
}

TEST(Tester, MessageBoundInstrumentationPopulated) {
  const Graph g = graph::complete_bipartite(6, 6);
  const IdAssignment ids = IdAssignment::identity(12);
  const auto verdict = run_tester(g, ids, 6, 3);
  EXPECT_GE(verdict.max_bundle_sequences, 1u);
  std::uint64_t bound = 1;
  for (unsigned t = 2; t <= 3; ++t) bound = std::max(bound, lemma3_bound(6, t));
  EXPECT_LE(verdict.max_bundle_sequences, bound);
}

}  // namespace
}  // namespace decycle::core
