/// Parameterized whole-protocol sweeps driving EdgeDetectState manually
/// (no simulator), so every bundle is inspectable. The bare k-cycle is the
/// paper's own worked example (§3.3): each node forwards exactly one
/// sequence per round, both directions meet at the antipode, and the final
/// check fires there and nowhere else.
#include <gtest/gtest.h>

#include <optional>

#include "core/detect_state.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"

namespace decycle::core {
namespace {

struct SweepOutcome {
  bool detected = false;
  std::size_t rejecting_nodes = 0;
  std::size_t max_bundle = 0;
  std::vector<NodeId> witness;
};

/// Simulates Phase 2 for edge {u, v} on graph g with all-to-all neighbor
/// broadcast, mirroring EdgeCheckProgram but in-process.
SweepOutcome run_manual(const graph::Graph& g, unsigned k, graph::Vertex u, graph::Vertex v,
                        const DetectParams& base) {
  DetectParams params = base;
  params.k = k;
  std::vector<EdgeDetectState> states;
  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    states.emplace_back(params, x + 1, u + 1, v + 1);  // 1-based IDs as in the paper
  }
  std::vector<std::vector<IdSeq>> outgoing(g.num_vertices());
  SweepOutcome out;
  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    outgoing[x] = states[x].seed();
    out.max_bundle = std::max(out.max_bundle, outgoing[x].size());
  }
  for (unsigned round = 1; round <= k / 2; ++round) {
    std::vector<std::vector<IdSeq>> next(g.num_vertices());
    for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
      std::vector<IdSeq> received;
      for (const graph::Vertex nb : g.neighbors(x)) {
        received.insert(received.end(), outgoing[nb].begin(), outgoing[nb].end());
      }
      if (received.empty()) continue;
      next[x] = states[x].step(round, std::move(received));
      out.max_bundle = std::max(out.max_bundle, next[x].size());
    }
    outgoing = std::move(next);
  }
  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    if (states[x].rejected()) {
      ++out.rejecting_nodes;
      if (!out.detected) out.witness = states[x].witness_cycle_ids();
      out.detected = true;
    }
  }
  return out;
}

class BareCycleSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BareCycleSweep, DetectsAtTheAntipode) {
  const unsigned k = GetParam();
  const graph::Graph g = graph::cycle(k);
  const SweepOutcome out = run_manual(g, k, 0, k - 1, DetectParams{});
  EXPECT_TRUE(out.detected);
  // Odd k: exactly one antipodal node; even k: the two endpoints of the
  // antipodal edge.
  EXPECT_EQ(out.rejecting_nodes, k % 2 == 1 ? 1u : 2u);
  // On a bare cycle each node relays exactly one sequence per round.
  EXPECT_EQ(out.max_bundle, 1u);
  EXPECT_EQ(out.witness.size(), k);
}

TEST_P(BareCycleSweep, WrongEdgeLengthMissesCleanly) {
  const unsigned k = GetParam();
  if (k + 1 > 12) return;
  const graph::Graph g = graph::cycle(k + 1);  // cycle one longer than target
  const SweepOutcome out = run_manual(g, k, 0, k, DetectParams{});
  EXPECT_FALSE(out.detected);
}

TEST_P(BareCycleSweep, NaivePruningAgreesOnSparseInstances) {
  const unsigned k = GetParam();
  DetectParams naive;
  naive.pruning = PruningMode::kNaive;
  const SweepOutcome out = run_manual(graph::cycle(k), k, 0, k - 1, naive);
  EXPECT_TRUE(out.detected);
  EXPECT_EQ(out.max_bundle, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllK, BareCycleSweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u));

class ChordedCycleSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChordedCycleSweep, ChordsDoNotBreakSubgraphDetection) {
  // Ck plus a chord still contains the Ck; Algorithm 1 must keep finding it
  // (the paper's §4 point is only that it cannot *distinguish* chordedness).
  const unsigned k = GetParam();
  graph::GraphBuilder b;
  for (unsigned i = 0; i < k; ++i) {
    b.add_edge(i, (i + 1) % k);
  }
  b.add_edge(0, k / 2);  // a chord
  const graph::Graph g = b.build();
  const SweepOutcome out = run_manual(g, k, 0, k - 1, DetectParams{});
  EXPECT_TRUE(out.detected) << "k=" << k;
  EXPECT_TRUE(graph::has_cycle(g, k));
}

INSTANTIATE_TEST_SUITE_P(AllK, ChordedCycleSweep, ::testing::Values(6u, 7u, 8u, 9u, 10u));

}  // namespace
}  // namespace decycle::core
