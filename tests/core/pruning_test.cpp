#include "core/pruning.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/sequence.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::core {
namespace {

std::vector<IdSeq> random_candidates(util::Rng& rng, unsigned t, std::size_t count,
                                     std::uint64_t universe) {
  std::vector<IdSeq> out;
  for (std::size_t i = 0; i < count; ++i) {
    const auto ids = rng.sample_distinct(universe, t - 1);
    IdSeq s;
    for (const auto id : ids) s.push_back(id + 1);  // IDs start at 1
    out.push_back(std::move(s));
  }
  canonicalize(out);
  return out;
}

TEST(Pruning, FirstCandidateAlwaysAccepted) {
  // The all-fake completion set guarantees acceptance of the first sequence
  // (paper §3.3 discussion).
  PrunerConfig cfg;
  cfg.k = 9;
  auto pruner = make_pruner(PruningMode::kRepresentative, cfg);
  std::vector<IdSeq> candidates{IdSeq{1, 2}};
  const auto result = pruner->select(candidates, 3);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0], (IdSeq{1, 2}));
}

TEST(Pruning, WithoutFakeIdsSmallPoolForwardsNothing) {
  // The paper's C9 walkthrough: node 3 holds R = {(1,2)}, I = {1,2}; without
  // fake IDs no 6-element completion exists and (1,2) is dropped.
  PrunerConfig cfg;
  cfg.k = 9;
  cfg.fake_ids = false;
  auto pruner = make_pruner(PruningMode::kRepresentative, cfg);
  std::vector<IdSeq> candidates{IdSeq{1, 2}};
  EXPECT_TRUE(pruner->select(candidates, 3).accepted.empty());

  // The reference implementation agrees.
  auto ref = make_pruner(PruningMode::kReference, cfg);
  EXPECT_TRUE(ref->select(candidates, 3).accepted.empty());
}

TEST(Pruning, RedundantSequencesDropped) {
  // k=5, t=2 (q=3): singleton sequences. After q+1 = 4 are accepted, any
  // completion set X disjoint from a 5th singleton would have to hit four
  // pairwise-disjoint accepted singletons with only q = 3 elements.
  PrunerConfig cfg;
  cfg.k = 5;
  auto pruner = make_pruner(PruningMode::kRepresentative, cfg);
  std::vector<IdSeq> candidates;
  for (NodeId id = 1; id <= 6; ++id) candidates.push_back(IdSeq{id});
  const auto result = pruner->select(candidates, 2);
  ASSERT_EQ(result.accepted.size(), 4u);  // exactly (k-t+1)^(t-1) = 4
  EXPECT_EQ(result.accepted.size(), lemma3_bound(5, 2));
  // And the reference implementation agrees on the exact same subset.
  auto ref = make_pruner(PruningMode::kReference, cfg);
  const auto ref_result = ref->select(candidates, 2);
  ASSERT_EQ(ref_result.accepted.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(result.accepted[i], ref_result.accepted[i]);
}

TEST(Pruning, NaivePassesEverythingThrough) {
  PrunerConfig cfg;
  cfg.k = 8;
  auto pruner = make_pruner(PruningMode::kNaive, cfg);
  util::Rng rng(3);
  const auto candidates = random_candidates(rng, 3, 40, 100);
  const auto result = pruner->select(candidates, 3);
  EXPECT_EQ(result.accepted.size(), candidates.size());
  EXPECT_FALSE(result.overflow);
}

TEST(Pruning, NaiveCapsAndFlagsOverflow) {
  PrunerConfig cfg;
  cfg.k = 8;
  cfg.naive_cap = 10;
  auto pruner = make_pruner(PruningMode::kNaive, cfg);
  util::Rng rng(4);
  const auto candidates = random_candidates(rng, 3, 40, 1000);
  const auto result = pruner->select(candidates, 3);
  EXPECT_EQ(result.accepted.size(), 10u);
  EXPECT_TRUE(result.overflow);
}

TEST(Pruning, RejectsWrongLengthCandidates) {
  PrunerConfig cfg;
  cfg.k = 6;
  auto pruner = make_pruner(PruningMode::kRepresentative, cfg);
  std::vector<IdSeq> candidates{IdSeq{1, 2, 3}};  // length 3 but t=3 needs 2
  EXPECT_THROW((void)pruner->select(candidates, 3), util::CheckError);
}

TEST(Pruning, RejectsBadRound) {
  PrunerConfig cfg;
  cfg.k = 6;
  auto pruner = make_pruner(PruningMode::kRepresentative, cfg);
  std::vector<IdSeq> candidates{IdSeq{1}};
  EXPECT_THROW((void)pruner->select(candidates, 4), util::CheckError);  // t > k/2
}

TEST(Lemma3Bound, Values) {
  EXPECT_EQ(lemma3_bound(6, 2), 5u);    // (6-2+1)^1
  EXPECT_EQ(lemma3_bound(6, 3), 16u);   // 4^2
  EXPECT_EQ(lemma3_bound(9, 4), 216u);  // 6^3
  EXPECT_EQ(lemma3_bound(3, 1), 1u);    // no pruning rounds at all for k=3
}

/// The fast hitting-set pruner must be *decision-identical* to the literal
/// Instruction 15-24 implementation, in the same candidate order.
class PrunerEquivalence : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, bool>> {};

TEST_P(PrunerEquivalence, FastMatchesReference) {
  const auto [k, t, fake_ids] = GetParam();
  PrunerConfig cfg;
  cfg.k = k;
  cfg.fake_ids = fake_ids;
  auto fast = make_pruner(PruningMode::kRepresentative, cfg);
  auto ref = make_pruner(PruningMode::kReference, cfg);

  util::Rng rng(1000 * k + 10 * t + (fake_ids ? 1 : 0));
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t count = 1 + static_cast<std::size_t>(rng.next_below(25));
    const std::uint64_t universe = 3 + rng.next_below(9);  // small: subsets stay enumerable
    std::vector<IdSeq> candidates;
    {
      // Universe may be smaller than t-1; skip impossible draws.
      if (universe < t - 1) continue;
      candidates = random_candidates(rng, t, count, universe);
    }
    const auto fast_result = fast->select(candidates, t);
    const auto ref_result = ref->select(candidates, t);
    ASSERT_EQ(fast_result.accepted.size(), ref_result.accepted.size())
        << "k=" << k << " t=" << t << " fake=" << fake_ids << " trial=" << trial;
    for (std::size_t i = 0; i < fast_result.accepted.size(); ++i) {
      EXPECT_EQ(fast_result.accepted[i], ref_result.accepted[i]) << to_string(fast_result.accepted[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrunerEquivalence,
    ::testing::Values(std::tuple{5u, 2u, true}, std::tuple{6u, 2u, true}, std::tuple{6u, 3u, true},
                      std::tuple{7u, 2u, true}, std::tuple{7u, 3u, true}, std::tuple{8u, 3u, true},
                      std::tuple{8u, 4u, true}, std::tuple{9u, 4u, true}, std::tuple{5u, 2u, false},
                      std::tuple{6u, 3u, false}, std::tuple{7u, 3u, false},
                      std::tuple{8u, 4u, false}));

/// Lemma 3: the accepted family never exceeds (k-t+1)^(t-1).
class Lemma3Property : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(Lemma3Property, AcceptedFamilyBounded) {
  const auto [k, t] = GetParam();
  PrunerConfig cfg;
  cfg.k = k;
  auto pruner = make_pruner(PruningMode::kRepresentative, cfg);
  util::Rng rng(31 * k + t);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t count = 1 + static_cast<std::size_t>(rng.next_below(200));
    const std::uint64_t universe = t + rng.next_below(40);
    if (universe < t - 1) continue;
    const auto candidates = random_candidates(rng, t, count, universe);
    const auto result = pruner->select(candidates, t);
    EXPECT_LE(result.accepted.size(), lemma3_bound(k, t))
        << "k=" << k << " t=" << t << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma3Property,
                         ::testing::Values(std::pair{5u, 2u}, std::pair{6u, 2u}, std::pair{6u, 3u},
                                           std::pair{7u, 2u}, std::pair{7u, 3u}, std::pair{8u, 2u},
                                           std::pair{8u, 3u}, std::pair{8u, 4u}, std::pair{9u, 3u},
                                           std::pair{9u, 4u}, std::pair{10u, 5u},
                                           std::pair{11u, 5u}));

/// The witness-substitution invariant (Lemma 2's completeness engine): if a
/// discarded candidate L had a disjoint completion set C (|C| = k-t real
/// IDs), some accepted L' is also disjoint from C.
class SubstitutionInvariant : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(SubstitutionInvariant, DiscardedSequencesAreCovered) {
  const auto [k, t] = GetParam();
  const unsigned q = k - t;
  PrunerConfig cfg;
  cfg.k = k;
  auto pruner = make_pruner(PruningMode::kRepresentative, cfg);
  util::Rng rng(97 * k + t);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t universe = (t - 1) + q + rng.next_below(10);
    const auto candidates = random_candidates(rng, t, 1 + rng.next_below(60), universe);
    const auto result = pruner->select(candidates, t);

    // Sample completion sets C and check the representation property.
    for (int probe = 0; probe < 50; ++probe) {
      const auto raw = rng.sample_distinct(universe, q);
      IdSeq completion;
      for (const auto id : raw) completion.push_back(id + 1);
      const auto disjoint_from_completion = [&](const IdSeq& s) {
        return seqs_disjoint(s, completion);
      };
      const bool any_candidate =
          std::any_of(candidates.begin(), candidates.end(), disjoint_from_completion);
      const bool any_accepted =
          std::any_of(result.accepted.begin(), result.accepted.end(), disjoint_from_completion);
      EXPECT_EQ(any_candidate, any_accepted)
          << "completion " << to_string(completion) << " lost by pruning (k=" << k << ", t=" << t
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubstitutionInvariant,
                         ::testing::Values(std::pair{5u, 2u}, std::pair{6u, 3u}, std::pair{7u, 2u},
                                           std::pair{7u, 3u}, std::pair{8u, 4u}, std::pair{9u, 3u},
                                           std::pair{9u, 4u}));

}  // namespace
}  // namespace decycle::core
