#include "core/trace.hpp"

#include <gtest/gtest.h>

#include "core/cycle_detector.hpp"
#include "graph/generators.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::IdAssignment;

EdgeDetectionResult traced_run(const Graph& g, unsigned k, graph::Edge e, TraceSink& sink,
                               PruningMode mode = PruningMode::kRepresentative,
                               std::size_t naive_cap = 1u << 18) {
  EdgeDetectionOptions opt;
  opt.detect.k = k;
  opt.detect.trace = &sink;
  opt.detect.pruning = mode;
  opt.detect.naive_cap = naive_cap;
  return detect_cycle_through_edge(g, IdAssignment::identity(g.num_vertices()), e, opt);
}

TEST(Trace, SeedsRecordedForBothEndpoints) {
  TraceSink sink;
  (void)traced_run(graph::cycle(5), 5, {0, 1}, sink);
  EXPECT_EQ(sink.count(TraceEvent::Kind::kSeed), 2u);
  const auto u_events = sink.events_for(0);
  ASSERT_FALSE(u_events.empty());
  EXPECT_EQ(u_events.front().kind, TraceEvent::Kind::kSeed);
}

TEST(Trace, RejectEventCarriesWitness) {
  TraceSink sink;
  const auto result = traced_run(graph::cycle(6), 6, {0, 1}, sink);
  ASSERT_TRUE(result.found);
  // Both endpoints of the antipodal edge detect independently for even k.
  EXPECT_GE(sink.count(TraceEvent::Kind::kReject), 1u);
  EXPECT_LE(sink.count(TraceEvent::Kind::kReject), 2u);
  for (const auto& e : sink.events()) {
    if (e.kind == TraceEvent::Kind::kReject) {
      EXPECT_EQ(e.sequence.size(), 6u);
    }
  }
}

TEST(Trace, NoDropsOnSparseInstances) {
  // On a bare cycle every candidate survives pruning (tiny pools).
  TraceSink sink;
  (void)traced_run(graph::cycle(9), 9, {0, 8}, sink);
  EXPECT_EQ(sink.count(TraceEvent::Kind::kDrop), 0u);
  EXPECT_GT(sink.count(TraceEvent::Kind::kKeep), 0u);
  EXPECT_GT(sink.count(TraceEvent::Kind::kSend), 0u);
}

TEST(Trace, SingleChoiceForwardingRecordsDrops) {
  // Figure 1 gadget, naive cap 1: one of the two candidates at each middle
  // vertex must be dropped.
  graph::GraphBuilder b;
  b.add_edge(0, 1);
  for (graph::Vertex x : {3u, 4u}) {
    b.add_edge(0, x);
    b.add_edge(1, x);
    b.add_edge(x, 2);
  }
  TraceSink sink;
  const auto result = traced_run(b.build(), 5, {0, 1}, sink, PruningMode::kNaive, 1);
  EXPECT_FALSE(result.found);
  EXPECT_GE(sink.count(TraceEvent::Kind::kDrop), 2u);
}

TEST(Trace, KeepPlusDropEqualsReceiveOnPruningRounds) {
  TraceSink sink;
  (void)traced_run(graph::complete(8), 7, {0, 1}, sink);
  std::size_t receives_on_pruning_rounds = 0;
  for (const auto& e : sink.events()) {
    if (e.kind == TraceEvent::Kind::kReceive && e.round < 7 / 2) ++receives_on_pruning_rounds;
  }
  EXPECT_EQ(sink.count(TraceEvent::Kind::kKeep) + sink.count(TraceEvent::Kind::kDrop),
            receives_on_pruning_rounds);
}

TEST(Trace, RenderIsHumanReadable) {
  TraceSink sink;
  (void)traced_run(graph::cycle(5), 5, {0, 1}, sink);
  const std::string text = sink.render();
  EXPECT_NE(text.find("seed"), std::string::npos);
  EXPECT_NE(text.find("REJECT"), std::string::npos);
  EXPECT_NE(text.find("node 0"), std::string::npos);
}

TEST(Trace, EventsAreSortedByRoundThenNode) {
  TraceSink sink;
  (void)traced_run(graph::cycle(7), 7, {0, 1}, sink);
  const auto events = sink.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].round, events[i].round);
  }
}

TEST(Trace, ClearEmptiesSink) {
  TraceSink sink;
  (void)traced_run(graph::cycle(5), 5, {0, 1}, sink);
  EXPECT_FALSE(sink.events().empty());
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(Trace, ParallelSteppingProducesSameEventMultiset) {
  const Graph g = graph::complete_bipartite(8, 8);
  TraceSink serial_sink;
  EdgeDetectionOptions opt;
  opt.detect.k = 6;
  opt.detect.trace = &serial_sink;
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  (void)detect_cycle_through_edge(g, ids, g.edge(0), opt);

  TraceSink parallel_sink;
  util::ThreadPool pool(4);
  EdgeDetectionOptions popt = opt;
  popt.detect.trace = &parallel_sink;
  popt.pool = &pool;
  (void)detect_cycle_through_edge(g, ids, g.edge(0), popt);

  const auto a = serial_sink.events();
  const auto b = parallel_sink.events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].round, b[i].round) << i;
    EXPECT_EQ(a[i].node, b[i].node) << i;
    EXPECT_EQ(a[i].sequence, b[i].sequence) << i;
  }
}

TEST(TraceKindNames, Distinct) {
  EXPECT_STREQ(trace_kind_name(TraceEvent::Kind::kSeed), "seed");
  EXPECT_STREQ(trace_kind_name(TraceEvent::Kind::kDrop), "drop");
  EXPECT_STREQ(trace_kind_name(TraceEvent::Kind::kReject), "REJECT");
}

}  // namespace
}  // namespace decycle::core
