#include "core/census.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::IdAssignment;

CensusResult run_census(const Graph& g, unsigned k_min, unsigned k_max, std::size_t reps = 3) {
  CensusOptions opt;
  opt.k_min = k_min;
  opt.k_max = k_max;
  opt.repetitions = reps;
  opt.seed = 7;
  return cycle_census(g, IdAssignment::identity(g.num_vertices()), opt);
}

TEST(Census, PureCycleDetectedOnlyAtItsLength) {
  const auto census = run_census(graph::cycle(7), 3, 9, /*reps=*/1);
  ASSERT_EQ(census.entries.size(), 7u);
  for (const auto& entry : census.entries) {
    // Soundness pins every k != 7 to accept; completeness on the pure cycle
    // pins k == 7 to reject (every edge lies on the unique C7).
    EXPECT_EQ(entry.accepted, entry.k != 7) << "k=" << entry.k;
  }
  EXPECT_TRUE(census.any_rejected());
  EXPECT_EQ(census.smallest_detected(), 7u);
}

TEST(Census, ForestAllAccepted) {
  util::Rng rng(3);
  const auto census = run_census(graph::random_tree(40, rng), 3, 8);
  for (const auto& entry : census.entries) EXPECT_TRUE(entry.accepted);
  EXPECT_FALSE(census.any_rejected());
  EXPECT_EQ(census.smallest_detected(), 0u);
}

TEST(Census, WheelSpectrumAllDetected) {
  // wheel(8) contains Ck for every 3 <= k <= 8; with a few repetitions all
  // should be found (dense cycle population through every edge region).
  const auto census = run_census(graph::wheel(8), 3, 8, /*reps=*/10);
  for (const auto& entry : census.entries) {
    EXPECT_FALSE(entry.accepted) << "k=" << entry.k;
    EXPECT_TRUE(graph::validate_cycle(graph::wheel(8), entry.witness));
  }
  EXPECT_EQ(census.smallest_detected(), 3u);
}

TEST(Census, TotalsAccumulate) {
  const auto census = run_census(graph::cycle(6), 3, 6, /*reps=*/2);
  std::uint64_t rounds = 0;
  std::size_t messages = 0;
  for (const auto& entry : census.entries) {
    rounds += entry.rounds;
    messages += entry.messages;
  }
  EXPECT_EQ(census.total_rounds, rounds);
  EXPECT_EQ(census.total_messages, messages);
  EXPECT_GT(census.total_messages, 0u);
}

TEST(Census, GirthUpperBoundMatchesOracle) {
  // On graphs with plentiful short cycles, smallest_detected() should land
  // on the true girth.
  const Graph g = graph::complete(8);
  const auto census = run_census(g, 3, 6, /*reps=*/6);
  EXPECT_EQ(census.smallest_detected(), 3u);
  ASSERT_TRUE(graph::girth(g).has_value());
  EXPECT_EQ(census.smallest_detected(), *graph::girth(g));
}

TEST(Census, RejectsBadRange) {
  const Graph g = graph::cycle(5);
  CensusOptions opt;
  opt.k_min = 6;
  opt.k_max = 5;
  EXPECT_THROW((void)cycle_census(g, IdAssignment::identity(5), opt), util::CheckError);
  opt.k_min = 2;
  opt.k_max = 5;
  EXPECT_THROW((void)cycle_census(g, IdAssignment::identity(5), opt), util::CheckError);
}

TEST(Census, DeterministicForSeed) {
  const Graph g = graph::wheel(9);
  const auto a = run_census(g, 3, 7, 4);
  const auto b = run_census(g, 3, 7, 4);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].accepted, b.entries[i].accepted);
    EXPECT_EQ(a.entries[i].witness, b.entries[i].witness);
  }
}

}  // namespace
}  // namespace decycle::core
