#include "core/detect_state.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace decycle::core {
namespace {

DetectParams params_for(unsigned k) {
  DetectParams p;
  p.k = k;
  return p;
}

TEST(DetectState, SeedOnlyAtEndpoints) {
  EdgeDetectState endpoint(params_for(5), /*my=*/1, /*u=*/1, /*v=*/2);
  const auto seeds = endpoint.seed();
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], IdSeq{1});

  EdgeDetectState bystander(params_for(5), 7, 1, 2);
  EXPECT_TRUE(bystander.seed().empty());
}

TEST(DetectState, TriangleFinalCheckAtCommonNeighbor) {
  // k=3: node 3 adjacent to both endpoints receives (1) and (2) at round 1.
  EdgeDetectState w(params_for(3), 3, 1, 2);
  EXPECT_EQ(w.half(), 1u);
  auto out = w.step(1, {IdSeq{1}, IdSeq{2}});
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(w.rejected());
  const auto cycle = w.witness_cycle_ids();
  EXPECT_EQ(cycle, (std::vector<NodeId>{1, 3, 2}));
}

TEST(DetectState, TriangleSingleSeedAccepts) {
  EdgeDetectState w(params_for(3), 3, 1, 2);
  (void)w.step(1, {IdSeq{1}});
  EXPECT_FALSE(w.rejected());
}

TEST(DetectState, C5MiddleRoundAppendsOwnId) {
  // Figure 1: x receives (u)=(1) and (v)=(2) at round 1 and must forward
  // BOTH (u,x) and (v,x) — the pruning keeps them because each still has a
  // disjoint completion.
  EdgeDetectState x(params_for(5), 10, 1, 2);
  auto out = x.step(1, {IdSeq{1}, IdSeq{2}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (IdSeq{1, 10}));
  EXPECT_EQ(out[1], (IdSeq{2, 10}));
  EXPECT_EQ(x.sent_counts()[1], 2u);
}

TEST(DetectState, C5DetectionAtAntipodalNode) {
  // Figure 1's node z receives (u,x) and (v,y) at round 2.
  EdgeDetectState z(params_for(5), 30, 1, 2);
  (void)z.step(2, {IdSeq{1, 10}, IdSeq{2, 20}});
  ASSERT_TRUE(z.rejected());
  EXPECT_EQ(z.witness_cycle_ids(), (std::vector<NodeId>{1, 10, 30, 20, 2}));
}

TEST(DetectState, C5OverlappingHalvesAccepted) {
  // Halves sharing an internal node do not certify a C5.
  EdgeDetectState z(params_for(5), 30, 1, 2);
  (void)z.step(2, {IdSeq{1, 10}, IdSeq{2, 10}});
  EXPECT_FALSE(z.rejected());
}

TEST(DetectState, ReceivedContainingOwnIdFiltered) {
  EdgeDetectState z(params_for(5), 30, 1, 2);
  (void)z.step(2, {IdSeq{1, 30}, IdSeq{2, 20}});  // first contains myid
  EXPECT_FALSE(z.rejected());
}

TEST(DetectState, EvenKPairsOwnSWithReceived) {
  // k=4 antipodal-edge detection: node 30 sent (2,30) at round 1 and
  // receives (1,40) at round 2.
  EdgeDetectState w(params_for(4), 30, 1, 2);
  auto sent = w.step(1, {IdSeq{2}});
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0], (IdSeq{2, 30}));
  (void)w.step(2, {IdSeq{1, 40}});
  ASSERT_TRUE(w.rejected());
  EXPECT_EQ(w.witness_cycle_ids(), (std::vector<NodeId>{2, 30, 40, 1}));
}

TEST(DetectState, EvenKTwoReceivedHalvesDoNotFire) {
  // Erratum E-B(ii): two received sequences overlapping in one vertex reach
  // union size k but are NOT a cycle; the A×B pairing must ignore them.
  EdgeDetectState w(params_for(6), 99, 1, 2);
  (void)w.step(3, {IdSeq{1, 5, 10}, IdSeq{2, 5, 20}});  // share node 5
  EXPECT_FALSE(w.rejected());
  // Also fully disjoint received pairs (union k+1 with myid) must not fire.
  EdgeDetectState w2(params_for(6), 99, 1, 2);
  (void)w2.step(3, {IdSeq{1, 5, 10}, IdSeq{2, 6, 20}});
  EXPECT_FALSE(w2.rejected());
}

TEST(DetectState, EvenKOwnSOverlappingReceivedDoesNotFire) {
  EdgeDetectState w(params_for(4), 30, 1, 2);
  (void)w.step(1, {IdSeq{2}});       // S = {(2,30)}
  (void)w.step(2, {IdSeq{2, 40}});   // shares node 2's... endpoint 2 is in S
  EXPECT_FALSE(w.rejected());
}

TEST(DetectState, WrongLengthThrows) {
  EdgeDetectState w(params_for(5), 3, 1, 2);
  EXPECT_THROW((void)w.step(1, {IdSeq{1, 2}}), util::CheckError);
}

TEST(DetectState, RoundOutOfRangeThrows) {
  EdgeDetectState w(params_for(5), 3, 1, 2);
  EXPECT_THROW((void)w.step(0, {}), util::CheckError);
  EXPECT_THROW((void)w.step(3, {}), util::CheckError);  // half(5)=2
}

TEST(DetectState, DuplicateReceiptsCollapse) {
  EdgeDetectState x(params_for(5), 10, 1, 2);
  const auto out = x.step(1, {IdSeq{1}, IdSeq{1}, IdSeq{1}});
  EXPECT_EQ(out.size(), 1u);
}

TEST(DetectState, EmptyRoundSendsNothing) {
  EdgeDetectState x(params_for(7), 10, 1, 2);
  EXPECT_TRUE(x.step(1, {}).empty());
  EXPECT_TRUE(x.step(2, {}).empty());
}

TEST(DetectState, NaiveOverflowFlag) {
  DetectParams p = params_for(7);
  p.pruning = PruningMode::kNaive;
  p.naive_cap = 2;
  EdgeDetectState x(p, 10, 1, 2);
  (void)x.step(1, {IdSeq{1}, IdSeq{2}});  // fine: exactly 2
  EXPECT_FALSE(x.overflowed());
  std::vector<IdSeq> many;
  for (NodeId id = 100; id < 110; ++id) many.push_back(IdSeq{1, id});
  (void)x.step(2, std::move(many));
  EXPECT_TRUE(x.overflowed());
}

TEST(DetectState, MidPhaseJoinAfterSwitch) {
  // A node that switches edges can start receiving at g=2 without g=1 state;
  // it must still prune and forward correctly.
  EdgeDetectState x(params_for(7), 50, 1, 2);
  const auto out = x.step(2, {IdSeq{1, 10}, IdSeq{2, 20}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (IdSeq{1, 10, 50}));
}

TEST(DetectState, OddKWitnessOrderIsCyclic) {
  // k=7 detection: halves (1,a,b) and (2,c,d) at node w.
  EdgeDetectState w(params_for(7), 9, 1, 2);
  (void)w.step(3, {IdSeq{1, 5, 6}, IdSeq{2, 7, 8}});
  ASSERT_TRUE(w.rejected());
  EXPECT_EQ(w.witness_cycle_ids(), (std::vector<NodeId>{1, 5, 6, 9, 8, 7, 2}));
}

TEST(DetectState, SentCountsRecorded) {
  EdgeDetectState u(params_for(6), 1, 1, 2);
  (void)u.seed();
  EXPECT_EQ(u.sent_counts()[0], 1u);
  (void)u.step(1, {IdSeq{2}});
  EXPECT_EQ(u.sent_counts()[1], 1u);
}

TEST(DetectState, RejectsBadParams) {
  EXPECT_THROW(EdgeDetectState(params_for(2), 1, 1, 2), util::CheckError);
  EXPECT_THROW(EdgeDetectState(params_for(5), 1, 2, 2), util::CheckError);
}

}  // namespace
}  // namespace decycle::core
