#include "core/witness.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::NodeId;

TEST(Witness, MapsIdsToVertices) {
  const Graph g = graph::cycle(5);
  util::Rng rng(1);
  const IdAssignment ids = IdAssignment::random_quadratic(5, rng);
  std::vector<NodeId> cycle_ids;
  for (graph::Vertex v = 0; v < 5; ++v) cycle_ids.push_back(ids.id_of(v));
  const auto vertices = validated_witness_vertices(g, ids, cycle_ids);
  ASSERT_EQ(vertices.size(), 5u);
  for (graph::Vertex v = 0; v < 5; ++v) EXPECT_EQ(vertices[v], v);
}

TEST(Witness, AcceptsRotatedOrder) {
  const Graph g = graph::cycle(4);
  const IdAssignment ids = IdAssignment::identity(4);
  const std::vector<NodeId> rotated{2, 3, 0, 1};
  EXPECT_NO_THROW((void)validated_witness_vertices(g, ids, rotated));
}

TEST(Witness, RejectsUnknownId) {
  const Graph g = graph::cycle(4);
  const IdAssignment ids = IdAssignment::identity(4);
  const std::vector<NodeId> bad{0, 1, 99};
  EXPECT_THROW((void)validated_witness_vertices(g, ids, bad), util::CheckError);
}

TEST(Witness, RejectsNonCycle) {
  const Graph g = graph::path(5);  // no closing edge
  const IdAssignment ids = IdAssignment::identity(5);
  const std::vector<NodeId> open{0, 1, 2, 3, 4};
  EXPECT_THROW((void)validated_witness_vertices(g, ids, open), util::CheckError);
}

TEST(Witness, RejectsRepeatedVertex) {
  const Graph g = graph::complete(5);
  const IdAssignment ids = IdAssignment::identity(5);
  const std::vector<NodeId> repeat{0, 1, 0, 2};
  EXPECT_THROW((void)validated_witness_vertices(g, ids, repeat), util::CheckError);
}

TEST(Witness, RejectsTooShort) {
  const Graph g = graph::complete(4);
  const IdAssignment ids = IdAssignment::identity(4);
  const std::vector<NodeId> pair{0, 1};
  EXPECT_THROW((void)validated_witness_vertices(g, ids, pair), util::CheckError);
}

}  // namespace
}  // namespace decycle::core
