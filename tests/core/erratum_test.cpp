/// Regression tests for the two pseudocode errata documented in DESIGN.md §2.
///
/// E-A: Instruction 35's round index. As printed, the even-k final check
/// pairs sequences whose lengths can only sum to k-1, so no even cycle could
/// ever be reported. The corrected check (S ∪ received-at-⌊k/2⌋) is what
/// Lemma 2's proof uses; the first tests confirm even-k detection works at
/// all, which is itself the regression test for E-A.
///
/// E-B: with the corrected round index, the *raw* condition
/// "∃L1,L2 ∈ R: |L1∪L2∪{myid}| = k" admits false rejections. The two
/// counterexample graphs below make the raw condition fire at a node even
/// though no C6 exists; the implementation must accept (1-sided error).
#include <gtest/gtest.h>

#include "core/cycle_detector.hpp"
#include "core/detect_state.hpp"
#include "core/sequence.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"

namespace decycle::core {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::IdAssignment;

EdgeDetectionResult run_detector(const Graph& g, unsigned k, graph::Edge e) {
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  EdgeDetectionOptions opt;
  opt.detect.k = k;
  return detect_cycle_through_edge(g, ids, e, opt);
}

TEST(ErratumEA, EvenCyclesAreDetectedAtAll) {
  // With the paper's literal Instruction 35 this would be impossible.
  for (const unsigned k : {4u, 6u, 8u, 10u}) {
    const Graph g = graph::cycle(k);
    const auto result = run_detector(g, k, {0, 1});
    EXPECT_TRUE(result.found) << "k=" << k;
    EXPECT_EQ(result.witness.size(), k);
  }
}

TEST(ErratumEA, LiteralPairLengthsCannotReachK) {
  // Documents the arithmetic: |S member| = k/2 and |received at k/2-1| =
  // k/2-1 give |L1 ∪ L2 ∪ {myid}| <= k-1 < k.
  const unsigned k = 6;
  const std::size_t own_len = k / 2;
  const std::size_t recv_len = k / 2 - 1;
  EXPECT_LT(own_len + recv_len, static_cast<std::size_t>(k));
}

// Counterexample 1 (DESIGN.md E-B(i)): a received sequence containing myid.
// Graph: u=0, v=1, w=2, a=3, b=4, c=5 with edges
// {u,v},{u,w},{w,a},{v,b},{b,c},{c,w}. At round 3, w receives (u,w,a) from a
// and (v,b,c) from c; |(u,w,a) ∪ (v,b,c) ∪ {w}| = 6, yet vertex a has
// degree 1, so no C6 exists anywhere.
Graph counterexample_myid_interior() {
  GraphBuilder b;
  b.add_edge(0, 1);  // u-v
  b.add_edge(0, 2);  // u-w
  b.add_edge(2, 3);  // w-a
  b.add_edge(1, 4);  // v-b
  b.add_edge(4, 5);  // b-c
  b.add_edge(5, 2);  // c-w
  return b.build();
}

TEST(ErratumEB, MyidInteriorSequenceMustNotFire) {
  const Graph g = counterexample_myid_interior();
  ASSERT_FALSE(graph::has_cycle(g, 6));  // ground truth: no C6 at all

  // The raw union condition *does* fire on w's round-3 receipts:
  EXPECT_EQ(union_size(IdSeq{0, 2, 3}, IdSeq{1, 4, 5}, 2), 6u);

  // ...but the implementation stays sound on every edge.
  for (const auto& [x, y] : g.edges()) {
    const auto result = run_detector(g, 6, {x, y});
    EXPECT_FALSE(result.found) << "false C6 through edge (" << x << "," << y << ")";
  }
}

// Counterexample 2 (DESIGN.md E-B(ii)): two received halves sharing an
// interior vertex. Graph: u=0, v=1, s=2, z1=3, z2=4, w=5 with edges
// {u,v},{u,s},{v,s},{s,z1},{s,z2},{z1,w},{z2,w}. At round 3, w receives
// (u,s,z1) and (v,s,z2): union with myid has size 6, but s is a cut vertex
// separating {u,v} from w, so no cycle contains both u and w.
Graph counterexample_shared_interior() {
  GraphBuilder b;
  b.add_edge(0, 1);  // u-v
  b.add_edge(0, 2);  // u-s
  b.add_edge(1, 2);  // v-s
  b.add_edge(2, 3);  // s-z1
  b.add_edge(2, 4);  // s-z2
  b.add_edge(3, 5);  // z1-w
  b.add_edge(4, 5);  // z2-w
  return b.build();
}

TEST(ErratumEB, SharedInteriorHalvesMustNotFire) {
  const Graph g = counterexample_shared_interior();
  ASSERT_FALSE(graph::has_cycle(g, 6));

  EXPECT_EQ(union_size(IdSeq{0, 2, 3}, IdSeq{1, 2, 4}, 5), 6u);  // raw condition fires

  for (const auto& [x, y] : g.edges()) {
    const auto result = run_detector(g, 6, {x, y});
    EXPECT_FALSE(result.found) << "false C6 through edge (" << x << "," << y << ")";
  }
}

TEST(ErratumEB, StateLevelFilterDropsMyidSequences) {
  // Direct state-machine check mirroring counterexample 1: the sequence
  // containing myid is filtered, so no pair remains.
  DetectParams p;
  p.k = 6;
  EdgeDetectState w(p, /*my=*/2, /*u=*/0, /*v=*/1);
  (void)w.step(3, {IdSeq{0, 2, 3}, IdSeq{1, 4, 5}});
  EXPECT_FALSE(w.rejected());
}

TEST(ErratumEB, GenuineC6StillDetected) {
  // The soundness fixes must not cost completeness: a real C6 with chords
  // and decoys attached is still found through every cycle edge.
  GraphBuilder b;
  for (unsigned i = 0; i < 6; ++i) b.add_edge(i, (i + 1) % 6);
  b.add_edge(0, 6);  // pendant decoys
  b.add_edge(6, 7);
  b.add_edge(2, 8);
  const Graph g = b.build();
  for (unsigned i = 0; i < 6; ++i) {
    const auto result =
        run_detector(g, 6, {static_cast<graph::Vertex>(i), static_cast<graph::Vertex>((i + 1) % 6)});
    EXPECT_TRUE(result.found) << "edge " << i;
    EXPECT_TRUE(graph::validate_cycle(g, result.witness));
  }
}

}  // namespace
}  // namespace decycle::core
