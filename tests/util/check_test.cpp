#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace decycle::util {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(DECYCLE_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(DECYCLE_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsCheckError) {
  EXPECT_THROW(DECYCLE_CHECK(false), CheckError);
  EXPECT_THROW(DECYCLE_CHECK_MSG(false, "boom"), CheckError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    DECYCLE_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageContainsCustomText) {
  try {
    DECYCLE_CHECK_MSG(false, "the ranks were not delivered");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("the ranks were not delivered"), std::string::npos);
  }
}

TEST(Check, IsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(DECYCLE_CHECK(false), std::logic_error);
}

TEST(Check, ConditionEvaluatedOnce) {
  int calls = 0;
  const auto count = [&] {
    ++calls;
    return true;
  };
  DECYCLE_CHECK(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace decycle::util
