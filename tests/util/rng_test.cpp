#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace decycle::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndDoesNotAdvanceParent) {
  Rng parent(7);
  const Rng f1 = parent.fork(1);
  const Rng f2 = parent.fork(1);
  Rng c1 = f1, c2 = f2;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(c1(), c2());

  Rng fresh(7);
  Rng forked_then_used = fresh;
  (void)fresh.fork(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fresh(), forked_then_used());
}

TEST(Rng, ForkTagsProduceDistinctStreams) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // LLN sanity
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ShufflePermutes) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> orig = v;
  Rng rng(9);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, SampleDistinctSparse) {
  Rng rng(1);
  const auto s = rng.sample_distinct(1ULL << 50, 1000);
  EXPECT_EQ(s.size(), 1000u);
  const std::set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 1000u);
  for (const auto v : s) EXPECT_LT(v, 1ULL << 50);
}

TEST(Rng, SampleDistinctDense) {
  Rng rng(2);
  const auto s = rng.sample_distinct(10, 10);
  const std::set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_EQ(*uniq.rbegin(), 9u);
}

TEST(Rng, SampleDistinctRejectsOversizedRequest) {
  Rng rng(3);
  EXPECT_THROW((void)rng.sample_distinct(5, 6), CheckError);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(4);
  const auto p = rng.permutation(100);
  std::vector<std::uint32_t> sorted(p.begin(), p.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SplitMixIsStable) {
  // Pinned values guard against accidental algorithm changes that would
  // silently invalidate every recorded experiment seed.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
}

TEST(Rng, UniformityChiSquareish) {
  Rng rng(77);
  constexpr int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

}  // namespace
}  // namespace decycle::util
