#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace decycle::util {
namespace {

TEST(Hash, CombineIsOrderSensitive) {
  const std::uint64_t a = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t b = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Hash, SpanHashDetectsPermutation) {
  const std::vector<std::uint64_t> fwd{1, 2, 3, 4};
  const std::vector<std::uint64_t> rev{4, 3, 2, 1};
  EXPECT_NE(hash_span(fwd), hash_span(rev));
  EXPECT_EQ(hash_span(fwd), hash_span(std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Hash, FewCollisionsOnSequentialKeys) {
  std::set<std::size_t> values;
  PairHash hasher;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    values.insert(hasher({i, i + 1}));
  }
  EXPECT_EQ(values.size(), 1000u);  // sequential pairs should not collide
}

TEST(Logging, LevelGateIsRespected) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Logging, MacroShortCircuitsBelowLevel) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  DECYCLE_LOG_DEBUG << expensive();  // must not evaluate at error level
  EXPECT_EQ(evaluations, 0);
  set_log_level(original);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  // Burn a bit of CPU deterministically.
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < 2'000'000; ++i) acc += splitmix64(i);
  EXPECT_NE(acc, 0u);  // keep the loop alive
  EXPECT_GT(timer.seconds(), 0.0);
  EXPECT_GE(timer.millis(), timer.seconds() * 1000.0 * 0.99);
  timer.restart();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace decycle::util
