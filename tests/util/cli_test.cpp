#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace decycle::util {
namespace {

Args make_args(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesKeyValue) {
  const Args args = make_args({"--n=100", "--name=ring"});
  EXPECT_EQ(args.get_u64("n", 0), 100u);
  EXPECT_EQ(args.get_string("name", ""), "ring");
}

TEST(Args, BareFlagIsTrue) {
  const Args args = make_args({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, FallbacksWhenMissing) {
  const Args args = make_args({});
  EXPECT_EQ(args.get_u64("n", 7), 7u);
  EXPECT_EQ(args.get_i64("delta", -3), -3);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.25), 0.25);
  EXPECT_FALSE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
}

TEST(Args, ParsesNumbers) {
  const Args args = make_args({"--a=-12", "--b=3.5", "--c=0"});
  EXPECT_EQ(args.get_i64("a", 0), -12);
  EXPECT_DOUBLE_EQ(args.get_double("b", 0), 3.5);
  EXPECT_FALSE(args.get_bool("c", true));
}

TEST(Args, BooleanSpellings) {
  const Args args = make_args({"--a=true", "--b=off", "--c=yes", "--d=0"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Args, RejectsMalformedArgument) {
  EXPECT_THROW(make_args({"n=5"}), CheckError);
}

TEST(Args, RejectsBadNumbers) {
  const Args args = make_args({"--n=abc", "--e=1.5x"});
  EXPECT_THROW((void)args.get_u64("n", 0), CheckError);
  EXPECT_THROW((void)args.get_double("e", 0), CheckError);
}

TEST(Args, RejectsBadBoolean) {
  const Args args = make_args({"--b=maybe"});
  EXPECT_THROW((void)args.get_bool("b", false), CheckError);
}

TEST(Args, UnusedTracksUnreadKeys) {
  const Args args = make_args({"--used=1", "--typo=2"});
  (void)args.get_u64("used", 0);
  const auto leftovers = args.unused();
  ASSERT_EQ(leftovers.size(), 1u);
  EXPECT_EQ(leftovers[0], "typo");
  EXPECT_THROW(args.reject_unknown(), CheckError);
}

TEST(Args, RejectUnknownPassesWhenAllRead) {
  const Args args = make_args({"--a=1"});
  (void)args.get_u64("a", 0);
  EXPECT_NO_THROW(args.reject_unknown());
}

TEST(Args, HasChecksPresence) {
  const Args args = make_args({"--x=1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_FALSE(args.has("y"));
}

TEST(Args, RejectsDuplicateKeys) {
  // A silently dropped repeat (--k=4 --k=5 keeping only k=4) would run a
  // different workload than the command line reads.
  EXPECT_THROW(make_args({"--k=4", "--k=5"}), CheckError);
  EXPECT_THROW(make_args({"--flag", "--flag"}), CheckError);
}

TEST(Args, TakeUnconsumedForwardsAndConsumes) {
  const Args args = make_args({"--out=lab.jsonl", "--family=cycle,planted", "--k=3..7:2"});
  (void)args.get_string("out", "");  // the binary's own flag
  const auto forwarded = args.take_unconsumed();
  ASSERT_EQ(forwarded.size(), 2u);  // key order: family before k
  EXPECT_EQ(forwarded[0].first, "family");
  EXPECT_EQ(forwarded[0].second, "cycle,planted");
  EXPECT_EQ(forwarded[1].first, "k");
  EXPECT_EQ(forwarded[1].second, "3..7:2");
  // Forwarded keys count as consumed: a second parser owns their errors.
  EXPECT_NO_THROW(args.reject_unknown());
  EXPECT_TRUE(args.take_unconsumed().empty());
}

}  // namespace
}  // namespace decycle::util
