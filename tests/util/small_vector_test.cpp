#include "util/small_vector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace decycle::util {
namespace {

using Vec = SmallVector<std::uint64_t, 4>;

TEST(SmallVector, StartsEmptyInline) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_FALSE(v.on_heap());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  Vec v;
  for (std::uint64_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_FALSE(v.on_heap());
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, SpillsToHeapBeyondInlineCapacity) {
  Vec v;
  for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(v.on_heap());
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, InitializerList) {
  const Vec v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[2], 3u);
}

TEST(SmallVector, CopyPreservesContents) {
  Vec a{5, 6, 7, 8, 9};  // heap
  const Vec b = a;       // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a, b);
  a.push_back(10);
  EXPECT_NE(a, b);
  EXPECT_EQ(b.size(), 5u);
}

TEST(SmallVector, MoveStealsHeapStorage) {
  Vec a;
  for (std::uint64_t i = 0; i < 50; ++i) a.push_back(i);
  const auto* data_before = a.data();
  const Vec b = std::move(a);
  EXPECT_EQ(b.data(), data_before);  // heap buffer moved, not copied
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move) — documented state
}

TEST(SmallVector, MoveInlineCopies) {
  Vec a{1, 2};
  const Vec b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], 2u);
}

TEST(SmallVector, CopyAssignOverwrites) {
  Vec a{1, 2, 3};
  Vec b{9};
  b = a;
  EXPECT_EQ(b, a);
}

TEST(SmallVector, MoveAssignHeapToInlineTarget) {
  Vec a;
  for (std::uint64_t i = 0; i < 20; ++i) a.push_back(i);
  Vec b{7};
  b = std::move(a);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_EQ(b[19], 19u);
}

TEST(SmallVector, SelfAssignmentIsSafe) {
  Vec a{1, 2, 3};
  const Vec& alias = a;
  a = alias;
  EXPECT_EQ(a.size(), 3u);
}

TEST(SmallVector, Contains) {
  const Vec v{10, 20, 30};
  EXPECT_TRUE(v.contains(20));
  EXPECT_FALSE(v.contains(25));
  EXPECT_FALSE(Vec{}.contains(0));
}

TEST(SmallVector, PopBackAndClear) {
  Vec v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, ResizeGrowsWithFill) {
  Vec v{1};
  v.resize(6, 42);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[5], 42u);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVector, LexicographicOrder) {
  EXPECT_LT(Vec({1, 2}), Vec({1, 3}));
  EXPECT_LT(Vec({1, 2}), Vec({1, 2, 0}));
  EXPECT_FALSE(Vec({2}) < Vec({1, 9}));
}

TEST(SmallVector, EqualityRespectsOrder) {
  EXPECT_EQ(Vec({1, 2}), Vec({1, 2}));
  EXPECT_NE(Vec({1, 2}), Vec({2, 1}));
}

TEST(SmallVector, SpanConversion) {
  const Vec v{4, 5, 6};
  const std::span<const std::uint64_t> s = v;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 4u);
}

TEST(SmallVector, AtThrowsOutOfRange) {
  Vec v{1};
  EXPECT_THROW((void)v.at(1), CheckError);
  EXPECT_EQ(v.at(0), 1u);
}

TEST(SmallVector, ReserveKeepsContents) {
  Vec v{1, 2, 3};
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  EXPECT_EQ(v[2], 3u);
}

TEST(SmallVector, IterationMatchesIndexing) {
  Vec v;
  for (std::uint64_t i = 0; i < 12; ++i) v.push_back(i * i);
  std::uint64_t idx = 0;
  for (const std::uint64_t x : v) {
    EXPECT_EQ(x, idx * idx);
    ++idx;
  }
  EXPECT_EQ(idx, 12u);
}

TEST(SmallVector, AssignFromIterators) {
  std::vector<std::uint64_t> src(10);
  std::iota(src.begin(), src.end(), 100u);
  Vec v{1, 2, 3};
  v.assign(src.begin(), src.end());
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 109u);
}

}  // namespace
}  // namespace decycle::util
