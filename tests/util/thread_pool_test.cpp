#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace decycle::util {
namespace {

TEST(ThreadPool, RunsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunkedRangesPartitionExactly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1237;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_chunked(kN, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, SequentialConsistencyOfResults) {
  ThreadPool pool(8);
  std::vector<std::uint64_t> out(5000);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ManySmallBatches) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(7, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 350);
}

TEST(ThreadPool, ForWeightedUnitCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 997;
  std::vector<std::atomic<int>> hits(kN);
  const auto fn = [&](std::size_t i) { hits[i].fetch_add(1); };
  pool.for_weighted(kN, nullptr, fn);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ForWeightedPropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(3);
  const auto boom = [](std::size_t i) {
    if (i == 13) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.for_weighted(64, nullptr, boom), std::runtime_error);
  std::atomic<std::size_t> sum{0};
  const auto add = [&](std::size_t i) { sum.fetch_add(i); };
  pool.for_weighted(100, nullptr, add);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ForWeightedBackToBackBatches) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  const auto bump = [&](std::size_t) { total.fetch_add(1); };
  for (int round = 0; round < 200; ++round) pool.for_weighted(5, nullptr, bump);
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace decycle::util
