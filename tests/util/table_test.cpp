#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace decycle::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"k", "rate"});
  t.row().cell(std::uint64_t{3}).cell(0.5, 2);
  t.row().cell(std::uint64_t{10}).cell(1.0, 2);
  std::ostringstream out;
  t.print(out, "demo");
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("| k  | rate |"), std::string::npos);
  EXPECT_NE(text.find("| 3  | 0.50 |"), std::string::npos);
  EXPECT_NE(text.find("| 10 | 1.00 |"), std::string::npos);
}

TEST(Table, HeaderRuleMatchesWidths) {
  Table t({"ab"});
  t.row().cell("xyzw");
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("|------|"), std::string::npos);
}

TEST(Table, PassFailCells) {
  Table t({"claim", "ok"});
  t.row().cell("a").cell_ok(true);
  t.row().cell("b").cell_ok(false);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("PASS"), std::string::npos);
  EXPECT_NE(out.str().find("FAIL"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("overflow"), CheckError);
}

TEST(Table, RejectsRowUnderflowOnNextRow) {
  Table t({"a", "b"});
  t.row().cell("1");
  EXPECT_THROW(t.row(), CheckError);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), CheckError);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table(std::vector<std::string>{}), CheckError);
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace decycle::util
