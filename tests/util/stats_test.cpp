#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace decycle::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  // Sample variance: sum((x - mean)^2) / (n - 1) = 37.2
  EXPECT_NEAR(s.variance(), 37.2, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(37.2), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(3.0);
  OnlineStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

TEST(OnlineStats, MergeEmptyIntoEmptyStaysEmpty) {
  OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(OnlineStats, MergeIntoEmptyCopiesMinMaxAndMoments) {
  OnlineStats src;
  src.add(-2.0);
  src.add(4.0);
  src.add(10.0);
  OnlineStats dst;
  dst.merge(src);
  EXPECT_EQ(dst.count(), 3u);
  EXPECT_DOUBLE_EQ(dst.mean(), 4.0);
  EXPECT_EQ(dst.min(), -2.0);
  EXPECT_EQ(dst.max(), 10.0);
  EXPECT_DOUBLE_EQ(dst.variance(), src.variance());
}

TEST(OnlineStats, MergeSingleSamples) {
  OnlineStats a, b;
  a.add(1.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);  // ((1-3)² + (5-3)²) / (2-1)
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 5.0);
}

TEST(Percentiles, MedianAndExtremes) {
  Percentiles p;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 5.0);
}

TEST(Percentiles, Interpolates) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
}

TEST(Percentiles, EmptyReturnsZeroForEveryQuantile) {
  Percentiles p;
  EXPECT_EQ(p.count(), 0u);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.median(), 0.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 0.0);
}

TEST(Percentiles, SingleSampleIsEveryQuantile) {
  Percentiles p;
  p.add(42.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.37), 42.0);
  EXPECT_DOUBLE_EQ(p.median(), 42.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 42.0);
}

TEST(Percentiles, OutOfRangeQuantilesClamp) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.5), 2.0);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
  p.add(100.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(Wilson, CenteredForBalancedData) {
  const auto ci = wilson_interval(50, 100);
  EXPECT_NEAR(ci.estimate, 0.5, 1e-12);
  EXPECT_LT(ci.low, 0.5);
  EXPECT_GT(ci.high, 0.5);
  EXPECT_NEAR(ci.low, 0.404, 0.01);
  EXPECT_NEAR(ci.high, 0.596, 0.01);
}

TEST(Wilson, BoundaryZeroAndOne) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_EQ(zero.estimate, 0.0);
  EXPECT_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);

  const auto one = wilson_interval(50, 50);
  EXPECT_EQ(one.estimate, 1.0);
  EXPECT_LT(one.low, 1.0);
  EXPECT_EQ(one.high, 1.0);
}

TEST(Wilson, SingleTrialBoundaries) {
  // successes ∈ {0, trials} at the smallest possible trial count: the
  // interval must stay inside [0, 1] and keep the boundary pinned.
  const auto zero = wilson_interval(0, 1);
  EXPECT_EQ(zero.estimate, 0.0);
  EXPECT_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  EXPECT_LT(zero.high, 1.0);

  const auto one = wilson_interval(1, 1);
  EXPECT_EQ(one.estimate, 1.0);
  EXPECT_GT(one.low, 0.0);
  EXPECT_LT(one.low, 1.0);
  EXPECT_EQ(one.high, 1.0);
}

TEST(Wilson, ShrinksWithMoreTrials) {
  const auto small = wilson_interval(8, 10);
  const auto large = wilson_interval(800, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(Wilson, NoTrials) {
  const auto ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.low, 0.0);
  EXPECT_EQ(ci.high, 1.0);
}

TEST(BinomialCoefficient, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, 7), 0.0);
  EXPECT_NEAR(binomial_coefficient(50, 25), 1.2641060643775e14, 1e3);
}

TEST(Percentiles, MergeEmptyWindowsStaysEmpty) {
  Percentiles a;
  Percentiles b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.median(), 0.0);
}

TEST(Percentiles, MergeEmptyIntoPopulatedIsNoop) {
  Percentiles a;
  a.add(1.0);
  a.add(3.0);
  const Percentiles empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.median(), 2.0);
}

TEST(Percentiles, MergeIntoEmptyCopiesSamples) {
  Percentiles a;
  Percentiles b;
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.quantile(0.99), 5.0);
}

TEST(Percentiles, MergeEqualsConcatenation) {
  Percentiles merged;
  Percentiles other;
  Percentiles all;
  const std::vector<double> left = {9.0, 1.0, 4.0};
  const std::vector<double> right = {2.0, 8.0, 3.0, 7.0};
  for (const double x : left) {
    merged.add(x);
    all.add(x);
  }
  for (const double x : right) {
    other.add(x);
    all.add(x);
  }
  // Query before merging: merge must reset the lazy sort, not append into
  // a vector believed sorted.
  EXPECT_DOUBLE_EQ(merged.median(), 4.0);
  merged.merge(other);
  EXPECT_EQ(merged.count(), all.count());
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(Percentiles, MergeSingleSampleWindows) {
  Percentiles a;
  a.add(2.0);
  Percentiles b;
  b.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 2.0);
}

TEST(Percentiles, NonFiniteQuantileThrows) {
  Percentiles p;
  p.add(1.0);
  EXPECT_THROW((void)p.quantile(std::numeric_limits<double>::quiet_NaN()), CheckError);
  EXPECT_THROW((void)p.quantile(std::numeric_limits<double>::infinity()), CheckError);
}

TEST(OnlineStats, VarianceNeverNegativeAfterMerge) {
  // Chan's merge can cancel catastrophically when both halves hold nearly
  // identical values; variance must clamp at zero instead of going
  // epsilon-negative and turning stddev into NaN.
  OnlineStats a;
  OnlineStats b;
  const double v = 1e16;
  a.add(v);
  a.add(v);
  b.add(v);
  b.add(v);
  a.merge(b);
  EXPECT_GE(a.variance(), 0.0);
  EXPECT_FALSE(std::isnan(a.stddev()));
}

TEST(OnlineStats, SingleSampleVarianceIsZero) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace decycle::util
