/// \file work_steal_test.cpp
/// \brief Work-stealing batch scheduler: coverage, weighted splits,
/// exception handling, and a deque stress test aimed at ThreadSanitizer.
///
/// Test-suite names carry the WorkSteal prefix so the TSan CI lane's
/// -R filter picks every case up.
#include "util/work_steal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace decycle::util {
namespace {

TEST(WorkSteal, WeightedBatchCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 2048;
  // Heavily skewed costs: chunk i costs ~i^2, so a fixed even split would
  // leave the last lane with almost all of the work.
  std::vector<std::uint64_t> weights(kN);
  for (std::size_t i = 0; i < kN; ++i) weights[i] = i * i + 1;
  std::vector<std::atomic<int>> hits(kN);
  const auto fn = [&](std::size_t i) { hits[i].fetch_add(1); };
  pool.for_weighted(kN, weights.data(), fn);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkSteal, NullWeightsMatchForIndexed) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 513;
  std::vector<std::atomic<int>> hits(kN);
  const auto fn = [&](std::size_t i) { hits[i].fetch_add(1); };
  pool.for_weighted(kN, nullptr, fn);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkSteal, SingleItemRunsSerially) {
  ThreadPool pool(4);
  int calls = 0;
  const auto fn = [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  };
  const std::uint64_t w = 99;
  pool.for_weighted(1, &w, fn);
  EXPECT_EQ(calls, 1);
}

TEST(WorkSteal, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  const auto fn = [&](std::size_t) { called = true; };
  pool.for_weighted(0, nullptr, fn);
  EXPECT_FALSE(called);
}

TEST(WorkSteal, ExtremeSkewStillCoversAll) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  // One giant chunk up front; the rest negligible. The split must still
  // hand every later lane at least one chunk.
  std::vector<std::uint64_t> weights(kN, 1);
  weights[0] = std::uint64_t{1} << 40;
  std::vector<std::atomic<int>> hits(kN);
  const auto fn = [&](std::size_t i) { hits[i].fetch_add(1); };
  pool.for_weighted(kN, weights.data(), fn);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkSteal, FewerItemsThanLanes) {
  ThreadPool pool(8);
  for (std::size_t count = 1; count <= 8; ++count) {
    std::vector<std::atomic<int>> hits(count);
    const auto fn = [&](std::size_t i) { hits[i].fetch_add(1); };
    pool.for_weighted(count, nullptr, fn);
    for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(hits[i].load(), 1) << count << ":" << i;
  }
}

TEST(WorkSteal, WeightedExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(3);
  std::vector<std::uint64_t> weights(128, 1);
  const auto boom = [](std::size_t i) {
    if (i == 77) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.for_weighted(128, weights.data(), boom), std::runtime_error);
  std::atomic<std::size_t> sum{0};
  const auto add = [&](std::size_t i) { sum.fetch_add(i); };
  pool.for_weighted(100, nullptr, add);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(WorkSteal, SingleWorkerPoolCoversAll) {
  ThreadPool one(1);
  std::vector<std::atomic<int>> hits(300);
  const auto fn = [&](std::size_t i) { hits[i].fetch_add(1); };
  one.for_weighted(300, nullptr, fn);
  for (std::size_t i = 0; i < 300; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

/// TSan target: thousands of tiny chunks over many back-to-back batches
/// keep the deques short, which maximizes owner/thief collisions on the
/// last element — the Chase–Lev race the seq_cst fences must referee.
TEST(WorkSteal, DequeStressManySmallBatches) {
  ThreadPool pool(4);
  constexpr std::size_t kBatches = 200;
  constexpr std::size_t kN = 64;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::uint64_t> weights(kN);
  for (std::size_t i = 0; i < kN; ++i) weights[i] = (i % 7) + 1;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const auto fn = [&](std::size_t i) { total.fetch_add(i + 1, std::memory_order_relaxed); };
    if (b % 2 == 0) {
      pool.for_weighted(kN, weights.data(), fn);
    } else {
      pool.for_weighted(kN, nullptr, fn);
    }
  }
  EXPECT_EQ(total.load(), kBatches * (kN * (kN + 1) / 2));
}

/// TSan target: a deliberately unbalanced batch forces cross-lane steals —
/// lane 0's deque holds nearly everything and the other lanes drain it
/// concurrently while the owner pops from the opposite end.
TEST(WorkSteal, DequeStressForcedStealing) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 4096;
  // First chunk looks enormous, so the weighted split gives lane 0 almost
  // every chunk; lanes 1..7 start empty and must steal to contribute.
  std::vector<std::uint64_t> weights(kN, 1);
  weights[0] = std::uint64_t{1} << 32;
  std::vector<std::atomic<std::uint8_t>> hits(kN);
  std::atomic<int> spin{0};
  const auto fn = [&](std::size_t i) {
    // A touch of work per chunk so thieves have time to engage.
    for (int s = 0; s < 20; ++s) spin.fetch_add(1, std::memory_order_relaxed);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  };
  for (int round = 0; round < 10; ++round) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.for_weighted(kN, weights.data(), fn);
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(WorkSteal, StealCounterIsMonotonic) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.steal_count();
  std::atomic<std::uint64_t> sink{0};
  const auto fn = [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); };
  for (int b = 0; b < 50; ++b) pool.for_weighted(256, nullptr, fn);
  EXPECT_GE(pool.steal_count(), before);
}

}  // namespace
}  // namespace decycle::util
