/// \file pool_alloc_test.cpp
/// \brief Size-classed pool allocator: class rounding, free-list recycling,
/// oversize fallback, headered allocation, and TLS scope nesting.
#include "util/pool_alloc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace decycle::util {
namespace {

TEST(PoolAlloc, RecyclesFreedBlocks) {
  PoolAllocator pool;
  void* a = pool.allocate(100);
  ASSERT_NE(a, nullptr);
  pool.deallocate(a, 100);
  // LIFO free list: the very next same-class request reuses the block.
  void* b = pool.allocate(100);
  EXPECT_EQ(a, b);
  pool.deallocate(b, 100);
}

TEST(PoolAlloc, SameClassSharesFreeList) {
  PoolAllocator pool;
  // 100 and 120 both round to the 128-byte class.
  void* a = pool.allocate(100);
  pool.deallocate(a, 100);
  void* b = pool.allocate(120);
  EXPECT_EQ(a, b);
  pool.deallocate(b, 120);
}

TEST(PoolAlloc, DistinctClassesDoNotAlias) {
  PoolAllocator pool;
  void* small = pool.allocate(32);
  void* big = pool.allocate(4096);
  EXPECT_NE(small, big);
  // Writing the full rounded size of each must not corrupt the other.
  std::memset(small, 0xAA, 32);
  std::memset(big, 0xBB, 4096);
  EXPECT_EQ(static_cast<unsigned char*>(small)[31], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(big)[4095], 0xBB);
  pool.deallocate(small, 32);
  pool.deallocate(big, 4096);
}

TEST(PoolAlloc, SteadyStateNeedsNoNewSlabs) {
  PoolAllocator pool;
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(pool.allocate(256));
  for (void* p : blocks) pool.deallocate(p, 256);
  const std::uint64_t slabs_after_warm = pool.stats().slab_allocations;
  // Re-allocating the same working set must come entirely off free lists.
  blocks.clear();
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 64; ++i) blocks.push_back(pool.allocate(256));
    for (void* p : blocks) pool.deallocate(p, 256);
    blocks.clear();
  }
  EXPECT_EQ(pool.stats().slab_allocations, slabs_after_warm);
}

TEST(PoolAlloc, OversizeFallsThroughToHeap) {
  PoolAllocator pool;
  constexpr std::size_t kHuge = (std::size_t{1} << PoolAllocator::kMaxClassLog) + 1;
  void* p = pool.allocate(kHuge);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5C, kHuge);
  pool.deallocate(p, kHuge);
  EXPECT_EQ(pool.stats().oversize, 1u);
  EXPECT_EQ(pool.stats().slab_bytes, 0u);  // no slab was carved for it
}

TEST(PoolAlloc, StatsCountAllocationsAndSlabs) {
  PoolAllocator pool;
  EXPECT_EQ(pool.stats().allocations, 0u);
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  EXPECT_EQ(pool.stats().allocations, 2u);
  EXPECT_GE(pool.stats().slab_allocations, 1u);
  EXPECT_GE(pool.stats().slab_bytes, PoolAllocator::kSlabBytes);
  pool.deallocate(a, 64);
  pool.deallocate(b, 64);
}

TEST(PoolAlloc, BlocksAreMaxAligned) {
  PoolAllocator pool;
  for (const std::size_t bytes : {32ul, 100ul, 1000ul, 70000ul}) {
    void* p = pool.allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t), 0u) << bytes;
    pool.deallocate(p, bytes);
  }
}

TEST(PoolAlloc, ScopeRoutesPooledAllocate) {
  EXPECT_EQ(current_pool(), nullptr);
  PoolAllocator pool;
  {
    const PoolScope scope(&pool);
    EXPECT_EQ(current_pool(), &pool);
    void* p = pooled_allocate(48);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(pool.stats().allocations, 1u);
    pooled_deallocate(p);
  }
  EXPECT_EQ(current_pool(), nullptr);
}

TEST(PoolAlloc, ScopesNestAndRestore) {
  PoolAllocator outer, inner;
  const PoolScope a(&outer);
  {
    const PoolScope b(&inner);
    EXPECT_EQ(current_pool(), &inner);
    {
      const PoolScope c(nullptr);  // force the heap inside an outer scope
      EXPECT_EQ(current_pool(), nullptr);
      void* p = pooled_allocate(40);
      ASSERT_NE(p, nullptr);
      pooled_deallocate(p);
    }
    EXPECT_EQ(current_pool(), &inner);
  }
  EXPECT_EQ(current_pool(), &outer);
}

TEST(PoolAlloc, HeaderedBlockSurvivesScopeExit) {
  // The headered wrapper remembers its origin pool, so deletion works after
  // the scope that allocated it ended — the NodeProgram lifecycle.
  PoolAllocator pool;
  void* p = nullptr;
  {
    const PoolScope scope(&pool);
    p = pooled_allocate(200);
    std::memset(p, 0x3D, 200);
  }
  ASSERT_NE(p, nullptr);
  pooled_deallocate(p);  // no active scope: must route via the header
  // The block is back on the pool's free list: a scoped re-allocation of
  // the same class reuses it.
  const PoolScope scope(&pool);
  void* q = pooled_allocate(200);
  EXPECT_EQ(p, q);
  pooled_deallocate(q);
}

TEST(PoolAlloc, PooledAllocateOutsideScopeUsesHeap) {
  ASSERT_EQ(current_pool(), nullptr);
  void* p = pooled_allocate(128);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, 128);
  pooled_deallocate(p);
}

TEST(PoolAlloc, ManyClassesChurn) {
  PoolAllocator pool;
  std::vector<std::pair<void*, std::size_t>> live;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t bytes = 24 + (state >> 33) % 5000;
    if (live.size() > 64 || (live.size() > 8 && state % 3 == 0)) {
      const std::size_t at = state % live.size();
      pool.deallocate(live[at].first, live[at].second);
      live[at] = live.back();
      live.pop_back();
    } else {
      void* p = pool.allocate(bytes);
      std::memset(p, static_cast<int>(state & 0xFF), bytes);
      live.emplace_back(p, bytes);
    }
  }
  for (const auto& [p, bytes] : live) pool.deallocate(p, bytes);
}

}  // namespace
}  // namespace decycle::util
