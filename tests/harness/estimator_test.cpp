#include "harness/estimator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/rng.hpp"

namespace decycle::harness {
namespace {

TEST(Estimator, CountsDeterministicOutcomes) {
  const auto est = estimate_rate([](std::size_t i, std::uint64_t) { return i % 4 == 0; }, 100, 1);
  EXPECT_EQ(est.trials, 100u);
  EXPECT_EQ(est.successes, 25u);
  EXPECT_DOUBLE_EQ(est.rate(), 0.25);
}

TEST(Estimator, SeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  std::mutex mu;
  (void)estimate_rate(
      [&](std::size_t, std::uint64_t seed) {
        const std::lock_guard lock(mu);
        seeds.insert(seed);
        return true;
      },
      64, 7);
  EXPECT_EQ(seeds.size(), 64u);

  std::set<std::uint64_t> seeds_again;
  (void)estimate_rate(
      [&](std::size_t, std::uint64_t seed) {
        const std::lock_guard lock(mu);
        seeds_again.insert(seed);
        return true;
      },
      64, 7);
  EXPECT_EQ(seeds, seeds_again);
}

TEST(Estimator, ParallelMatchesSerial) {
  const auto trial = [](std::size_t, std::uint64_t seed) {
    util::Rng rng(seed);
    return rng.next_bool(0.3);
  };
  const auto serial = estimate_rate(trial, 500, 99, nullptr);
  util::ThreadPool pool(4);
  const auto parallel = estimate_rate(trial, 500, 99, &pool);
  EXPECT_EQ(serial.successes, parallel.successes);
}

TEST(Estimator, RateNearTrueProbability) {
  const auto est = estimate_rate(
      [](std::size_t, std::uint64_t seed) {
        util::Rng rng(seed);
        return rng.next_bool(0.7);
      },
      4000, 5);
  EXPECT_NEAR(est.rate(), 0.7, 0.05);
  EXPECT_LT(est.interval.low, 0.7);
  EXPECT_GT(est.interval.high, 0.7);
}

TEST(Estimator, ZeroTrials) {
  const auto est = estimate_rate([](std::size_t, std::uint64_t) { return true; }, 0, 1);
  EXPECT_EQ(est.trials, 0u);
  EXPECT_EQ(est.successes, 0u);
}

}  // namespace
}  // namespace decycle::harness
