#include "harness/estimator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/rng.hpp"

namespace decycle::harness {
namespace {

TEST(Estimator, CountsDeterministicOutcomes) {
  const auto est = estimate_rate([](std::size_t i, std::uint64_t) { return i % 4 == 0; }, 100, 1);
  EXPECT_EQ(est.trials, 100u);
  EXPECT_EQ(est.successes, 25u);
  EXPECT_DOUBLE_EQ(est.rate(), 0.25);
}

TEST(Estimator, SeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  std::mutex mu;
  (void)estimate_rate(
      [&](std::size_t, std::uint64_t seed) {
        const std::lock_guard lock(mu);
        seeds.insert(seed);
        return true;
      },
      64, 7);
  EXPECT_EQ(seeds.size(), 64u);

  std::set<std::uint64_t> seeds_again;
  (void)estimate_rate(
      [&](std::size_t, std::uint64_t seed) {
        const std::lock_guard lock(mu);
        seeds_again.insert(seed);
        return true;
      },
      64, 7);
  EXPECT_EQ(seeds, seeds_again);
}

TEST(Estimator, ParallelMatchesSerial) {
  const auto trial = [](std::size_t, std::uint64_t seed) {
    util::Rng rng(seed);
    return rng.next_bool(0.3);
  };
  const auto serial = estimate_rate(trial, 500, 99, nullptr);
  util::ThreadPool pool(4);
  const auto parallel = estimate_rate(trial, 500, 99, &pool);
  EXPECT_EQ(serial.successes, parallel.successes);
}

TEST(Estimator, RateNearTrueProbability) {
  const auto est = estimate_rate(
      [](std::size_t, std::uint64_t seed) {
        util::Rng rng(seed);
        return rng.next_bool(0.7);
      },
      4000, 5);
  EXPECT_NEAR(est.rate(), 0.7, 0.05);
  EXPECT_LT(est.interval.low, 0.7);
  EXPECT_GT(est.interval.high, 0.7);
}

TEST(Estimator, ZeroTrials) {
  const auto est = estimate_rate([](std::size_t, std::uint64_t) { return true; }, 0, 1);
  EXPECT_EQ(est.trials, 0u);
  EXPECT_EQ(est.successes, 0u);
}

TEST(Estimator, LanesSerialFallbackMatchesPooledAndUnlaned) {
  // The laned estimator without a pool must fall back to one serial lane —
  // never touch a pool pointer — and produce the same estimate as the
  // pooled run and the unlaned overload (shared trial_seed derivation).
  const auto trial = [](std::size_t, std::uint64_t seed) {
    util::Rng rng(seed);
    return rng.next_bool(0.4);
  };
  const LaneFactory make_lane = [&](std::size_t) { return TrialFn(trial); };
  const auto serial = estimate_rate_lanes(make_lane, 300, 77, nullptr);
  util::ThreadPool pool(4);
  const auto pooled = estimate_rate_lanes(make_lane, 300, 77, &pool);
  const auto unlaned = estimate_rate(trial, 300, 77);
  EXPECT_EQ(serial.successes, pooled.successes);
  EXPECT_EQ(serial.successes, unlaned.successes);
  EXPECT_EQ(serial.trials, 300u);
}

TEST(Estimator, LanesZeroTrialsSkipsLaneConstruction) {
  // trials == 0 must not build per-lane state (lanes can own a Simulator)
  // and must report the empty Wilson interval, with or without a pool.
  std::size_t lanes_built = 0;
  const LaneFactory make_lane = [&](std::size_t) {
    ++lanes_built;
    return TrialFn([](std::size_t, std::uint64_t) { return true; });
  };
  const auto serial = estimate_rate_lanes(make_lane, 0, 5, nullptr);
  util::ThreadPool pool(2);
  const auto pooled = estimate_rate_lanes(make_lane, 0, 5, &pool);
  EXPECT_EQ(lanes_built, 0u);
  for (const auto& est : {serial, pooled}) {
    EXPECT_EQ(est.trials, 0u);
    EXPECT_EQ(est.successes, 0u);
    EXPECT_EQ(est.interval.low, 0.0);
    EXPECT_EQ(est.interval.high, 1.0);
  }
}

TEST(Estimator, LanesCountPolicy) {
  EXPECT_EQ(lane_count(nullptr, 100), 1u);  // no pool: always one lane
  util::ThreadPool pool(3);
  EXPECT_EQ(lane_count(&pool, 100), 3u);
  EXPECT_EQ(lane_count(&pool, 2), 2u);  // never more lanes than trials
}

}  // namespace
}  // namespace decycle::harness
