#include "lab/runner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lab/json.hpp"
#include "lab/scenario.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace decycle::lab {
namespace {

std::string run_matrix_jsonl(const std::vector<std::string>& tokens, util::ThreadPool* pool,
                             bool reuse) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(tokens);
  LabOptions opts;
  opts.pool = pool;
  opts.reuse_simulators = reuse;
  const LabRunner runner(opts);
  const auto results = runner.run_matrix(spec.expand());
  return matrix_jsonl(spec, results, /*include_timing=*/false);
}

// The acceptance-criterion matrix: families with opposite ground truths,
// core algorithms plus a registry baseline (color_coding spans k=4,5), and
// a lossy adversary, kept small enough for CI.
const std::vector<std::string> kMatrix = {
    "family=planted,ckfree_highgirth",                 "k=4,5",     "n=20",
    "eps=0.15",                                        "trials=10", "seed=33",
    "algo=tester,edge_checker,threshold,color_coding", "adversary=none,uniform:0.3"};

/// The lab determinism contract: byte-identical JSON for the same matrix at
/// 1 and 8 threads, and with simulator reuse on or off.
TEST(LabRunner, ByteIdenticalAcrossThreadsAndReuse) {
  const std::string serial = run_matrix_jsonl(kMatrix, nullptr, true);
  util::ThreadPool pool8(8);
  EXPECT_EQ(serial, run_matrix_jsonl(kMatrix, &pool8, true)) << "8 threads changed the bytes";
  EXPECT_EQ(serial, run_matrix_jsonl(kMatrix, &pool8, false))
      << "disabling Simulator reuse changed the bytes";
  util::ThreadPool pool3(3);
  EXPECT_EQ(serial, run_matrix_jsonl(kMatrix, &pool3, true)) << "3 threads changed the bytes";
}

/// Registry dispatch determinism for the baseline algorithms at their fixed
/// k: the same 1/3/8-thread and reuse-on/off byte-identity contract the
/// core algorithms honor — c4 and triangle additionally exercise the
/// Simulator&-reset overloads the registry routes them through.
TEST(LabRunner, BaselineAlgosByteIdenticalAcrossThreadsAndReuse) {
  const std::vector<std::vector<std::string>> matrices = {
      {"family=planted,ckfree_highgirth", "k=4", "n=20", "trials=10", "seed=44",
       "algo=c4,color_coding", "adversary=none,uniform:0.3"},
      {"family=planted,ckfree_bipartite", "k=3", "n=20", "trials=10", "seed=44",
       "algo=triangle", "adversary=none,uniform:0.3"},
  };
  util::ThreadPool pool8(8);
  util::ThreadPool pool3(3);
  for (const auto& tokens : matrices) {
    const std::string serial = run_matrix_jsonl(tokens, nullptr, true);
    EXPECT_EQ(serial, run_matrix_jsonl(tokens, &pool8, true)) << "8 threads changed the bytes";
    EXPECT_EQ(serial, run_matrix_jsonl(tokens, &pool8, false))
        << "disabling Simulator reuse changed the bytes";
    EXPECT_EQ(serial, run_matrix_jsonl(tokens, &pool3, true)) << "3 threads changed the bytes";
  }
}

/// Baseline cells are full lab citizens: detection on instances their
/// technique covers, soundness (validated witnesses) on free ones, and the
/// generic counter pipeline for algorithm-specific instrumentation.
TEST(LabRunner, BaselineAlgosDetectAndStaySound) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=wheel", "k=3", "n=12", "trials=8", "seed=6", "algo=triangle", "reps=128"});
  const LabRunner runner{LabOptions{}};
  const auto results = runner.run_matrix(spec.expand());
  ASSERT_EQ(results.size(), 1u);
  // Every wheel vertex has a triangle through the hub; 128 sampling
  // iterations make a miss vanishingly unlikely.
  EXPECT_EQ(results[0].rejections, 8u);
  EXPECT_EQ(results[0].repetitions, 128u);

  const ScenarioSpec cc = ScenarioSpec::parse_tokens(
      {"family=planted,ckfree_highgirth", "k=5", "n=20", "trials=6", "seed=9",
       "algo=color_coding"});
  for (const CellResult& res : runner.run_matrix(cc.expand())) {
    if (res.truth == GroundTruth::kCkFree) {
      EXPECT_EQ(res.rejections, 0u) << res.cell.key();
      EXPECT_FALSE(res.soundness_violation);
    } else {
      EXPECT_EQ(res.rejections, res.trials) << res.cell.key();  // ⌈e^k·ln3⌉ auto iterations
    }
    EXPECT_GT(res.counter("iterations_total"), 0u);
    EXPECT_NE(res.to_json(false).find("\"iterations_total\":"), std::string::npos);
  }
}

/// The model axis end-to-end: clique cells run the clique-only detector,
/// stay exact on both ground truths, tag every JSONL line with the model
/// column, and honor the same byte-identity contract as congest cells.
TEST(LabRunner, CliqueModelCellsRunExactAndTagTheModelColumn) {
  const std::vector<std::string> tokens = {
      "family=planted,ckfree_highgirth", "k=5", "n=24", "trials=6", "seed=12",
      "model=clique", "algo=clique_hcycle"};
  const std::string serial = run_matrix_jsonl(tokens, nullptr, true);
  EXPECT_NE(serial.find("\"model\":\"clique\""), std::string::npos);
  util::ThreadPool pool8(8);
  EXPECT_EQ(serial, run_matrix_jsonl(tokens, &pool8, true)) << "8 threads changed the bytes";
  EXPECT_EQ(serial, run_matrix_jsonl(tokens, &pool8, false))
      << "disabling Simulator reuse changed the bytes";

  const ScenarioSpec spec = ScenarioSpec::parse_tokens(tokens);
  const LabRunner runner{LabOptions{}};
  for (const CellResult& res : runner.run_matrix(spec.expand())) {
    // Drop-free clique runs are exact: every planted trial rejects with a
    // validated witness, every Ck-free trial accepts.
    if (res.truth == GroundTruth::kCkFree) {
      EXPECT_EQ(res.rejections, 0u) << res.cell.key();
    } else {
      EXPECT_EQ(res.rejections, res.trials) << res.cell.key();
    }
    EXPECT_FALSE(res.soundness_violation);
    EXPECT_GT(res.counter("sampled_vertices_total"), 0u);
    EXPECT_NE(res.to_json(false).find("\"phases_total\":"), std::string::npos);
  }

  // Default cells tag congest — the column is unconditional even though
  // key() (and thus cell seeds) only change for non-congest models.
  const std::string congest =
      run_matrix_jsonl({"family=planted", "k=5", "n=16", "trials=2", "seed=3"}, nullptr, true);
  EXPECT_NE(congest.find("\"model\":\"congest\""), std::string::npos);
}

TEST(LabRunner, FreshGraphModeIsDeterministicToo) {
  const std::vector<std::string> tokens = {"family=planted", "k=5",       "n=20",
                                           "eps=0.15",       "trials=8",  "seed=5",
                                           "seed_mode=fresh"};
  const std::string serial = run_matrix_jsonl(tokens, nullptr, true);
  util::ThreadPool pool8(8);
  EXPECT_EQ(serial, run_matrix_jsonl(tokens, &pool8, true));
  EXPECT_NE(serial.find("\"seed_mode\":\"fresh\""), std::string::npos);
  EXPECT_NE(serial.find("mean_vertices"), std::string::npos);
}

TEST(LabRunner, SoundnessHoldsOnCkFreeCells) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=ckfree_forest,ckfree_highgirth", "k=4,5", "n=24", "trials=12", "seed=11"});
  const LabRunner runner{LabOptions{}};
  for (const CellResult& res : runner.run_matrix(spec.expand())) {
    EXPECT_EQ(res.truth, GroundTruth::kCkFree) << res.cell.key();
    EXPECT_EQ(res.rejections, 0u) << res.cell.key();
    EXPECT_FALSE(res.soundness_violation);
    EXPECT_EQ(res.reject_interval.estimate, 0.0);
  }
}

TEST(LabRunner, DetectsPlantedCyclesAtTheoremRate) {
  // eps below the planted certificate (4 cycles / 23 edges ~ 0.17), so
  // Theorem 1's >= 2/3 detection bound applies.
  const ScenarioSpec spec =
      ScenarioSpec::parse_tokens({"family=planted", "k=5", "n=20", "eps=0.15", "trials=24",
                                  "seed=99"});
  const LabRunner runner{LabOptions{}};
  const auto results = runner.run_matrix(spec.expand());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].truth, GroundTruth::kFar);
  EXPECT_GT(results[0].certified_epsilon, 0.15);
  EXPECT_GE(results[0].reject_interval.estimate, 2.0 / 3.0);
  EXPECT_GT(results[0].repetitions, 0u);
  EXPECT_GE(results[0].max_bundle, 1u);  // Lemma-3 instrumentation flows through
}

TEST(LabRunner, EdgeCheckerFindsCyclesOnWheel) {
  // Every wheel edge lies on a triangle through the hub, so the
  // deterministic checker with k=3 must fire on every trial.
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=wheel", "k=3", "n=16", "trials=10", "seed=3", "algo=edge_checker"});
  const LabRunner runner{LabOptions{}};
  const auto results = runner.run_matrix(spec.expand());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rejections, 10u);
  EXPECT_EQ(results[0].repetitions, 0u);  // edge checker has no repetitions
}

TEST(LabRunner, ThresholdCellsDetectPlantedAndReportBudgetStats) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "n=20", "trials=12", "seed=4", "algo=threshold",
       "budget=8", "track=4"});
  const LabRunner runner{LabOptions{}};
  const auto results = runner.run_matrix(spec.expand());
  ASSERT_EQ(results.size(), 1u);
  const CellResult& r = results[0];
  EXPECT_EQ(r.truth, GroundTruth::kFar);
  EXPECT_EQ(r.repetitions, 1u);  // one sweep by default
  EXPECT_GE(r.reject_interval.estimate, 2.0 / 3.0);
  EXPECT_GT(r.counter("seeded_total"), 0u);
  EXPECT_EQ(r.counter("nonexistent_counter"), 0u);
  EXPECT_EQ(r.truncated_trials, 0u);
  const std::string json = r.to_json(false);
  EXPECT_NE(json.find("\"algo\":\"threshold\""), std::string::npos);
  EXPECT_NE(json.find("\"budget\":\"8\""), std::string::npos);
  EXPECT_NE(json.find("\"track\":4"), std::string::npos);
  EXPECT_NE(json.find("\"seeded_total\":"), std::string::npos);
  EXPECT_NE(json.find("\"budget_truncated_total\":"), std::string::npos);
  EXPECT_NE(json.find("\"peak_tracked\":"), std::string::npos);
}

TEST(LabRunner, ThresholdSoundnessUnderTightBudgets) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=ckfree_forest,ckfree_highgirth", "k=5", "n=24", "trials=8", "seed=13",
       "algo=threshold", "budget=1", "track=1"});
  const LabRunner runner{LabOptions{}};
  for (const CellResult& res : runner.run_matrix(spec.expand())) {
    EXPECT_EQ(res.rejections, 0u) << res.cell.key();
    EXPECT_FALSE(res.soundness_violation) << res.cell.key();
  }
}

TEST(LabRunner, AdversaryDropsAreCountedAndSoundnessSurvives) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=ckfree_highgirth", "k=5", "n=24", "trials=6", "seed=8",
       "adversary=uniform:0.5"});
  const LabRunner runner{LabOptions{}};
  const auto results = runner.run_matrix(spec.expand());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].dropped_total, 0u);
  EXPECT_EQ(results[0].rejections, 0u);  // loss can only suppress detections
}

TEST(LabRunner, LegacyDeliveryAgreesWithArena) {
  const std::vector<std::string> base = {"family=planted", "k=4", "n=16", "eps=0.2",
                                         "trials=6",       "seed=21"};
  std::vector<std::string> legacy = base;
  legacy.push_back("delivery=legacy");
  const std::string a = run_matrix_jsonl(base, nullptr, true);
  const std::string b = run_matrix_jsonl(legacy, nullptr, true);
  // Identical up to the delivery tag: swap it and compare bytes.
  std::string b_normalized = b;
  const std::string from = "\"delivery\":\"legacy\"";
  const std::string to = "\"delivery\":\"arena\"";
  for (std::size_t pos = 0; (pos = b_normalized.find(from, pos)) != std::string::npos;) {
    b_normalized.replace(pos, from.size(), to);
    pos += to.size();
  }
  EXPECT_EQ(a, b_normalized);
}

TEST(LabRunner, EdgeCheckerOnEdgelessInstanceFailsLoudly) {
  // tree with n=1 builds a 0-edge graph; drawing an edge from it must be a
  // clear error, not an out-of-bounds read.
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=tree", "k=4", "n=1", "trials=2", "algo=edge_checker"});
  const LabRunner runner{LabOptions{}};
  EXPECT_THROW((void)runner.run_matrix(spec.expand()), util::CheckError);
}

TEST(LabRunner, MetaRecordEchoesTheSpec) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=cycle", "k=3,4", "n=8", "eps=0.5", "trials=2", "seed=77"});
  const std::string meta = meta_record(spec, spec.expand().size());
  EXPECT_EQ(meta,
            "{\"type\":\"meta\",\"tool\":\"decycle_lab\",\"format\":1,\"seed\":77,"
            "\"trials\":2,\"reps\":0,\"budget\":\"16\",\"track\":8,"
            "\"seed_mode\":\"shared\",\"delivery\":\"arena\","
            "\"cells\":2,\"axes\":{\"family\":[\"cycle\"],\"k\":[3,4],\"eps\":[0.5],"
            "\"n\":[8],\"adversary\":[\"none\"],\"model\":[\"congest\"],"
            "\"algo\":[\"tester\"]}}");
}

TEST(JsonWriter, EscapesAndFormats) {
  JsonWriter w;
  w.begin_object()
      .field("s", "a\"b\\c\nd")
      .field("f", 0.125)
      .field("neg", std::int64_t{-3})
      .field("flag", true);
  w.key("arr").begin_array().value(1u).value(2u).end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"f\":0.125,\"neg\":-3,\"flag\":true,"
            "\"arr\":[1,2]}");
  EXPECT_EQ(json_double(0.1), "0.1");  // shortest round-trip form
}

}  // namespace
}  // namespace decycle::lab
