/// Seed-derivation regression pins.
///
/// Every lab cell, every trial, and every soak instance derives its
/// randomness from content-addressed 64-bit seeds: splitmix64 folds over a
/// canonical identity string (cell key, "soak/v1 ..." instance id) or over
/// (base seed, trial index). These derivations are *contracts*: the nightly
/// golden JSONL, every checked-in repro file, and the byte-replayability of
/// soak campaigns all assume they never move. A refactor that innocently
/// reorders a key=value field or retags a fold would silently shift every
/// cell and golden at once — this test pins golden hashes for fixed specs so
/// such a change fails loudly here first, where the intent is documented.
///
/// If one of these values changes INTENTIONALLY: regenerate
/// ci/golden/nightly_matrix.jsonl, expect every existing soak repro file and
/// campaign log to be invalidated, and update the pinned constants in the
/// same commit.
///
/// Since the engine refactor the derivations live in engine/lanes.hpp
/// (trial_seed, fold_seed) and harness:: re-exports them — this test pins
/// both spellings so neither the definitions nor the aliases can drift.
#include <gtest/gtest.h>

#include "engine/lanes.hpp"
#include "harness/estimator.hpp"
#include "lab/scenario.hpp"
#include "soak/space.hpp"

namespace decycle {
namespace {

TEST(SeedStability, LabCellKeyFormatIsPinned) {
  // cell_seed folds the key string, so the key format IS the seed contract.
  const lab::ScenarioCell dflt;
  EXPECT_EQ(dflt.key(), "family=planted k=5 eps=0.1 n=64 adversary=none algo=tester");

  const lab::ScenarioSpec spec = lab::ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "eps=0.125", "n=24", "adversary=uniform:0.25",
       "algo=threshold", "seed=2026"});
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key(),
            "family=planted k=5 eps=0.125 n=24 adversary=uniform:0.25 algo=threshold");
}

TEST(SeedStability, LabCellSeedsArePinned) {
  const lab::ScenarioCell dflt;  // base_seed 1
  EXPECT_EQ(dflt.cell_seed(), 0x1ecba27137162d62ULL);

  const lab::ScenarioSpec spec = lab::ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "eps=0.125", "n=24", "adversary=uniform:0.25",
       "algo=threshold", "seed=2026"});
  EXPECT_EQ(spec.expand()[0].cell_seed(), 0xba67d8b3c254fc2cULL);
}

TEST(SeedStability, TrialSeedsArePinned) {
  // Shared by estimate_rate, estimate_rate_lanes, engine batches, and the
  // lab runner — the reason their estimates are bit-compatible.
  EXPECT_EQ(engine::trial_seed(1, 0), 0xe9fd6049d65af21eULL);
  EXPECT_EQ(engine::trial_seed(0xDEADBEEFULL, 41), 0x89c396a89a1c5738ULL);
  // The harness spelling must stay the same function, not a reimplementation.
  constexpr std::uint64_t (*harness_fn)(std::uint64_t, std::size_t) = &harness::trial_seed;
  constexpr std::uint64_t (*engine_fn)(std::uint64_t, std::size_t) = &engine::trial_seed;
  static_assert(harness_fn == engine_fn);
}

TEST(SeedStability, FoldSeedIsPinned) {
  // The one byte-fold both cell_seed and instance_seed go through. Pinned
  // directly so a refactor of either caller can't quietly change the fold.
  EXPECT_EQ(engine::fold_seed(0, ""), 0u);
  EXPECT_EQ(engine::fold_seed(util::splitmix64(1 ^ 0x6c61625f63656c6cULL),
                              "family=planted k=5 eps=0.1 n=64 adversary=none algo=tester"),
            0x1ecba27137162d62ULL);
}

TEST(SeedStability, SoakInstanceSeedsArePinned) {
  // "soak/v1 seed=<S> instance=<I>" folded under the soak tag: the contract
  // that makes a campaign byte-replayable from (seed, index) alone and
  // keeps repro files valid across refactors.
  EXPECT_EQ(soak::SoakSpace::instance_seed(1, 0), 0x27fb06023535bef2ULL);
  EXPECT_EQ(soak::SoakSpace::instance_seed(1, 499), 0x289aff775d8dba00ULL);
  EXPECT_EQ(soak::SoakSpace::instance_seed(2026, 7), 0xae26d3f24606c829ULL);
}

}  // namespace
}  // namespace decycle
