#include "lab/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::lab {
namespace {

/// Parses tokens and returns the CheckError message (empty = no throw).
std::string parse_error(std::vector<std::string> tokens) {
  try {
    (void)ScenarioSpec::parse_tokens(tokens);
  } catch (const util::CheckError& e) {
    return e.what();
  }
  return {};
}

TEST(ScenarioSpec, DefaultsAreRunnable) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens({});
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].family, "planted");
  EXPECT_EQ(cells[0].k, 5u);
  ASSERT_NE(cells[0].algo, nullptr);
  EXPECT_EQ(cells[0].algo->name(), "tester");
}

TEST(ScenarioSpec, CommaListsAndRangesExpand) {
  const std::vector<std::string> tokens = {"family=cycle,planted", "k=3,5", "n=8..16:4",
                                           "eps=0.1,0.2", "trials=7"};
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(tokens);
  EXPECT_EQ(spec.sizes, (std::vector<std::uint64_t>{8, 12, 16}));
  const auto cells = spec.expand();
  // 2 families x 2 k x 2 eps x 3 n = 24 cells, indexes sequential.
  ASSERT_EQ(cells.size(), 24u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].trials, 7u);
  }
  // Fixed nesting order: family outermost, algo innermost.
  EXPECT_EQ(cells[0].family, "cycle");
  EXPECT_EQ(cells[12].family, "planted");
  EXPECT_EQ(cells[0].k, 3u);
  EXPECT_EQ(cells[6].k, 5u);
}

TEST(ScenarioSpec, RangeWithoutStepAndSingletons) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens({"n=3..5", "k=4"});
  EXPECT_EQ(spec.sizes, (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(spec.ks, (std::vector<unsigned>{4}));
}

TEST(ScenarioSpec, UnknownKeyNamesItselfAndTheAlternatives) {
  const std::string err = parse_error({"famly=cycle"});
  EXPECT_NE(err.find("unknown scenario key 'famly'"), std::string::npos) << err;
  EXPECT_NE(err.find("family"), std::string::npos) << err;
}

TEST(ScenarioSpec, UnknownFamilyListsKnownOnes) {
  const std::string err = parse_error({"family=petersen"});
  EXPECT_NE(err.find("unknown graph family 'petersen'"), std::string::npos) << err;
  EXPECT_NE(err.find("planted"), std::string::npos) << err;
  EXPECT_NE(err.find("ckfree_highgirth"), std::string::npos) << err;
}

TEST(ScenarioSpec, BadValuesAreRejectedWithClearMessages) {
  EXPECT_NE(parse_error({"k=abc"}).find("expected unsigned integer"), std::string::npos);
  EXPECT_NE(parse_error({"k=2"}).find("must be >= 3"), std::string::npos);
  EXPECT_NE(parse_error({"eps=0"}).find("(0, 1]"), std::string::npos);
  EXPECT_NE(parse_error({"eps=1.5"}).find("(0, 1]"), std::string::npos);
  EXPECT_NE(parse_error({"trials=0"}).find("at least one trial"), std::string::npos);
  EXPECT_NE(parse_error({"n=0"}).find("positive"), std::string::npos);
  EXPECT_NE(parse_error({"algo=quantum"}).find("unknown algorithm 'quantum'"),
            std::string::npos);
  EXPECT_NE(parse_error({"seed_mode=both"}).find("shared or fresh"), std::string::npos);
  EXPECT_NE(parse_error({"delivery=warp"}).find("arena or legacy"), std::string::npos);
}

TEST(ScenarioSpec, ThresholdAlgoAndKnobsParse) {
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=planted", "algo=threshold", "budget=4,8", "track=3"});
  ASSERT_EQ(spec.algos.size(), 1u);
  ASSERT_NE(spec.algos[0], nullptr);
  EXPECT_EQ(spec.algos[0]->name(), "threshold");
  EXPECT_EQ(spec.budget.name(), "4,8");
  EXPECT_EQ(spec.track, 3u);
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].budget.name(), "4,8");
  EXPECT_EQ(cells[0].track, 3u);
  EXPECT_NE(cells[0].key().find("algo=threshold"), std::string::npos);

  // Unknown-algo errors now advertise the threshold family too.
  EXPECT_NE(parse_error({"algo=quantum"}).find("threshold"), std::string::npos);
  EXPECT_NE(parse_error({"budget=bogus"}).find("budget schedule"), std::string::npos);
  EXPECT_NE(parse_error({"budget=4,0"}).find("zero entry"), std::string::npos);
}

TEST(ScenarioSpec, RejectsSizesBeyondVertexWidth) {
  // Builders take 32-bit Vertex ids; truncation would silently build a
  // different instance than the JSON record claims.
  EXPECT_NE(parse_error({"n=4294967299"}).find("does not fit a 32-bit vertex id"),
            std::string::npos);
  EXPECT_NE(validate_family("grid", 4, 70000).find("overflow"), std::string::npos);
}

TEST(ScenarioSpec, BadRangesAreRejected) {
  EXPECT_NE(parse_error({"n=9..3"}).find("empty (lo > hi)"), std::string::npos);
  EXPECT_NE(parse_error({"n=3..9:0"}).find("step must be positive"), std::string::npos);
}

TEST(ScenarioSpec, MalformedRangeNamesTheKeyAndTheOffendingRange) {
  // The error must carry enough to fix the command line: the key it was
  // parsed under and the literal range that is empty.
  const std::string err = parse_error({"n=100..10"});
  EXPECT_NE(err.find("scenario key 'n'"), std::string::npos) << err;
  EXPECT_NE(err.find("100..10"), std::string::npos) << err;
  EXPECT_NE(err.find("empty (lo > hi)"), std::string::npos) << err;
}

TEST(ScenarioSpec, DuplicateKeysAreRejectedWithTheMergeHint) {
  // parse() consumes (key, value) pairs; a repeated key would silently
  // override half the matrix. The message names the key and the accepted
  // alternative (one comma list).
  const std::string err = parse_error({"k=4", "k=5"});
  EXPECT_NE(err.find("scenario key 'k' given twice"), std::string::npos) << err;
  EXPECT_NE(err.find("k=v1,v2"), std::string::npos) << err;
  // Any key, not just axes.
  EXPECT_NE(parse_error({"trials=2", "trials=3"}).find("given twice"), std::string::npos);
  // Distinct keys still parse.
  EXPECT_EQ(parse_error({"k=4", "n=16"}), "");
}

TEST(ScenarioSpec, UnknownAdversaryNamesTheAcceptedOnes) {
  const std::string err = parse_error({"adversary=gamma:0.1"});
  EXPECT_NE(err.find("unknown adversary 'gamma'"), std::string::npos) << err;
  for (const char* accepted : {"none", "uniform:R", "oneway:R", "late:R"}) {
    EXPECT_NE(err.find(accepted), std::string::npos) << err;
  }
}

TEST(ScenarioSpec, CapabilityViolationNamesTheAcceptingAlternatives) {
  // algo=triangle is k=3 only; the k=5 cell must die at expand() naming the
  // detector's range and every registered algorithm that does accept k=5.
  const ScenarioSpec spec =
      ScenarioSpec::parse_tokens({"family=planted", "k=5", "algo=triangle"});
  try {
    (void)spec.expand();
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'triangle'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("k in [3, 3]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("algorithms accepting k=5"), std::string::npos) << msg;
    for (const char* accepted : {"tester", "edge_checker", "threshold"}) {
      EXPECT_NE(msg.find(accepted), std::string::npos) << msg;
    }
    EXPECT_EQ(msg.find("c4"), std::string::npos) << msg;  // k=4 only: not suggested
  }
}

TEST(ScenarioSpec, TokensMustBeKeyValue) {
  EXPECT_NE(parse_error({"--family"}).find("not of the form key=value"), std::string::npos);
}

TEST(ScenarioSpec, ExpandRejectsUnbuildableCells) {
  // ckfree_bipartite is only Ck-free for odd k; the matrix must refuse the
  // k=4 cell loudly instead of running a meaningless soundness experiment.
  const ScenarioSpec spec = ScenarioSpec::parse_tokens({"family=ckfree_bipartite", "k=4,5"});
  try {
    (void)spec.expand();
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("odd k"), std::string::npos) << e.what();
  }
}

TEST(ScenarioSpec, BaselineAlgosParseFromTheRegistry) {
  // The baselines are ordinary algo= axis values — parsed by registry
  // lookup, not a hand-maintained list.
  const ScenarioSpec spec =
      ScenarioSpec::parse_tokens({"family=planted", "k=4", "algo=tester,c4,color_coding"});
  ASSERT_EQ(spec.algos.size(), 3u);
  EXPECT_EQ(spec.algos[1]->name(), "c4");
  EXPECT_EQ(spec.algos[2]->name(), "color_coding");
  EXPECT_EQ(spec.expand().size(), 3u);

  // Unknown-algo errors name every registered detector.
  const std::string err = parse_error({"algo=quantum"});
  for (const char* known : {"tester", "edge_checker", "threshold", "c4", "triangle",
                            "color_coding"}) {
    EXPECT_NE(err.find(known), std::string::npos) << err;
  }
}

TEST(ScenarioSpec, ExpandRejectsCapabilityViolations) {
  // The FRST C4 technique provably fails for k >= 5; a matrix pairing
  // algo=c4 with k=5 must fail loudly, naming the range and the registered
  // alternatives that do accept k=5 — not silently run meaningless cells.
  const ScenarioSpec spec = ScenarioSpec::parse_tokens({"family=planted", "k=5", "algo=c4"});
  try {
    (void)spec.expand();
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'c4'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("k in [4, 4]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("got k=5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tester"), std::string::npos) << msg;      // an accepted alternative
    EXPECT_NE(msg.find("threshold"), std::string::npos) << msg;   // another one
    EXPECT_EQ(msg.find("triangle"), std::string::npos) << msg;    // k=3 only: not suggested
  }
  // Only the k values actually out of range are rejected: triangle at k=3
  // together with k=4 fails, alone it expands.
  const ScenarioSpec ok = ScenarioSpec::parse_tokens({"family=planted", "k=3", "algo=triangle"});
  EXPECT_EQ(ok.expand().size(), 1u);
  const ScenarioSpec bad =
      ScenarioSpec::parse_tokens({"family=planted", "k=3,4", "algo=triangle"});
  EXPECT_THROW((void)bad.expand(), util::CheckError);
}

TEST(ScenarioSpec, ModelAxisParsesExpandsAndTagsKeys) {
  // Default: the congest singleton, and key() carries no model suffix so
  // every pre-model cell seed (and the golden nightly bytes) is unchanged.
  const ScenarioSpec def = ScenarioSpec::parse_tokens({"family=cycle", "k=5", "n=10"});
  ASSERT_EQ(def.models.size(), 1u);
  EXPECT_EQ(def.models[0], &congest::CommModel::congest());
  EXPECT_EQ(def.expand()[0].key().find("model="), std::string::npos);

  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "n=20", "model=clique", "algo=clique_hcycle"});
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].model, &congest::CommModel::clique());
  EXPECT_NE(cells[0].key().find(" model=clique"), std::string::npos) << cells[0].key();

  // model expands as an axis like any other; nesting puts it between
  // adversary and algo.
  const ScenarioSpec multi = ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "model=congest,clique", "algo=color_coding"});
  const auto mcells = multi.expand();
  ASSERT_EQ(mcells.size(), 2u);
  EXPECT_EQ(mcells[0].model->name(), "congest");
  EXPECT_EQ(mcells[1].model->name(), "clique");
  EXPECT_NE(mcells[0].cell_seed(), mcells[1].cell_seed());
}

TEST(ScenarioSpec, UnknownModelListsKnownOnes) {
  const std::string err = parse_error({"model=quantum"});
  EXPECT_NE(err.find("unknown communication model 'quantum'"), std::string::npos) << err;
  EXPECT_NE(err.find("congest, broadcast, clique"), std::string::npos) << err;
}

TEST(ScenarioSpec, ExpandRejectsModelCapabilityViolations) {
  // The FO17 tester is a CONGEST algorithm; pairing it with model=clique
  // must die loudly at expand(), naming the models it does run under and
  // every registered algorithm that accepts the clique — not silently run
  // the wrong model.
  const ScenarioSpec spec = ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "model=clique", "algo=tester"});
  try {
    (void)spec.expand();
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("scenario matrix contains an unsupported cell"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("algorithm 'tester' runs under models [congest]"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("got model 'clique'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("algorithms accepting model=clique"), std::string::npos) << msg;
    EXPECT_NE(msg.find("clique_hcycle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("color_coding"), std::string::npos) << msg;
  }
  // And the symmetric direction: the clique detector refuses congest cells.
  const ScenarioSpec rev = ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "algo=clique_hcycle"});
  EXPECT_THROW((void)rev.expand(), util::CheckError);
  const ScenarioSpec ok = ScenarioSpec::parse_tokens(
      {"family=planted", "k=5", "model=clique", "algo=clique_hcycle"});
  EXPECT_EQ(ok.expand().size(), 1u);
}

TEST(Adversary, ParseAndValidate) {
  EXPECT_EQ(parse_adversary("none").kind, AdversarySpec::Kind::kNone);
  const AdversarySpec uni = parse_adversary("uniform:0.25");
  EXPECT_EQ(uni.kind, AdversarySpec::Kind::kUniform);
  EXPECT_DOUBLE_EQ(uni.rate, 0.25);
  EXPECT_EQ(uni.name(), "uniform:0.25");
  EXPECT_EQ(parse_adversary("oneway:0.5").kind, AdversarySpec::Kind::kOneWay);
  EXPECT_EQ(parse_adversary("late:1").kind, AdversarySpec::Kind::kLate);

  EXPECT_THROW((void)parse_adversary("gamma:0.1"), util::CheckError);
  EXPECT_THROW((void)parse_adversary("uniform"), util::CheckError);
  EXPECT_THROW((void)parse_adversary("uniform:1.5"), util::CheckError);
  EXPECT_THROW((void)parse_adversary("none:0.1"), util::CheckError);
  EXPECT_THROW((void)parse_adversary("none:"), util::CheckError);  // truncated token, still loud
}

TEST(Adversary, DropFilterIsPureAndRespectsKind) {
  const auto filter = make_drop_filter(parse_adversary("late:1"), 99);
  ASSERT_TRUE(filter != nullptr);
  EXPECT_FALSE(filter(0, 1, 2));  // early rounds protected
  EXPECT_FALSE(filter(1, 1, 2));
  EXPECT_TRUE(filter(2, 1, 2));  // rate 1: every late message drops
  EXPECT_EQ(filter(5, 3, 4), filter(5, 3, 4));  // pure

  const auto oneway = make_drop_filter(parse_adversary("oneway:1"), 99);
  EXPECT_TRUE(oneway(0, 1, 2));
  EXPECT_FALSE(oneway(0, 2, 1));  // higher -> lower never dropped

  EXPECT_TRUE(make_drop_filter(AdversarySpec{}, 1) == nullptr);  // none: no filter at all
}

TEST(ScenarioCell, SeedIsContentAddressed) {
  const ScenarioSpec one = ScenarioSpec::parse_tokens({"family=cycle", "k=5", "n=10"});
  const ScenarioSpec many =
      ScenarioSpec::parse_tokens({"family=path,cycle", "k=4,5", "n=10"});
  const auto cells_one = one.expand();
  const auto cells_many = many.expand();
  // The cycle/k=5 cell keeps its seed when other axis values are added, so
  // growing a matrix never silently reshuffles existing cells' trials.
  const ScenarioCell* same = nullptr;
  for (const ScenarioCell& c : cells_many) {
    if (c.family == "cycle" && c.k == 5) same = &c;
  }
  ASSERT_NE(same, nullptr);
  EXPECT_EQ(cells_one[0].cell_seed(), same->cell_seed());
  EXPECT_NE(cells_one[0].cell_seed(), cells_many[0].cell_seed());
}

TEST(FamilyRegistry, BuildsEveryFamilyAndHonorsGroundTruth) {
  for (const FamilyInfo& info : known_families()) {
    ScenarioCell cell;
    cell.family = std::string(info.name);
    cell.k = 5;
    cell.n = info.name == "hypercube" ? 4 : 24;
    ASSERT_EQ(validate_family(cell.family, cell.k, cell.n), "") << info.name;
    util::Rng rng(3);
    const BuiltTopology topo = build_topology(cell, rng);
    EXPECT_GE(topo.graph.num_vertices(), 2u) << info.name;
    if (topo.truth == GroundTruth::kFar) {
      EXPECT_GT(topo.certified_epsilon, 0.0) << info.name;
    }
  }
}

TEST(FamilyRegistry, ValidateExplainsConstraints) {
  EXPECT_NE(validate_family("cycle", 5, 2).find("n >= 3"), std::string::npos);
  EXPECT_NE(validate_family("regular", 5, 4).find("n >= 6"), std::string::npos);
  EXPECT_NE(validate_family("hypercube", 5, 30).find("n > 20"), std::string::npos);
  EXPECT_NE(validate_family("noisy", 8, 10).find("2k"), std::string::npos);
  EXPECT_NE(validate_family("nope", 5, 10).find("unknown graph family"), std::string::npos);
}

}  // namespace
}  // namespace decycle::lab
