/// \file clique_hcycle_test.cpp
/// \brief Congested-Clique adaptive h-cycle detector: exactness against the
/// DFS oracle, witness validity, early-exit instrumentation, one-sidedness
/// under drops, the fresh-vs-reuse bit-identity contract, and the loud
/// model-mismatch guard.
#include "baselines/clique_hcycle.hpp"

#include <gtest/gtest.h>

#include <string>

#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {
namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

TEST(CliqueHCycle, RejectsCkWithValidatedWitness) {
  for (unsigned k = 3; k <= 8; ++k) {
    const Graph g = graph::cycle(k);
    const IdAssignment ids = IdAssignment::identity(k);
    CliqueHCycleOptions opt;
    opt.k = k;
    const auto v = detect_hcycle_clique(g, ids, opt);
    EXPECT_FALSE(v.accepted) << "k=" << k;
    ASSERT_EQ(v.witness.size(), k) << "k=" << k;
    EXPECT_TRUE(graph::validate_cycle(g, v.witness)) << "k=" << k;
    EXPECT_EQ(v.rejecting_nodes, k) << "everyone hears the witness broadcast";
    EXPECT_TRUE(v.stats.halted);
  }
}

TEST(CliqueHCycle, AcceptsAcyclicAndShortCycleInputs) {
  CliqueHCycleOptions opt;
  opt.k = 5;
  {
    const Graph g = graph::path(17);
    const auto v = detect_hcycle_clique(g, IdAssignment::identity(17), opt);
    EXPECT_TRUE(v.accepted);
    EXPECT_TRUE(v.witness.empty());
    EXPECT_EQ(v.rejecting_nodes, 0u);
    EXPECT_FALSE(v.early_exit);
    EXPECT_EQ(v.sampled_vertices, 17u);  // accept = the full graph was searched
  }
  {
    // A C4 is not a C5: exactness is for the target length, not "any cycle".
    const Graph g = graph::cycle(4);
    EXPECT_TRUE(detect_hcycle_clique(g, IdAssignment::identity(4), opt).accepted);
  }
}

TEST(CliqueHCycle, AgreesWithDfsOracleOnRandomGraphs) {
  util::Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = graph::erdos_renyi_gnp(32, 0.08, rng);
    const IdAssignment ids = IdAssignment::identity(32);
    CliqueHCycleOptions opt;
    opt.k = 5;
    opt.seed = 1000 + static_cast<std::uint64_t>(trial);
    const auto v = detect_hcycle_clique(g, ids, opt);
    const bool has_c5 = graph::find_cycle(g, 5).has_value();
    EXPECT_EQ(v.accepted, !has_c5) << "trial " << trial;
    if (!v.accepted) {
      EXPECT_TRUE(graph::validate_cycle(g, v.witness)) << "trial " << trial;
    }
  }
}

TEST(CliqueHCycle, CycleRichInputsExitEarlyWithFewerSampledVertices) {
  // Dense-in-cycles: K_40 contains C_5 copies everywhere, so the very first
  // sample already induces one; the schedule exits phases early.
  const Graph rich = graph::complete(40);
  const IdAssignment ids = IdAssignment::identity(40);
  CliqueHCycleOptions opt;
  opt.k = 5;
  const auto fast = detect_hcycle_clique(rich, ids, opt);
  EXPECT_FALSE(fast.accepted);
  EXPECT_TRUE(fast.early_exit);
  EXPECT_GT(fast.rounds_saved, 0u);
  EXPECT_LT(fast.sampled_vertices, 40u);
  EXPECT_EQ(fast.phases, 1u);  // s0 = 8 vertices of K_40 already hold a C_5

  // Cycle-free input: the schedule must run to the full graph.
  const Graph poor = graph::star(40);
  const auto slow = detect_hcycle_clique(poor, IdAssignment::identity(40), opt);
  EXPECT_TRUE(slow.accepted);
  EXPECT_FALSE(slow.early_exit);
  EXPECT_EQ(slow.rounds_saved, 0u);
  EXPECT_EQ(slow.sampled_vertices, 40u);
  EXPECT_GT(slow.phases, fast.phases);
  EXPECT_GT(slow.stats.rounds_executed, fast.stats.rounds_executed);
}

TEST(CliqueHCycle, DropsLoseDetectionsButNeverFabricate) {
  // Drop EVERY row report: the collector sees an empty subgraph forever and
  // must accept (a lost detection), never invent a witness.
  const Graph g = graph::cycle(6);
  const IdAssignment ids = IdAssignment::identity(6);
  CliqueHCycleOptions opt;
  opt.k = 6;
  opt.drop = [](std::uint64_t, Vertex from, Vertex to) { return to == 0 && from != 0; };
  const auto v = detect_hcycle_clique(g, ids, opt);
  EXPECT_TRUE(v.accepted);
  EXPECT_TRUE(v.witness.empty());
  EXPECT_TRUE(v.stats.halted) << "collector self-wakeups must keep the schedule alive";

  // Acyclic input under arbitrary drops: still accepts (1-sided).
  const Graph tree = graph::star(12);
  opt.drop = [](std::uint64_t r, Vertex, Vertex) { return r % 2 == 0; };
  EXPECT_TRUE(detect_hcycle_clique(tree, IdAssignment::identity(12), opt).accepted);
}

TEST(CliqueHCycle, ReuseOverloadMatchesFreshBuildBitForBit) {
  util::Rng rng(7);
  const Graph g = graph::erdos_renyi_gnp(24, 0.12, rng);
  const IdAssignment ids = IdAssignment::identity(24);
  congest::Simulator sim(g, ids, congest::CommModel::clique());
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    CliqueHCycleOptions opt;
    opt.k = 4;
    opt.seed = seed;
    const auto fresh = detect_hcycle_clique(g, ids, opt);
    const auto reused = detect_hcycle_clique(sim, opt);
    EXPECT_EQ(fresh.accepted, reused.accepted) << seed;
    EXPECT_EQ(fresh.witness, reused.witness) << seed;
    EXPECT_EQ(fresh.phases, reused.phases) << seed;
    EXPECT_EQ(fresh.sampled_vertices, reused.sampled_vertices) << seed;
    EXPECT_EQ(fresh.sampled_edges, reused.sampled_edges) << seed;
    EXPECT_EQ(fresh.stats.rounds_executed, reused.stats.rounds_executed) << seed;
    EXPECT_EQ(fresh.stats.total_messages, reused.stats.total_messages) << seed;
    EXPECT_EQ(fresh.stats.total_bits, reused.stats.total_bits) << seed;
  }
}

TEST(CliqueHCycle, ThrowsLoudlyOnANonCliqueSimulator) {
  const Graph g = graph::cycle(5);
  const IdAssignment ids = IdAssignment::identity(5);
  congest::Simulator congest_sim(g, ids, congest::CommModel::congest());
  CliqueHCycleOptions opt;
  opt.k = 5;
  try {
    (void)detect_hcycle_clique(congest_sim, opt);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("congest"), std::string::npos) << msg;
    EXPECT_NE(msg.find("CommModel::clique()"), std::string::npos) << msg;
  }
}

TEST(CliqueHCycle, TinyGraphsAndEdgeCases) {
  CliqueHCycleOptions opt;
  opt.k = 3;
  {
    const Graph g = Graph::from_edges(1, {});
    const auto v = detect_hcycle_clique(g, IdAssignment::identity(1), opt);
    EXPECT_TRUE(v.accepted);
  }
  {
    const Graph g = Graph::from_edges(0, {});
    EXPECT_TRUE(detect_hcycle_clique(g, IdAssignment::identity(0), opt).accepted);
  }
  {
    const Graph g = graph::complete(3);
    const auto v = detect_hcycle_clique(g, IdAssignment::identity(3), opt);
    EXPECT_FALSE(v.accepted);
    EXPECT_TRUE(graph::validate_cycle(g, v.witness));
  }
}

}  // namespace
}  // namespace decycle::baselines
