#include "baselines/triangle_chs.hpp"

#include <gtest/gtest.h>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {
namespace {

using graph::Graph;
using graph::IdAssignment;

TEST(TriangleChs, FindsTriangleInK3) {
  const Graph g = graph::complete(3);
  const IdAssignment ids = IdAssignment::identity(3);
  TriangleTesterOptions opt;
  opt.iterations = 8;
  const auto verdict = test_triangle_freeness_chs(g, ids, opt);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.witness.size(), 3u);
  EXPECT_TRUE(graph::validate_cycle(g, verdict.witness));
}

TEST(TriangleChs, SoundOnTriangleFreeGraphs) {
  util::Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::random_bipartite(15, 15, 60, rng);  // bipartite: no triangles
    const IdAssignment ids = IdAssignment::identity(g.num_vertices());
    TriangleTesterOptions opt;
    opt.iterations = 64;
    opt.seed = 100 + static_cast<std::uint64_t>(trial);
    EXPECT_TRUE(test_triangle_freeness_chs(g, ids, opt).accepted);
  }
}

TEST(TriangleChs, DetectsDenseTriangleInstances) {
  const Graph g = graph::complete(12);
  const IdAssignment ids = IdAssignment::identity(12);
  TriangleTesterOptions opt;
  opt.iterations = 32;
  const auto verdict = test_triangle_freeness_chs(g, ids, opt);
  EXPECT_FALSE(verdict.accepted);
}

TEST(TriangleChs, DetectsPlantedTrianglesWithEnoughIterations) {
  util::Rng rng(4);
  graph::PlantedOptions popt;
  popt.k = 3;
  popt.num_cycles = 10;
  const auto inst = graph::planted_cycles_instance(popt, rng);
  const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());
  TriangleTesterOptions opt;
  opt.iterations = 128;  // planted nodes have degree <= 3: detection is easy
  const auto verdict = test_triangle_freeness_chs(inst.graph, ids, opt);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_TRUE(graph::validate_cycle(inst.graph, verdict.witness));
}

TEST(TriangleChs, RoundsScaleWithIterations) {
  const Graph g = graph::complete(4);
  const IdAssignment ids = IdAssignment::identity(4);
  TriangleTesterOptions opt;
  opt.iterations = 10;
  const auto verdict = test_triangle_freeness_chs(g, ids, opt);
  EXPECT_LE(verdict.stats.rounds_executed, 12u);
}

TEST(TriangleChs, HandlesLowDegreeGraphs) {
  const Graph g = graph::path(6);  // degrees < 2 at the ends
  const IdAssignment ids = IdAssignment::identity(6);
  TriangleTesterOptions opt;
  opt.iterations = 16;
  EXPECT_TRUE(test_triangle_freeness_chs(g, ids, opt).accepted);
}

}  // namespace
}  // namespace decycle::baselines
