#include "baselines/c4_tester.hpp"

#include <gtest/gtest.h>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {
namespace {

using graph::Graph;
using graph::IdAssignment;

TEST(C4Frst, FindsC4InFourCycle) {
  const Graph g = graph::cycle(4);
  const IdAssignment ids = IdAssignment::identity(4);
  C4TesterOptions opt;
  opt.iterations = 16;
  const auto verdict = test_c4_freeness_frst(g, ids, opt);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.witness.size(), 4u);
  EXPECT_TRUE(graph::validate_cycle(g, verdict.witness));
}

TEST(C4Frst, SoundOnC4FreeGraphs) {
  util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::high_girth_graph(40, 60, 4, rng);  // girth > 4
    const IdAssignment ids = IdAssignment::identity(g.num_vertices());
    C4TesterOptions opt;
    opt.iterations = 64;
    opt.seed = 50 + static_cast<std::uint64_t>(trial);
    EXPECT_TRUE(test_c4_freeness_frst(g, ids, opt).accepted);
  }
}

TEST(C4Frst, TriangleFreeButC4RichDetected) {
  const Graph g = graph::complete_bipartite(6, 6);  // many C4s, no triangles
  const IdAssignment ids = IdAssignment::identity(12);
  C4TesterOptions opt;
  opt.iterations = 64;
  const auto verdict = test_c4_freeness_frst(g, ids, opt);
  EXPECT_FALSE(verdict.accepted);
}

TEST(C4Frst, DetectsPlantedC4s) {
  util::Rng rng(5);
  graph::PlantedOptions popt;
  popt.k = 4;
  popt.num_cycles = 8;
  const auto inst = graph::planted_cycles_instance(popt, rng);
  const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());
  C4TesterOptions opt;
  opt.iterations = 128;
  const auto verdict = test_c4_freeness_frst(inst.graph, ids, opt);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_TRUE(graph::validate_cycle(inst.graph, verdict.witness));
}

TEST(C4Frst, OneRoundPerIteration) {
  const Graph g = graph::cycle(4);
  const IdAssignment ids = IdAssignment::identity(4);
  C4TesterOptions opt;
  opt.iterations = 10;
  const auto verdict = test_c4_freeness_frst(g, ids, opt);
  EXPECT_LE(verdict.stats.rounds_executed, 12u);
}

}  // namespace
}  // namespace decycle::baselines
