#include "baselines/color_coding.hpp"

#include <gtest/gtest.h>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {
namespace {

using graph::Graph;

TEST(ColorCoding, FindsPureCycles) {
  for (unsigned k = 3; k <= 9; ++k) {
    const Graph g = graph::cycle(k);
    ColorCodingOptions opt;
    opt.seed = k;
    // The default iteration count targets δ = 1/3 (the property-testing
    // guarantee); for a deterministic test drive the failure odds to 1e-6.
    opt.iterations = color_coding_iterations(k, 1e-6);
    const auto result = find_cycle_color_coding(g, k, opt);
    EXPECT_TRUE(result.found) << "k=" << k;
    EXPECT_EQ(result.witness.size(), k);
    EXPECT_TRUE(graph::validate_cycle(g, result.witness));
  }
}

TEST(ColorCoding, NeverFindsInForests) {
  util::Rng rng(2);
  const Graph g = graph::random_tree(60, rng);
  for (const unsigned k : {3u, 5u, 7u}) {
    ColorCodingOptions opt;
    opt.iterations = 50;
    EXPECT_FALSE(find_cycle_color_coding(g, k, opt).found);
  }
}

TEST(ColorCoding, ExactLengthOnly) {
  const Graph g = graph::cycle(8);
  ColorCodingOptions opt;
  opt.iterations = 200;
  EXPECT_FALSE(find_cycle_color_coding(g, 5, opt).found);
  EXPECT_FALSE(find_cycle_color_coding(g, 7, opt).found);
}

TEST(ColorCoding, AgreesWithExactOracleOnRandomGraphs) {
  util::Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::erdos_renyi_gnm(16, 28, rng);
    for (const unsigned k : {4u, 5u, 6u}) {
      const bool exact = graph::has_cycle(g, k);
      ColorCodingOptions opt;
      opt.iterations = exact ? 400 : 30;  // enough to make misses unlikely
      opt.seed = 1000 + static_cast<std::uint64_t>(trial);
      const auto result = find_cycle_color_coding(g, k, opt);
      if (result.found) {
        EXPECT_TRUE(exact);  // one-sided: found implies real
        EXPECT_TRUE(graph::validate_cycle(g, result.witness));
      } else {
        EXPECT_FALSE(exact) << "missed a C" << k << " in " << opt.iterations << " iterations";
      }
    }
  }
}

TEST(ColorCoding, IterationFormula) {
  // k=3: success prob 3!/27 = 2/9; ln3 / (2/9) ≈ 4.94 → 5.
  EXPECT_EQ(color_coding_iterations(3, 1.0 / 3.0), 5u);
  EXPECT_GT(color_coding_iterations(7, 1.0 / 3.0), color_coding_iterations(5, 1.0 / 3.0));
}

TEST(ColorCoding, IterationsUsedReported) {
  const Graph g = graph::complete(8);
  ColorCodingOptions opt;
  opt.iterations = 100;
  const auto result = find_cycle_color_coding(g, 4, opt);
  EXPECT_TRUE(result.found);
  EXPECT_GE(result.iterations_used, 1u);
  EXPECT_LE(result.iterations_used, 100u);
}

TEST(ColorCoding, RejectsBadK) {
  const Graph g = graph::complete(4);
  EXPECT_THROW((void)find_cycle_color_coding(g, 2, {}), util::CheckError);
}

}  // namespace
}  // namespace decycle::baselines
