/// Randomized round-trip fuzzing of the varint message codec.
///
/// The codec carries every bit the simulator accounts for, so it must be
/// exact on the edge cases a structured unit test tends to miss: the 7-bit
/// group boundaries, the sign-bit values (2^63), max-u64, empty messages,
/// inline-to-heap spill boundaries of the small-buffer storage, and
/// truncated or malformed buffers, which must throw instead of fabricating
/// values.
#include <gtest/gtest.h>

#include <vector>

#include "congest/message.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::congest {
namespace {

std::vector<std::uint64_t> decode_all(const Message& m) {
  MessageReader r(m);
  std::vector<std::uint64_t> out;
  while (!r.at_end()) out.push_back(r.get_u64());
  return out;
}

TEST(MessageFuzz, EdgeValuesRoundTrip) {
  std::vector<std::uint64_t> values{0, 1, 127, 128, (1ULL << 14) - 1, 1ULL << 14,
                                    (1ULL << 21) - 1, 1ULL << 31, 1ULL << 32,
                                    (1ULL << 63) - 1, 1ULL << 63, ~std::uint64_t{0}};
  // Every boundary value alone...
  for (const auto v : values) {
    MessageWriter w;
    w.put_u64(v);
    const Message m = w.finish();
    const auto back = decode_all(m);
    ASSERT_EQ(back.size(), 1u) << v;
    EXPECT_EQ(back[0], v) << v;
  }
  // ...and all of them in one message (forces a heap spill too).
  MessageWriter w;
  for (const auto v : values) w.put_u64(v);
  const Message m = w.finish();
  EXPECT_EQ(decode_all(m), values);
}

TEST(MessageFuzz, RandomSequencesRoundTrip) {
  util::Rng rng(0xc0dec);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t len = rng.next_below(12);
    std::vector<std::uint64_t> values;
    MessageWriter w;
    for (std::size_t i = 0; i < len; ++i) {
      // Mix magnitudes so every varint byte-length appears.
      const unsigned bits = static_cast<unsigned>(rng.next_below(65));
      const std::uint64_t v =
          bits == 0 ? 0 : rng() >> (64 - bits);
      values.push_back(v);
      w.put_u64(v);
    }
    const Message m = w.finish();
    EXPECT_EQ(decode_all(m), values) << "iter " << iter;
  }
}

TEST(MessageFuzz, TruncatedBuffersThrowInsteadOfFabricating) {
  util::Rng rng(0x720);
  for (int iter = 0; iter < 200; ++iter) {
    MessageWriter w;
    const std::size_t len = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < len; ++i) w.put_u64(rng());
    const Message full = w.finish();
    ASSERT_GT(full.byte_size(), 0u);
    // Chop at every prefix; decoding must either stop cleanly at a varint
    // boundary (fewer values) or throw — never read past the end.
    const auto bytes = full.bytes();
    const std::size_t cut = rng.next_below(full.byte_size());
    const Message truncated(std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + cut));
    MessageReader r(truncated);
    std::size_t decoded = 0;
    try {
      while (!r.at_end()) {
        (void)r.get_u64();
        ++decoded;
      }
      EXPECT_LE(decoded, len);
    } catch (const util::CheckError&) {
      EXPECT_LT(decoded, len);
    }
  }
}

TEST(MessageFuzz, ContinuationOnlyBuffersThrow) {
  for (std::size_t len = 1; len <= 16; ++len) {
    const Message m(std::vector<std::uint8_t>(len, 0x80));
    MessageReader r(m);
    EXPECT_THROW((void)r.get_u64(), util::CheckError) << len;
  }
}

TEST(MessageFuzz, InlineSpillBoundaryPreservesBytes) {
  // Grow a message one byte at a time across the inline-capacity boundary;
  // contents must be preserved verbatim through the spill and through
  // moves (the delivery path moves messages between buffers).
  for (std::size_t len = 0; len <= 2 * Message::kInlineCapacity; ++len) {
    MessageWriter w;
    for (std::size_t i = 0; i < len; ++i) w.put_u64(i % 100);  // 1 byte each
    Message m = w.finish();
    ASSERT_EQ(m.byte_size(), len);
    EXPECT_EQ(m.on_heap(), len > Message::kInlineCapacity) << len;
    const Message moved = std::move(m);
    const auto back = decode_all(moved);
    ASSERT_EQ(back.size(), len);
    for (std::size_t i = 0; i < len; ++i) EXPECT_EQ(back[i], i % 100);
  }
}

}  // namespace
}  // namespace decycle::congest
