/// Randomized cross-configuration fuzzing of the paper's central guarantees.
///
/// For a few hundred random (graph, k, ID assignment, pruning mode, fault)
/// configurations, two invariants must hold without exception:
///
///   1. one-sidedness — whenever the tester or the single-edge checker
///      reports a cycle, the exact oracle confirms one (and the witness
///      itself validates, which the library enforces internally);
///   2. single-edge exactness in the fault-free representative mode — the
///      checker's verdict equals the oracle's on every probed edge.
///
/// This deliberately runs configurations the targeted unit tests do not
/// enumerate (odd combinations of modes, drops, shuffled IDs).
#include <gtest/gtest.h>

#include "core/cycle_detector.hpp"
#include "core/detector.hpp"
#include "core/tester.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle {
namespace {

using graph::Graph;
using graph::IdAssignment;

Graph random_instance(util::Rng& rng) {
  const auto shape = rng.next_below(5);
  const auto n = static_cast<graph::Vertex>(8 + rng.next_below(10));
  switch (shape) {
    case 0: return graph::erdos_renyi_gnm(n, n + rng.next_below(2 * n), rng);
    case 1: return graph::random_connected(n, n - 1 + rng.next_below(n), rng);
    case 2: return graph::random_bipartite(n / 2, n - n / 2,
                                           std::min<std::size_t>(2 * n, (n / 2) * (n - n / 2)),
                                           rng);
    case 3: return graph::random_regular(n + (n % 2), 4, rng);
    default: return graph::random_tree(n, rng);
  }
}

IdAssignment random_ids(const Graph& g, util::Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return IdAssignment::identity(g.num_vertices());
    case 1: return IdAssignment::shuffled(g.num_vertices(), rng);
    default: return IdAssignment::random_quadratic(g.num_vertices(), rng);
  }
}

TEST(SoundnessFuzz, TesterNeverFabricatesCycles) {
  util::Rng rng(0xF002);
  for (int trial = 0; trial < 150; ++trial) {
    const Graph g = random_instance(rng);
    const IdAssignment ids = random_ids(g, rng);
    const auto k = static_cast<unsigned>(3 + rng.next_below(6));

    core::TesterOptions opt;
    opt.k = k;
    opt.repetitions = 1 + rng.next_below(4);
    opt.seed = rng();
    opt.detect.pruning = rng.next_bool(0.2) ? core::PruningMode::kNaive
                                            : core::PruningMode::kRepresentative;
    opt.detect.fake_ids = !rng.next_bool(0.2);
    if (rng.next_bool(0.3)) {
      const std::uint64_t drop_seed = rng();
      opt.drop = [drop_seed](std::uint64_t round, graph::Vertex from, graph::Vertex to) {
        std::uint64_t h = util::splitmix64(drop_seed ^ util::splitmix64(round));
        h = util::splitmix64(h ^ from);
        h = util::splitmix64(h ^ to);
        return (h & 7) == 0;  // 12.5% loss
      };
    }
    // validate_witnesses is on by default: a fabricated cycle would throw.
    const auto verdict = core::test_ck_freeness(g, ids, opt);
    if (!verdict.accepted) {
      EXPECT_TRUE(graph::has_cycle(g, k))
          << "trial=" << trial << " k=" << k << ": tester rejected a Ck-free graph";
    }
  }
}

TEST(SoundnessFuzz, EdgeCheckerExactInRepresentativeMode) {
  util::Rng rng(0xF003);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_instance(rng);
    if (g.num_edges() == 0) continue;
    const IdAssignment ids = random_ids(g, rng);
    const auto k = static_cast<unsigned>(3 + rng.next_below(5));
    // Probe a handful of random edges per instance.
    for (int probe = 0; probe < 5; ++probe) {
      const auto e = g.edge(static_cast<graph::EdgeId>(rng.next_below(g.num_edges())));
      core::EdgeDetectionOptions opt;
      opt.detect.k = k;
      const auto result = core::detect_cycle_through_edge(g, ids, e, opt);
      EXPECT_EQ(result.found, graph::has_cycle_through_edge(g, k, e.first, e.second))
          << "trial=" << trial << " k=" << k << " edge=(" << e.first << "," << e.second << ")";
    }
  }
}

/// The shared witness-validation check every detector's rejection must pass:
/// a genuine C_k witness (right length, a real cycle of g) and an oracle
/// that agrees a C_k exists. One definition for all six algorithms.
void expect_sound_rejection(const graph::Graph& g, unsigned k, const core::Verdict& verdict,
                            std::string_view detector, int trial) {
  EXPECT_EQ(verdict.witness.size(), k)
      << detector << " trial=" << trial << ": rejection witness has the wrong length";
  EXPECT_TRUE(graph::validate_cycle(g, verdict.witness))
      << detector << " trial=" << trial << ": rejection witness is not a cycle of g";
  EXPECT_TRUE(graph::has_cycle(g, k))
      << detector << " trial=" << trial << ": rejected a Ck-free graph";
}

TEST(SoundnessFuzz, RegistryDetectorsNeverFabricateCycles) {
  // Every registered algorithm — the FO17 tester, the single-edge checker,
  // the threshold family, both specialized baselines, and the centralized
  // reference — through the same random (graph, ids, k, drops) stream and
  // the same witness-validation check. The registry makes this a loop over
  // detectors instead of six hand-rolled harnesses (this file predates it).
  const core::DetectorRegistry& registry = core::DetectorRegistry::builtin();
  util::Rng rng(0xF005);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_instance(rng);
    const IdAssignment ids = random_ids(g, rng);
    const auto k = static_cast<unsigned>(3 + rng.next_below(6));

    core::DetectorOptions opt;
    opt.k = k;
    opt.epsilon = 0.25;
    opt.repetitions = 1 + rng.next_below(4);
    opt.seed = rng();
    if (rng.next_bool(0.3)) {
      const std::uint64_t drop_seed = rng();
      opt.drop = [drop_seed](std::uint64_t round, graph::Vertex from, graph::Vertex to) {
        std::uint64_t h = util::splitmix64(drop_seed ^ util::splitmix64(round));
        h = util::splitmix64(h ^ from);
        h = util::splitmix64(h ^ to);
        return (h & 7) == 0;  // 12.5% loss
      };
    }

    for (const core::Detector* detector : registry.detectors()) {
      const core::DetectorCapabilities& caps = detector->capabilities();
      if (k < caps.min_k || k > caps.max_k) continue;
      if (caps.draws_edge && g.num_edges() == 0) continue;
      const core::Verdict verdict = detector->run_fresh(g, ids, opt);
      if (!verdict.accepted) {
        expect_sound_rejection(g, k, verdict, detector->name(), trial);
      }
    }
  }
}

TEST(SoundnessFuzz, AblationsOnlyLoseDetections) {
  // fake_ids=off and message drops may only flip reject->accept relative to
  // the pristine run, never accept->reject (on the same seed).
  util::Rng rng(0xF004);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_instance(rng);
    const IdAssignment ids = IdAssignment::identity(g.num_vertices());
    const auto k = static_cast<unsigned>(3 + rng.next_below(5));
    core::TesterOptions pristine;
    pristine.k = k;
    pristine.repetitions = 2;
    pristine.seed = 42 + static_cast<std::uint64_t>(trial);
    const bool pristine_rejects = !core::test_ck_freeness(g, ids, pristine).accepted;

    core::TesterOptions degraded = pristine;
    degraded.detect.fake_ids = false;
    const bool degraded_rejects = !core::test_ck_freeness(g, ids, degraded).accepted;
    if (degraded_rejects) {
      EXPECT_TRUE(pristine_rejects || graph::has_cycle(g, k)) << "trial=" << trial;
      // (Either way the rejection must be genuine; has_cycle re-checks.)
      EXPECT_TRUE(graph::has_cycle(g, k));
    }
  }
}

}  // namespace
}  // namespace decycle
