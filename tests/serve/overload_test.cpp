/// \file overload_test.cpp
/// \brief Admission control under pressure: a wedged worker plus a 1-slot
/// queue must shed with explicit REJECTED overload replies — never hang,
/// never crash — and the queue counters must reconcile exactly.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

namespace decycle::serve {
namespace {

void wait_for_stalled(const Server& server, std::size_t count) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stalled_workers() < count) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "worker never parked in stall";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServeOverload, FullQueueShedsWithExplicitRejection) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.enable_stall = true;
  Server server(options);
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=8")));

  // Park the only worker, then fill the single queue slot.
  std::promise<std::string> stall_promise;
  std::future<std::string> stall_reply = stall_promise.get_future();
  server.submit("stall id=1",
                [&stall_promise](std::string reply) { stall_promise.set_value(std::move(reply)); });
  wait_for_stalled(server, 1);

  std::promise<std::string> queued_promise;
  std::future<std::string> queued_reply = queued_promise.get_future();
  server.submit("checkpoint tenant=a", [&queued_promise](std::string reply) {
    queued_promise.set_value(std::move(reply));
  });
  EXPECT_EQ(server.queue_depth(), 1u);

  // Every further request is shed inline — no hang, no crash, a typed
  // REJECTED overload reply, and per-reply accounting.
  constexpr std::size_t kShed = 4;
  for (std::size_t i = 0; i < kShed; ++i) {
    const std::string reply = server.call("checkpoint tenant=a");
    ASSERT_TRUE(is_rejected(reply)) << reply;
    EXPECT_NE(reply.find("overload"), std::string::npos);
    EXPECT_NE(reply.find("queue_full"), std::string::npos);
    EXPECT_NE(reply.find("queue_depth=1"), std::string::npos);
  }
  EXPECT_EQ(server.stats().queue().shed_total, kShed);
  EXPECT_EQ(server.stats().tenant("a").shed, kShed);

  // Release the worker: the admitted op completes, nothing was lost.
  server.release_stall(1);
  EXPECT_EQ(stall_reply.get(), "OK stall");
  EXPECT_TRUE(is_ok(queued_reply.get()));
  EXPECT_EQ(server.queue_depth(), 0u);

  // Counters reconcile: everything admitted was served, everything over
  // the line was shed.
  const QueueSnapshot queue = server.stats().queue();
  EXPECT_EQ(queue.shed_total, kShed);
  EXPECT_GE(queue.peak_depth, 1u);
  server.stop();
}

TEST(ServeOverload, TenantInFlightCapShedsTheHotTenantOnly) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 64;
  options.tenant_inflight_cap = 1;
  options.enable_stall = true;
  Server server(options);
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=hot n=8")));
  ASSERT_TRUE(is_ok(server.call("create tenant=cold n=8")));

  std::promise<std::string> stall_promise;
  std::future<std::string> stall_reply = stall_promise.get_future();
  server.submit("stall id=9",
                [&stall_promise](std::string reply) { stall_promise.set_value(std::move(reply)); });
  wait_for_stalled(server, 1);

  // First hot request occupies the tenant's one in-flight slot.
  std::promise<std::string> first_promise;
  std::future<std::string> first_reply = first_promise.get_future();
  server.submit("checkpoint tenant=hot", [&first_promise](std::string reply) {
    first_promise.set_value(std::move(reply));
  });

  // Second hot request is shed by the per-tenant cap, not the queue bound.
  const std::string shed = server.call("checkpoint tenant=hot");
  ASSERT_TRUE(is_rejected(shed)) << shed;
  EXPECT_NE(shed.find("tenant_inflight_cap"), std::string::npos);

  // The cold tenant still gets in: one tenant's burst cannot starve others.
  std::promise<std::string> cold_promise;
  std::future<std::string> cold_reply = cold_promise.get_future();
  server.submit("checkpoint tenant=cold", [&cold_promise](std::string reply) {
    cold_promise.set_value(std::move(reply));
  });

  server.release_stall(9);
  EXPECT_EQ(stall_reply.get(), "OK stall");
  EXPECT_TRUE(is_ok(first_reply.get()));
  EXPECT_TRUE(is_ok(cold_reply.get()));
  EXPECT_EQ(server.stats().tenant("hot").shed, 1u);
  EXPECT_EQ(server.stats().tenant("cold").shed, 0u);
  server.stop();
}

TEST(ServeOverload, StopDrainsAdmittedWorkUnderPressure) {
  // Concurrent submitters race server.stop(): every admitted op must get
  // its reply (drain, not drop), every unadmitted one a typed refusal.
  // This is the suite TSan runs to pin the queue/stall synchronization.
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 4;
  Server server(options);
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=16 family=cycle k=5 seed=1")));

  std::vector<std::thread> clients;
  std::vector<std::size_t> served(4, 0);
  for (std::size_t c = 0; c < served.size(); ++c) {
    clients.emplace_back([&server, &served, c] {
      for (std::size_t i = 0; i < 32; ++i) {
        const std::string reply =
            server.call("query tenant=a algo=edge_checker k=5 seed=" + std::to_string(i));
        // Every submission resolves to exactly one of the three reply
        // classes — a hang here would time the test out.
        if (is_ok(reply) || is_rejected(reply) || is_error(reply)) ++served[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const std::size_t count : served) EXPECT_EQ(count, 32u);

  // Control verbs (the create) answer inline and are not queue-accounted;
  // every queued query was either served or shed — nothing vanished.
  const QueueSnapshot queue = server.stats().queue();
  EXPECT_EQ(queue.admitted + queue.shed_total, 4u * 32u);
  server.stop();
}

}  // namespace
}  // namespace decycle::serve
