/// \file server_test.cpp
/// \brief Server verbs end to end: tenant lifecycle, typed error replies,
/// verdict-cache byte identity, and mutation invalidation.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <string>

namespace decycle::serve {
namespace {

ServerOptions small_options() {
  ServerOptions options;
  options.workers = 2;
  return options;
}

TEST(ServeServer, CreateInsertQueryCheckpointRoundTrip) {
  Server server(small_options());
  server.start();

  const std::string created = server.call("create tenant=a n=16 family=cycle k=5 seed=3");
  ASSERT_TRUE(is_ok(created)) << created;
  EXPECT_NE(created.find("n=16"), std::string::npos);
  EXPECT_NE(created.find("hash="), std::string::npos);

  const std::string queried = server.call("query tenant=a algo=edge_checker k=5 seed=1");
  ASSERT_TRUE(is_ok(queried)) << queried;
  EXPECT_NE(queried.find("accepted="), std::string::npos);

  // A C16 cycle has no chord 0-8; inserting one is legal and reported.
  const std::string inserted = server.call("insert tenant=a edges=0-8");
  ASSERT_TRUE(is_ok(inserted)) << inserted;
  EXPECT_NE(inserted.find("applied=1"), std::string::npos);
  EXPECT_NE(inserted.find("closures=1"), std::string::npos);

  const std::string checkpointed = server.call("checkpoint tenant=a");
  ASSERT_TRUE(is_ok(checkpointed)) << checkpointed;
  EXPECT_NE(checkpointed.find("m=17"), std::string::npos);

  server.stop();
}

TEST(ServeServer, UnknownTenantNamesStoredOnes) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=alpha n=8")));
  ASSERT_TRUE(is_ok(server.call("create tenant=beta n=8")));
  const std::string reply = server.call("query tenant=gamma algo=tester k=5");
  ASSERT_TRUE(is_error(reply)) << reply;
  EXPECT_NE(reply.find("unknown_tenant"), std::string::npos);
  EXPECT_NE(reply.find("alpha"), std::string::npos);
  EXPECT_NE(reply.find("beta"), std::string::npos);
  server.stop();
}

TEST(ServeServer, DuplicateCreateIsTyped) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=8")));
  const std::string reply = server.call("create tenant=a n=8");
  ASSERT_TRUE(is_error(reply)) << reply;
  EXPECT_NE(reply.find("tenant_exists"), std::string::npos);
  server.stop();
}

TEST(ServeServer, BadInsertsAreTypedAndRolledBack) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=8")));

  // Endpoint out of range.
  const std::string out_of_range = server.call("insert tenant=a edges=0-99");
  ASSERT_TRUE(is_error(out_of_range)) << out_of_range;
  EXPECT_NE(out_of_range.find("bad_insert"), std::string::npos);
  EXPECT_NE(out_of_range.find("n=8"), std::string::npos);

  // Duplicate within the tenant's stream.
  ASSERT_TRUE(is_ok(server.call("insert tenant=a edges=0-1")));
  const std::string duplicate = server.call("insert tenant=a edges=2-3,1-0");
  ASSERT_TRUE(is_error(duplicate)) << duplicate;
  EXPECT_NE(duplicate.find("bad_insert"), std::string::npos);
  EXPECT_NE(duplicate.find("already present"), std::string::npos);

  // The failed batch rolled back: 2-3 is still insertable.
  const std::string retry = server.call("insert tenant=a edges=2-3");
  ASSERT_TRUE(is_ok(retry)) << retry;

  // Exactly two edges landed.
  const std::string checkpointed = server.call("checkpoint tenant=a");
  EXPECT_NE(checkpointed.find("m=2"), std::string::npos) << checkpointed;
  server.stop();
}

TEST(ServeServer, VerdictCacheHitsAreByteIdentical) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=32 family=cycle k=5 seed=1")));

  const std::string payload = "query tenant=a algo=tester k=5 eps=0.25 seed=7";
  const std::string first = server.call(payload);
  ASSERT_TRUE(is_ok(first)) << first;
  const Server::CacheStats before = server.verdict_cache_stats();
  const std::string second = server.call(payload);
  const Server::CacheStats after = server.verdict_cache_stats();
  EXPECT_EQ(first, second);
  EXPECT_GT(after.hits, before.hits);
  server.stop();
}

TEST(ServeServer, MutationInvalidatesTheVerdictCache) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=32 family=cycle k=5 seed=1")));
  const std::string payload = "query tenant=a algo=edge_checker k=5 seed=7";
  ASSERT_TRUE(is_ok(server.call(payload)));
  ASSERT_TRUE(is_ok(server.call("insert tenant=a edges=0-2")));
  const Server::CacheStats before = server.verdict_cache_stats();
  ASSERT_TRUE(is_ok(server.call(payload)));
  const Server::CacheStats after = server.verdict_cache_stats();
  // The graph changed, so the same payload must be a fresh cache key.
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_GT(after.misses, before.misses);
  server.stop();
}

TEST(ServeServer, QueryModelCapabilityIsTyped) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=8")));
  // tester's capability mask excludes the clique model.
  const std::string reply = server.call("query tenant=a algo=tester k=5 model=clique");
  ASSERT_TRUE(is_error(reply)) << reply;
  EXPECT_NE(reply.find("capability"), std::string::npos);
  server.stop();
}

TEST(ServeServer, StatsReplyCarriesTenantAndGlobalRecords) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=16 family=cycle k=5 seed=1")));
  ASSERT_TRUE(is_ok(server.call("query tenant=a algo=edge_checker k=5")));
  const std::string reply = server.call("stats");
  ASSERT_TRUE(is_ok(reply)) << reply;
  EXPECT_NE(reply.find("\"record\":\"tenant\""), std::string::npos);
  EXPECT_NE(reply.find("\"record\":\"global\""), std::string::npos);
  EXPECT_NE(reply.find("\"tenants\":1"), std::string::npos);
  EXPECT_NE(reply.find("\"verdict_misses\":1"), std::string::npos);
  server.stop();
}

TEST(ServeServer, ShutdownDrainsAndRefusesNewWork) {
  Server server(small_options());
  server.start();
  ASSERT_TRUE(is_ok(server.call("create tenant=a n=8")));
  EXPECT_EQ(server.call("shutdown"), "OK shutdown");
  EXPECT_TRUE(server.shutdown_requested());
  const std::string reply = server.call("checkpoint tenant=a");
  ASSERT_TRUE(is_error(reply)) << reply;
  EXPECT_NE(reply.find("shutting_down"), std::string::npos);
  server.stop();
}

TEST(ServeServer, StallRequiresOptIn) {
  Server server(small_options());
  server.start();
  const std::string reply = server.call("stall id=1");
  ASSERT_TRUE(is_error(reply)) << reply;
  EXPECT_NE(reply.find("test-only"), std::string::npos);
  server.stop();
}

TEST(ServeServer, ParseErrorsComeBackInline) {
  Server server(small_options());
  server.start();
  const std::string reply = server.call("warp tenant=a");
  ASSERT_TRUE(is_error(reply)) << reply;
  EXPECT_NE(reply.find("bad_request"), std::string::npos);
  EXPECT_NE(reply.find("verbs:"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace decycle::serve
