/// \file soak_bridge_test.cpp
/// \brief The serve differential campaign: client-path replies must match
/// direct engine runs byte-for-byte on drawn soak instances, the JSONL log
/// must be byte-identical at every server worker count, and serve repro
/// files must round-trip and replay.
#include "soak/serve_campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/check.hpp"

namespace decycle::soak {
namespace {

ServeCampaignOptions small_campaign() {
  ServeCampaignOptions options;
  options.seed = 7;
  options.instances = 5;
  options.space.max_k = 7;
  options.space.max_n = 24;
  options.server.workers = 2;
  return options;
}

TEST(ServeSoak, SmallCampaignRunsClean) {
  const ServeCampaignSummary summary = run_serve_campaign(small_campaign());
  EXPECT_FALSE(summary.failed());
  EXPECT_EQ(summary.instances, 5u);
  EXPECT_GT(summary.queries, 0u);
  EXPECT_GT(summary.edges_inserted, 0u);
  EXPECT_NE(summary.jsonl.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(summary.jsonl.find("\"mode\":\"serve\""), std::string::npos);
  EXPECT_NE(summary.jsonl.find("\"type\":\"summary\""), std::string::npos);
}

TEST(ServeSoak, LogIsByteIdenticalAcrossServerWorkerCounts) {
  // One closed-loop client drives the server, so the campaign log is a pure
  // function of (space, seed, instances) — worker count must be invisible,
  // the serving analogue of the soak campaign's thread-count byte identity.
  ServeCampaignOptions one = small_campaign();
  one.server.workers = 1;
  ServeCampaignOptions eight = small_campaign();
  eight.server.workers = 8;
  const ServeCampaignSummary a = run_serve_campaign(one);
  const ServeCampaignSummary b = run_serve_campaign(eight);
  // The meta record names the worker count; compare everything after it.
  const std::string tail_a = a.jsonl.substr(a.jsonl.find('\n'));
  const std::string tail_b = b.jsonl.substr(b.jsonl.find('\n'));
  EXPECT_EQ(tail_a, tail_b);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_FALSE(a.failed());
  EXPECT_FALSE(b.failed());
}

TEST(ServeSoak, BudgetRequired) {
  ServeCampaignOptions options;  // neither instances nor seconds
  EXPECT_THROW((void)run_serve_campaign(options), util::CheckError);
}

TEST(ServeSoak, ReproRoundTripsAndReplaysClean) {
  ServeRepro repro;
  repro.requests = {
      "create tenant=r n=6",
      "insert tenant=r edges=0-1,1-2,2-3,3-4,4-5,0-5",
      "query tenant=r algo=edge_checker k=6 eps=0.25 seed=3 reps=1",
  };
  repro.served = "OK query (recorded)";
  repro.direct = "OK query (recorded)";

  std::ostringstream first;
  write_serve_repro(first, repro);
  std::istringstream back(first.str());
  const ServeRepro parsed = read_serve_repro(back);
  EXPECT_EQ(parsed.requests, repro.requests);
  EXPECT_EQ(parsed.served, repro.served);
  std::ostringstream second;
  write_serve_repro(second, parsed);
  EXPECT_EQ(first.str(), second.str());

  // The server and the direct engine agree on this healthy transcript, so
  // the recorded divergence must NOT reproduce — and both recomputed
  // replies must match each other byte-for-byte.
  const ServeReplayResult result = replay_serve_repro(parsed);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.served, result.direct);
  EXPECT_NE(result.served.find("OK query"), std::string::npos);
}

TEST(ServeSoak, CheckpointProbeReplaysTheHashField) {
  ServeRepro repro;
  repro.requests = {
      "create tenant=r n=4",
      "insert tenant=r edges=0-1,2-3",
      "checkpoint tenant=r",
  };
  repro.served = "hash=recorded";
  repro.direct = "hash=recorded";
  const ServeReplayResult result = replay_serve_repro(repro);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.served, result.direct);
  EXPECT_EQ(result.served.rfind("hash=", 0), 0u);
}

TEST(ServeSoak, ReproParserIsLoud) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_serve_repro(in);
  };
  // Unknown directive names the accepted ones.
  try {
    (void)parse("bogus line\n");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("request, served, direct"), std::string::npos);
  }
  // No requests at all.
  EXPECT_THROW((void)parse("served x\ndirect y\n"), util::CheckError);
  // Missing the recorded replies.
  EXPECT_THROW((void)parse("request query tenant=r algo=tester k=5\n"), util::CheckError);
  // Final request is not a probe.
  try {
    (void)parse("request create tenant=r n=4\nserved x\ndirect y\n");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("query or checkpoint"), std::string::npos);
  }
}

TEST(ServeSoak, RerunIsReproducible) {
  const ServeCampaignOptions options = small_campaign();
  const ServeCampaignSummary a = run_serve_campaign(options);
  const ServeCampaignSummary b = run_serve_campaign(options);
  EXPECT_EQ(a.jsonl, b.jsonl);
}

}  // namespace
}  // namespace decycle::soak
