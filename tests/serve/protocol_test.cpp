/// \file protocol_test.cpp
/// \brief Frame codec and request grammar: round trips, every negative
/// path's typed error (with alternative-naming details), and a fuzz pass
/// over truncated/garbled frame streams.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace decycle::serve {
namespace {

using Status = FrameReader::Status;

/// Runs parse_request expecting a ProtocolError, returning it for detail
/// assertions.
ProtocolError expect_protocol_error(std::string_view payload, const ProtocolLimits& limits = {}) {
  try {
    (void)parse_request(payload, limits);
  } catch (const ProtocolError& e) {
    return e;
  }
  ADD_FAILURE() << "no ProtocolError for payload: " << payload;
  return ProtocolError(ErrorCode::kInternal, "unreachable");
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTrip) {
  FrameReader reader;
  reader.feed(encode_frame("stats"));
  std::string payload;
  ASSERT_EQ(reader.next(payload), Status::kFrame);
  EXPECT_EQ(payload, "stats");
  EXPECT_EQ(reader.next(payload), Status::kNeedMore);
  EXPECT_FALSE(reader.mid_frame());
}

TEST(ServeProtocol, FrameByteAtATime) {
  const std::string frame = encode_frame("query tenant=a algo=tester k=5");
  FrameReader reader;
  std::string payload;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(std::string_view(&frame[i], 1));
    ASSERT_EQ(reader.next(payload), Status::kNeedMore) << "at byte " << i;
    EXPECT_TRUE(reader.mid_frame());
  }
  reader.feed(std::string_view(&frame.back(), 1));
  ASSERT_EQ(reader.next(payload), Status::kFrame);
  EXPECT_EQ(payload, "query tenant=a algo=tester k=5");
}

TEST(ServeProtocol, MultipleFramesInOneFeed) {
  FrameReader reader;
  reader.feed(encode_frame("stats") + encode_frame("shutdown") + encode_frame(""));
  std::string payload;
  ASSERT_EQ(reader.next(payload), Status::kFrame);
  EXPECT_EQ(payload, "stats");
  ASSERT_EQ(reader.next(payload), Status::kFrame);
  EXPECT_EQ(payload, "shutdown");
  ASSERT_EQ(reader.next(payload), Status::kFrame);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(reader.next(payload), Status::kNeedMore);
}

TEST(ServeProtocol, GarbledPrefixKillsTheStream) {
  FrameReader reader;
  reader.feed("x stats\n");
  std::string payload;
  ASSERT_EQ(reader.next(payload), Status::kError);
  EXPECT_NE(reader.error().find("length prefix"), std::string::npos);
  // Dead for good: even a well-formed follow-up frame is refused.
  reader.feed(encode_frame("stats"));
  EXPECT_EQ(reader.next(payload), Status::kError);
}

TEST(ServeProtocol, OversizedLengthPrefixIsFatal) {
  FrameReader reader(/*max_frame_bytes=*/64);
  reader.feed("65 " + std::string(65, 'a') + "\n");
  std::string payload;
  ASSERT_EQ(reader.next(payload), Status::kError);
  EXPECT_NE(reader.error().find("max_frame_bytes"), std::string::npos);
}

TEST(ServeProtocol, WrongLengthPrefixIsFatal) {
  FrameReader reader;
  reader.feed("4 stats\n");  // prefix says 4, payload is 5 + newline
  std::string payload;
  ASSERT_EQ(reader.next(payload), Status::kError);
  EXPECT_NE(reader.error().find("newline"), std::string::npos);
}

TEST(ServeProtocol, MissingSpaceAfterPrefixIsFatal) {
  FrameReader reader;
  reader.feed("5stats\n");
  std::string payload;
  ASSERT_EQ(reader.next(payload), Status::kError);
  EXPECT_NE(reader.error().find("space"), std::string::npos);
}

TEST(ServeFrameFuzz, TruncatedAndGarbledStreamsNeverCrash) {
  // Deterministic fuzz: take a valid multi-frame stream, then truncate at
  // every boundary and flip one byte at a time. The reader must always
  // answer kFrame/kNeedMore/kError — never crash, never hang, and once
  // kError always kError.
  std::string stream;
  for (const std::string_view p :
       {std::string_view("stats"), std::string_view("query tenant=a algo=tester k=5"),
        std::string_view(""), std::string_view("insert tenant=a edges=0-1")}) {
    stream += encode_frame(p);
  }
  util::Rng rng(0xf422);
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameReader reader;
    reader.feed(std::string_view(stream).substr(0, cut));
    std::string payload;
    Status status = Status::kFrame;
    std::size_t frames = 0;
    while ((status = reader.next(payload)) == Status::kFrame) ++frames;
    EXPECT_LE(frames, 4u);
    EXPECT_EQ(status, Status::kNeedMore);  // truncation alone is never fatal
  }
  for (std::size_t trial = 0; trial < 200; ++trial) {
    std::string garbled = stream;
    const std::size_t at = rng.next_below(garbled.size());
    garbled[at] = static_cast<char>(rng.next_below(256));
    FrameReader reader;
    // Feed in random-sized slices to cross chunk boundaries.
    std::size_t pos = 0;
    std::string payload;
    bool dead = false;
    while (pos < garbled.size()) {
      const std::size_t len = 1 + rng.next_below(7);
      reader.feed(std::string_view(garbled).substr(pos, len));
      pos += len;
      for (;;) {
        const Status status = reader.next(payload);
        if (status == Status::kFrame) {
          EXPECT_FALSE(dead) << "frame produced after kError";
          continue;
        }
        if (status == Status::kError) {
          EXPECT_FALSE(reader.error().empty());
          dead = true;
        }
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Request grammar — negative paths with alternative-naming errors
// ---------------------------------------------------------------------------

TEST(ServeProtocol, UnknownVerbNamesTheVerbs) {
  const ProtocolError e = expect_protocol_error("frobnicate tenant=a");
  EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  EXPECT_NE(std::string(e.what()).find("verbs: create, insert, query"), std::string::npos);
}

TEST(ServeProtocol, EmptyAndMalformedTokens) {
  EXPECT_EQ(expect_protocol_error("").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("query  tenant=a").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("query tenant").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("query tenant=").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("query =a").code(), ErrorCode::kBadRequest);
}

TEST(ServeProtocol, UnknownKeyNamesAcceptedKeys) {
  const ProtocolError e = expect_protocol_error("query tenant=a algo=tester knob=7");
  EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  EXPECT_NE(std::string(e.what()).find("accepted keys: tenant, algo, k, model"),
            std::string::npos);
}

TEST(ServeProtocol, KeyOnWrongVerbNamesAcceptedKeys) {
  const ProtocolError e = expect_protocol_error("checkpoint tenant=a algo=tester");
  EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  EXPECT_NE(std::string(e.what()).find("accepted keys: tenant"), std::string::npos);
}

TEST(ServeProtocol, UnknownAlgoNamesRegisteredOnes) {
  const ProtocolError e = expect_protocol_error("query tenant=a algo=quantum k=5");
  EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  const std::string what = e.what();
  EXPECT_NE(what.find("registered:"), std::string::npos);
  EXPECT_NE(what.find("tester"), std::string::npos);
}

TEST(ServeProtocol, UnknownModelNamesRegisteredOnes) {
  const ProtocolError e = expect_protocol_error("query tenant=a algo=tester k=5 model=telepathy");
  EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  EXPECT_NE(std::string(e.what()).find("registered:"), std::string::npos);
}

TEST(ServeProtocol, CapabilityViolationsAreTyped) {
  // c4 only accepts k=4 — a (algo, k) capability violation, not a parse bug.
  EXPECT_EQ(expect_protocol_error("query tenant=a algo=c4 k=5").code(), ErrorCode::kCapability);
  // k over the server's cap is a capability error that names the cap.
  const ProtocolError e = expect_protocol_error("query tenant=a algo=tester k=33");
  EXPECT_EQ(e.code(), ErrorCode::kCapability);
  EXPECT_NE(std::string(e.what()).find("max_query_k=32"), std::string::npos);
}

TEST(ServeProtocol, EpsilonRangeEnforced) {
  EXPECT_EQ(expect_protocol_error("query tenant=a algo=tester k=5 eps=0").code(),
            ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("query tenant=a algo=tester k=5 eps=1.5").code(),
            ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("query tenant=a algo=tester k=5 eps=nope").code(),
            ErrorCode::kBadRequest);
}

TEST(ServeProtocol, OversizedInsertBatchIsTyped) {
  ProtocolLimits limits;
  limits.max_insert_edges = 2;
  const ProtocolError e = expect_protocol_error("insert tenant=a edges=0-1,1-2,2-3", limits);
  EXPECT_EQ(e.code(), ErrorCode::kOversizedBatch);
  EXPECT_NE(std::string(e.what()).find("max_insert_edges=2"), std::string::npos);
}

TEST(ServeProtocol, SelfLoopAndMalformedEdges) {
  EXPECT_EQ(expect_protocol_error("insert tenant=a edges=3-3").code(), ErrorCode::kBadInsert);
  EXPECT_EQ(expect_protocol_error("insert tenant=a edges=1to2").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("insert tenant=a edges=1-2,,3-4").code(),
            ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("insert tenant=a edges=-2").code(), ErrorCode::kBadRequest);
}

TEST(ServeProtocol, RequiredFieldsEnforced) {
  EXPECT_EQ(expect_protocol_error("create n=8").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("create tenant=a").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("insert tenant=a").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("query tenant=a").code(), ErrorCode::kBadRequest);
  EXPECT_EQ(expect_protocol_error("checkpoint").code(), ErrorCode::kBadRequest);
}

TEST(ServeProtocol, ParsePositivePaths) {
  const Request create = parse_request("create tenant=web n=64 family=planted k=5 seed=9");
  EXPECT_EQ(create.verb, Verb::kCreate);
  EXPECT_EQ(create.tenant, "web");
  EXPECT_EQ(create.n, 64u);
  EXPECT_EQ(create.family, "planted");
  EXPECT_EQ(create.family_seed, 9u);

  const Request query = parse_request("query tenant=web algo=tester k=7 eps=0.25 seed=3 reps=2");
  EXPECT_EQ(query.verb, Verb::kQuery);
  ASSERT_NE(query.algo, nullptr);
  EXPECT_EQ(query.algo->name(), "tester");
  EXPECT_EQ(query.k, 7u);
  EXPECT_DOUBLE_EQ(query.epsilon, 0.25);
  EXPECT_EQ(query.seed, 3u);
  EXPECT_EQ(query.repetitions, 2u);

  const Request insert = parse_request("insert tenant=web edges=0-1,2-5");
  ASSERT_EQ(insert.edges.size(), 2u);
  EXPECT_EQ(insert.edges[0], (incremental::Insert{0, 1}));
  EXPECT_EQ(insert.edges[1], (incremental::Insert{2, 5}));

  EXPECT_EQ(parse_request("stall id=7").stall_id, 7u);
}

TEST(ServeProtocol, FormatRequestRoundTrips) {
  for (const std::string_view payload :
       {std::string_view("create tenant=web n=64 family=planted k=5 seed=9"),
        std::string_view("insert tenant=web edges=0-1,2-5"),
        std::string_view("query tenant=web algo=tester k=7 eps=0.25 seed=3 reps=2"),
        std::string_view("checkpoint tenant=web"), std::string_view("stats"),
        std::string_view("stall id=7")}) {
    const Request parsed = parse_request(payload);
    EXPECT_EQ(format_request(parsed), payload);
  }
}

TEST(ServeProtocol, ReplyClassifiers) {
  EXPECT_TRUE(is_ok("OK query accepted=1"));
  EXPECT_TRUE(is_rejected(format_rejected("queue_full", 9)));
  EXPECT_TRUE(is_error(format_error(ErrorCode::kBadFrame, "x")));
  EXPECT_FALSE(is_ok("REJECTED overload"));
  const std::string rejected = format_rejected("queue_full", 9);
  EXPECT_NE(rejected.find("overload"), std::string::npos);
  EXPECT_NE(rejected.find("queue_depth=9"), std::string::npos);
}

}  // namespace
}  // namespace decycle::serve
