/// \file determinism_test.cpp
/// \brief The serving determinism contract: a closed-loop workload observes
/// byte-identical per-tenant verdict multisets and final graph hashes at
/// any worker count, any client thread count, and any verdict-cache state.
#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "serve/server.hpp"

namespace decycle::serve {
namespace {

LoadgenSpec test_spec() {
  LoadgenSpec spec;
  spec.tenants = 5;
  spec.client_threads = 4;
  spec.n = 24;
  spec.ops_per_tenant = 16;
  spec.seed = 42;
  return spec;
}

LoadgenReport run_with(const LoadgenSpec& spec, ServerOptions options) {
  Server server(std::move(options));
  server.start();
  LoadgenReport report =
      run_loadgen(spec, [&server] { return std::make_unique<InProcessClient>(server); });
  server.stop();
  return report;
}

void expect_reports_equal(const LoadgenReport& a, const LoadgenReport& b) {
  EXPECT_EQ(a.aggregate_digest, b.aggregate_digest);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const TenantOutcome& ta = a.tenants[i];
    const TenantOutcome& tb = b.tenants[i];
    EXPECT_EQ(ta.verdict_multiset, tb.verdict_multiset) << "tenant " << ta.name;
    EXPECT_EQ(ta.reply_digest, tb.reply_digest) << "tenant " << ta.name;
    EXPECT_EQ(ta.final_hash, tb.final_hash) << "tenant " << ta.name;
    EXPECT_EQ(ta.queries, tb.queries) << "tenant " << ta.name;
    EXPECT_EQ(ta.accepted, tb.accepted) << "tenant " << ta.name;
    EXPECT_EQ(ta.rejected, tb.rejected) << "tenant " << ta.name;
    EXPECT_EQ(ta.edges_inserted, tb.edges_inserted) << "tenant " << ta.name;
    EXPECT_EQ(ta.errors, 0u) << "tenant " << ta.name;
  }
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.total_accepted, b.total_accepted);
  EXPECT_EQ(a.total_errors, 0u);
  EXPECT_EQ(b.total_errors, 0u);
}

TEST(ServeDeterminism, OneVsEightWorkers) {
  const LoadgenSpec spec = test_spec();
  ServerOptions one;
  one.workers = 1;
  ServerOptions eight;
  eight.workers = 8;
  expect_reports_equal(run_with(spec, one), run_with(spec, eight));
}

TEST(ServeDeterminism, RerunIsReproducible) {
  const LoadgenSpec spec = test_spec();
  ServerOptions options;
  options.workers = 4;
  expect_reports_equal(run_with(spec, options), run_with(spec, options));
}

TEST(ServeDeterminism, ClientThreadCountIsInvisible) {
  LoadgenSpec narrow = test_spec();
  narrow.client_threads = 1;
  LoadgenSpec wide = test_spec();
  wide.client_threads = 5;
  ServerOptions options;
  options.workers = 4;
  expect_reports_equal(run_with(narrow, options), run_with(wide, options));
}

TEST(ServeDeterminism, VerdictCacheIsInvisible) {
  const LoadgenSpec spec = test_spec();
  ServerOptions cached;
  cached.workers = 4;
  ServerOptions uncached;
  uncached.workers = 4;
  uncached.verdict_cache_capacity = 0;
  expect_reports_equal(run_with(spec, cached), run_with(spec, uncached));
}

TEST(ServeDeterminism, BatchBoundIsInvisible) {
  const LoadgenSpec spec = test_spec();
  ServerOptions unbatched;
  unbatched.workers = 4;
  unbatched.max_batch = 1;
  ServerOptions batched;
  batched.workers = 4;
  batched.max_batch = 32;
  expect_reports_equal(run_with(spec, unbatched), run_with(spec, batched));
}

TEST(ServeDeterminism, SeedChangesTheWorkload) {
  LoadgenSpec spec = test_spec();
  ServerOptions options;
  options.workers = 4;
  const LoadgenReport base = run_with(spec, options);
  spec.seed = 43;
  const LoadgenReport other = run_with(spec, options);
  EXPECT_NE(base.aggregate_digest, other.aggregate_digest);
}

}  // namespace
}  // namespace decycle::serve
