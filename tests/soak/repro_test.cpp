#include "soak/repro.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace decycle::soak {
namespace {

/// Parses \p text and returns the CheckError message (empty = no throw).
std::string read_error(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_repro(in);
  } catch (const util::CheckError& e) {
    return e.what();
  }
  return {};
}

ReproCase sample_case() {
  ReproCase repro;
  repro.scenario.k = 6;
  repro.scenario.epsilon = 0.125;
  repro.scenario.repetitions = 2;
  repro.scenario.budget = core::threshold::BudgetSchedule::parse("4,8");
  repro.scenario.track = 3;
  repro.scenario.adversary = lab::parse_adversary("oneway:0.25");
  repro.scenario.seed = 31337;
  repro.detector = "tester";
  repro.kind = MismatchKind::kMissedCycle;
  repro.graph = graph::cycle(6);
  return repro;
}

TEST(Repro, WriteReadWriteRoundTripsByteIdentically) {
  const ReproCase repro = sample_case();
  std::ostringstream first;
  write_repro(first, repro);
  std::istringstream in(first.str());
  const ReproCase loaded = read_repro(in);
  EXPECT_EQ(loaded.detector, repro.detector);
  EXPECT_EQ(loaded.kind, repro.kind);
  EXPECT_EQ(loaded.scenario.key(), repro.scenario.key());
  EXPECT_EQ(loaded.graph.num_vertices(), repro.graph.num_vertices());
  EXPECT_EQ(loaded.graph.num_edges(), repro.graph.num_edges());
  std::ostringstream second;
  write_repro(second, loaded);
  EXPECT_EQ(second.str(), first.str());
}

TEST(Repro, ScenarioLineToleratesLeadingComments) {
  std::istringstream in(
      "# a comment\n\n# another\n"
      "scenario detector=tester kind=unsound k=5 seed=1\n"
      "3 3\n0 1\n1 2\n0 2\n");
  const ReproCase repro = read_repro(in);
  EXPECT_EQ(repro.detector, "tester");
  EXPECT_EQ(repro.kind, MismatchKind::kUnsound);
  EXPECT_EQ(repro.scenario.k, 5u);
  EXPECT_EQ(repro.graph.num_edges(), 3u);
}

TEST(Repro, UnknownKeyNamesTheAcceptedOnes) {
  const std::string err =
      read_error("scenario detector=tester k=5 flavor=spicy\n3 0\n");
  EXPECT_NE(err.find("unknown repro scenario key 'flavor'"), std::string::npos) << err;
  for (const char* accepted : {"detector", "kind", "eps", "budget", "adversary", "seed"}) {
    EXPECT_NE(err.find(accepted), std::string::npos) << err;
  }
}

TEST(Repro, DuplicateAndMalformedKeysAreLoud) {
  EXPECT_NE(read_error("scenario detector=tester k=5 k=6\n3 0\n").find("given twice"),
            std::string::npos);
  EXPECT_NE(read_error("scenario detector=tester k five\n3 0\n").find("key=value"),
            std::string::npos);
  EXPECT_NE(read_error("scenario detector=tester k=abc\n3 0\n")
                .find("expected unsigned integer"),
            std::string::npos);
  EXPECT_NE(read_error("scenario detector=tester k=5 kind=flaky\n3 0\n")
                .find("unknown mismatch kind"),
            std::string::npos);
  // Unknown adversary / budget tokens go through the shared loud parsers.
  EXPECT_NE(read_error("scenario detector=tester k=5 adversary=gamma:0.1\n3 0\n")
                .find("unknown adversary"),
            std::string::npos);
}

TEST(Repro, MissingRequiredKeysAreLoud) {
  EXPECT_NE(read_error("scenario kind=unsound k=5\n3 0\n").find("missing the 'detector' key"),
            std::string::npos);
  EXPECT_NE(read_error("scenario detector=tester\n3 0\n").find("missing the 'k' key"),
            std::string::npos);
  EXPECT_NE(read_error("# only comments\n").find("missing 'scenario' line"),
            std::string::npos);
  EXPECT_NE(read_error("banana detector=tester\n").find("expected a line starting with"),
            std::string::npos);
}

TEST(Repro, MalformedEdgeListsAreLoud) {
  EXPECT_NE(read_error("scenario detector=tester k=5\n3 2\n0 1\n").find("truncated"),
            std::string::npos);
  EXPECT_NE(read_error("scenario detector=tester k=5\n3 1\n0 7\n").find("out of range"),
            std::string::npos);
}

TEST(Repro, ReplayRejectsUnknownDetectorsNamingTheRegistry) {
  ReproCase repro = sample_case();
  repro.detector = "quantum";
  try {
    (void)replay_repro(repro);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'quantum'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tester"), std::string::npos) << msg;
    EXPECT_NE(msg.find("color_coding"), std::string::npos) << msg;
  }
}

TEST(Repro, ReplayOfAConsistentCaseDoesNotReproduce) {
  // A healthy detector on a healthy instance: replay reports the observed
  // kind (none) and reproduced=false against the recorded mismatch.
  const ReproCase repro = sample_case();  // tester, recorded kMissedCycle
  const ReplayResult result = replay_repro(repro);
  EXPECT_EQ(result.observed, MismatchKind::kNone);
  EXPECT_FALSE(result.reproduced);
}

}  // namespace
}  // namespace decycle::soak
