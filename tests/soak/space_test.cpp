#include "soak/space.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "graph/subgraph.hpp"

namespace decycle::soak {
namespace {

TEST(SoakSpace, DrawIsAPureFunctionOfSeedAndIndex) {
  const SoakSpace space;
  for (std::uint64_t index : {0ULL, 7ULL, 123ULL}) {
    const SoakInstance a = space.draw(42, index);
    const SoakInstance b = space.draw(42, index);
    EXPECT_EQ(a.instance_seed, b.instance_seed);
    EXPECT_EQ(a.scenario.key(), b.scenario.key());
    EXPECT_EQ(a.base, b.base);
    ASSERT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
    ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
    for (graph::EdgeId e = 0; e < a.graph.num_edges(); ++e) {
      EXPECT_EQ(a.graph.edge(e), b.graph.edge(e));
    }
  }
}

TEST(SoakSpace, InstanceSeedIsContentAddressed) {
  // Distinct (campaign, index) pairs map to distinct seeds, and an
  // instance's seed does not depend on how many other instances the
  // campaign runs — index i is index i forever.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t campaign : {1ULL, 2ULL}) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seeds.insert(SoakSpace::instance_seed(campaign, index));
    }
  }
  EXPECT_EQ(seeds.size(), 128u);
}

TEST(SoakSpace, DrawsCoverTheSpace) {
  const SoakSpace space;
  std::set<unsigned> ks;
  std::set<std::string> adversaries;
  std::set<std::string> budgets;
  bool planted = false;
  bool far = false;
  bool default_reps = false;
  for (std::uint64_t index = 0; index < 200; ++index) {
    const SoakInstance inst = space.draw(7, index);
    ASSERT_GE(inst.graph.num_vertices(), 1u);
    ASSERT_GE(inst.scenario.k, space.min_k);
    ASSERT_LE(inst.scenario.k, space.max_k);
    ks.insert(inst.scenario.k);
    adversaries.insert(inst.scenario.adversary.name());
    budgets.insert(inst.scenario.budget.name());
    planted |= inst.base.find("xC") != std::string::npos;
    far |= inst.certified_far;
    default_reps |= inst.scenario.repetitions == 0;
  }
  EXPECT_GE(ks.size(), 5u);           // most k values appear
  EXPECT_GE(adversaries.size(), 4u);  // none + the three drop kinds, rates vary
  EXPECT_GE(budgets.size(), 3u);      // none, flat caps, schedules
  EXPECT_TRUE(planted);               // compositions with planted C_k's occur
  EXPECT_TRUE(far);                   // certified-far bases occur
  EXPECT_TRUE(default_reps);          // amplified-default runs occur
}

TEST(SoakSpace, PlantedCompositionsContainCk) {
  const SoakSpace space;
  std::size_t checked = 0;
  for (std::uint64_t index = 0; index < 120 && checked < 10; ++index) {
    const SoakInstance inst = space.draw(11, index);
    if (inst.base.find("xC") == std::string::npos) continue;
    ++checked;
    EXPECT_TRUE(graph::has_cycle(inst.graph, inst.scenario.k))
        << "index=" << index << " base=" << inst.base;
  }
  EXPECT_GE(checked, 5u);
}

TEST(SoakSpace, CertifiedFarInstancesReallyContainCycles) {
  const SoakSpace space;
  std::size_t checked = 0;
  for (std::uint64_t index = 0; index < 200 && checked < 8; ++index) {
    const SoakInstance inst = space.draw(13, index);
    if (!inst.certified_far) continue;
    ++checked;
    EXPECT_TRUE(graph::has_cycle(inst.graph, inst.scenario.k))
        << "index=" << index << " base=" << inst.base;
  }
  EXPECT_GE(checked, 3u);
}

TEST(SoakSpace, InvalidBoundsFailLoudlyInsteadOfUnderflowing) {
  // --max-n=4 used to compute (4 - 8 + 1) on an unsigned and draw
  // billion-vertex instances; now the bounds are validated.
  SoakSpace space;
  space.max_n = 4;
  EXPECT_NE(space.validate().find("n bounds"), std::string::npos);
  EXPECT_THROW((void)space.draw(1, 0), util::CheckError);

  SoakSpace tiny_k;
  tiny_k.max_k = 2;  // below the registry's smallest supported cycle length
  EXPECT_NE(tiny_k.validate().find("k bounds"), std::string::npos);
  EXPECT_THROW((void)tiny_k.draw(1, 0), util::CheckError);

  SoakSpace huge;
  huge.max_n = 1u << 20;  // the DFS oracle could not keep up
  EXPECT_NE(huge.validate().find("n bounds"), std::string::npos);

  EXPECT_EQ(SoakSpace{}.validate(), "");
}

TEST(SoakScenario, KeyRoundTripsTheKnobs) {
  SoakScenario s;
  s.k = 7;
  s.epsilon = 0.25;
  s.repetitions = 2;
  s.budget = core::threshold::BudgetSchedule::parse("4,8");
  s.track = 3;
  s.adversary = lab::parse_adversary("late:0.5");
  s.seed = 99;
  EXPECT_EQ(s.key(), "k=7 eps=0.25 reps=2 budget=4,8 track=3 adversary=late:0.5 seed=99");
}

}  // namespace
}  // namespace decycle::soak
