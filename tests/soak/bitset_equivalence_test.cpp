/// \file bitset_equivalence_test.cpp
/// \brief Adjacency-representation equivalence: every registry detector must
/// produce identical verdicts on vector-backed and bitset-backed builds of
/// the same instance (the soak differential as the cross-checking harness).
#include "soak/differential.hpp"

#include <gtest/gtest.h>

#include <string>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "soak/space.hpp"
#include "util/rng.hpp"

namespace decycle::soak {
namespace {

using graph::AdjacencyMode;
using graph::Graph;

SoakScenario scenario(unsigned k, std::uint64_t seed) {
  SoakScenario s;
  s.k = k;
  s.epsilon = 0.25;
  s.repetitions = 2;
  s.budget = core::threshold::BudgetSchedule::none();
  s.track = 0;
  s.seed = seed;
  return s;
}

/// Rebuilds \p g with the representation forced both ways and runs the full
/// registry differential on each: the verdict of every detector — and the
/// oracle — must be independent of the adjacency encoding.
void expect_representation_invariant(const Graph& g, const SoakScenario& s,
                                     const std::string& label) {
  const Graph vec = Graph::from_edges(g.num_vertices(), g.edges(), AdjacencyMode::kVector);
  const Graph bits = Graph::from_edges(g.num_vertices(), g.edges(), AdjacencyMode::kBitset);
  ASSERT_FALSE(vec.uses_bitset()) << label;
  ASSERT_TRUE(bits.uses_bitset()) << label;

  const DifferentialReport rv = run_differential(vec, s);
  const DifferentialReport rb = run_differential(bits, s);

  EXPECT_EQ(rv.oracle.has_ck, rb.oracle.has_ck) << label;
  EXPECT_EQ(rv.mismatches, rb.mismatches) << label;
  ASSERT_EQ(rv.outcomes.size(), rb.outcomes.size()) << label;
  for (std::size_t i = 0; i < rv.outcomes.size(); ++i) {
    const DetectorOutcome& a = rv.outcomes[i];
    const DetectorOutcome& b = rb.outcomes[i];
    const std::string who = label + ": " + std::string(a.detector->name());
    EXPECT_EQ(a.ran, b.ran) << who;
    EXPECT_EQ(a.rejected, b.rejected) << who;
    EXPECT_EQ(a.exact_regime, b.exact_regime) << who;
    EXPECT_EQ(a.mismatch, b.mismatch) << who;
  }
  // Neither representation may introduce a mismatch of its own.
  EXPECT_EQ(rv.mismatches, 0u) << label;
}

TEST(BitsetEquivalence, CkFreeInstance) {
  // A path is Ck-free for every k: all detectors accept on both builds.
  expect_representation_invariant(graph::path(14), scenario(5, 41), "path k=5");
}

TEST(BitsetEquivalence, PlantedCycleInstance) {
  expect_representation_invariant(graph::cycle(6), scenario(6, 42), "C6 k=6");
}

TEST(BitsetEquivalence, DenseClusteredInstance) {
  // Caveman: dense cliques (bitset-friendly clustering) plus one long
  // global ring; contains triangles and the inter-cave cycle.
  expect_representation_invariant(graph::caveman(4, 5), scenario(3, 43), "caveman k=3");
}

TEST(BitsetEquivalence, RandomInstancesAcrossK) {
  util::Rng rng(77);
  for (const unsigned k : {4u, 5u}) {
    const Graph g = graph::erdos_renyi_gnm(36, 80, rng);
    expect_representation_invariant(g, scenario(k, 100 + k),
                                    "gnm k=" + std::to_string(k));
  }
}

TEST(BitsetEquivalence, CirculantStreamingBuild) {
  // The scale path end to end: streaming build + forced bitset, against the
  // same topology built generically. C_n(1..2) contains C3 (u, u+1, u+2).
  expect_representation_invariant(graph::circulant(30, 2), scenario(3, 55), "circulant k=3");
}

}  // namespace
}  // namespace decycle::soak
