#include "soak/shrink.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "fault_injection.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "soak/repro.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::soak {
namespace {

/// A haystack instance for the planted unsound fault: one C_{k+1} (a cycle,
/// but C_k-free) buried in a random tree plus bridge edges. The fault
/// rejects it (a cycle exists), the oracle clears it (no C_k) — and only the
/// k+1 cycle vertices actually matter.
graph::Graph haystack(unsigned k, util::Rng& rng) {
  const graph::Graph tree = graph::random_tree(36, rng);
  graph::GraphBuilder b(tree.num_vertices());
  for (const graph::Edge& e : tree.edges()) b.add_edge(e.first, e.second);
  const graph::Vertex first = b.num_vertices();
  for (unsigned i = 0; i <= k; ++i) {
    b.add_edge(first + i, first + (i + 1) % (k + 1));
  }
  b.add_edge(first, 0);       // bridge the cycle into the tree
  b.add_edge(first + 2, 17);  // and once more, so it is not a lone cut edge
  return b.build();
}

TEST(Shrink, RemoveVertexRenumbersAndDropsIncidentEdges) {
  const graph::Graph g = graph::cycle(5);  // 0-1-2-3-4-0
  const graph::Graph h = remove_vertex(g, 2);
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);  // the two edges at vertex 2 are gone
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(2, 3));  // old {3,4}
  EXPECT_TRUE(h.has_edge(0, 3));  // old {0,4}
}

TEST(Shrink, RemoveEdgeKeepsVertices) {
  const graph::Graph g = graph::cycle(4);
  const graph::Graph h = remove_edge(g, 0);
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
}

TEST(Shrink, RequiresAReproducingInput) {
  const ShrinkPredicate never = [](const SoakScenario&, const graph::Graph&) { return false; };
  EXPECT_THROW((void)shrink_mismatch(SoakScenario{}, graph::cycle(4), never),
               util::CheckError);
}

/// The acceptance-criterion test: an artificially injected unsound verdict
/// shrinks to a repro with <= 2k+2 vertices that replays deterministically
/// through the repro file path (what `decycle_soak --repro` executes).
TEST(Shrink, ReducesPlantedUnsoundVerdictToMinimalReplayableRepro) {
  constexpr unsigned kK = 5;
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::FaultyRejector>());
  const core::Detector& faulty = registry.require("faulty_rejector");

  util::Rng rng(0x50AC);
  const graph::Graph g = haystack(kK, rng);
  ASSERT_GE(g.num_vertices(), 40u);
  ASSERT_FALSE(graph::has_cycle(g, kK));  // C_k-free: rejection is unsound

  // Start from a deliberately messy scenario so scalar tightening has work.
  SoakScenario scenario;
  scenario.k = kK;
  scenario.epsilon = 0.25;
  scenario.repetitions = 4;
  scenario.budget = core::threshold::BudgetSchedule::constant(16);
  scenario.track = 4;
  scenario.adversary = lab::parse_adversary("uniform:0.5");
  scenario.seed = 77;
  ASSERT_EQ(check_detector(g, scenario, faulty), MismatchKind::kUnsound);

  const ShrinkOutcome shrunk =
      shrink_mismatch(scenario, g, mismatch_predicate(faulty, MismatchKind::kUnsound));
  EXPECT_TRUE(shrunk.stats.converged);
  EXPECT_GT(shrunk.stats.probes, 0u);

  // Minimality: the fault needs one cycle, so 1-minimality means a bare
  // cycle — every vertex degree 2, as many edges as vertices — that is
  // C_k-free (the haystack contains a C_{k+1} and a slightly longer
  // tree-path cycle; greedy deletion keeps one of them), comfortably under
  // the 2k+2 acceptance bound.
  EXPECT_LE(shrunk.graph.num_vertices(), 2 * kK + 2);
  EXPECT_GE(shrunk.graph.num_vertices(), kK + 1);
  EXPECT_EQ(shrunk.graph.num_edges(), shrunk.graph.num_vertices());
  for (graph::Vertex v = 0; v < shrunk.graph.num_vertices(); ++v) {
    EXPECT_EQ(shrunk.graph.degree(v), 2u) << "vertex " << v << " is not on the bare cycle";
  }
  EXPECT_FALSE(graph::has_cycle(shrunk.graph, kK));

  // Scalars tightened: the fault ignores every knob, so all of them drop to
  // their simplest form.
  EXPECT_EQ(shrunk.scenario.adversary.kind, lab::AdversarySpec::Kind::kNone);
  EXPECT_EQ(shrunk.scenario.repetitions, 1u);
  EXPECT_TRUE(shrunk.scenario.budget.unlimited());
  EXPECT_EQ(shrunk.scenario.track, 0u);

  // Still reproduces, and replays deterministically via the repro file
  // round-trip: write -> read -> replay, twice, bit-equal results.
  ReproCase repro;
  repro.scenario = shrunk.scenario;
  repro.detector = "faulty_rejector";
  repro.kind = MismatchKind::kUnsound;
  repro.graph = shrunk.graph;
  std::ostringstream file;
  write_repro(file, repro);
  for (int round = 0; round < 2; ++round) {
    std::istringstream in(file.str());
    const ReproCase loaded = read_repro(in);
    EXPECT_EQ(loaded.detector, "faulty_rejector");
    EXPECT_EQ(loaded.kind, MismatchKind::kUnsound);
    EXPECT_EQ(loaded.scenario.key(), shrunk.scenario.key());
    const ReplayResult replayed = replay_repro(loaded, registry);
    EXPECT_TRUE(replayed.reproduced);
    EXPECT_EQ(replayed.observed, MismatchKind::kUnsound);
    // The loaded case re-serializes to identical bytes.
    std::ostringstream again;
    write_repro(again, loaded);
    EXPECT_EQ(again.str(), file.str());
  }
}

TEST(Shrink, HonorsTheProbeBudget) {
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::FaultyRejector>());
  util::Rng rng(0x50AD);
  const graph::Graph g = haystack(5, rng);
  SoakScenario scenario;
  scenario.k = 5;
  ShrinkOptions options;
  options.max_probes = 10;  // far too few to finish
  const ShrinkOutcome shrunk =
      shrink_mismatch(scenario, g,
                      mismatch_predicate(registry.require("faulty_rejector"),
                                         MismatchKind::kUnsound),
                      options);
  EXPECT_LE(shrunk.stats.probes, 10u);
  EXPECT_FALSE(shrunk.stats.converged);
  // Whatever it kept still reproduces.
  EXPECT_EQ(check_detector(shrunk.graph, shrunk.scenario,
                           registry.require("faulty_rejector")),
            MismatchKind::kUnsound);
}

}  // namespace
}  // namespace decycle::soak
