/// Planted-fault detectors for soak-subsystem tests: deliberately broken
/// implementations of the Detector interface that the differential layer
/// must catch, and the shrinker must reduce. Test-only — never registered
/// in the builtin registry.
#pragma once

#include <atomic>
#include <memory>
#include <string_view>

#include "core/detector.hpp"
#include "graph/subgraph.hpp"

namespace decycle::soak_test {

/// Unsound by construction: claims "cycle found" whenever the instance
/// contains ANY cycle (of any length), with no witness. On a Ck-free
/// instance that still has cycles — e.g. a lone C_{k+1} — this is exactly
/// the planted soundness violation the differential must flag as kUnsound,
/// and the structure the shrinker must reduce to the bare offending cycle.
class FaultyRejector final : public core::Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "faulty_rejector"; }

  [[nodiscard]] const core::DetectorCapabilities& capabilities() const noexcept override {
    static constexpr core::DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 64,
        .distributed = false,
        .summary = "test fault: rejects on any cycle, witnessless"};
    return caps;
  }

  [[nodiscard]] core::Verdict run(congest::Simulator& sim,
                                  const core::DetectorOptions&) const override {
    core::Verdict v;
    v.accepted = !graph::girth(sim.graph()).has_value();
    v.rejecting_nodes = v.accepted ? 0 : 1;
    return v;
  }
};

/// Incomplete by construction: advertises the threshold-exact capability
/// surface but accepts everything. In the unlimited drop-free regime the
/// differential must flag its accepts on cyclic instances as kMissedCycle.
class SleepyAcceptor final : public core::Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "sleepy_acceptor"; }

  [[nodiscard]] const core::DetectorCapabilities& capabilities() const noexcept override {
    static constexpr core::DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 64,
        .uses_threshold_knobs = true,
        .distributed = false,
        .summary = "test fault: accepts everything"};
    return caps;
  }

  [[nodiscard]] core::Verdict run(congest::Simulator&,
                                  const core::DetectorOptions&) const override {
    return {};
  }
};

/// Stateful by construction (detectors must be pure): rejects, witnessless,
/// only on its FIRST run in the process. The campaign sees the mismatch,
/// but the shrinker's fresh replay cannot reproduce it — the campaign must
/// degrade to an unshrunk repro instead of aborting.
class OneShotRejector final : public core::Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "one_shot_rejector"; }

  [[nodiscard]] const core::DetectorCapabilities& capabilities() const noexcept override {
    static constexpr core::DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 64,
        .distributed = false,
        .summary = "test fault: rejects exactly once, then accepts forever"};
    return caps;
  }

  [[nodiscard]] core::Verdict run(congest::Simulator&,
                                  const core::DetectorOptions&) const override {
    core::Verdict v;
    v.accepted = fired_.exchange(true);
    v.rejecting_nodes = v.accepted ? 0 : 1;
    return v;
  }

 private:
  mutable std::atomic<bool> fired_{false};
};

}  // namespace decycle::soak_test
