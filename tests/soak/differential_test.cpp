#include "soak/differential.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "fault_injection.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "soak/space.hpp"
#include "util/check.hpp"

namespace decycle::soak {
namespace {

SoakScenario exact_scenario(unsigned k) {
  SoakScenario s;
  s.k = k;
  s.epsilon = 0.25;
  s.repetitions = 2;
  s.budget = core::threshold::BudgetSchedule::none();
  s.track = 0;
  s.seed = 1234;
  return s;
}

TEST(Differential, CkFreeInstancePassesCleanly) {
  // A path has no cycles: every detector must accept, no mismatches.
  const graph::Graph g = graph::path(12);
  const DifferentialReport report = run_differential(g, exact_scenario(5));
  EXPECT_FALSE(report.oracle.has_ck);
  EXPECT_EQ(report.mismatches, 0u);
  for (const DetectorOutcome& d : report.outcomes) {
    if (!d.ran) continue;
    EXPECT_FALSE(d.rejected) << d.detector->name();
    EXPECT_EQ(d.mismatch, MismatchKind::kNone) << d.detector->name();
  }
}

TEST(Differential, ExactRegimeDetectorsFindThePlantedCycle) {
  // C_k itself, exact regime (no drops, unlimited budget): the single-edge
  // checker and the threshold sweep must both reject — and the differential
  // must classify those rejections as consistent, not mismatches.
  const graph::Graph g = graph::cycle(6);
  const DifferentialReport report = run_differential(g, exact_scenario(6));
  EXPECT_TRUE(report.oracle.has_ck);
  EXPECT_TRUE(report.oracle.probe_has_ck);  // every edge lies on the cycle
  EXPECT_EQ(report.mismatches, 0u);
  bool exact_seen = false;
  for (const DetectorOutcome& d : report.outcomes) {
    if (!d.ran || !d.exact_regime) continue;
    exact_seen = true;
    EXPECT_TRUE(d.rejected) << d.detector->name();
  }
  EXPECT_TRUE(exact_seen);
}

TEST(Differential, GatesDetectorsByCapability) {
  const graph::Graph g = graph::cycle(8);
  const DifferentialReport report = run_differential(g, exact_scenario(8));
  for (const DetectorOutcome& d : report.outcomes) {
    const core::DetectorCapabilities& caps = d.detector->capabilities();
    EXPECT_EQ(d.ran, 8u >= caps.min_k && 8u <= caps.max_k) << d.detector->name();
  }
}

TEST(Differential, PlantedUnsoundRejectionIsFlagged) {
  // C_6 is C_5-free, but it IS a cycle — the planted fault rejects it
  // without a witness. That must surface as kUnsound, not crash the run.
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::FaultyRejector>());
  const graph::Graph g = graph::cycle(6);
  const DifferentialReport report = run_differential(g, exact_scenario(5), registry);
  EXPECT_FALSE(report.oracle.has_ck);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].mismatch, MismatchKind::kUnsound);
  EXPECT_NE(report.outcomes[0].detail.find("witness"), std::string::npos)
      << report.outcomes[0].detail;
  EXPECT_EQ(report.mismatches, 1u);
}

TEST(Differential, PlantedMissedCycleIsFlagged) {
  // The sleepy acceptor advertises threshold knobs; in the unlimited
  // drop-free regime its accept on a cyclic instance contradicts the oracle.
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::SleepyAcceptor>());
  const graph::Graph g = graph::cycle(6);
  const DifferentialReport report = run_differential(g, exact_scenario(6), registry);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].exact_regime);
  EXPECT_EQ(report.outcomes[0].mismatch, MismatchKind::kMissedCycle);

  // Outside the exact regime (a capped budget) the same accept is a
  // legitimate probabilistic miss — no mismatch.
  SoakScenario capped = exact_scenario(6);
  capped.budget = core::threshold::BudgetSchedule::constant(4);
  capped.track = 2;
  const DifferentialReport lenient = run_differential(g, capped, registry);
  EXPECT_EQ(lenient.outcomes[0].mismatch, MismatchKind::kNone);
  EXPECT_FALSE(lenient.outcomes[0].exact_regime);
}

TEST(Differential, CliqueDetectorJoinsViaItsDefaultModelAndIsExact) {
  // clique_hcycle cannot run on the congest simulator the campaign builds;
  // run_differential hands it a clique-model simulator instead, and its
  // drop-free runs are pinned to the oracle (exact_when_lossless).
  const auto find_chc = [](const DifferentialReport& report) -> const DetectorOutcome* {
    for (const DetectorOutcome& d : report.outcomes) {
      if (d.detector->name() == "clique_hcycle") return &d;
    }
    return nullptr;
  };
  {
    const graph::Graph g = graph::cycle(6);
    const DifferentialReport report = run_differential(g, exact_scenario(6));
    const DetectorOutcome* chc = find_chc(report);
    ASSERT_NE(chc, nullptr);
    EXPECT_TRUE(chc->ran);
    EXPECT_TRUE(chc->exact_regime);
    EXPECT_TRUE(chc->rejected);
    EXPECT_EQ(chc->mismatch, MismatchKind::kNone);
  }
  {
    const graph::Graph g = graph::path(12);
    const DetectorOutcome* chc = find_chc(run_differential(g, exact_scenario(5)));
    ASSERT_NE(chc, nullptr);
    EXPECT_TRUE(chc->ran);
    EXPECT_FALSE(chc->rejected);
  }
  {
    // Under a lossy adversary a miss is a legitimate outcome, never a
    // mismatch: the exact pin only holds drop-free.
    SoakScenario lossy = exact_scenario(6);
    lossy.adversary = lab::parse_adversary("uniform:0.5");
    const graph::Graph g = graph::cycle(6);
    const DetectorOutcome* chc = find_chc(run_differential(g, lossy));
    ASSERT_NE(chc, nullptr);
    EXPECT_TRUE(chc->ran);
    EXPECT_FALSE(chc->exact_regime);
    EXPECT_EQ(chc->mismatch, MismatchKind::kNone);
  }
}

TEST(Differential, CheckDetectorAgreesWithTheFullReport) {
  const graph::Graph g = graph::cycle(6);
  const SoakScenario s = exact_scenario(5);
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::FaultyRejector>());
  const DifferentialReport report = run_differential(g, s, registry);
  std::string detail;
  EXPECT_EQ(check_detector(g, s, registry.require("faulty_rejector"), &detail),
            report.outcomes[0].mismatch);
  EXPECT_EQ(detail, report.outcomes[0].detail);
}

TEST(Differential, MismatchKindNamesRoundTrip) {
  for (const MismatchKind kind :
       {MismatchKind::kNone, MismatchKind::kUnsound, MismatchKind::kMissedCycle}) {
    EXPECT_EQ(parse_mismatch_kind(mismatch_kind_name(kind)), kind);
  }
  try {
    (void)parse_mismatch_kind("flaky");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unsound"), std::string::npos) << msg;
    EXPECT_NE(msg.find("missed_cycle"), std::string::npos) << msg;
  }
}

TEST(Differential, AmplifiedFarAuditRejectsACertifiedFarInstance) {
  // A dense planted-far instance at its certified epsilon: the amplified
  // tester must reject (Theorem 1 says w.p. >= 2/3; at this density the
  // observed rate is ~1 and the audit seed is pinned).
  util::Rng rng(5);
  graph::PlantedOptions opt;
  opt.k = 5;
  opt.num_cycles = 6;
  const graph::FarInstance far = graph::planted_cycles_instance(opt, rng);
  SoakScenario s = exact_scenario(5);
  s.epsilon = 0.125;
  ASSERT_GE(far.certified_epsilon(), s.epsilon);
  const std::optional<bool> rejected = amplified_far_rejects(far.graph, s);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_TRUE(*rejected);

  // A registry without an epsilon-driven detector has nothing to audit.
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::FaultyRejector>());
  EXPECT_FALSE(amplified_far_rejects(far.graph, s, registry).has_value());
}

}  // namespace
}  // namespace decycle::soak
