#include "soak/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "fault_injection.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace decycle::soak {
namespace {

std::size_t count_lines(const std::string& text, const std::string& type) {
  const std::string needle = "\"type\":\"" + type + "\"";
  std::size_t count = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) ++count;
  }
  return count;
}

TEST(Campaign, RequiresABudget) {
  EXPECT_THROW((void)run_campaign(CampaignOptions{}), util::CheckError);
}

TEST(Campaign, LogIsByteIdenticalAcrossThreadCounts) {
  CampaignOptions opts;
  opts.seed = 9;
  opts.instances = 40;
  const CampaignSummary serial = run_campaign(opts);

  util::ThreadPool pool3(3);
  opts.pool = &pool3;
  const CampaignSummary threaded3 = run_campaign(opts);
  EXPECT_EQ(serial.jsonl, threaded3.jsonl);

  util::ThreadPool pool8(8);
  opts.pool = &pool8;
  const CampaignSummary threaded8 = run_campaign(opts);
  EXPECT_EQ(serial.jsonl, threaded8.jsonl);
}

TEST(Campaign, BuiltinRegistryRunsCleanAndLogsEveryInstance) {
  CampaignOptions opts;
  opts.seed = 4;
  opts.instances = 60;
  const CampaignSummary summary = run_campaign(opts);
  EXPECT_EQ(summary.instances, 60u);
  EXPECT_TRUE(summary.mismatches.empty());
  EXPECT_FALSE(summary.failed());
  EXPECT_GT(summary.detector_runs, summary.instances);  // several detectors per instance
  EXPECT_EQ(count_lines(summary.jsonl, "meta"), 1u);
  EXPECT_EQ(count_lines(summary.jsonl, "instance"), 60u);
  EXPECT_EQ(count_lines(summary.jsonl, "mismatch"), 0u);
  EXPECT_EQ(count_lines(summary.jsonl, "summary"), 1u);
}

TEST(Campaign, SecondsBudgetStopsAfterABatch) {
  CampaignOptions opts;
  opts.seed = 2;
  opts.seconds = 0.05;
  const CampaignSummary summary = run_campaign(opts);
  EXPECT_GE(summary.instances, 16u);  // at least one batch ran
}

TEST(Campaign, PlantedFaultIsCaughtShrunkAndWrittenAsAReplayableRepro) {
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::FaultyRejector>());

  const std::string dir = ::testing::TempDir() + "soak_campaign_repros";
  std::filesystem::create_directories(dir);
  CampaignOptions opts;
  opts.seed = 21;
  opts.instances = 12;
  opts.registry = &registry;
  opts.repro_dir = dir;
  const CampaignSummary summary = run_campaign(opts);

  // Most random instances contain some cycle, so the fault fires a lot.
  ASSERT_FALSE(summary.mismatches.empty());
  EXPECT_TRUE(summary.failed());
  EXPECT_EQ(count_lines(summary.jsonl, "mismatch"), summary.mismatches.size());
  for (const MismatchRecord& m : summary.mismatches) {
    EXPECT_EQ(m.repro.kind, MismatchKind::kUnsound);
    // Shrunk: never larger than the original, and tiny in practice (the
    // fault only needs one cycle to fire).
    EXPECT_LE(m.repro.graph.num_vertices(), m.original_vertices);
    EXPECT_LE(m.repro.graph.num_vertices(), 12u);
    ASSERT_FALSE(m.repro_path.empty());
    std::ifstream in(m.repro_path);
    ASSERT_TRUE(in.good()) << m.repro_path;
    const ReproCase loaded = read_repro(in);
    const ReplayResult replayed = replay_repro(loaded, registry);
    EXPECT_TRUE(replayed.reproduced) << m.repro_path;
  }
}

TEST(Campaign, NonReplayableMismatchDegradesToAnUnshrunkRepro) {
  // A stateful detector (rejects exactly once) mismatches in the campaign
  // run but not on the shrinker's fresh replay. The campaign must keep the
  // evidence — original instance, annotated detail — not abort mid-flight.
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::OneShotRejector>());
  CampaignOptions opts;
  opts.seed = 5;
  opts.instances = 8;
  opts.registry = &registry;
  const CampaignSummary summary = run_campaign(opts);
  EXPECT_EQ(summary.instances, 8u);  // the campaign completed
  ASSERT_EQ(summary.mismatches.size(), 1u);
  const MismatchRecord& m = summary.mismatches[0];
  EXPECT_EQ(m.repro.kind, MismatchKind::kUnsound);
  EXPECT_EQ(m.repro.graph.num_vertices(), m.original_vertices);  // unshrunk
  EXPECT_FALSE(m.shrink_stats.converged);
  EXPECT_NE(m.detail.find("shrink skipped"), std::string::npos) << m.detail;
  EXPECT_NE(summary.jsonl.find("shrink skipped"), std::string::npos);
}

TEST(Campaign, RejectsAnInvalidSpaceUpFront) {
  CampaignOptions opts;
  opts.instances = 4;
  opts.space.max_n = 4;  // below the fixed minimum: would underflow the draw
  try {
    (void)run_campaign(opts);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("soak space"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n bounds"), std::string::npos) << msg;
  }
}

TEST(Campaign, ShrinkCanBeDisabled) {
  core::DetectorRegistry registry;
  registry.add(std::make_unique<soak_test::FaultyRejector>());
  CampaignOptions opts;
  opts.seed = 21;
  opts.instances = 12;
  opts.registry = &registry;
  opts.shrink = false;
  const CampaignSummary summary = run_campaign(opts);
  ASSERT_FALSE(summary.mismatches.empty());
  // Unshrunk repros keep the original instance verbatim.
  for (const MismatchRecord& m : summary.mismatches) {
    EXPECT_EQ(m.repro.graph.num_vertices(), m.original_vertices);
    EXPECT_EQ(m.shrink_stats.probes, 0u);
  }
}

}  // namespace
}  // namespace decycle::soak
