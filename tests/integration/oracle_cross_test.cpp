/// Mutual validation of the three independent cycle-detection
/// implementations: exact DFS oracle, centralized color coding, and the
/// distributed checker. Any disagreement indicts exactly one of them —
/// triangulation the individual unit tests cannot provide.
#include <gtest/gtest.h>

#include "baselines/color_coding.hpp"
#include "core/scan.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle {
namespace {

using graph::Graph;

TEST(OracleCross, ThreeWayAgreementOnRandomGraphs) {
  util::Rng rng(0xC105);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = graph::erdos_renyi_gnm(13, 20, rng);
    for (const unsigned k : {4u, 5u, 6u}) {
      const bool exact = graph::has_cycle(g, k);

      core::ScanOptions sopt;
      sopt.detect.k = k;
      const bool distributed =
          core::exhaustive_ck_scan(g, graph::IdAssignment::identity(g.num_vertices()), sopt)
              .found;
      EXPECT_EQ(distributed, exact) << "trial=" << trial << " k=" << k;

      baselines::ColorCodingOptions copt;
      copt.iterations = exact ? 600 : 40;
      copt.seed = 17 * static_cast<std::uint64_t>(trial) + k;
      const auto cc = baselines::find_cycle_color_coding(g, k, copt);
      if (exact) {
        EXPECT_TRUE(cc.found) << "color coding missed (p_fail < 1e-4): trial=" << trial
                              << " k=" << k;
      } else {
        EXPECT_FALSE(cc.found) << "color coding fabricated a cycle";
      }
    }
  }
}

TEST(OracleCross, CountConsistentWithDetection) {
  util::Rng rng(0xC106);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::erdos_renyi_gnm(12, 19, rng);
    for (unsigned k = 3; k <= 7; ++k) {
      EXPECT_EQ(graph::count_cycles(g, k) > 0, graph::has_cycle(g, k))
          << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(OracleCross, GirthConsistentWithCensusOracles) {
  util::Rng rng(0xC107);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::erdos_renyi_gnm(14, 22, rng);
    const auto gg = graph::girth(g);
    if (!gg.has_value()) continue;
    EXPECT_TRUE(graph::has_cycle(g, *gg));
    for (unsigned k = 3; k < *gg; ++k) {
      EXPECT_FALSE(graph::has_cycle(g, k)) << "cycle below girth, trial=" << trial;
    }
    // The shortest cycle is always induced (a chord would shorten it).
    EXPECT_TRUE(graph::has_induced_cycle(g, *gg));
  }
}

}  // namespace
}  // namespace decycle
