/// Registry-wide oracle agreement: every registered detector — core
/// algorithms and baselines alike — is driven through the one unified
/// Detector interface and cross-checked against the exact DFS oracle on
/// instances where its behaviour is (near-)deterministic. This generalizes
/// the pairwise cross-tests: an algorithm added to the registry is pulled
/// into the agreement harness automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/detector.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "lab/scenario.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle {
namespace {

using core::Detector;
using core::DetectorOptions;
using core::DetectorRegistry;
using core::Verdict;

/// A k each detector supports (the general ones get 5, c4 gets 4, triangle
/// gets 3).
unsigned supported_k(const Detector& d) {
  return std::clamp(5u, d.capabilities().min_k, d.capabilities().max_k);
}

/// Options under which every registered detector detects C_k on the k-cycle
/// (near-)certainly: unlimited threshold budgets make the sweep exhaustive,
/// and 512 repetitions push the sampling testers' miss probability below
/// 1e-8 on these instances.
DetectorOptions certain_options(unsigned k) {
  DetectorOptions opt;
  opt.k = k;
  opt.epsilon = 0.2;
  opt.seed = 71;
  opt.repetitions = 512;
  opt.budget = core::threshold::BudgetSchedule::none();
  opt.max_tracked = 0;
  return opt;
}

TEST(DetectorRegistryCross, EveryDetectorRejectsTheKCycleWithAValidWitness) {
  for (const Detector* det : DetectorRegistry::builtin().detectors()) {
    const unsigned k = supported_k(*det);
    const graph::Graph g = graph::cycle(k);
    ASSERT_TRUE(graph::has_cycle(g, k));  // the oracle agrees this must fire
    const auto ids = graph::IdAssignment::identity(g.num_vertices());
    const Verdict v = det->run_fresh(g, ids, certain_options(k));
    EXPECT_FALSE(v.accepted) << det->name() << " missed C_" << k << " on the k-cycle";
    ASSERT_EQ(v.witness.size(), k) << det->name();
    EXPECT_TRUE(graph::validate_cycle(g, v.witness)) << det->name();
  }
}

TEST(DetectorRegistryCross, EveryDetectorAcceptsAcyclicAndHighGirthInstances) {
  util::Rng rng(0xD1CE);
  for (const Detector* det : DetectorRegistry::builtin().detectors()) {
    const unsigned k = supported_k(*det);
    const auto check_accepts = [&](const graph::Graph& g, const char* label) {
      ASSERT_FALSE(graph::has_cycle(g, k)) << label;
      const auto ids = graph::IdAssignment::identity(g.num_vertices());
      const Verdict v = det->run_fresh(g, ids, certain_options(k));
      EXPECT_TRUE(v.accepted) << det->name() << " fabricated a C_" << k << " on " << label;
      EXPECT_TRUE(v.witness.empty()) << det->name();
    };
    check_accepts(graph::path(12), "a path");
    check_accepts(graph::ck_free_instance(graph::CkFreeFamily::kHighGirth, k, 40, rng),
                  "a girth-(>k) instance");
  }
}

TEST(DetectorRegistryCross, AgreementWithTheOracleOnRandomGraphs) {
  // On small random graphs with exhaustive settings, the deterministic
  // detectors must agree with the DFS oracle exactly, and the randomized
  // ones must stay one-sided (no rejection when the oracle says Ck-free)
  // while their witnesses are always validated.
  util::Rng rng(0xC1A0);
  for (int trial = 0; trial < 6; ++trial) {
    const graph::Graph g = graph::erdos_renyi_gnm(12, 18, rng);
    const auto ids = graph::IdAssignment::identity(g.num_vertices());
    for (const Detector* det : DetectorRegistry::builtin().detectors()) {
      const unsigned k = supported_k(*det);
      const bool exact = graph::has_cycle(g, k);
      DetectorOptions opt = certain_options(k);
      opt.seed = 911 + static_cast<std::uint64_t>(trial);
      const Verdict v = det->run_fresh(g, ids, opt);
      if (!exact) {
        EXPECT_TRUE(v.accepted) << det->name() << " broke 1-sidedness, trial=" << trial;
      } else if (std::string_view(det->name()) == "threshold" ||
                 std::string_view(det->name()) == "color_coding") {
        // Exhaustive sweep / ~512 colorings at k <= 5: agreement expected.
        EXPECT_FALSE(v.accepted) << det->name() << " missed, trial=" << trial;
      }
      if (!v.accepted) {
        EXPECT_TRUE(graph::validate_cycle(g, v.witness)) << det->name();
      }
    }
  }
}

TEST(DetectorRegistryCross, CliqueHCycleAgreesWithTheOracleOnEveryLabFamily) {
  // The Congested-Clique detector is exact on drop-free runs, so it must
  // agree with the DFS oracle on EVERY registered graph family — the same
  // instances the lab matrix sweeps — not just hand-picked topologies. New
  // families are pulled into this agreement harness automatically.
  const core::Detector& chc = DetectorRegistry::builtin().require("clique_hcycle");
  const auto families = lab::known_families();
  ASSERT_GE(families.size(), 16u);
  util::Rng rng(0xC11C);
  for (const lab::FamilyInfo& info : families) {
    // Find a (k, n) combination the family accepts (e.g. ckfree_bipartite
    // is odd-k only; some families have n floors).
    lab::ScenarioCell cell;
    cell.family = std::string(info.name);
    cell.epsilon = 0.15;
    bool found = false;
    // The small trailing candidates cover families whose n is not a vertex
    // count (hypercube's n is its dimension, capped at 20).
    for (const std::uint64_t n : {24u, 30u, 32u, 40u, 5u, 6u}) {
      for (const unsigned k : {5u, 4u, 3u, 7u}) {
        if (lab::validate_family(info.name, k, n).empty()) {
          cell.k = k;
          cell.n = n;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    ASSERT_TRUE(found) << "no buildable (k, n) for family " << info.name;

    const lab::BuiltTopology topo = lab::build_topology(cell, rng);
    const bool oracle = graph::find_cycle(topo.graph, cell.k).has_value();
    if (topo.truth == lab::GroundTruth::kCkFree) {
      EXPECT_FALSE(oracle) << info.name;
    }
    if (topo.truth == lab::GroundTruth::kHasCk) {
      EXPECT_TRUE(oracle) << info.name;
    }

    DetectorOptions opt;
    opt.k = cell.k;
    opt.seed = 0xFA17 + cell.k;
    const auto ids = graph::IdAssignment::identity(topo.graph.num_vertices());
    const Verdict v = chc.run_fresh(topo.graph, ids, opt);
    EXPECT_EQ(!v.accepted, oracle) << "clique_hcycle disagreed with the oracle on "
                                   << info.name << " (k=" << cell.k << ", n=" << cell.n << ")";
    if (!v.accepted) {
      EXPECT_TRUE(graph::validate_cycle(topo.graph, v.witness)) << info.name;
    }
  }
}

TEST(DetectorRegistryCross, EdgeCheckerHonorsAnExplicitTargetEdge) {
  // The unified options carry the target edge; with it the checker is the
  // deterministic Phase-2 subroutine and must match the per-edge oracle.
  const core::Detector& checker = DetectorRegistry::builtin().require("edge_checker");
  util::Rng rng(0xED6E);
  const graph::Graph g = graph::erdos_renyi_gnm(12, 18, rng);
  const auto ids = graph::IdAssignment::identity(g.num_vertices());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    DetectorOptions opt;
    opt.k = 5;
    opt.edge = g.edge(e);
    const Verdict verdict = checker.run_fresh(g, ids, opt);
    EXPECT_EQ(!verdict.accepted, graph::has_cycle_through_edge(g, 5, u, v))
        << "edge " << u << "-" << v;
  }
}

}  // namespace
}  // namespace decycle
