/// Registry-wide oracle agreement: every registered detector — core
/// algorithms and baselines alike — is driven through the one unified
/// Detector interface and cross-checked against the exact DFS oracle on
/// instances where its behaviour is (near-)deterministic. This generalizes
/// the pairwise cross-tests: an algorithm added to the registry is pulled
/// into the agreement harness automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/detector.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle {
namespace {

using core::Detector;
using core::DetectorOptions;
using core::DetectorRegistry;
using core::Verdict;

/// A k each detector supports (the general ones get 5, c4 gets 4, triangle
/// gets 3).
unsigned supported_k(const Detector& d) {
  return std::clamp(5u, d.capabilities().min_k, d.capabilities().max_k);
}

/// Options under which every registered detector detects C_k on the k-cycle
/// (near-)certainly: unlimited threshold budgets make the sweep exhaustive,
/// and 512 repetitions push the sampling testers' miss probability below
/// 1e-8 on these instances.
DetectorOptions certain_options(unsigned k) {
  DetectorOptions opt;
  opt.k = k;
  opt.epsilon = 0.2;
  opt.seed = 71;
  opt.repetitions = 512;
  opt.budget = core::threshold::BudgetSchedule::none();
  opt.max_tracked = 0;
  return opt;
}

TEST(DetectorRegistryCross, EveryDetectorRejectsTheKCycleWithAValidWitness) {
  for (const Detector* det : DetectorRegistry::builtin().detectors()) {
    const unsigned k = supported_k(*det);
    const graph::Graph g = graph::cycle(k);
    ASSERT_TRUE(graph::has_cycle(g, k));  // the oracle agrees this must fire
    const auto ids = graph::IdAssignment::identity(g.num_vertices());
    const Verdict v = det->run_fresh(g, ids, certain_options(k));
    EXPECT_FALSE(v.accepted) << det->name() << " missed C_" << k << " on the k-cycle";
    ASSERT_EQ(v.witness.size(), k) << det->name();
    EXPECT_TRUE(graph::validate_cycle(g, v.witness)) << det->name();
  }
}

TEST(DetectorRegistryCross, EveryDetectorAcceptsAcyclicAndHighGirthInstances) {
  util::Rng rng(0xD1CE);
  for (const Detector* det : DetectorRegistry::builtin().detectors()) {
    const unsigned k = supported_k(*det);
    const auto check_accepts = [&](const graph::Graph& g, const char* label) {
      ASSERT_FALSE(graph::has_cycle(g, k)) << label;
      const auto ids = graph::IdAssignment::identity(g.num_vertices());
      const Verdict v = det->run_fresh(g, ids, certain_options(k));
      EXPECT_TRUE(v.accepted) << det->name() << " fabricated a C_" << k << " on " << label;
      EXPECT_TRUE(v.witness.empty()) << det->name();
    };
    check_accepts(graph::path(12), "a path");
    check_accepts(graph::ck_free_instance(graph::CkFreeFamily::kHighGirth, k, 40, rng),
                  "a girth-(>k) instance");
  }
}

TEST(DetectorRegistryCross, AgreementWithTheOracleOnRandomGraphs) {
  // On small random graphs with exhaustive settings, the deterministic
  // detectors must agree with the DFS oracle exactly, and the randomized
  // ones must stay one-sided (no rejection when the oracle says Ck-free)
  // while their witnesses are always validated.
  util::Rng rng(0xC1A0);
  for (int trial = 0; trial < 6; ++trial) {
    const graph::Graph g = graph::erdos_renyi_gnm(12, 18, rng);
    const auto ids = graph::IdAssignment::identity(g.num_vertices());
    for (const Detector* det : DetectorRegistry::builtin().detectors()) {
      const unsigned k = supported_k(*det);
      const bool exact = graph::has_cycle(g, k);
      DetectorOptions opt = certain_options(k);
      opt.seed = 911 + static_cast<std::uint64_t>(trial);
      const Verdict v = det->run_fresh(g, ids, opt);
      if (!exact) {
        EXPECT_TRUE(v.accepted) << det->name() << " broke 1-sidedness, trial=" << trial;
      } else if (std::string_view(det->name()) == "threshold" ||
                 std::string_view(det->name()) == "color_coding") {
        // Exhaustive sweep / ~512 colorings at k <= 5: agreement expected.
        EXPECT_FALSE(v.accepted) << det->name() << " missed, trial=" << trial;
      }
      if (!v.accepted) {
        EXPECT_TRUE(graph::validate_cycle(g, v.witness)) << det->name();
      }
    }
  }
}

TEST(DetectorRegistryCross, EdgeCheckerHonorsAnExplicitTargetEdge) {
  // The unified options carry the target edge; with it the checker is the
  // deterministic Phase-2 subroutine and must match the per-edge oracle.
  const core::Detector& checker = DetectorRegistry::builtin().require("edge_checker");
  util::Rng rng(0xED6E);
  const graph::Graph g = graph::erdos_renyi_gnm(12, 18, rng);
  const auto ids = graph::IdAssignment::identity(g.num_vertices());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    DetectorOptions opt;
    opt.k = 5;
    opt.edge = g.edge(e);
    const Verdict verdict = checker.run_fresh(g, ids, opt);
    EXPECT_EQ(!verdict.accepted, graph::has_cycle_through_edge(g, 5, u, v))
        << "edge " << u << "-" << v;
  }
}

}  // namespace
}  // namespace decycle
