/// End-to-end scenarios crossing all module boundaries: generators →
/// simulator → tester → witness validation → packing certificates, at sizes
/// larger than the per-module unit tests use.
#include <gtest/gtest.h>

#include "baselines/color_coding.hpp"
#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/packing.hpp"
#include "graph/subgraph.hpp"
#include "harness/estimator.hpp"
#include "util/rng.hpp"

namespace decycle {
namespace {

using graph::Graph;
using graph::IdAssignment;

TEST(Integration, FullTesterPipelineOnNoisyFarInstance) {
  util::Rng rng(1);
  graph::NoisyFarOptions nopt;
  nopt.k = 5;
  nopt.num_cycles = 10;
  nopt.background_n = 150;
  nopt.background_m = 260;
  const auto inst = graph::noisy_far_instance(nopt, rng);

  // The packing certifier independently confirms farness.
  const auto packing = graph::greedy_cycle_packing(inst.graph, 5);
  EXPECT_GE(packing.size(), inst.planted.size());

  const IdAssignment ids = IdAssignment::random_quadratic(inst.graph.num_vertices(), rng);
  core::TesterOptions topt;
  topt.k = 5;
  topt.epsilon = inst.certified_epsilon();
  topt.seed = 77;
  const auto verdict = core::test_ck_freeness(inst.graph, ids, topt);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_TRUE(graph::validate_cycle(inst.graph, verdict.witness));

  // The distributed witness is corroborated by the centralized baseline.
  baselines::ColorCodingOptions copt;
  copt.iterations = 300;
  EXPECT_TRUE(baselines::find_cycle_color_coding(inst.graph, 5, copt).found);
}

TEST(Integration, DetectionRateClearsTwoThirdsOnFarInstance) {
  // Theorem 1's completeness at the prescribed repetition count, measured
  // over independent trials with the estimator (small instance, k = 4).
  util::Rng rng(2);
  graph::PlantedOptions popt;
  popt.k = 4;
  popt.num_cycles = 4;
  popt.padding_leaves = 30;
  const auto inst = graph::planted_cycles_instance(popt, rng);
  const double eps = inst.certified_epsilon();
  const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());

  util::ThreadPool pool(4);
  const auto estimate = harness::estimate_rate(
      [&](std::size_t, std::uint64_t seed) {
        core::TesterOptions topt;
        topt.k = 4;
        topt.epsilon = eps;
        topt.seed = seed;
        return !core::test_ck_freeness(inst.graph, ids, topt).accepted;
      },
      60, 123, &pool);
  EXPECT_GE(estimate.interval.high, 2.0 / 3.0);
  EXPECT_GT(estimate.rate(), 2.0 / 3.0);
}

TEST(Integration, SoundnessSweepAcrossFamiliesAndIds) {
  util::Rng rng(3);
  for (const unsigned k : {4u, 5u, 6u}) {
    for (const auto family : graph::ck_free_families_for(k)) {
      const Graph g = graph::ck_free_instance(family, k, 40, rng);
      for (int idmode = 0; idmode < 2; ++idmode) {
        const IdAssignment ids = idmode == 0
                                     ? IdAssignment::identity(g.num_vertices())
                                     : IdAssignment::shuffled(g.num_vertices(), rng);
        core::TesterOptions topt;
        topt.k = k;
        topt.repetitions = 5;
        topt.seed = 17 * k + static_cast<std::uint64_t>(idmode);
        const auto verdict = core::test_ck_freeness(g, ids, topt);
        EXPECT_TRUE(verdict.accepted)
            << graph::family_name(family) << " k=" << k << " idmode=" << idmode;
      }
    }
  }
}

TEST(Integration, LayeredHardInstanceDetectedDespiteDensity) {
  util::Rng rng(4);
  const auto inst = graph::layered_instance(5, 13, 4, rng);
  const IdAssignment ids = IdAssignment::identity(inst.graph.num_vertices());
  core::TesterOptions topt;
  topt.k = 5;
  topt.repetitions = 8;  // every edge lies on a planted C5: one hit suffices
  topt.seed = 5;
  const auto verdict = core::test_ck_freeness(inst.graph, ids, topt);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_TRUE(graph::validate_cycle(inst.graph, verdict.witness));
  EXPECT_FALSE(verdict.overflow);
}

TEST(Integration, LargerSparseGraphRunsFast) {
  // 5000 nodes, 3 repetitions: exercises the event-driven active sets.
  util::Rng rng(6);
  const Graph g = graph::random_connected(5000, 6000, rng);
  const IdAssignment ids = IdAssignment::identity(g.num_vertices());
  core::TesterOptions topt;
  topt.k = 5;
  topt.repetitions = 3;
  topt.seed = 9;
  const auto verdict = core::test_ck_freeness(g, ids, topt);
  // Whatever the verdict, it must be internally consistent and validated.
  if (!verdict.accepted) {
    EXPECT_TRUE(graph::validate_cycle(g, verdict.witness));
  }
  EXPECT_LE(verdict.stats.rounds_executed, 3u * (5 / 2 + 2) + 1);
}

}  // namespace
}  // namespace decycle
