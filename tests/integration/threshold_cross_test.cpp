/// Oracle cross-validation of the threshold detection family against the
/// exact DFS oracle and the FO17 tester, over the *entire* lab family
/// registry. With unlimited thresholds one sweep is an exhaustive parallel
/// edge scan, so its verdict must equal the oracle on every instance; with
/// finite thresholds completeness may drop but soundness (never reject a
/// Ck-free graph) must survive — the acceptance criterion of the lab's
/// algorithm axis.
#include <gtest/gtest.h>

#include <string>

#include "core/tester.hpp"
#include "core/threshold/threshold_tester.hpp"
#include "graph/ids.hpp"
#include "graph/subgraph.hpp"
#include "lab/scenario.hpp"
#include "util/rng.hpp"

namespace decycle {
namespace {

constexpr unsigned kK = 5;

/// A buildable size parameter per family, small enough that the exact DFS
/// oracle and a full FO17 run stay cheap.
std::uint64_t size_for(std::string_view family) {
  if (family == "hypercube") return 3;  // dimension -> 8 vertices
  if (family == "complete") return 8;
  if (family == "grid") return 4;  // 4x4
  if (family == "wheel") return 10;
  if (family == "noisy") return 2 * kK;
  if (family == "layered") return 6;
  if (family == "planted") return 20;
  return 14;
}

struct BuiltCase {
  lab::BuiltTopology topo;
  graph::IdAssignment ids;
};

BuiltCase build_case(std::string_view family) {
  lab::ScenarioCell cell;
  cell.family = std::string(family);
  cell.k = kK;
  cell.n = size_for(family);
  EXPECT_EQ(lab::validate_family(cell.family, cell.k, cell.n), "") << family;
  util::Rng rng(cell.cell_seed());
  BuiltCase out{lab::build_topology(cell, rng), {}};
  out.ids = graph::IdAssignment::identity(out.topo.graph.num_vertices());
  return out;
}

TEST(ThresholdCross, ExhaustiveRegimeMatchesOracleOnEveryRegistryFamily) {
  for (const lab::FamilyInfo& info : lab::known_families()) {
    const BuiltCase c = build_case(info.name);
    const bool exact = graph::has_cycle(c.topo.graph, kK);

    // Ground-truth labels must themselves agree with the oracle.
    if (c.topo.truth == lab::GroundTruth::kCkFree) {
      EXPECT_FALSE(exact) << info.name;
    }
    if (c.topo.truth == lab::GroundTruth::kHasCk || c.topo.truth == lab::GroundTruth::kFar) {
      EXPECT_TRUE(exact) << info.name;
    }

    core::threshold::ThresholdOptions topt;
    topt.k = kK;
    topt.seed = 17;
    topt.budget = core::threshold::BudgetSchedule::none();
    topt.max_tracked = 0;
    const auto tv = core::threshold::test_ck_freeness_threshold(c.topo.graph, c.ids, topt);
    EXPECT_EQ(!tv.verdict.accepted, exact) << "family=" << info.name;
    if (!tv.verdict.accepted) {
      EXPECT_EQ(tv.verdict.witness.size(), kK) << info.name;  // validated witness
    }
    EXPECT_FALSE(tv.verdict.truncated) << info.name;
  }
}

TEST(ThresholdCross, AgreesWithFo17TesterSoundness) {
  for (const lab::FamilyInfo& info : lab::known_families()) {
    const BuiltCase c = build_case(info.name);

    core::TesterOptions fopt;
    fopt.k = kK;
    fopt.epsilon = 0.125;
    fopt.seed = 23;
    const core::TestVerdict fo = core::test_ck_freeness(c.topo.graph, c.ids, fopt);

    core::threshold::ThresholdOptions topt;
    topt.k = kK;
    topt.seed = 23;
    topt.budget = core::threshold::BudgetSchedule::none();
    topt.max_tracked = 0;
    const auto tv = core::threshold::test_ck_freeness_threshold(c.topo.graph, c.ids, topt);

    // Neither algorithm may reject a provably Ck-free instance...
    if (c.topo.truth == lab::GroundTruth::kCkFree) {
      EXPECT_TRUE(fo.accepted) << info.name;
      EXPECT_TRUE(tv.verdict.accepted) << info.name;
    }
    // ...and whenever the amplified tester finds a cycle (its witness is
    // validated, so one exists), the exhaustive threshold sweep must too.
    if (!fo.accepted) {
      EXPECT_FALSE(tv.verdict.accepted) << "family=" << info.name;
    }
  }
}

TEST(ThresholdCross, FiniteThresholdsNeverRejectCkFreeFamilies) {
  for (const lab::FamilyInfo& info : lab::known_families()) {
    const BuiltCase c = build_case(info.name);
    if (c.topo.truth != lab::GroundTruth::kCkFree) continue;
    core::threshold::ThresholdOptions topt;
    topt.k = kK;
    topt.budget = core::threshold::BudgetSchedule::parse("2");
    topt.max_tracked = 2;
    topt.sweeps = 2;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      topt.seed = seed;
      const auto tv = core::threshold::test_ck_freeness_threshold(c.topo.graph, c.ids, topt);
      EXPECT_TRUE(tv.verdict.accepted) << "family=" << info.name << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace decycle
