/// incremental/differential.hpp — the insertion-prefix differential.
///
/// The acceptance suite: across seeded streams totalling well over 500
/// checked prefixes, the incremental verdicts, the BFS/DFS oracle, and two
/// exact-regime batch detectors (run through the IncrementalSession
/// epoch/purge bridge) must agree with zero mismatches — undirected and
/// directed, dense and sparse, strided and exhaustive.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "incremental/differential.hpp"
#include "incremental/stream.hpp"

namespace decycle::incremental {
namespace {

TEST(PrefixDifferential, UndirectedStreamsAgreeEverywhere) {
  // Every insert checked (max_prefixes=0): verdicts, witnesses, DFS oracle,
  // and both batch detectors, over several seeds. >= 500 prefixes total.
  std::size_t total_prefixes = 0;
  std::size_t total_batch_queries = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    StreamSpec spec;
    spec.n = 40;
    spec.inserts = 130;
    spec.seed = seed;
    PrefixCheckOptions options;
    options.max_query_k = 8;  // exact scans grow exponentially in k
    const PrefixCheckReport report = check_stream_prefixes(generate_stream(spec), options);
    EXPECT_FALSE(report.failed()) << "seed " << seed << ": "
                                  << (report.mismatches.empty()
                                          ? ""
                                          : report.mismatches.front().detail);
    EXPECT_EQ(report.prefixes_checked, spec.inserts);
    EXPECT_GT(report.closures, 0u);
    total_prefixes += report.prefixes_checked;
    total_batch_queries += report.batch_queries;
  }
  EXPECT_GE(total_prefixes, 500u);
  EXPECT_GT(total_batch_queries, 0u);
}

TEST(PrefixDifferential, StridedCheckingStillCatchesEveryClosure) {
  StreamSpec spec;
  spec.n = 64;
  spec.inserts = 200;
  spec.seed = 12;
  PrefixCheckOptions options;
  options.max_prefixes = 10;  // sparse stride...
  options.max_query_k = 8;
  const PrefixCheckReport exhaustive = check_stream_prefixes(generate_stream(spec), {});
  const PrefixCheckReport strided = check_stream_prefixes(generate_stream(spec), options);
  EXPECT_FALSE(strided.failed());
  // ...but closures are always checked, so the closure count is identical.
  EXPECT_EQ(strided.closures, exhaustive.closures);
  EXPECT_LT(strided.oracle_queries, exhaustive.oracle_queries);
}

TEST(PrefixDifferential, DirectedStreamsAgreeWithTheReachabilityOracle) {
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    StreamSpec spec;
    spec.n = 48;
    spec.inserts = 220;
    spec.directed = true;
    spec.seed = seed;
    const PrefixCheckReport report = check_stream_prefixes(generate_stream(spec), {});
    EXPECT_FALSE(report.failed()) << "seed " << seed << ": "
                                  << (report.mismatches.empty()
                                          ? ""
                                          : report.mismatches.front().detail);
    EXPECT_EQ(report.closures, 1u);  // dense arc streams cycle, then stop
  }
}

TEST(PrefixDifferential, DirectedAcyclicStreamsNeverClose) {
  StreamSpec spec;
  spec.n = 48;
  spec.inserts = 300;
  spec.directed = true;
  spec.acyclic = true;
  spec.seed = 9;
  const PrefixCheckReport report = check_stream_prefixes(generate_stream(spec), {});
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.closures, 0u);
  EXPECT_EQ(report.prefixes_checked, spec.inserts);
}

TEST(PrefixDifferential, SparseForestStreamExercisesTheAcceptPath) {
  // More vertices than inserts: long forest stretches, so the batch
  // detectors spend most prefixes on the must-accept side.
  StreamSpec spec;
  spec.n = 120;
  spec.inserts = 80;
  spec.seed = 31;
  PrefixCheckOptions options;
  options.max_query_k = 8;
  const PrefixCheckReport report = check_stream_prefixes(generate_stream(spec), options);
  EXPECT_FALSE(report.failed());
  EXPECT_GT(report.batch_queries, 100u);
}

}  // namespace
}  // namespace decycle::incremental
