/// incremental/incremental.hpp — ForestConnectivity: streaming undirected
/// closure verdicts with witness extraction.
///
/// The contract under test: insert() answers exactly "were the endpoints
/// already connected?" (pinned against an explicit BFS oracle), every
/// closure's witness is a genuine cycle of the prefix graph passing through
/// the inserted edge, insert_fast() agrees verdict-for-verdict with
/// insert(), and reset() restores a fresh stream without reallocation
/// assumptions leaking across streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "incremental/incremental.hpp"
#include "incremental/stream.hpp"

namespace decycle::incremental {
namespace {

/// Independent connectivity oracle on the explicit prefix adjacency.
bool bfs_connected(const std::vector<std::vector<graph::Vertex>>& adj, graph::Vertex from,
                   graph::Vertex to) {
  if (from == to) return true;
  std::vector<char> seen(adj.size(), 0);
  std::deque<graph::Vertex> queue{from};
  seen[from] = 1;
  while (!queue.empty()) {
    const graph::Vertex w = queue.front();
    queue.pop_front();
    for (const graph::Vertex x : adj[w]) {
      if (seen[x]) continue;
      if (x == to) return true;
      seen[x] = 1;
      queue.push_back(x);
    }
  }
  return false;
}

TEST(ForestConnectivity, TriangleClosesOnThirdEdge) {
  ForestConnectivity fc(3);
  EXPECT_FALSE(fc.insert(0, 1).closed_cycle);
  EXPECT_FALSE(fc.insert(1, 2).closed_cycle);
  const InsertVerdict v = fc.insert(2, 0);
  EXPECT_TRUE(v.closed_cycle);
  ASSERT_EQ(v.witness.size(), 3u);
  EXPECT_EQ(fc.closures(), 1u);
  EXPECT_EQ(fc.inserts(), 3u);
}

TEST(ForestConnectivity, VerdictsMatchBfsOracleOnRandomStreams) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    StreamSpec spec;
    spec.n = 48;
    spec.inserts = 120;
    spec.seed = seed;
    const InsertStream stream = generate_stream(spec);
    ForestConnectivity fc(spec.n);
    std::vector<std::vector<graph::Vertex>> adj(spec.n);
    for (const auto& [u, v] : stream.inserts) {
      const bool oracle = bfs_connected(adj, u, v);
      EXPECT_EQ(fc.insert(u, v).closed_cycle, oracle) << "seed " << seed;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
}

TEST(ForestConnectivity, WitnessIsAValidatedCycleThroughTheInsertedEdge) {
  StreamSpec spec;
  spec.n = 32;
  spec.inserts = 96;
  spec.seed = 5;
  const InsertStream stream = generate_stream(spec);
  ForestConnectivity fc(spec.n);
  std::vector<graph::Edge> edges;
  std::size_t closures = 0;
  for (const auto& [u, v] : stream.inserts) {
    const InsertVerdict verdict = fc.insert(u, v);
    edges.emplace_back(std::min(u, v), std::max(u, v));
    if (!verdict.closed_cycle) {
      EXPECT_TRUE(verdict.witness.empty());
      continue;
    }
    ++closures;
    const graph::Graph g = graph::Graph::from_edges(spec.n, edges);
    EXPECT_TRUE(graph::validate_cycle(g, verdict.witness));
    // The inserted edge is on the witness: u and v adjacent on the cycle.
    const auto& w = verdict.witness;
    bool has_uv = false;
    for (std::size_t i = 0; i < w.size(); ++i) {
      const graph::Vertex a = w[i];
      const graph::Vertex b = w[(i + 1) % w.size()];
      has_uv |= (a == u && b == v) || (a == v && b == u);
    }
    EXPECT_TRUE(has_uv);
  }
  EXPECT_GT(closures, 10u);  // the stream is dense enough to close plenty
  EXPECT_EQ(closures, fc.closures());
}

TEST(ForestConnectivity, InsertFastAgreesWithInsert) {
  StreamSpec spec;
  spec.n = 40;
  spec.inserts = 100;
  spec.seed = 11;
  const InsertStream stream = generate_stream(spec);
  ForestConnectivity with_witness(spec.n);
  ForestConnectivity fast(spec.n);
  for (const auto& [u, v] : stream.inserts) {
    EXPECT_EQ(with_witness.insert(u, v).closed_cycle, fast.insert_fast(u, v));
  }
  EXPECT_EQ(with_witness.closures(), fast.closures());
}

TEST(ForestConnectivity, MixingFastAndWitnessInsertsStaysCorrect) {
  // insert_fast must keep the spanning forest intact so a later insert()
  // can still extract a witness.
  ForestConnectivity fc(5);
  EXPECT_FALSE(fc.insert_fast(0, 1));
  EXPECT_FALSE(fc.insert(1, 2).closed_cycle);
  EXPECT_FALSE(fc.insert_fast(2, 3));
  EXPECT_FALSE(fc.insert(3, 4).closed_cycle);
  const InsertVerdict v = fc.insert(4, 0);
  EXPECT_TRUE(v.closed_cycle);
  EXPECT_EQ(v.witness.size(), 5u);  // the 5-cycle 0-1-2-3-4
}

TEST(ForestConnectivity, ResetStartsAFreshStream) {
  ForestConnectivity fc(4);
  EXPECT_FALSE(fc.insert(0, 1).closed_cycle);
  EXPECT_FALSE(fc.insert(1, 2).closed_cycle);
  EXPECT_TRUE(fc.insert(2, 0).closed_cycle);
  fc.reset(4);
  EXPECT_EQ(fc.inserts(), 0u);
  EXPECT_EQ(fc.closures(), 0u);
  // The same edges are fresh again: no state leaked across streams.
  EXPECT_FALSE(fc.insert(0, 1).closed_cycle);
  EXPECT_FALSE(fc.insert(1, 2).closed_cycle);
  EXPECT_TRUE(fc.insert(2, 0).closed_cycle);
  // And reset can shrink or grow the vertex set.
  fc.reset(2);
  EXPECT_EQ(fc.num_vertices(), 2u);
  EXPECT_FALSE(fc.insert(0, 1).closed_cycle);
}

TEST(ForestConnectivity, ConnectedTracksComponents) {
  ForestConnectivity fc(6);
  (void)fc.insert(0, 1);
  (void)fc.insert(2, 3);
  EXPECT_TRUE(fc.connected(0, 1));
  EXPECT_FALSE(fc.connected(1, 2));
  (void)fc.insert(1, 2);
  EXPECT_TRUE(fc.connected(0, 3));
  EXPECT_FALSE(fc.connected(0, 5));
}

}  // namespace
}  // namespace decycle::incremental
