/// incremental/session.hpp — IncrementalSession: the stream ↔ engine bridge.
///
/// Contracts under test: apply() verdicts agree with a reference
/// ForestConnectivity; checkpoint() materializes exactly the accumulated
/// edges; run_batch() verdicts on the snapshot equal a fresh uncached run
/// on the same graph; and the epoch/purge half — a mutating apply() with a
/// live snapshot retires the snapshot's cached sessions, visible in the
/// SessionPool's purge counters (the PR's --engine-stats surface).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/threshold/budget.hpp"
#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "incremental/incremental.hpp"
#include "incremental/session.hpp"
#include "incremental/stream.hpp"
#include "util/check.hpp"

namespace decycle::incremental {
namespace {

engine::Query exact_threshold_query(unsigned k) {
  engine::Query q;
  q.detector = &core::DetectorRegistry::builtin().require("threshold");
  q.options.k = k;
  q.options.seed = 99;
  q.options.budget = core::threshold::BudgetSchedule::none();
  q.options.max_tracked = 0;  // unlimited + untracked = exhaustive scan
  return q;
}

TEST(IncrementalSession, RejectsEmptyName) {
  engine::DetectionEngine engine;
  EXPECT_THROW(IncrementalSession(engine, "", 4), util::CheckError);
}

TEST(IncrementalSession, ApplyVerdictsMatchAReferenceDetector) {
  StreamSpec spec;
  spec.n = 36;
  spec.inserts = 90;
  spec.seed = 21;
  const InsertStream stream = generate_stream(spec);
  engine::DetectionEngine engine;
  IncrementalSession session(engine, "apply-verdicts", spec.n);
  ForestConnectivity reference(spec.n);
  // Apply in uneven batches; per-insert flags line up with the reference.
  const std::size_t batch = 7;
  for (std::size_t i = 0; i < stream.inserts.size(); i += batch) {
    const std::size_t len = std::min(batch, stream.inserts.size() - i);
    const BatchVerdicts verdicts = session.apply({stream.inserts.data() + i, len});
    ASSERT_EQ(verdicts.closed.size(), len);
    for (std::size_t j = 0; j < len; ++j) {
      const auto [u, v] = stream.inserts[i + j];
      EXPECT_EQ(verdicts.closed[j] != 0, reference.insert_fast(u, v));
    }
  }
  EXPECT_EQ(session.closures(), reference.closures());
  EXPECT_EQ(session.inserts(), stream.inserts.size());
}

TEST(IncrementalSession, CheckpointMaterializesTheAccumulatedEdges) {
  engine::DetectionEngine engine;
  IncrementalSession session(engine, "checkpoint", 5);
  EXPECT_FALSE(session.insert(0, 1));
  EXPECT_FALSE(session.insert(3, 2));  // canonicalized to (2,3)
  const engine::PinnedGraphPtr pin = session.checkpoint();
  EXPECT_EQ(pin->graph.num_vertices(), 5u);
  EXPECT_EQ(pin->graph.num_edges(), 2u);
  // Clean checkpoint is the same pin; a mutation makes a new one.
  EXPECT_EQ(session.checkpoint().get(), pin.get());
  EXPECT_FALSE(session.insert(0, 4));
  EXPECT_NE(session.checkpoint().get(), pin.get());
  EXPECT_EQ(session.checkpoint()->graph.num_edges(), 3u);
}

TEST(IncrementalSession, RunBatchEqualsAFreshRunOnTheSameGraph) {
  StreamSpec spec;
  spec.n = 24;
  spec.inserts = 40;
  spec.seed = 8;
  const InsertStream stream = generate_stream(spec);
  engine::DetectionEngine engine;
  IncrementalSession session(engine, "bridge", spec.n);
  std::vector<graph::Edge> edges;
  for (const auto& [u, v] : stream.inserts) {
    (void)session.insert(u, v);
    edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  const engine::Query q = exact_threshold_query(4);
  const std::vector<core::Verdict> bridged = session.run_batch({&q, 1});
  const core::Verdict fresh = engine::DetectionEngine::run_uncached(
      graph::Graph::from_edges(spec.n, edges), graph::IdAssignment::identity(spec.n), q);
  ASSERT_EQ(bridged.size(), 1u);
  EXPECT_EQ(bridged[0].accepted, fresh.accepted);
  EXPECT_EQ(bridged[0].counters, fresh.counters);
}

TEST(IncrementalSession, ExactQueriesTrackTheStream) {
  engine::DetectionEngine engine;
  IncrementalSession session(engine, "track", 8);
  // Path 0-1-2-3: forest, every C_k scan accepts.
  (void)session.insert(0, 1);
  (void)session.insert(1, 2);
  (void)session.insert(2, 3);
  engine::Query q = exact_threshold_query(4);
  EXPECT_TRUE(session.run_batch({&q, 1})[0].accepted);
  // Close the 4-cycle: the same query must now reject.
  EXPECT_TRUE(session.insert(3, 0));
  EXPECT_FALSE(session.run_batch({&q, 1})[0].accepted);
}

TEST(IncrementalSessionEpoch, MutationBumpsEpochAndPurgesCachedSessions) {
  engine::DetectionEngine engine;
  IncrementalSession session(engine, "epoch-purge", 6);
  (void)session.insert(0, 1);
  const engine::PinnedGraphPtr pin1 = session.checkpoint();
  const std::uint64_t epoch_before = pin1->epoch.load();

  const engine::Query q = exact_threshold_query(3);
  (void)session.run_batch({&q, 1});  // builds + caches one session
  (void)session.run_batch({&q, 1});  // served from the cache
  engine::SessionStats s = engine.session_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.purges, 0u);
  EXPECT_EQ(engine.sessions().idle_count(), 1u);

  // The mutation half of the contract: a live snapshot means apply() bumps
  // the pin's epoch and purges its idle sessions.
  (void)session.insert(2, 3);
  EXPECT_GT(pin1->epoch.load(), epoch_before);
  s = engine.session_stats();
  EXPECT_EQ(s.purges, 1u);
  EXPECT_EQ(s.purged_sessions, 1u);
  EXPECT_EQ(s.evictions, 0u);  // purge is not a capacity eviction
  EXPECT_EQ(engine.sessions().idle_count(), 0u);

  // The next query runs on the new snapshot and must rebuild (a miss, never
  // a stale hit).
  (void)session.run_batch({&q, 1});
  s = engine.session_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(IncrementalSessionEpoch, NoPinMeansNothingToPurge) {
  engine::DetectionEngine engine;
  IncrementalSession session(engine, "no-pin", 4);
  (void)session.insert(0, 1);  // no checkpoint yet: no bump, no purge
  const engine::SessionStats s = engine.session_stats();
  EXPECT_EQ(s.purges, 0u);
  EXPECT_EQ(s.purged_sessions, 0u);
}

}  // namespace
}  // namespace decycle::incremental
