/// incremental/stream.hpp — replay files and the seeded stream generator.
///
/// Round-trip byte identity (write → read → write), loud parser negatives
/// naming the offending line/insert and accepted alternatives, and the
/// generator's contracts: determinism in the spec, duplicate-freeness,
/// in-range endpoints, no self-loops, and provable acyclicity of
/// directed+acyclic streams.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "incremental/incremental.hpp"
#include "incremental/stream.hpp"
#include "util/check.hpp"

namespace decycle::incremental {
namespace {

std::string to_text(const InsertStream& stream) {
  std::ostringstream out;
  write_stream(out, stream);
  return out.str();
}

InsertStream from_text(const std::string& text) {
  std::istringstream in(text);
  return read_stream(in);
}

/// The thrown message must mention every fragment — loud-parser contract.
void expect_parse_error(const std::string& text, std::initializer_list<const char*> fragments) {
  try {
    (void)from_text(text);
    FAIL() << "expected CheckError for:\n" << text;
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message lacks '" << fragment << "': " << what;
    }
  }
}

TEST(Stream, WriteReadRoundTripsByteIdentically) {
  StreamSpec spec;
  spec.n = 30;
  spec.inserts = 60;
  spec.seed = 13;
  for (const bool directed : {false, true}) {
    spec.directed = directed;
    const InsertStream stream = generate_stream(spec);
    const std::string text = to_text(stream);
    const InsertStream parsed = from_text(text);
    EXPECT_EQ(parsed.n, stream.n);
    EXPECT_EQ(parsed.directed, stream.directed);
    EXPECT_EQ(parsed.seed, stream.seed);
    EXPECT_EQ(parsed.inserts, stream.inserts);
    EXPECT_EQ(to_text(parsed), text);
  }
}

TEST(Stream, CommentsAndBlankLinesAreIgnored) {
  const InsertStream parsed = from_text(
      "# a comment\n"
      "\n"
      "stream n=4 directed=0 seed=9\n"
      "# another\n"
      "2\n"
      "0 1\n"
      "\n"
      "2 3\n");
  EXPECT_EQ(parsed.n, 4u);
  EXPECT_EQ(parsed.seed, 9u);
  ASSERT_EQ(parsed.inserts.size(), 2u);
  EXPECT_EQ(parsed.inserts[1], (Insert{2, 3}));
}

TEST(Stream, ParserNamesTheOffense) {
  // Missing header keys.
  expect_parse_error("stream directed=0\n0\n", {"missing n="});
  expect_parse_error("stream n=4\n0\n", {"missing directed="});
  // Wrong leading tag and unknown key name the accepted alternatives.
  expect_parse_error("river n=4 directed=0\n0\n", {"must start with 'stream'", "river"});
  expect_parse_error("stream n=4 directed=0 sed=1\n0\n",
                     {"unknown header key 'sed'", "n, directed, seed"});
  expect_parse_error("stream n=4 directed=2\n0\n", {"directed must be 0 or 1", "'2'"});
  expect_parse_error("stream n=x directed=0\n0\n", {"malformed value for 'n'"});
  expect_parse_error("stream n=4 n=5 directed=0\n0\n", {"duplicate header key 'n'"});
  // Truncation, malformed counts and inserts name what was expected.
  expect_parse_error("stream n=4 directed=0\n", {"unexpected end of file", "insert count"});
  expect_parse_error("stream n=4 directed=0\nmany\n", {"malformed insert count", "many"});
  expect_parse_error("stream n=4 directed=0\n2\n0 1\n", {"unexpected end of file", "insert line"});
  expect_parse_error("stream n=4 directed=0\n1\n0 q\n", {"malformed insert 0"});
  // Range, self-loop, and duplicate violations name the insert index.
  expect_parse_error("stream n=4 directed=0\n1\n0 4\n",
                     {"insert 0 endpoint out of range", "n=4"});
  expect_parse_error("stream n=4 directed=0\n1\n2 2\n", {"insert 0 is a self-loop"});
}

TEST(Stream, DuplicateDetectionRespectsOrientation) {
  // Undirected: (1,0) duplicates (0,1).
  expect_parse_error("stream n=4 directed=0\n2\n0 1\n1 0\n",
                     {"insert 1 duplicates", "duplicate-free"});
  // Directed: (1,0) is the opposite arc — legal; an exact repeat is not.
  const InsertStream ok = from_text("stream n=4 directed=1\n2\n0 1\n1 0\n");
  EXPECT_EQ(ok.inserts.size(), 2u);
  expect_parse_error("stream n=4 directed=1\n2\n0 1\n0 1\n", {"insert 1 duplicates"});
}

TEST(Stream, GeneratorIsDeterministicInTheSpec) {
  StreamSpec spec;
  spec.n = 50;
  spec.inserts = 200;
  spec.seed = 77;
  const InsertStream a = generate_stream(spec);
  const InsertStream b = generate_stream(spec);
  EXPECT_EQ(a.inserts, b.inserts);
  spec.seed = 78;
  EXPECT_NE(generate_stream(spec).inserts, a.inserts);
}

TEST(Stream, GeneratorDrawsDistinctInRangeInserts) {
  for (const bool directed : {false, true}) {
    StreamSpec spec;
    spec.n = 24;
    spec.inserts = 150;
    spec.directed = directed;
    spec.seed = 4;
    const InsertStream stream = generate_stream(spec);
    EXPECT_EQ(stream.inserts.size(), 150u);
    std::set<std::pair<graph::Vertex, graph::Vertex>> seen;
    for (auto [u, v] : stream.inserts) {
      EXPECT_LT(u, spec.n);
      EXPECT_LT(v, spec.n);
      EXPECT_NE(u, v);
      if (!directed && u > v) std::swap(u, v);
      EXPECT_TRUE(seen.emplace(u, v).second) << "duplicate " << u << "," << v;
    }
  }
}

TEST(Stream, InsertCountIsClampedToTheUniverse) {
  StreamSpec spec;
  spec.n = 5;
  spec.inserts = 1'000;  // only C(5,2) = 10 distinct edges exist
  const InsertStream undirected = generate_stream(spec);
  EXPECT_EQ(undirected.inserts.size(), 10u);
  spec.directed = true;
  EXPECT_EQ(generate_stream(spec).inserts.size(), 20u);  // ordered arcs
}

TEST(Stream, AcyclicStreamsNeverCloseADirectedCycle) {
  for (const std::uint64_t seed : {1ull, 6ull, 42ull}) {
    StreamSpec spec;
    spec.n = 40;
    spec.inserts = 300;
    spec.directed = true;
    spec.acyclic = true;
    spec.seed = seed;
    const InsertStream stream = generate_stream(spec);
    DagLevels dag(spec.n);
    for (const auto& [u, v] : stream.inserts) {
      ASSERT_FALSE(dag.insert(u, v).closed_cycle) << "seed " << seed;
    }
  }
}

TEST(Stream, GeneratorRejectsDegenerateSpecs) {
  StreamSpec spec;
  spec.n = 1;
  EXPECT_THROW((void)generate_stream(spec), util::CheckError);
}

}  // namespace
}  // namespace decycle::incremental
