/// incremental/incremental.hpp — DagLevels: CFKR-style directed-DAG
/// maintenance under arc insertions.
///
/// Contracts under test: acyclic streams (oriented along a hidden
/// topological order) never report a closure and keep the level invariant
/// level(a) < level(b) on every arc; the first closing arc is reported with
/// a witness whose arcs all exist in the prefix; after that first cycle the
/// structure is poisoned (insert() throws until reset()); reset() recycles
/// arc blocks back to the pool and starts a fresh stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "incremental/incremental.hpp"
#include "incremental/stream.hpp"
#include "util/check.hpp"

namespace decycle::incremental {
namespace {

TEST(DagLevels, BackArcClosesTheCycle) {
  DagLevels dag(3);
  EXPECT_FALSE(dag.insert(0, 1).closed_cycle);
  EXPECT_FALSE(dag.insert(1, 2).closed_cycle);
  const InsertVerdict v = dag.insert(2, 0);
  EXPECT_TRUE(v.closed_cycle);
  EXPECT_TRUE(dag.cyclic());
  ASSERT_EQ(v.witness.size(), 3u);
  // Witness starts with the inserted arc and walks back to its tail.
  EXPECT_EQ(v.witness[0], 2u);
  EXPECT_EQ(v.witness[1], 0u);
  EXPECT_EQ(v.witness[2], 1u);
}

TEST(DagLevels, OppositeArcIsATwoCycle) {
  DagLevels dag(2);
  EXPECT_FALSE(dag.insert(0, 1).closed_cycle);
  const InsertVerdict v = dag.insert(1, 0);
  EXPECT_TRUE(v.closed_cycle);
  EXPECT_EQ(v.witness.size(), 2u);
}

TEST(DagLevels, AcyclicStreamsNeverReport) {
  for (const std::uint64_t seed : {2ull, 9ull, 31ull}) {
    StreamSpec spec;
    spec.n = 64;
    spec.inserts = 400;
    spec.directed = true;
    spec.acyclic = true;
    spec.seed = seed;
    const InsertStream stream = generate_stream(spec);
    DagLevels dag(spec.n);
    for (const auto& [u, v] : stream.inserts) {
      ASSERT_FALSE(dag.insert(u, v).closed_cycle) << "seed " << seed;
    }
    EXPECT_FALSE(dag.cyclic());
    // The CFKR invariant holds on every inserted arc.
    for (const auto& [u, v] : stream.inserts) {
      EXPECT_LT(dag.level(u), dag.level(v)) << "seed " << seed;
    }
  }
}

TEST(DagLevels, WitnessArcsAllExistInThePrefix) {
  StreamSpec spec;
  spec.n = 40;
  spec.inserts = 200;
  spec.directed = true;
  spec.seed = 17;
  const InsertStream stream = generate_stream(spec);
  DagLevels dag(spec.n);
  std::vector<std::vector<graph::Vertex>> adj(spec.n);
  bool closed = false;
  for (const auto& [u, v] : stream.inserts) {
    const InsertVerdict verdict = dag.insert(u, v);
    adj[u].push_back(v);
    if (!verdict.closed_cycle) continue;
    closed = true;
    const auto& w = verdict.witness;
    ASSERT_GE(w.size(), 2u);
    EXPECT_EQ(w[0], u);
    EXPECT_EQ(w[1], v);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const graph::Vertex a = w[i];
      const graph::Vertex b = w[(i + 1) % w.size()];
      EXPECT_NE(std::find(adj[a].begin(), adj[a].end(), b), adj[a].end())
          << "missing arc " << a << "->" << b;
    }
    break;
  }
  EXPECT_TRUE(closed);  // a dense random arc stream on 40 vertices cycles
}

TEST(DagLevels, PoisonedAfterFirstCycleUntilReset) {
  DagLevels dag(3);
  (void)dag.insert(0, 1);
  (void)dag.insert(1, 2);
  EXPECT_TRUE(dag.insert(2, 0).closed_cycle);
  EXPECT_THROW((void)dag.insert(0, 2), util::CheckError);
  dag.reset(3);
  EXPECT_FALSE(dag.cyclic());
  EXPECT_EQ(dag.inserts(), 0u);
  EXPECT_FALSE(dag.insert(0, 2).closed_cycle);  // usable again
}

TEST(DagLevels, ResetRecyclesAcrossStreams) {
  // Stream twice through the same instance; the second stream must behave
  // identically to a fresh one (blocks recycled, levels cleared).
  StreamSpec spec;
  spec.n = 32;
  spec.inserts = 150;
  spec.directed = true;
  spec.acyclic = true;
  spec.seed = 3;
  const InsertStream stream = generate_stream(spec);
  DagLevels dag(spec.n);
  for (int round = 0; round < 2; ++round) {
    dag.reset(spec.n);
    for (const auto& [u, v] : stream.inserts) {
      ASSERT_FALSE(dag.insert(u, v).closed_cycle) << "round " << round;
    }
    EXPECT_EQ(dag.inserts(), stream.inserts.size());
  }
}

TEST(DagLevels, LongChainThenShortcutBack) {
  // A path 0->1->...->9 then 9->0: the witness is the full 10-cycle.
  DagLevels dag(10);
  for (graph::Vertex v = 0; v + 1 < 10; ++v) {
    EXPECT_FALSE(dag.insert(v, v + 1).closed_cycle);
  }
  const InsertVerdict verdict = dag.insert(9, 0);
  EXPECT_TRUE(verdict.closed_cycle);
  EXPECT_EQ(verdict.witness.size(), 10u);
}

}  // namespace
}  // namespace decycle::incremental
