#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/analysis.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"

namespace decycle::graph {
namespace {

TEST(Generators, Path) {
  const Graph g = path(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_FALSE(girth(g).has_value());
}

TEST(Generators, CycleHasGirthN) {
  for (const Vertex n : {3u, 4u, 7u, 12u}) {
    const Graph g = cycle(n);
    EXPECT_EQ(g.num_edges(), n);
    for (Vertex v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), 2u);
    ASSERT_TRUE(girth(g).has_value());
    EXPECT_EQ(*girth(g), n);
  }
}

TEST(Generators, CycleRejectsTiny) { EXPECT_THROW((void)cycle(2), util::CheckError); }

TEST(Generators, Complete) {
  const Graph g = complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_EQ(*girth(g), 3u);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(bipartition(g).has_value());
  EXPECT_EQ(*girth(g), 4u);
}

TEST(Generators, Star) {
  const Graph g = star(8);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.degree(0), 7u);
  EXPECT_FALSE(girth(g).has_value());
}

TEST(Generators, GridFlat) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 17u);  // 3*3 horizontal + 2*4 vertical
  EXPECT_EQ(*girth(g), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Torus) {
  const Graph g = grid(4, 4, /*wrap=*/true);
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(*girth(g), 4u);
}

TEST(Generators, Hypercube) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(bipartition(g).has_value());
  EXPECT_EQ(*girth(g), 4u);
}

TEST(Generators, Lollipop) {
  const Graph g = lollipop(5, 3);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 13u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(7), 1u);
}

TEST(Generators, RandomTreeIsTree) {
  util::Rng rng(1);
  const Graph g = random_tree(200, rng);
  EXPECT_EQ(g.num_edges(), 199u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(girth(g).has_value());
}

TEST(Generators, GnmExactEdgeCount) {
  util::Rng rng(2);
  const Graph g = erdos_renyi_gnm(100, 300, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(Generators, GnmFullDensityIsComplete) {
  util::Rng rng(3);
  const Graph g = erdos_renyi_gnm(10, 45, rng);
  EXPECT_EQ(g.num_edges(), 45u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 9u);
}

TEST(Generators, GnmRejectsOverfull) {
  util::Rng rng(4);
  EXPECT_THROW((void)erdos_renyi_gnm(4, 7, rng), util::CheckError);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  util::Rng rng(5);
  const Graph g = erdos_renyi_gnp(100, 0.1, rng);
  const double expected = 0.1 * (100.0 * 99.0 / 2.0);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 5 * std::sqrt(expected));
}

TEST(Generators, RandomRegularDegrees) {
  util::Rng rng(6);
  const Graph g = random_regular(50, 4, rng);
  EXPECT_EQ(g.num_edges(), 100u);
  for (Vertex v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  util::Rng rng(7);
  EXPECT_THROW((void)random_regular(5, 3, rng), util::CheckError);
}

TEST(Generators, RandomBipartiteSidesRespected) {
  util::Rng rng(8);
  const Graph g = random_bipartite(20, 30, 100, rng);
  EXPECT_EQ(g.num_edges(), 100u);
  const auto coloring = bipartition(g);
  ASSERT_TRUE(coloring.has_value());
  for (const auto& [u, v] : g.edges()) {
    EXPECT_LT(u, 20u);
    EXPECT_GE(v, 20u);
  }
}

TEST(Generators, RandomConnectedIsConnectedWithExactEdges) {
  util::Rng rng(9);
  const Graph g = random_connected(80, 200, rng);
  EXPECT_EQ(g.num_edges(), 200u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomConnectedRejectsTooFewEdges) {
  util::Rng rng(10);
  EXPECT_THROW((void)random_connected(10, 5, rng), util::CheckError);
}

TEST(Generators, ConnectComponentsBridges) {
  const std::vector<Graph> parts{cycle(4), cycle(4), cycle(4)};
  const Graph u = disjoint_union(parts);
  const std::vector<Vertex> reps{0, 4, 8};
  const Graph c = connect_components(u, reps);
  EXPECT_TRUE(is_connected(c));
  EXPECT_EQ(c.num_edges(), u.num_edges() + 2);
  // Bridges lie on no cycle: the girth stays 4 and C5 never appears.
  EXPECT_EQ(*girth(c), 4u);
  EXPECT_FALSE(has_cycle(c, 5));
}

TEST(Generators, DeterministicForFixedSeed) {
  util::Rng a(77), b(77);
  const Graph ga = erdos_renyi_gnm(60, 120, a);
  const Graph gb = erdos_renyi_gnm(60, 120, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  const auto ea = ga.edges();
  const auto eb = gb.edges();
  for (std::size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
}

}  // namespace
}  // namespace decycle::graph
