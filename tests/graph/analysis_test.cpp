#include "graph/analysis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace decycle::graph {
namespace {

TEST(BfsDistances, PathDistances) {
  const Graph g = path(6);
  const auto d = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsDistances, UnreachableMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.ensure_vertices(4);
  const auto d = bfs_distances(b.build(), 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(BfsDistances, CapLimitsExpansion) {
  const Graph g = path(10);
  const auto d = bfs_distances(g, 0, 3);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[4], kUnreachable);
}

TEST(Components, CountsAndLabels) {
  const std::vector<Graph> parts{cycle(3), path(4), star(5)};
  const Graph g = disjoint_union(parts);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp.count, 3u);
  EXPECT_EQ(comp.label[0], comp.label[2]);
  EXPECT_NE(comp.label[0], comp.label[3]);
  EXPECT_NE(comp.label[3], comp.label[7]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, SingletonGraphConnected) {
  const Graph g = Graph::from_edges(1, {});
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST(Bipartition, EvenCycleBipartite) {
  const auto coloring = bipartition(cycle(8));
  ASSERT_TRUE(coloring.has_value());
  const Graph g = cycle(8);
  for (const auto& [u, v] : g.edges()) EXPECT_NE((*coloring)[u], (*coloring)[v]);
}

TEST(Bipartition, OddCycleNot) { EXPECT_FALSE(bipartition(cycle(7)).has_value()); }

TEST(Bipartition, ForestAlwaysBipartite) {
  util::Rng rng(3);
  EXPECT_TRUE(bipartition(random_tree(100, rng)).has_value());
}

TEST(Bipartition, HandlesDisconnected) {
  const std::vector<Graph> parts{cycle(4), cycle(3)};
  EXPECT_FALSE(bipartition(disjoint_union(parts)).has_value());
  const std::vector<Graph> even_parts{cycle(4), cycle(6)};
  EXPECT_TRUE(bipartition(disjoint_union(even_parts)).has_value());
}

TEST(DegreeStats, Values) {
  const Graph g = star(5);
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0 * 4 / 5);
}

TEST(DegreeStats, EmptyGraph) {
  const auto s = degree_stats(Graph{});
  EXPECT_EQ(s.max, 0u);
}

}  // namespace
}  // namespace decycle::graph
