#include <gtest/gtest.h>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::graph {
namespace {

TEST(InducedCycle, PureCycleIsInduced) {
  for (unsigned k = 3; k <= 9; ++k) {
    const Graph g = cycle(k);
    const auto c = find_induced_cycle_through_edge(g, k, 0, 1);
    ASSERT_TRUE(c.has_value()) << "k=" << k;
    EXPECT_TRUE(validate_induced_cycle(g, *c));
  }
}

TEST(InducedCycle, ChordBreaksInducedness) {
  // C6 plus one chord: C6 exists as a subgraph but not as an induced one.
  GraphBuilder b;
  for (unsigned i = 0; i < 6; ++i) b.add_edge(i, (i + 1) % 6);
  b.add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_TRUE(has_cycle(g, 6));
  EXPECT_FALSE(has_induced_cycle(g, 6));
  // The chord creates two induced C4s instead.
  EXPECT_TRUE(has_induced_cycle(g, 4));
}

TEST(InducedCycle, CompleteGraphOnlyTriangles) {
  const Graph g = complete(7);
  EXPECT_TRUE(has_induced_cycle(g, 3));
  for (const unsigned k : {4u, 5u, 6u, 7u}) {
    EXPECT_FALSE(has_induced_cycle(g, k)) << "k=" << k;
    EXPECT_TRUE(has_cycle(g, k)) << "k=" << k;  // as subgraphs they all exist
  }
}

TEST(InducedCycle, CompleteBipartiteOnlyC4) {
  const Graph g = complete_bipartite(4, 4);
  EXPECT_TRUE(has_induced_cycle(g, 4));
  EXPECT_FALSE(has_induced_cycle(g, 6));
  EXPECT_TRUE(has_cycle(g, 6));
  EXPECT_FALSE(has_induced_cycle(g, 8));
  EXPECT_TRUE(has_cycle(g, 8));
}

TEST(InducedCycle, ValidateInducedRejectsChords) {
  GraphBuilder b;
  for (unsigned i = 0; i < 5; ++i) b.add_edge(i, (i + 1) % 5);
  b.add_edge(0, 2);
  const Graph g = b.build();
  const std::vector<Vertex> c5{0, 1, 2, 3, 4};
  EXPECT_TRUE(validate_cycle(g, c5));
  EXPECT_FALSE(validate_induced_cycle(g, c5));
  const std::vector<Vertex> c3{0, 1, 2};
  EXPECT_TRUE(validate_induced_cycle(g, c3));
}

TEST(InducedCycle, ThroughEdgeRespectsEndpoints) {
  const Graph g = cycle(6);
  const auto c = find_induced_cycle_through_edge(g, 6, 2, 3);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->front(), 2u);
  EXPECT_EQ(c->back(), 3u);
}

TEST(InducedCycle, MissingEdgeGivesNothing) {
  const Graph g = cycle(6);
  EXPECT_FALSE(find_induced_cycle_through_edge(g, 6, 0, 3).has_value());
}

TEST(InducedCycle, AgreesWithBruteForceOnRandomGraphs) {
  // Induced k-cycle exists iff some k-subset induces exactly a cycle; cross
  // check against subgraph search + chord filter via count over small random
  // graphs.
  util::Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = erdos_renyi_gnm(11, 18, rng);
    for (const unsigned k : {4u, 5u, 6u}) {
      bool brute = false;
      // Enumerate cycles through each edge and test chordlessness.
      for (const auto& [u, v] : g.edges()) {
        EdgeMask none;
        auto c = find_cycle_through_edge(g, k, u, v);
        // find_cycle_through_edge returns ONE cycle; for the brute force we
        // enumerate induced ones directly.
        (void)c;
        if (find_induced_cycle_through_edge(g, k, u, v)) brute = true;
      }
      EXPECT_EQ(has_induced_cycle(g, k), brute) << "k=" << k << " trial=" << trial;
      // Induced implies subgraph.
      if (has_induced_cycle(g, k)) {
        EXPECT_TRUE(has_cycle(g, k));
      }
    }
  }
}

TEST(InducedCycle, HighGirthGraphsInducedEqualsPlain) {
  // Below the girth there are no cycles at all; the shortest cycles are
  // automatically induced (a chord would close a shorter cycle).
  util::Rng rng(9);
  const Graph g = high_girth_graph(80, 110, 5, rng);
  const auto shortest = girth(g);
  if (shortest.has_value()) {
    EXPECT_TRUE(has_induced_cycle(g, *shortest));
  }
}

}  // namespace
}  // namespace decycle::graph
