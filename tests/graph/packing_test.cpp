#include "graph/packing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace decycle::graph {
namespace {

void expect_edge_disjoint(const Graph& g, const Packing& p, unsigned k) {
  std::set<EdgeId> used;
  for (const auto& cyc : p.cycles) {
    ASSERT_EQ(cyc.size(), k);
    ASSERT_TRUE(validate_cycle(g, cyc));
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const EdgeId id = g.edge_id(cyc[i], cyc[(i + 1) % cyc.size()]);
      ASSERT_NE(id, kInvalidEdge);
      EXPECT_TRUE(used.insert(id).second);
    }
  }
}

TEST(Packing, SingleCycleGraph) {
  const Graph g = cycle(7);
  const Packing p = greedy_cycle_packing(g, 7);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.edges_remaining, 0u);
  expect_edge_disjoint(g, p, 7);
}

TEST(Packing, WrongLengthFindsNothing) {
  const Graph g = cycle(7);
  EXPECT_EQ(greedy_cycle_packing(g, 5).size(), 0u);
  EXPECT_EQ(greedy_cycle_packing(g, 5).edges_remaining, 7u);
}

TEST(Packing, RecoversAllPlantedCycles) {
  util::Rng rng(3);
  PlantedOptions opt;
  opt.k = 5;
  opt.num_cycles = 12;
  opt.padding_leaves = 20;
  const FarInstance inst = planted_cycles_instance(opt, rng);
  const Packing p = greedy_cycle_packing(inst.graph, 5);
  // The planted cycles are the only cycles, and they are vertex-disjoint, so
  // greedy recovers exactly all of them.
  EXPECT_EQ(p.size(), 12u);
  expect_edge_disjoint(inst.graph, p, 5);
}

TEST(Packing, TrianglesInK4) {
  // Any two triangles of K4 share two vertices and hence an edge, so the
  // maximum edge-disjoint packing is a single triangle; greedy finds it and
  // leaves the 3 remaining edges (a star, triangle-free).
  const Graph g = complete(4);
  const Packing p = greedy_cycle_packing(g, 3);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.edges_remaining, 3u);
  expect_edge_disjoint(g, p, 3);
}

TEST(Packing, TrianglesInK7) {
  // K7 admits a Steiner-triple decomposition: 21 edges = 7 edge-disjoint
  // triangles. Greedy is only maximal, so expect at least 21/3 - slack.
  const Graph g = complete(7);
  const Packing p = greedy_cycle_packing(g, 3);
  EXPECT_GE(p.size(), 3u);
  expect_edge_disjoint(g, p, 3);
  // Maximality: the residual graph is triangle-free.
  EdgeMask removed(g.num_edges(), 0);
  for (const auto& cyc : p.cycles) {
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      removed[g.edge_id(cyc[i], cyc[(i + 1) % cyc.size()])] = 1;
    }
  }
  EXPECT_FALSE(find_cycle(g, 3, &removed).has_value());
}

TEST(Packing, LayeredInstanceMeetsCertificate) {
  util::Rng rng(4);
  const FarInstance inst = layered_instance(5, 7, 3, rng);
  const Packing p = greedy_cycle_packing(inst.graph, 5);
  // Greedy may find a different family than the planted one, but maximality
  // plus edge-disjointness bounds: every packed cycle uses 5 edges.
  EXPECT_GE(p.size(), 1u);
  EXPECT_LE(p.size() * 5, inst.graph.num_edges());
  expect_edge_disjoint(inst.graph, p, 5);
  // Lemma-4-style sanity: the packing certifies farness at least
  // |packing|/m; the planted certificate says 1/5 is achievable.
  EXPECT_GT(p.epsilon_lower_bound(inst.graph.num_edges()), 0.0);
}

TEST(Packing, EpsilonLowerBound) {
  Packing p;
  p.cycles.resize(4);
  EXPECT_DOUBLE_EQ(p.epsilon_lower_bound(100), 0.04);
  EXPECT_DOUBLE_EQ(Packing{}.epsilon_lower_bound(0), 0.0);
}

TEST(DeletionUpperBound, ForestNeedsNothing) {
  util::Rng rng(5);
  const Graph g = random_tree(50, rng);
  EXPECT_EQ(greedy_deletion_upper_bound(g, 4), 0u);
}

TEST(DeletionUpperBound, SandwichesTrueDistanceOnPlanted) {
  util::Rng rng(6);
  PlantedOptions opt;
  opt.k = 4;
  opt.num_cycles = 6;
  const FarInstance inst = planted_cycles_instance(opt, rng);
  const Packing p = greedy_cycle_packing(inst.graph, 4);
  const std::size_t upper = greedy_deletion_upper_bound(inst.graph, 4);
  // packing size <= true deletion distance <= greedy deletion count;
  // on vertex-disjoint planted cycles all three are equal.
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(upper, 6u);
}

TEST(DeletionUpperBound, MakesGraphCkFree) {
  const Graph g = complete(5);
  const std::size_t upper = greedy_deletion_upper_bound(g, 3);
  EXPECT_GE(upper, 2u);   // 10 edges, needs to hit all 10 triangles
  EXPECT_LE(upper, 10u);
}

}  // namespace
}  // namespace decycle::graph
