#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"

namespace decycle::graph {
namespace {

TEST(Wheel, StructureAndCycleSpectrum) {
  const Graph g = wheel(8);  // hub + 7-rim
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 14u);  // 7 spokes + 7 rim edges
  EXPECT_EQ(g.degree(0), 7u);
  for (Vertex v = 1; v < 8; ++v) EXPECT_EQ(g.degree(v), 3u);
  // A wheel on n vertices contains Ck for every 3 <= k <= n.
  for (unsigned k = 3; k <= 8; ++k) EXPECT_TRUE(has_cycle(g, k)) << k;
  EXPECT_FALSE(has_cycle(g, 9));
}

TEST(Wheel, RejectsTooSmall) { EXPECT_THROW((void)wheel(3), util::CheckError); }

TEST(Barbell, Structure) {
  const Graph g = barbell(5, 3);
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_EQ(g.num_edges(), 2u * 10 + 4);  // two K5s + 4 bridge-path edges
  EXPECT_TRUE(is_connected(g));
  // Cycles only inside the cliques: lengths 3..5.
  EXPECT_TRUE(has_cycle(g, 5));
  EXPECT_FALSE(has_cycle(g, 6));
}

TEST(Barbell, ZeroBridgeDirectlyJoined) {
  const Graph g = barbell(4, 0);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_TRUE(is_connected(g));
  // Left clique's exit (3) connects straight to the right clique's entry (4).
  EXPECT_TRUE(g.has_edge(3, 4));
}

TEST(Caveman, StructureAndGlobalCycle) {
  const Graph g = caveman(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_TRUE(is_connected(g));
  // Local cycles from the cliques...
  EXPECT_TRUE(has_cycle(g, 3));
  EXPECT_TRUE(has_cycle(g, 5));
  // ...and a global ring passing through all caves: entry->exit inside each
  // cave (1 edge of the clique) + 4 inter-cave edges -> length 8 exists.
  EXPECT_TRUE(has_cycle(g, 8));
}

TEST(Caveman, RejectsDegenerate) {
  EXPECT_THROW((void)caveman(2, 4), util::CheckError);
  EXPECT_THROW((void)caveman(4, 1), util::CheckError);
}

}  // namespace
}  // namespace decycle::graph
