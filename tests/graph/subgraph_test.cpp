#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::graph {
namespace {

TEST(FindCycleThroughEdge, TriangleFound) {
  const Graph g = complete(3);
  const auto c = find_cycle_through_edge(g, 3, 0, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 3u);
  EXPECT_TRUE(validate_cycle(g, *c));
  EXPECT_EQ(c->front(), 0u);
  EXPECT_EQ(c->back(), 1u);
}

TEST(FindCycleThroughEdge, MissingEdgeReturnsNothing) {
  const Graph g = path(4);
  EXPECT_FALSE(find_cycle_through_edge(g, 3, 0, 3).has_value());
}

TEST(FindCycleThroughEdge, ExactLengthOnly) {
  // C6: contains C6 through every edge but no C3..C5.
  const Graph g = cycle(6);
  EXPECT_TRUE(has_cycle_through_edge(g, 6, 0, 1));
  EXPECT_FALSE(has_cycle_through_edge(g, 3, 0, 1));
  EXPECT_FALSE(has_cycle_through_edge(g, 4, 0, 1));
  EXPECT_FALSE(has_cycle_through_edge(g, 5, 0, 1));
}

TEST(FindCycleThroughEdge, RespectsEdgeMask) {
  const Graph g = cycle(5);
  EdgeMask removed(g.num_edges(), 0);
  removed[g.edge_id(2, 3)] = 1;
  EXPECT_FALSE(find_cycle_through_edge(g, 5, 0, 1, &removed).has_value());
  EXPECT_TRUE(find_cycle_through_edge(g, 5, 0, 1).has_value());
}

TEST(FindCycleThroughEdge, MaskedQueryEdgeReturnsNothing) {
  const Graph g = cycle(5);
  EdgeMask removed(g.num_edges(), 0);
  removed[g.edge_id(0, 1)] = 1;
  EXPECT_FALSE(find_cycle_through_edge(g, 5, 0, 1, &removed).has_value());
}

TEST(FindCycleThroughEdge, KnIsRichInCycles) {
  const Graph g = complete(7);
  for (unsigned k = 3; k <= 7; ++k) {
    const auto c = find_cycle_through_edge(g, k, 0, 1);
    ASSERT_TRUE(c.has_value()) << "k=" << k;
    EXPECT_EQ(c->size(), k);
    EXPECT_TRUE(validate_cycle(g, *c));
  }
  EXPECT_FALSE(has_cycle_through_edge(g, 8, 0, 1));  // only 7 vertices
}

TEST(FindCycle, PetersenLikeSweep) {
  // Two triangles sharing no edge, connected by a path.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  const Graph g = b.build();
  EXPECT_TRUE(has_cycle(g, 3));
  EXPECT_FALSE(has_cycle(g, 4));
  EXPECT_FALSE(has_cycle(g, 5));
  EXPECT_FALSE(has_cycle(g, 6));
}

TEST(CountCycles, KnownCounts) {
  EXPECT_EQ(count_cycles(complete(4), 3), 4u);
  EXPECT_EQ(count_cycles(complete(4), 4), 3u);
  EXPECT_EQ(count_cycles(complete(5), 3), 10u);
  EXPECT_EQ(count_cycles(complete(5), 4), 15u);
  EXPECT_EQ(count_cycles(complete(5), 5), 12u);
  EXPECT_EQ(count_cycles(cycle(9), 9), 1u);
  EXPECT_EQ(count_cycles(cycle(9), 3), 0u);
  EXPECT_EQ(count_cycles(path(6), 3), 0u);
}

TEST(CountCycles, CompleteBipartiteC4) {
  // C4 count in K_{a,b} = C(a,2)*C(b,2).
  EXPECT_EQ(count_cycles(complete_bipartite(3, 3), 4), 9u);
  EXPECT_EQ(count_cycles(complete_bipartite(2, 4), 4), 6u);
  EXPECT_EQ(count_cycles(complete_bipartite(3, 3), 3), 0u);
  EXPECT_EQ(count_cycles(complete_bipartite(3, 3), 5), 0u);
}

TEST(Girth, KnownValues) {
  EXPECT_EQ(*girth(complete(4)), 3u);
  EXPECT_EQ(*girth(cycle(11)), 11u);
  EXPECT_EQ(*girth(complete_bipartite(2, 3)), 4u);
  EXPECT_EQ(*girth(grid(5, 5)), 4u);
  EXPECT_FALSE(girth(path(9)).has_value());
  EXPECT_FALSE(girth(star(5)).has_value());
}

TEST(Girth, MatchesSmallestDetectableCycle) {
  util::Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = erdos_renyi_gnm(14, 18, rng);
    const auto gg = girth(g);
    unsigned smallest = 0;
    for (unsigned k = 3; k <= 14; ++k) {
      if (has_cycle(g, k)) {
        smallest = k;
        break;
      }
    }
    if (smallest == 0) {
      EXPECT_FALSE(gg.has_value());
    } else {
      ASSERT_TRUE(gg.has_value());
      EXPECT_EQ(*gg, smallest);
    }
  }
}

TEST(ValidateCycle, AcceptsRealCycle) {
  const Graph g = cycle(5);
  const std::vector<Vertex> c{0, 1, 2, 3, 4};
  EXPECT_TRUE(validate_cycle(g, c));
  const std::vector<Vertex> rotated{2, 3, 4, 0, 1};
  EXPECT_TRUE(validate_cycle(g, rotated));
  const std::vector<Vertex> reversed{4, 3, 2, 1, 0};
  EXPECT_TRUE(validate_cycle(g, reversed));
}

TEST(ValidateCycle, RejectsBadWitnesses) {
  const Graph g = cycle(5);
  EXPECT_FALSE(validate_cycle(g, std::vector<Vertex>{0, 1}));           // too short
  EXPECT_FALSE(validate_cycle(g, std::vector<Vertex>{0, 1, 1}));        // repeat
  EXPECT_FALSE(validate_cycle(g, std::vector<Vertex>{0, 1, 3}));        // missing edge
  EXPECT_FALSE(validate_cycle(g, std::vector<Vertex>{0, 1, 2, 3}));     // open (3-0 absent)
}

TEST(FindCycleThroughEdge, AgreesWithCountOnRandomGraphs) {
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi_gnm(12, 20, rng);
    for (unsigned k = 3; k <= 6; ++k) {
      const bool any_by_edges = [&] {
        for (const auto& [u, v] : g.edges()) {
          if (has_cycle_through_edge(g, k, u, v)) return true;
        }
        return false;
      }();
      EXPECT_EQ(any_by_edges, count_cycles(g, k) > 0) << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(FindCycleThroughEdge, RejectsDegenerateK) {
  const Graph g = complete(4);
  EXPECT_THROW((void)find_cycle_through_edge(g, 2, 0, 1), util::CheckError);
}

}  // namespace
}  // namespace decycle::graph
