#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/ids.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, BuildsCsrFromEdgeList) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, NeighborsSorted) {
  const std::vector<Edge> edges{{3, 0}, {0, 1}, {2, 0}};
  const Graph g = Graph::from_edges(4, edges);
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 1u);
  EXPECT_EQ(nb[1], 2u);
  EXPECT_EQ(nb[2], 3u);
}

TEST(Graph, DeduplicatesParallelEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RejectsSelfLoop) {
  const std::vector<Edge> edges{{1, 1}};
  EXPECT_THROW((void)Graph::from_edges(2, edges), util::CheckError);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  const std::vector<Edge> edges{{0, 5}};
  EXPECT_THROW((void)Graph::from_edges(3, edges), util::CheckError);
}

TEST(Graph, HasEdgeBothDirections) {
  const Graph g = Graph::from_edges(3, std::vector<Edge>{{0, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));  // out of range is just "no"
}

TEST(Graph, EdgesCanonicalAndSorted) {
  const std::vector<Edge> edges{{2, 1}, {1, 0}, {3, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const auto all = g.edges();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], (Edge{0, 1}));
  EXPECT_EQ(all[1], (Edge{1, 2}));
  EXPECT_EQ(all[2], (Edge{2, 3}));
}

TEST(Graph, EdgeIdRoundTrip) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 3}};
  const Graph g = Graph::from_edges(4, edges);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge(e);
    EXPECT_EQ(g.edge_id(u, v), e);
    EXPECT_EQ(g.edge_id(v, u), e);  // orientation-insensitive
  }
  EXPECT_EQ(g.edge_id(1, 3), kInvalidEdge);
}

TEST(GraphBuilder, GrowsVertexCount) {
  GraphBuilder b;
  b.add_edge(0, 9);
  EXPECT_EQ(b.num_vertices(), 10u);
  b.ensure_vertices(20);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.degree(19), 0u);
}

TEST(GraphBuilder, RejectsSelfLoopEarly) {
  GraphBuilder b;
  EXPECT_THROW(b.add_edge(2, 2), util::CheckError);
}

TEST(DisjointUnion, ShiftsIndices) {
  const Graph a = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  const Graph b = Graph::from_edges(3, std::vector<Edge>{{0, 2}});
  const std::vector<Graph> parts{a, b};
  const Graph u = disjoint_union(parts);
  EXPECT_EQ(u.num_vertices(), 5u);
  EXPECT_EQ(u.num_edges(), 2u);
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(2, 4));
  EXPECT_FALSE(u.has_edge(1, 2));
}

TEST(IdAssignment, IdentityMapsBothWays) {
  const IdAssignment ids = IdAssignment::identity(5);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(ids.id_of(v), v);
    EXPECT_EQ(ids.vertex_of(v), v);
  }
  EXPECT_EQ(ids.max_id(), 4u);
}

TEST(IdAssignment, RandomQuadraticDistinctAndBounded) {
  util::Rng rng(5);
  const IdAssignment ids = IdAssignment::random_quadratic(50, rng);
  std::set<NodeId> seen;
  for (Vertex v = 0; v < 50; ++v) {
    const NodeId id = ids.id_of(v);
    EXPECT_LT(id, 2500u);
    EXPECT_TRUE(seen.insert(id).second);
    EXPECT_EQ(ids.vertex_of(id), v);
  }
}

TEST(IdAssignment, ShuffledIsPermutation) {
  util::Rng rng(6);
  const IdAssignment ids = IdAssignment::shuffled(100, rng);
  std::set<NodeId> seen;
  for (Vertex v = 0; v < 100; ++v) {
    const NodeId id = ids.id_of(v);
    EXPECT_LT(id, 100u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(IdAssignment, RejectsDuplicateIds) {
  EXPECT_THROW((void)IdAssignment::from_ids({1, 2, 1}), util::CheckError);
}

TEST(IdAssignment, UnknownIdThrows) {
  const IdAssignment ids = IdAssignment::identity(3);
  EXPECT_THROW((void)ids.vertex_of(99), util::CheckError);
  EXPECT_FALSE(ids.has_id(99));
  EXPECT_TRUE(ids.has_id(2));
}

}  // namespace
}  // namespace decycle::graph
