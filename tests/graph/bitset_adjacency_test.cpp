/// \file bitset_adjacency_test.cpp
/// \brief Sparse bitsets, the bitset adjacency, and the streaming
/// (sort-free) CSR build: equivalence with the vector representation.
#include "graph/sparse_bitset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::graph {
namespace {

// --- SparseBitset ----------------------------------------------------------

TEST(SparseBitset, InsertAndTest) {
  SparseBitset s;
  for (const std::uint32_t x : {3u, 64u, 65u, 1000000u}) s.insert(x);
  for (const std::uint32_t x : {3u, 64u, 65u, 1000000u}) EXPECT_TRUE(s.test(x)) << x;
  for (const std::uint32_t x : {0u, 2u, 4u, 63u, 66u, 999999u}) EXPECT_FALSE(s.test(x)) << x;
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.word_count(), 3u);  // {3}, {64, 65}, {1000000}
}

TEST(SparseBitset, OutOfOrderInsertMatchesSorted) {
  SparseBitset fwd, rev;
  const std::vector<std::uint32_t> xs = {5, 70, 130, 131, 200, 4096};
  for (auto it = xs.begin(); it != xs.end(); ++it) fwd.insert(*it);
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) rev.insert(*it);
  EXPECT_TRUE(std::ranges::equal(fwd.words(), rev.words()));
  EXPECT_TRUE(std::ranges::equal(fwd.bits(), rev.bits()));
  EXPECT_EQ(rev.count(), xs.size());
}

TEST(SparseBitset, DuplicateInsertIsIdempotent) {
  SparseBitset s;
  s.insert(42);
  s.insert(42);
  EXPECT_EQ(s.count(), 1u);
}

TEST(SparseBitset, IntersectCountAgainstReference) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<std::uint32_t> ra, rb;
    SparseBitset a, b;
    for (int i = 0; i < 200; ++i) {
      const auto x = static_cast<std::uint32_t>(rng.next_below(2000));
      const auto y = static_cast<std::uint32_t>(rng.next_below(2000));
      if (ra.insert(x).second) a.insert(x);
      if (rb.insert(y).second) b.insert(y);
    }
    std::vector<std::uint32_t> common;
    std::ranges::set_intersection(ra, rb, std::back_inserter(common));
    EXPECT_EQ(a.intersect_count(b), common.size()) << trial;
    EXPECT_EQ(b.intersect_count(a), common.size()) << trial;
  }
}

// --- BitsetAdjacency vs vector adjacency -----------------------------------

/// Exhaustive has_edge agreement between a bitset-backed and a vector-backed
/// build of the same graph.
void expect_has_edge_equivalent(const Graph& vec, const Graph& bits) {
  ASSERT_EQ(vec.num_vertices(), bits.num_vertices());
  ASSERT_EQ(vec.num_edges(), bits.num_edges());
  ASSERT_EQ(vec.uses_bitset(), false);
  ASSERT_EQ(bits.uses_bitset(), true);
  const Vertex n = vec.num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(vec.has_edge(u, v), bits.has_edge(u, v)) << u << "-" << v;
    }
    // Neighbor iteration must be untouched by the representation choice.
    ASSERT_TRUE(std::ranges::equal(vec.neighbors(u), bits.neighbors(u))) << u;
  }
}

TEST(BitsetAdjacency, RandomGraphsMatchVectorRepresentation) {
  util::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const Vertex n = 40 + 10 * trial;
    const Graph g = erdos_renyi_gnm(n, 3 * n, rng);
    const Graph vec = Graph::from_edges(n, g.edges(), AdjacencyMode::kVector);
    const Graph bits = Graph::from_edges(n, g.edges(), AdjacencyMode::kBitset);
    expect_has_edge_equivalent(vec, bits);
  }
}

TEST(BitsetAdjacency, StructuredFamiliesMatch) {
  const Graph families[] = {grid(8, 9), complete(24), star(40), wheel(30),
                            circulant(64, 5, AdjacencyMode::kVector)};
  for (const Graph& g : families) {
    const Graph vec = Graph::from_edges(g.num_vertices(), g.edges(), AdjacencyMode::kVector);
    const Graph bits = Graph::from_edges(g.num_vertices(), g.edges(), AdjacencyMode::kBitset);
    expect_has_edge_equivalent(vec, bits);
  }
}

TEST(BitsetAdjacency, AutoModeKeepsSmallGraphsOnVectors) {
  const Graph small = circulant(100, 4);  // far below the auto threshold
  EXPECT_FALSE(small.uses_bitset());
  EXPECT_EQ(small.bitset(), nullptr);
  const Graph forced = circulant(100, 4, AdjacencyMode::kBitset);
  EXPECT_TRUE(forced.uses_bitset());
  ASSERT_NE(forced.bitset(), nullptr);
}

TEST(BitsetAdjacency, AutoModeEngagesAtScale) {
  // 2^16 vertices at average degree 8 crosses both auto thresholds.
  const Graph big = circulant(1u << 16, 4);
  EXPECT_TRUE(big.uses_bitset());
  ASSERT_NE(big.bitset(), nullptr);
  // Clustered numbering compresses: far fewer words than adjacency entries.
  EXPECT_LT(big.bitset()->total_words(), 2 * big.num_edges());
  EXPECT_TRUE(big.has_edge(0, 4));
  EXPECT_TRUE(big.has_edge(0, (1u << 16) - 4));
  EXPECT_FALSE(big.has_edge(0, 5));
}

TEST(BitsetAdjacency, CopiedGraphSharesTheTable) {
  const Graph g = circulant(60, 3, AdjacencyMode::kBitset);
  const Graph copy = g;  // shared_ptr: the table is not rebuilt
  EXPECT_EQ(copy.bitset(), g.bitset());
  EXPECT_TRUE(copy.has_edge(0, 3));
}

// --- Streaming (sort-free) CSR build ---------------------------------------

TEST(OrderedEdges, MatchesGenericBuildOnRandomGraphs) {
  util::Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const Vertex n = 30 + 7 * trial;
    const Graph g = erdos_renyi_gnm(n, 2 * n, rng);
    // Graph::edges() is canonical and sorted — a valid ordered stream.
    std::vector<Edge> edges(g.edges().begin(), g.edges().end());
    const Graph streamed = Graph::from_ordered_edges(n, std::move(edges));
    ASSERT_EQ(streamed.num_edges(), g.num_edges());
    ASSERT_EQ(streamed.max_degree(), g.max_degree());
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_TRUE(std::ranges::equal(streamed.neighbors(v), g.neighbors(v))) << v;
    }
    EXPECT_TRUE(std::ranges::equal(streamed.edges(), g.edges()));
  }
}

TEST(OrderedEdges, RejectsNonCanonicalPairs) {
  EXPECT_THROW((void)Graph::from_ordered_edges(4, {{1, 0}}), util::CheckError);
  EXPECT_THROW((void)Graph::from_ordered_edges(4, {{2, 2}}), util::CheckError);
  EXPECT_THROW((void)Graph::from_ordered_edges(4, {{0, 9}}), util::CheckError);
}

TEST(OrderedEdges, RejectsOutOfOrderAndDuplicateEdges) {
  EXPECT_THROW((void)Graph::from_ordered_edges(5, {{0, 2}, {0, 1}}), util::CheckError);
  EXPECT_THROW((void)Graph::from_ordered_edges(5, {{1, 2}, {0, 3}}), util::CheckError);
  EXPECT_THROW((void)Graph::from_ordered_edges(5, {{0, 1}, {0, 1}}), util::CheckError);
}

TEST(OrderedEdges, ErrorsNameTheOffendingEdgeIndex) {
  // A caller staring at a million-edge stream needs the index and the edge,
  // not just which contract broke.
  const auto message_of = [](const std::function<void()>& fn) -> std::string {
    try {
      fn();
    } catch (const util::CheckError& e) {
      return e.what();
    }
    return {};
  };
  const std::string non_canonical =
      message_of([] { (void)Graph::from_ordered_edges(4, {{0, 1}, {2, 1}}); });
  EXPECT_NE(non_canonical.find("edge 1 (2,1)"), std::string::npos) << non_canonical;
  EXPECT_NE(non_canonical.find("canonical"), std::string::npos) << non_canonical;

  const std::string out_of_range =
      message_of([] { (void)Graph::from_ordered_edges(4, {{0, 1}, {1, 2}, {2, 9}}); });
  EXPECT_NE(out_of_range.find("edge 2 (2,9)"), std::string::npos) << out_of_range;
  EXPECT_NE(out_of_range.find("out of range (n=4)"), std::string::npos) << out_of_range;

  const std::string unsorted =
      message_of([] { (void)Graph::from_ordered_edges(5, {{1, 2}, {0, 3}}); });
  EXPECT_NE(unsorted.find("edge 1 (0,3)"), std::string::npos) << unsorted;
  EXPECT_NE(unsorted.find("previous (1,2)"), std::string::npos) << unsorted;

  const std::string duplicate =
      message_of([] { (void)Graph::from_ordered_edges(5, {{0, 1}, {0, 1}}); });
  EXPECT_NE(duplicate.find("edge 1 (0,1)"), std::string::npos) << duplicate;
  EXPECT_NE(duplicate.find("duplicate or unsorted"), std::string::npos) << duplicate;
}

TEST(OrderedEdges, EmptyAndEdgelessGraphs) {
  const Graph empty = Graph::from_ordered_edges(0, {});
  EXPECT_EQ(empty.num_vertices(), 0u);
  const Graph bare = Graph::from_ordered_edges(5, {});
  EXPECT_EQ(bare.num_vertices(), 5u);
  EXPECT_EQ(bare.num_edges(), 0u);
  EXPECT_EQ(bare.max_degree(), 0u);
}

// --- circulant generator ----------------------------------------------------

TEST(Circulant, DegreeAndMembership) {
  const Graph g = circulant(17, 3);
  EXPECT_EQ(g.num_vertices(), 17u);
  EXPECT_EQ(g.num_edges(), 17u * 3);
  for (Vertex u = 0; u < 17; ++u) {
    EXPECT_EQ(g.degree(u), 6u) << u;
    for (std::uint32_t j = 1; j <= 3; ++j) {
      EXPECT_TRUE(g.has_edge(u, (u + j) % 17)) << u << "+" << j;
      EXPECT_TRUE(g.has_edge(u, (u + 17 - j) % 17)) << u << "-" << j;
    }
    EXPECT_FALSE(g.has_edge(u, (u + 4) % 17));
  }
}

TEST(Circulant, MatchesBuilderConstruction) {
  const Vertex n = 23;
  const std::uint32_t k = 4;
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u)
    for (std::uint32_t j = 1; j <= k; ++j) b.add_edge(u, (u + j) % n);
  const Graph reference = b.build();
  const Graph streamed = circulant(n, k);
  ASSERT_EQ(streamed.num_edges(), reference.num_edges());
  EXPECT_TRUE(std::ranges::equal(streamed.edges(), reference.edges()));
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_TRUE(std::ranges::equal(streamed.neighbors(v), reference.neighbors(v))) << v;
  }
}

TEST(Circulant, K1IsACycle) {
  const Graph g = circulant(9, 1);
  const Graph c = cycle(9);
  EXPECT_TRUE(std::ranges::equal(g.edges(), c.edges()));
}

TEST(Circulant, RejectsTooSmallN) {
  EXPECT_THROW((void)circulant(8, 4), util::CheckError);
  EXPECT_THROW((void)circulant(5, 0), util::CheckError);
}

}  // namespace
}  // namespace decycle::graph
