#include "graph/far_generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/analysis.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"

namespace decycle::graph {
namespace {

void expect_planted_edge_disjoint(const FarInstance& inst, unsigned k) {
  std::set<EdgeId> used;
  for (const auto& cyc : inst.planted) {
    ASSERT_EQ(cyc.size(), k);
    ASSERT_TRUE(validate_cycle(inst.graph, cyc));
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const EdgeId id = inst.graph.edge_id(cyc[i], cyc[(i + 1) % cyc.size()]);
      ASSERT_NE(id, kInvalidEdge);
      EXPECT_TRUE(used.insert(id).second) << "planted cycles share an edge";
    }
  }
}

TEST(PlantedInstance, StructureAndCertificate) {
  util::Rng rng(1);
  PlantedOptions opt;
  opt.k = 5;
  opt.num_cycles = 8;
  opt.padding_leaves = 10;
  const FarInstance inst = planted_cycles_instance(opt, rng);
  EXPECT_EQ(inst.planted.size(), 8u);
  EXPECT_EQ(inst.graph.num_edges(), 8 * 5 + 7 + 10u);  // cycles + bridges + pads
  expect_planted_edge_disjoint(inst, 5);
  EXPECT_NEAR(inst.certified_epsilon(), 8.0 / 57.0, 1e-12);
  EXPECT_TRUE(is_connected(inst.graph));
}

TEST(PlantedInstance, ExactlyPlantedCyclesNoMore) {
  util::Rng rng(2);
  PlantedOptions opt;
  opt.k = 4;
  opt.num_cycles = 5;
  opt.shuffle = false;
  const FarInstance inst = planted_cycles_instance(opt, rng);
  EXPECT_EQ(count_cycles(inst.graph, 4), 5u);
  // No other cycle lengths exist either (bridges/pads are cut edges).
  EXPECT_EQ(count_cycles(inst.graph, 3), 0u);
  EXPECT_EQ(count_cycles(inst.graph, 5), 0u);
}

TEST(PlantedInstance, ShuffleKeepsInvariants) {
  util::Rng rng(3);
  PlantedOptions opt;
  opt.k = 7;
  opt.num_cycles = 4;
  opt.shuffle = true;
  const FarInstance inst = planted_cycles_instance(opt, rng);
  expect_planted_edge_disjoint(inst, 7);
}

TEST(PlantedInstance, DisconnectedWhenRequested) {
  util::Rng rng(4);
  PlantedOptions opt;
  opt.k = 3;
  opt.num_cycles = 3;
  opt.connect = false;
  opt.shuffle = false;
  const FarInstance inst = planted_cycles_instance(opt, rng);
  EXPECT_EQ(connected_components(inst.graph).count, 3u);
}

TEST(HighGirth, GirthExceedsK) {
  util::Rng rng(5);
  for (const unsigned k : {3u, 5u, 7u}) {
    const Graph g = high_girth_graph(120, 150, k, rng);
    const auto gg = girth(g);
    if (gg.has_value()) {
      EXPECT_GT(*gg, k) << "k=" << k;
    }
    for (unsigned len = 3; len <= k; ++len) EXPECT_FALSE(has_cycle(g, len));
  }
}

TEST(NoisyInstance, CertificateHolds) {
  util::Rng rng(6);
  NoisyFarOptions opt;
  opt.k = 5;
  opt.num_cycles = 6;
  opt.background_n = 80;
  opt.background_m = 120;
  const FarInstance inst = noisy_far_instance(opt, rng);
  EXPECT_EQ(inst.planted.size(), 6u);
  expect_planted_edge_disjoint(inst, 5);
  EXPECT_GT(inst.certified_epsilon(), 0.0);
}

TEST(LayeredInstance, EdgeDisjointPackingAtScale) {
  util::Rng rng(7);
  const FarInstance inst = layered_instance(5, 9, 3, rng);
  EXPECT_EQ(inst.planted.size(), 9u * 3);
  EXPECT_EQ(inst.graph.num_edges(), 5u * 9 * 3);
  expect_planted_edge_disjoint(inst, 5);
  // Every vertex carries `shifts` cycles: degree 2*shifts.
  for (Vertex v = 0; v < inst.graph.num_vertices(); ++v) {
    EXPECT_EQ(inst.graph.degree(v), 6u);
  }
  EXPECT_NEAR(inst.certified_epsilon(), 1.0 / 5.0, 1e-12);
}

TEST(LayeredInstance, WorksForEvenK) {
  util::Rng rng(8);
  const FarInstance inst = layered_instance(6, 8, 2, rng);  // gcd(8, 5) = 1
  expect_planted_edge_disjoint(inst, 6);
}

TEST(LayeredInstance, RejectsNonCoprimeLayerSize) {
  util::Rng rng(9);
  EXPECT_THROW((void)layered_instance(5, 8, 2, rng), util::CheckError);  // gcd(8,4)=4
}

TEST(CkFreeFamilies, ListDependsOnParity) {
  const auto odd = ck_free_families_for(5);
  const auto even = ck_free_families_for(6);
  EXPECT_TRUE(std::find(odd.begin(), odd.end(), CkFreeFamily::kBipartite) != odd.end());
  EXPECT_TRUE(std::find(even.begin(), even.end(), CkFreeFamily::kBipartite) == even.end());
}

TEST(CkFreeFamilies, InstancesAreCkFree) {
  util::Rng rng(10);
  for (const unsigned k : {3u, 4u, 5u, 6u, 7u}) {
    for (const CkFreeFamily family : ck_free_families_for(k)) {
      const Graph g = ck_free_instance(family, k, 60, rng);
      EXPECT_FALSE(has_cycle(g, k)) << "family=" << family_name(family) << " k=" << k;
      EXPECT_GE(g.num_vertices(), 4u);
    }
  }
}

TEST(CkFreeFamilies, CliqueBlowupKeepsShorterCycles) {
  util::Rng rng(11);
  const Graph g = ck_free_instance(CkFreeFamily::kCliqueBlowup, 6, 60, rng);
  EXPECT_TRUE(has_cycle(g, 3));  // K5 components are rich in shorter cycles
  EXPECT_TRUE(has_cycle(g, 5));
  EXPECT_FALSE(has_cycle(g, 6));
}

TEST(CkFreeFamilies, SubdividedCliqueFreeForManyK) {
  util::Rng rng(12);
  for (const unsigned k : {4u, 6u, 9u}) {
    const Graph g = ck_free_instance(CkFreeFamily::kSubdividedClique, k, 80, rng);
    EXPECT_FALSE(has_cycle(g, k)) << "k=" << k;
    EXPECT_TRUE(girth(g).has_value());  // it does contain (longer) cycles
  }
}

TEST(CkFreeFamilies, BipartiteRejectsEvenK) {
  util::Rng rng(13);
  EXPECT_THROW((void)ck_free_instance(CkFreeFamily::kBipartite, 4, 40, rng), util::CheckError);
}

TEST(FamilyNames, AllDistinct) {
  std::set<std::string> names;
  for (const CkFreeFamily f :
       {CkFreeFamily::kForest, CkFreeFamily::kBipartite, CkFreeFamily::kHighGirth,
        CkFreeFamily::kCliqueBlowup, CkFreeFamily::kSubdividedClique}) {
    names.insert(family_name(f));
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace decycle::graph
