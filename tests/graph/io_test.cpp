#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::graph {
namespace {

TEST(GraphIo, RoundTrip) {
  util::Rng rng(1);
  const Graph g = erdos_renyi_gnm(40, 80, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back.edges()[i], g.edges()[i]);
  }
}

TEST(GraphIo, SkipsComments) {
  std::istringstream in("# a comment\n3 2\n# another\n0 1\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, EmptyGraphRoundTrip) {
  std::stringstream buffer;
  write_edge_list(buffer, Graph::from_edges(5, {}));
  const Graph g = read_edge_list(buffer);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphIo, RejectsTruncated) {
  std::istringstream in("3 2\n0 1\n");
  EXPECT_THROW((void)read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW((void)read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::istringstream in("2 1\n0 5\n");
  EXPECT_THROW((void)read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::istringstream in("3 1\n1 1\n");
  EXPECT_THROW((void)read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsGarbageEdgeLine) {
  std::istringstream in("3 1\nzero one\n");
  EXPECT_THROW((void)read_edge_list(in), util::CheckError);
}

}  // namespace
}  // namespace decycle::graph
