#include "lab/runner.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <utility>

#include "core/detector.hpp"
#include "engine/graph_store.hpp"
#include "engine/lanes.hpp"
#include "graph/ids.hpp"
#include "lab/json.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::lab {

namespace {

// Seed-stream tags: every random decision of a trial draws from a stream
// derived from (cell key, trial index, purpose tag), so outcomes are pure
// functions of the cell content — independent of lanes, threads, and the
// rest of the matrix. (The per-trial target edge of draws_edge detectors
// uses its own tag inside core/detector.cpp, derived from the same trial
// seed.)
constexpr std::uint64_t kGraphTag = 0x67726170685f5f31ULL;  // "graph__1"
constexpr std::uint64_t kDropTag = 0x64726f705f5f5f31ULL;   // "drop___1"

struct TrialOutcome {
  bool rejected = false;
  bool overflow = false;
  GroundTruth truth = GroundTruth::kUnknown;
  double certified_epsilon = 0.0;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t max_link_bits = 0;
  std::uint64_t max_bundle = 0;
  std::uint64_t dropped = 0;
  bool truncated = false;
  std::size_t repetitions = 0;             ///< detector-resolved reps/sweeps/iters
  std::vector<std::uint64_t> counters;     ///< aligned with the detector's table
};

/// The fully resolved engine query for one trial — registry dispatch:
/// every algorithm, core testers and baselines alike, travels through the
/// same Detector::run call; no per-algorithm branches.
engine::Query trial_query(const ScenarioCell& cell, std::uint64_t trial_seed) {
  engine::Query q;
  q.detector = cell.algo;
  q.model = cell.model;
  q.options.k = cell.k;
  q.options.epsilon = cell.epsilon;
  q.options.seed = trial_seed;
  q.options.repetitions = cell.repetitions;
  q.options.budget = cell.budget;
  q.options.max_tracked = cell.track;
  q.options.drop = make_drop_filter(cell.adversary, util::splitmix64(trial_seed ^ kDropTag));
  q.options.delivery = cell.delivery;
  return q;
}

/// Folds one verdict plus its instance facts into the per-trial slot.
TrialOutcome trial_outcome(const ScenarioCell& cell, GroundTruth truth, double certified_epsilon,
                           std::uint64_t vertices, std::uint64_t edges, core::Verdict verdict) {
  TrialOutcome out;
  out.truth = truth;
  out.certified_epsilon = certified_epsilon;
  out.vertices = vertices;
  out.edges = edges;
  out.rejected = !verdict.accepted;
  out.overflow = verdict.overflow;
  out.truncated = verdict.truncated;
  out.max_bundle = verdict.max_bundle_sequences;
  out.rounds = verdict.stats.rounds_executed;
  out.messages = verdict.stats.total_messages;
  out.bits = verdict.stats.total_bits;
  out.max_link_bits = verdict.stats.max_link_bits;
  out.dropped = verdict.stats.dropped_messages;
  out.repetitions = verdict.repetitions;
  DECYCLE_CHECK_MSG(verdict.counters.size() == cell.algo->counters().size(),
                    "detector '" + std::string(cell.algo->name()) + "' returned " +
                        std::to_string(verdict.counters.size()) + " counter values for a " +
                        std::to_string(cell.algo->counters().size()) +
                        "-entry counter table — run() and counters() drifted apart");
  out.counters = std::move(verdict.counters);
  return out;
}

}  // namespace

CellResult LabRunner::run_cell(const ScenarioCell& cell) const {
  DECYCLE_CHECK_MSG(cell.trials >= 1, "cell needs at least one trial");
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t cseed = cell.cell_seed();

  CellResult res;
  res.cell = cell;
  res.trials = cell.trials;

  // Per-trial outcomes land in an indexed slot, so nothing downstream can
  // observe lane boundaries or scheduling.
  std::vector<TrialOutcome> outcomes(cell.trials);

  if (cell.seed_mode == SeedMode::kSharedGraph) {
    // Shared-graph policy: one topology per cell, pinned under its content
    // hash and submitted as one engine batch — sibling cells on the same
    // topology content (different algo/adversary) hit the session cache.
    util::Rng grng(util::splitmix64(cseed ^ kGraphTag));
    BuiltTopology shared = build_topology(cell, grng);
    res.description = shared.description;
    res.certified_epsilon = shared.certified_epsilon;
    const GroundTruth truth = shared.truth;
    const double cert = shared.certified_epsilon;
    graph::IdAssignment ids = graph::IdAssignment::identity(shared.graph.num_vertices());
    const engine::PinnedGraphPtr pinned = engine::pin(std::move(shared.graph), std::move(ids));
    const std::uint64_t vertices = pinned->graph.num_vertices();
    const std::uint64_t edges = pinned->graph.num_edges();

    std::vector<engine::Query> queries(cell.trials);
    for (std::size_t i = 0; i < cell.trials; ++i) {
      queries[i] = trial_query(cell, engine::trial_seed(cseed, i));
    }
    std::vector<core::Verdict> verdicts = engine_->run_batch(pinned, queries);
    for (std::size_t i = 0; i < cell.trials; ++i) {
      outcomes[i] = trial_outcome(cell, truth, cert, vertices, edges, std::move(verdicts[i]));
    }
  } else {
    // Fresh-graph policy: every trial draws its own topology from the trial
    // seed, so sessions cannot be shared — each query runs on an uncached
    // engine build, lanes via the same for_lanes dispatch as the batch path.
    res.description = cell.family;
    engine::for_lanes(options_.pool, cell.trials, nullptr,
                      [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          const std::uint64_t tseed = engine::trial_seed(cseed, i);
                          util::Rng trng(util::splitmix64(tseed ^ kGraphTag));
                          const BuiltTopology topo = build_topology(cell, trng);
                          const graph::IdAssignment ids =
                              graph::IdAssignment::identity(topo.graph.num_vertices());
                          core::Verdict verdict = engine::DetectionEngine::run_uncached(
                              topo.graph, ids, trial_query(cell, tseed));
                          outcomes[i] = trial_outcome(cell, topo.truth, topo.certified_epsilon,
                                                      topo.graph.num_vertices(),
                                                      topo.graph.num_edges(), std::move(verdict));
                        }
                      });
  }

  // Serial reduction in trial order (sums are integers except the
  // certificate mean, whose fixed summation order keeps it deterministic).
  // Counter aggregation is generic: each counter folds per its declared
  // kind, whatever algorithm the cell ran.
  const std::span<const core::CounterDef> counter_defs = cell.algo->counters();
  res.counters.assign(counter_defs.size(), 0);
  double cert_sum = 0.0;
  for (const TrialOutcome& t : outcomes) {
    cert_sum += t.certified_epsilon;
    res.rejections += t.rejected ? 1 : 0;
    res.total_vertices += t.vertices;
    res.total_edges += t.edges;
    res.rounds_total += t.rounds;
    res.rounds_max = std::max(res.rounds_max, t.rounds);
    res.messages_total += t.messages;
    res.bits_total += t.bits;
    res.max_link_bits = std::max(res.max_link_bits, t.max_link_bits);
    res.max_bundle = std::max(res.max_bundle, t.max_bundle);
    res.overflow_trials += t.overflow ? 1 : 0;
    res.dropped_total += t.dropped;
    res.truncated_trials += t.truncated ? 1 : 0;
    for (std::size_t c = 0; c < counter_defs.size(); ++c) {
      if (counter_defs[c].kind == core::CounterKind::kMax) {
        res.counters[c] = std::max(res.counters[c], t.counters[c]);
      } else {
        res.counters[c] += t.counters[c];
      }
    }
  }
  // Every trial of a cell runs the same family, so trial 0 speaks for the
  // cell's ground truth in fresh-graph mode too — and the same detector
  // with the same knobs, so trial 0's resolved repetition count speaks for
  // the cell as well.
  res.truth = outcomes.front().truth;
  res.repetitions = outcomes.front().repetitions;
  if (cell.seed_mode != SeedMode::kSharedGraph) {
    res.certified_epsilon = cert_sum / static_cast<double>(cell.trials);
  }
  res.reject_interval = util::wilson_interval(res.rejections, res.trials);
  res.soundness_violation = res.truth == GroundTruth::kCkFree && res.rejections > 0;
  res.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return res;
}

std::vector<CellResult> LabRunner::run_matrix(std::span<const ScenarioCell> cells) const {
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const ScenarioCell& cell : cells) {
    results.push_back(run_cell(cell));
    if (options_.progress != nullptr) {
      const CellResult& r = results.back();
      *options_.progress << "[" << results.size() << "/" << cells.size() << "] " << r.cell.key()
                         << " reject_rate=" << json_double(r.reject_interval.estimate)
                         << (options_.include_timing
                                 ? " elapsed_s=" + json_double(r.elapsed_seconds)
                                 : std::string())
                         << "\n";
    }
  }
  return results;
}

std::uint64_t CellResult::counter(std::string_view name) const {
  const std::span<const core::CounterDef> defs = cell.algo->counters();
  for (std::size_t c = 0; c < defs.size() && c < counters.size(); ++c) {
    if (defs[c].name == name) return counters[c];
  }
  return 0;
}

std::string CellResult::to_json(bool include_timing) const {
  const core::DetectorCapabilities& caps = cell.algo->capabilities();
  const double trials_d = static_cast<double>(trials);
  JsonWriter w;
  w.begin_object()
      .field("type", "cell")
      .field("index", cell.index)
      .field("family", cell.family)
      .field("k", cell.k)
      .field("eps", cell.epsilon)
      .field("n", cell.n)
      .field("adversary", cell.adversary.name())
      .field("algo", cell.algo->name())
      .field("seed_mode", seed_mode_name(cell.seed_mode))
      .field("delivery",
             cell.delivery == congest::DeliveryMode::kArena ? "arena" : "legacy")
      .field("model", cell.model->name())
      .field("trials", trials)
      .field("cell_seed", cell.cell_seed());
  if (caps.has_repetitions) w.field("repetitions", repetitions);
  if (caps.uses_threshold_knobs) {
    w.field("budget", cell.budget.name()).field("track", cell.track);
  }
  w.key("graph").begin_object().field("description", description).field(
      "ground_truth", ground_truth_name(truth));
  if (cell.seed_mode == SeedMode::kSharedGraph) {
    w.field("vertices", total_vertices / std::max<std::uint64_t>(trials, 1))
        .field("edges", total_edges / std::max<std::uint64_t>(trials, 1))
        .field("certified_eps", certified_epsilon);
  } else {
    w.field("mean_vertices", static_cast<double>(total_vertices) / trials_d)
        .field("mean_edges", static_cast<double>(total_edges) / trials_d)
        .field("mean_certified_eps", certified_epsilon);
  }
  w.end_object();
  w.field("rejections", rejections)
      .field("reject_rate", reject_interval.estimate)
      .field("wilson_low", reject_interval.low)
      .field("wilson_high", reject_interval.high)
      .field("rounds_mean", static_cast<double>(rounds_total) / trials_d)
      .field("rounds_max", rounds_max)
      .field("messages_total", messages_total)
      .field("bits_total", bits_total)
      .field("max_link_bits", max_link_bits)
      .field("max_bundle", max_bundle)
      .field("overflow_trials", overflow_trials)
      .field("dropped_total", dropped_total)
      .field("truncated_trials", truncated_trials);
  // Detector counters flow through generically: emitted in table order
  // under their table names (the threshold family's seeded_total …
  // peak_tracked fields keep their pre-registry bytes).
  const std::span<const core::CounterDef> counter_defs = cell.algo->counters();
  for (std::size_t c = 0; c < counter_defs.size() && c < counters.size(); ++c) {
    if (counter_defs[c].emit) w.field(counter_defs[c].name, counters[c]);
  }
  w.field("soundness_violation", soundness_violation);
  if (include_timing) w.field("elapsed_s", elapsed_seconds);
  w.end_object();
  return std::move(w).str();
}

std::string meta_record(const ScenarioSpec& spec, std::size_t num_cells) {
  JsonWriter w;
  w.begin_object()
      .field("type", "meta")
      .field("tool", "decycle_lab")
      .field("format", 1)
      .field("seed", spec.seed)
      .field("trials", spec.trials)
      .field("reps", spec.repetitions)
      .field("budget", spec.budget.name())
      .field("track", spec.track)
      .field("seed_mode", seed_mode_name(spec.seed_mode))
      .field("delivery",
             spec.delivery == congest::DeliveryMode::kArena ? "arena" : "legacy")
      .field("cells", num_cells);
  w.key("axes").begin_object();
  w.key("family").begin_array();
  for (const auto& f : spec.families) w.value(f);
  w.end_array();
  w.key("k").begin_array();
  for (const unsigned k : spec.ks) w.value(k);
  w.end_array();
  w.key("eps").begin_array();
  for (const double e : spec.epsilons) w.value(e);
  w.end_array();
  w.key("n").begin_array();
  for (const std::uint64_t n : spec.sizes) w.value(n);
  w.end_array();
  w.key("adversary").begin_array();
  for (const auto& a : spec.adversaries) w.value(a.name());
  w.end_array();
  w.key("model").begin_array();
  for (const congest::CommModel* m : spec.models) w.value(m->name());
  w.end_array();
  w.key("algo").begin_array();
  for (const core::Detector* a : spec.algos) w.value(a->name());
  w.end_array();
  w.end_object();  // axes
  w.end_object();
  return std::move(w).str();
}

std::string matrix_jsonl(const ScenarioSpec& spec, std::span<const CellResult> results,
                         bool include_timing) {
  std::string out = meta_record(spec, results.size());
  out.push_back('\n');
  for (const CellResult& r : results) {
    out += r.to_json(include_timing);
    out.push_back('\n');
  }
  return out;
}

}  // namespace decycle::lab
