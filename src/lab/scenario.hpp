/// \file scenario.hpp
/// \brief Declarative scenario matrix for the lab runner.
///
/// A scenario spec names axes (graph family × k × ε × size × adversary ×
/// algorithm) and shared scalars (trials, seed policy, repetitions). Axes
/// are parsed from `key=value` tokens — comma lists (`k=3,5,7`) and integer
/// ranges (`n=32..128:32`) — the way Theorem 1's experiments sweep their
/// instances; expand() takes the cross product into a flat list of fully
/// instantiated cells. Unknown keys, unknown family names, and out-of-range
/// values are rejected at parse time with messages that name the offender
/// and the accepted alternatives, so a typo'd matrix never silently runs
/// the default workload.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "congest/simulator.hpp"
#include "core/detector.hpp"
#include "core/threshold/budget.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace decycle::lab {

/// Seed policy. kSharedGraph builds one topology per cell (graph seed
/// derived from the cell, trials vary only the algorithm seed) — this is
/// what enables Simulator reuse. kFreshGraph rebuilds the topology from
/// each trial's seed.
enum class SeedMode : std::uint8_t { kSharedGraph, kFreshGraph };

/// A named message-loss adversary with its drop probability.
struct AdversarySpec {
  enum class Kind : std::uint8_t {
    kNone,     ///< lossless network
    kUniform,  ///< iid per-message drop with probability rate
    kOneWay,   ///< drops only lower->higher vertex messages, probability rate
    kLate,     ///< drops only messages sent at rounds >= 2 (Phase-2 traffic)
  };
  Kind kind = Kind::kNone;
  double rate = 0.0;

  [[nodiscard]] std::string name() const;  ///< canonical token, e.g. "uniform:0.25"
};

/// What is provably known about a built instance, recorded in the JSON so
/// nightly runs can assert soundness (no rejection on kCkFree cells).
enum class GroundTruth : std::uint8_t { kCkFree, kHasCk, kFar, kUnknown };

[[nodiscard]] std::string_view ground_truth_name(GroundTruth t) noexcept;

/// One fully instantiated point of the matrix.
struct ScenarioCell {
  std::size_t index = 0;  ///< position in expansion order
  std::string family = "planted";
  unsigned k = 5;
  double epsilon = 0.1;
  std::uint64_t n = 64;  ///< family size parameter (vertices, or dimension for hypercube)
  AdversarySpec adversary;
  /// Communication model the cell's simulators are built under — one of the
  /// CommModel singletons, never null after parsing. Detectors whose
  /// capability mask excludes the model are rejected at expand() time.
  const congest::CommModel* model = &congest::CommModel::congest();
  /// Which detection algorithm this cell exercises — a registry-owned
  /// singleton from core::DetectorRegistry::builtin(), never null after
  /// parsing. The registry is the single source of truth: any registered
  /// detector whose capabilities admit (k, model, …) is a valid axis value.
  const core::Detector* algo = core::DetectorRegistry::builtin().find("tester");

  // Shared scalars, copied from the spec for self-contained execution.
  SeedMode seed_mode = SeedMode::kSharedGraph;
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
  std::size_t trials = 32;
  std::uint64_t base_seed = 1;
  std::size_t repetitions = 0;  ///< 0 = recommended_repetitions(epsilon); threshold: sweeps (0 = 1)
  /// Threshold-family knobs (ignored by the other algorithms): per-link
  /// sequence budget schedule and the per-node execution tracking cap.
  core::threshold::BudgetSchedule budget = core::threshold::BudgetSchedule::constant(16);
  std::uint64_t track = 8;  ///< 0 = unlimited

  /// Canonical content key, e.g. "family=planted k=5 eps=0.1 n=64
  /// adversary=none algo=tester". Cell seeds are derived from this, so a
  /// cell's results are invariant under adding or reordering other axis
  /// values. A ` model=<name>` token is appended only for non-congest
  /// models: pre-model cells keep their historical keys (and therefore
  /// their golden-pinned seeds) bit-for-bit.
  [[nodiscard]] std::string key() const;

  /// Deterministic 64-bit seed folded from base_seed and key().
  [[nodiscard]] std::uint64_t cell_seed() const;
};

/// The parsed matrix: axes plus shared scalars.
struct ScenarioSpec {
  std::vector<std::string> families = {"planted"};
  std::vector<unsigned> ks = {5};
  std::vector<double> epsilons = {0.1};
  std::vector<std::uint64_t> sizes = {64};
  std::vector<AdversarySpec> adversaries = {{}};
  std::vector<const congest::CommModel*> models = {&congest::CommModel::congest()};
  std::vector<const core::Detector*> algos = {core::DetectorRegistry::builtin().find("tester")};

  SeedMode seed_mode = SeedMode::kSharedGraph;
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
  std::size_t trials = 32;
  std::uint64_t seed = 1;
  std::size_t repetitions = 0;
  core::threshold::BudgetSchedule budget = core::threshold::BudgetSchedule::constant(16);
  std::uint64_t track = 8;

  /// Parses `key=value` pairs (axis keys: family, k, eps, n, adversary,
  /// model, algo; scalar keys: trials, seed, reps, seed_mode, delivery,
  /// budget, track). Throws CheckError naming the offending key/value and
  /// the accepted options.
  [[nodiscard]] static ScenarioSpec parse(
      std::span<const std::pair<std::string, std::string>> pairs);

  /// Convenience overload for "key=value" tokens (tests, scripts).
  [[nodiscard]] static ScenarioSpec parse_tokens(const std::vector<std::string>& tokens);

  /// Cross product in fixed nesting order family > k > eps > n > adversary
  /// > model > algo (algo fastest). Validates every (family, k, n)
  /// combination — e.g. ckfree_bipartite requires odd k — and every
  /// (algo, k) and (algo, model) pair against the detector's capabilities
  /// (e.g. algo=c4 accepts k=4 only; algo=tester refuses model=clique),
  /// throwing errors that name the accepted alternatives, so an unsupported
  /// matrix never silently produces meaningless cells.
  [[nodiscard]] std::vector<ScenarioCell> expand() const;
};

[[nodiscard]] std::string_view seed_mode_name(SeedMode m) noexcept;

/// A topology built for one cell (or one fresh-graph trial).
struct BuiltTopology {
  graph::Graph graph;
  double certified_epsilon = 0.0;  ///< 0 when the family carries no certificate
  std::string description;
  GroundTruth truth = GroundTruth::kUnknown;
};

/// Registry of named graph families (drawn from graph/generators.cpp and
/// graph/far_generators.cpp).
struct FamilyInfo {
  std::string_view name;
  std::string_view summary;
};
[[nodiscard]] std::span<const FamilyInfo> known_families();

/// Empty string when (family, k, n) is buildable; otherwise a message
/// explaining why not (unknown family names the known ones).
[[nodiscard]] std::string validate_family(std::string_view family, unsigned k, std::uint64_t n);

/// Builds the instance for \p cell. All randomness comes from \p rng.
/// Throws CheckError when validate_family would return an error.
[[nodiscard]] BuiltTopology build_topology(const ScenarioCell& cell, util::Rng& rng);

/// Parses an adversary token (`none`, `uniform:0.2`, `oneway:0.5`,
/// `late:0.3`); throws CheckError on unknown names or rates outside [0,1].
[[nodiscard]] AdversarySpec parse_adversary(std::string_view token);

/// Stateless deterministic drop filter implementing \p spec; pure in
/// (round, from, to) given \p seed, so runs stay bit-reproducible and the
/// filter is safe to call from concurrent delivery shards.
[[nodiscard]] congest::Simulator::DropFilter make_drop_filter(const AdversarySpec& spec,
                                                              std::uint64_t seed);

}  // namespace decycle::lab
