/// \file json.hpp
/// \brief Minimal deterministic JSON emitter for lab records.
///
/// The lab's acceptance contract is *byte-identical* output for the same
/// scenario matrix at any thread count, and golden-file diffs in nightly CI.
/// That rules out locale-dependent iostream formatting: every number goes
/// through std::to_chars (shortest round-trip form for doubles), keys are
/// emitted in the order the caller writes them, and there is no whitespace
/// the caller does not ask for. Not a general JSON library — exactly the
/// writer the JSONL records in lab/runner.cpp need.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace decycle::lab {

/// Streaming writer with explicit begin/end nesting. Misuse (value without
/// key inside an object, unbalanced end) throws CheckError.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key for the next value. Only valid directly inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(unsigned u) { return value(static_cast<std::uint64_t>(u)); }

  /// key(k) followed by value(v).
  template <typename T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// Finishes and returns the document. All nesting must be closed.
  [[nodiscard]] std::string str() &&;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void raw(std::string_view s) { out_.append(s); }

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

/// JSON string escaping (quotes included in the return value).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest round-trip decimal form of \p d via std::to_chars; "null" for
/// non-finite values (which a lab record should never contain).
[[nodiscard]] std::string json_double(double d);

}  // namespace decycle::lab
