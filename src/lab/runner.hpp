/// \file runner.hpp
/// \brief Batched execution runtime for scenario matrices.
///
/// The runner executes every cell of an expanded matrix by submitting one
/// engine::Query per trial to its DetectionEngine (DESIGN.md §12): trials
/// are partitioned into contiguous lanes across the shared ThreadPool, each
/// lane leases one cached Simulator session that is reset() between trials
/// instead of rebuilt (the estimator-workload hot path — see DESIGN.md §6,
/// and a cache hit across cells that share topology content), and every
/// trial's seed is derived from the cell's content key and the trial index
/// alone. Per-trial outcomes are stored by index and reduced serially, so a
/// matrix produces byte-identical JSON for any thread count — the property
/// nightly CI diffs against a golden file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"
#include "lab/scenario.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace decycle::lab {

struct LabOptions {
  util::ThreadPool* pool = nullptr;  ///< trial-level parallelism (lanes)
  /// Reuse one Simulator per lane via Simulator::reset (shared-graph cells
  /// only). Off = rebuild per trial; kept togglable so bench/m4_lab_micro
  /// can measure the reuse win and tests can assert reuse equivalence.
  bool reuse_simulators = true;
  /// Adds wall-clock fields to the JSON. Off by default: timing would break
  /// the byte-identical golden-output contract.
  bool include_timing = false;
  std::ostream* progress = nullptr;  ///< optional per-cell progress lines
};

/// Aggregated outcome of one cell's trials. All aggregates are integer
/// sums/maxima over per-trial records (doubles derived only at the end), so
/// they cannot depend on scheduling.
struct CellResult {
  ScenarioCell cell;

  // Instance info. For kSharedGraph the exact topology; for kFreshGraph
  // per-trial topologies summarized by integer totals.
  std::string description;
  GroundTruth truth = GroundTruth::kUnknown;
  std::uint64_t total_vertices = 0;  ///< sum over trials (1 topology: n * trials)
  std::uint64_t total_edges = 0;
  double certified_epsilon = 0.0;  ///< shared topology's certificate (0 for fresh mode)
  /// Repetitions / sweeps / iterations the detector resolved (Verdict::
  /// repetitions); 0 for one-shot algorithms like the edge checker.
  std::size_t repetitions = 0;

  std::uint64_t trials = 0;
  std::uint64_t rejections = 0;
  util::ProportionInterval reject_interval{0, 0, 1};

  std::uint64_t rounds_total = 0;
  std::uint64_t rounds_max = 0;
  std::uint64_t messages_total = 0;
  std::uint64_t bits_total = 0;
  std::uint64_t max_link_bits = 0;
  std::uint64_t max_bundle = 0;  ///< Lemma-3 instrumentation: max |S| broadcast
  std::uint64_t overflow_trials = 0;
  std::uint64_t dropped_total = 0;
  /// Trials whose run hit the internal round cap instead of quiescing
  /// (Verdict::truncated) — must stay 0; nonzero means a bound bug.
  std::uint64_t truncated_trials = 0;

  /// Detector instrumentation, aligned index-for-index with the cell's
  /// Detector::counters() table and aggregated per each counter's kind
  /// (sum or max over trials). Counters marked emit are written to the
  /// JSONL record under their table names — e.g. the threshold family's
  /// seeded_total … peak_tracked — so algorithm-specific fields flow
  /// through the runner without per-algorithm code.
  std::vector<std::uint64_t> counters;
  /// True when a provably Ck-free instance produced a rejection — impossible
  /// while witness validation is on; nightly asserts it stays false.
  bool soundness_violation = false;

  double elapsed_seconds = 0.0;  ///< wall clock (reported only with include_timing)

  /// Value of the named counter from the cell detector's table; 0 when the
  /// detector declares no such counter (convenience for tests and benches).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// One JSONL record (no trailing newline).
  [[nodiscard]] std::string to_json(bool include_timing) const;
};

class LabRunner {
 public:
  explicit LabRunner(const LabOptions& options = {})
      : options_(options),
        engine_(std::make_unique<engine::DetectionEngine>(engine::EngineOptions{
            options.pool, engine::SessionPool::kDefaultCapacity, options.reuse_simulators})) {}

  /// Runs one cell's trials: one engine query per trial, lanes across the
  /// pool, leased-session Simulator reuse within a lane.
  [[nodiscard]] CellResult run_cell(const ScenarioCell& cell) const;

  /// Runs every cell in order.
  [[nodiscard]] std::vector<CellResult> run_matrix(std::span<const ScenarioCell> cells) const;

  [[nodiscard]] const LabOptions& options() const noexcept { return options_; }

  /// The runner's engine (session cache introspection; tests/benches).
  [[nodiscard]] const engine::DetectionEngine& engine() const noexcept { return *engine_; }

  /// Session-cache counters accumulated across every cell this runner ran —
  /// what `decycle_lab --engine-stats` prints.
  [[nodiscard]] engine::SessionStats session_stats() const { return engine_->session_stats(); }

 private:
  LabOptions options_;
  std::unique_ptr<engine::DetectionEngine> engine_;
};

/// The leading JSONL meta record for a matrix run (no trailing newline).
[[nodiscard]] std::string meta_record(const ScenarioSpec& spec, std::size_t num_cells);

/// Full JSONL document: meta record + one record per cell, one per line,
/// trailing newline at the end.
[[nodiscard]] std::string matrix_jsonl(const ScenarioSpec& spec,
                                       std::span<const CellResult> results, bool include_timing);

}  // namespace decycle::lab
