#include "lab/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <numeric>
#include <set>

#include "engine/lanes.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "lab/json.hpp"
#include "util/check.hpp"

namespace decycle::lab {

namespace {

[[noreturn]] void fail(const std::string& msg) { DECYCLE_CHECK_MSG(false, msg); }

std::string known_family_list() {
  std::string out;
  for (const FamilyInfo& info : known_families()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

// --- token-level parsing helpers -----------------------------------------

std::vector<std::string> split_commas(std::string_view value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string_view piece =
        value.substr(start, comma == std::string_view::npos ? comma : comma - start);
    out.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

std::uint64_t parse_u64(std::string_view key, std::string_view piece) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), out);
  if (ec != std::errc() || ptr != piece.data() + piece.size()) {
    fail("scenario key '" + std::string(key) + "': expected unsigned integer, got '" +
         std::string(piece) + "'");
  }
  return out;
}

double parse_double(std::string_view key, std::string_view piece) {
  double out = 0;
  const auto [ptr, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), out);
  if (ec != std::errc() || ptr != piece.data() + piece.size()) {
    fail("scenario key '" + std::string(key) + "': expected number, got '" + std::string(piece) +
         "'");
  }
  return out;
}

/// Integer axis values: comma list whose pieces may be `a..b` or `a..b:step`
/// inclusive arithmetic ranges.
std::vector<std::uint64_t> parse_u64_axis(std::string_view key, std::string_view value) {
  std::vector<std::uint64_t> out;
  for (const std::string& piece : split_commas(value)) {
    const std::size_t dots = piece.find("..");
    if (dots == std::string::npos) {
      out.push_back(parse_u64(key, piece));
      continue;
    }
    const std::uint64_t lo = parse_u64(key, std::string_view(piece).substr(0, dots));
    std::string_view rest = std::string_view(piece).substr(dots + 2);
    std::uint64_t step = 1;
    if (const std::size_t colon = rest.find(':'); colon != std::string_view::npos) {
      step = parse_u64(key, rest.substr(colon + 1));
      rest = rest.substr(0, colon);
    }
    const std::uint64_t hi = parse_u64(key, rest);
    if (step == 0) fail("scenario key '" + std::string(key) + "': range step must be positive");
    if (lo > hi) {
      fail("scenario key '" + std::string(key) + "': range " + std::string(piece) +
           " is empty (lo > hi)");
    }
    for (std::uint64_t v = lo; v <= hi; v += step) {
      out.push_back(v);
      if (hi - v < step) break;  // overflow guard
    }
  }
  if (out.empty()) fail("scenario key '" + std::string(key) + "': no values");
  return out;
}

std::vector<double> parse_double_axis(std::string_view key, std::string_view value) {
  std::vector<double> out;
  for (const std::string& piece : split_commas(value)) out.push_back(parse_double(key, piece));
  return out;
}

// --- graph family registry -----------------------------------------------

struct FamilyEntry {
  FamilyInfo info;
  /// Empty string = buildable; otherwise the reason it is not.
  std::string (*validate)(unsigned k, std::uint64_t n);
  BuiltTopology (*build)(const ScenarioCell& cell, util::Rng& rng);
};

std::string no_constraint(unsigned, std::uint64_t) { return {}; }

graph::Vertex as_vertex(std::uint64_t n) { return static_cast<graph::Vertex>(n); }

BuiltTopology from_far(graph::FarInstance inst) {
  BuiltTopology out;
  out.certified_epsilon = inst.certified_epsilon();
  out.description = std::move(inst.description);
  out.graph = std::move(inst.graph);
  out.truth = GroundTruth::kFar;
  return out;
}

BuiltTopology from_ck_free(graph::CkFreeFamily family, const ScenarioCell& cell, util::Rng& rng) {
  BuiltTopology out;
  out.graph = graph::ck_free_instance(family, cell.k, as_vertex(cell.n), rng);
  out.description = std::string(graph::family_name(family));
  out.truth = GroundTruth::kCkFree;
  return out;
}

/// Smallest s >= wanted with gcd(s, k-1) == 1 (layered_instance requires
/// coprimality so the shifted cycles stay edge-disjoint).
graph::Vertex coprime_layer_size(std::uint64_t wanted, unsigned k) {
  std::uint64_t s = std::max<std::uint64_t>(wanted, 2);
  while (std::gcd(s, static_cast<std::uint64_t>(k - 1)) != 1) ++s;
  return as_vertex(s);
}

constexpr FamilyEntry kFamilies[] = {
    {{"cycle", "the single cycle C_n (contains Ck iff n == k)"},
     [](unsigned, std::uint64_t n) {
       return n >= 3 ? std::string{} : std::string("needs n >= 3");
     },
     [](const ScenarioCell& cell, util::Rng&) {
       BuiltTopology out;
       out.graph = graph::cycle(as_vertex(cell.n));
       out.description = "cycle";
       out.truth = cell.n == cell.k ? GroundTruth::kHasCk : GroundTruth::kCkFree;
       return out;
     }},
    {{"path", "the path P_n (acyclic)"},
     [](unsigned, std::uint64_t n) {
       return n >= 2 ? std::string{} : std::string("needs n >= 2");
     },
     [](const ScenarioCell& cell, util::Rng&) {
       BuiltTopology out;
       out.graph = graph::path(as_vertex(cell.n));
       out.description = "path";
       out.truth = GroundTruth::kCkFree;
       return out;
     }},
    {{"wheel", "hub + rim: contains Ck for every 3 <= k < n"},
     [](unsigned, std::uint64_t n) {
       return n >= 4 ? std::string{} : std::string("needs n >= 4");
     },
     [](const ScenarioCell& cell, util::Rng&) {
       BuiltTopology out;
       out.graph = graph::wheel(as_vertex(cell.n));
       out.description = "wheel";
       out.truth = cell.k < cell.n ? GroundTruth::kHasCk : GroundTruth::kUnknown;
       return out;
     }},
    {{"complete", "K_n (dense stress; contains Ck for k <= n)"},
     [](unsigned, std::uint64_t n) {
       if (n < 3) return std::string("needs n >= 3");
       if (n > 4096) return std::string("n > 4096 would build a >8M-edge clique");
       return std::string{};
     },
     [](const ScenarioCell& cell, util::Rng&) {
       BuiltTopology out;
       out.graph = graph::complete(as_vertex(cell.n));
       out.description = "complete";
       out.truth = cell.k <= cell.n ? GroundTruth::kHasCk : GroundTruth::kCkFree;
       return out;
     }},
    {{"grid", "n x n grid (bipartite: odd-k free; contains C4..)"},
     [](unsigned, std::uint64_t n) {
       if (n < 2) return std::string("needs side n >= 2");
       if (n > 65535) return std::string("side n > 65535 would overflow n*n 32-bit vertices");
       return std::string{};
     },
     [](const ScenarioCell& cell, util::Rng&) {
       BuiltTopology out;
       out.graph = graph::grid(as_vertex(cell.n), as_vertex(cell.n));
       out.description = "grid";
       out.truth = cell.k % 2 == 1 ? GroundTruth::kCkFree
                                   : (cell.k <= 2 * (cell.n - 1) + 2 ? GroundTruth::kHasCk
                                                                     : GroundTruth::kUnknown);
       return out;
     }},
    {{"hypercube", "d-dimensional hypercube, n = dimension (bipartite)"},
     [](unsigned, std::uint64_t n) {
       if (n < 1) return std::string("needs dimension n >= 1");
       if (n > 20) return std::string("dimension n > 20 would build >1M vertices");
       return std::string{};
     },
     [](const ScenarioCell& cell, util::Rng&) {
       BuiltTopology out;
       out.graph = graph::hypercube(static_cast<unsigned>(cell.n));
       out.description = "hypercube";
       out.truth = cell.k % 2 == 1 ? GroundTruth::kCkFree
                                   : (cell.n >= 2 && cell.k <= (std::uint64_t{1} << cell.n)
                                          ? GroundTruth::kHasCk
                                          : GroundTruth::kUnknown);
       return out;
     }},
    {{"tree", "uniform random labelled tree (acyclic)"}, no_constraint,
     [](const ScenarioCell& cell, util::Rng& rng) {
       BuiltTopology out;
       out.graph = graph::random_tree(as_vertex(std::max<std::uint64_t>(cell.n, 1)), rng);
       out.description = "random tree";
       out.truth = GroundTruth::kCkFree;
       return out;
     }},
    {{"gnm", "Erdos-Renyi G(n, m) with m = 2n edges"},
     [](unsigned, std::uint64_t n) {
       return n >= 5 ? std::string{} : std::string("needs n >= 5 so m = 2n fits");
     },
     [](const ScenarioCell& cell, util::Rng& rng) {
       BuiltTopology out;
       out.graph = graph::erdos_renyi_gnm(as_vertex(cell.n), 2 * cell.n, rng);
       out.description = "G(n,2n)";
       return out;
     }},
    {{"regular", "random 4-regular graph (configuration model)"},
     [](unsigned, std::uint64_t n) {
       return n >= 6 ? std::string{} : std::string("needs n >= 6 for degree 4");
     },
     [](const ScenarioCell& cell, util::Rng& rng) {
       BuiltTopology out;
       out.graph = graph::random_regular(as_vertex(cell.n), 4, rng);
       out.description = "4-regular";
       return out;
     }},
    {{"planted", "max(1, n/k) vertex-disjoint planted k-cycles, bridged (certified far)"},
     no_constraint,
     [](const ScenarioCell& cell, util::Rng& rng) {
       graph::PlantedOptions opt;
       opt.k = cell.k;
       opt.num_cycles = std::max<std::size_t>(1, cell.n / cell.k);
       return from_far(graph::planted_cycles_instance(opt, rng));
     }},
    {{"noisy", "planted k-cycles inside a girth-(>k) background (certified far)"},
     [](unsigned k, std::uint64_t n) {
       return n >= 2 * std::uint64_t{k}
                  ? std::string{}
                  : std::string("needs n >= 2k for the high-girth background");
     },
     [](const ScenarioCell& cell, util::Rng& rng) {
       graph::NoisyFarOptions opt;
       opt.k = cell.k;
       opt.num_cycles = std::max<std::size_t>(1, cell.n / 16);
       opt.background_n = as_vertex(cell.n);
       opt.background_m = 2 * cell.n;
       return from_far(graph::noisy_far_instance(opt, rng));
     }},
    {{"layered", "Behrend-substitute: shifted layer cycles, every vertex on 2 cycles"},
     no_constraint,
     [](const ScenarioCell& cell, util::Rng& rng) {
       return from_far(
           graph::layered_instance(cell.k, coprime_layer_size(cell.n, cell.k), 2, rng));
     }},
    {{"ckfree_forest", "random forest (soundness family)"},
     [](unsigned, std::uint64_t n) {
       return n >= 4 ? std::string{} : std::string("needs n >= 4");
     },
     [](const ScenarioCell& cell, util::Rng& rng) {
       return from_ck_free(graph::CkFreeFamily::kForest, cell, rng);
     }},
    {{"ckfree_bipartite", "bipartite instance — Ck-free for odd k only"},
     [](unsigned k, std::uint64_t n) {
       if (n < 4) return std::string("needs n >= 4");
       if (k % 2 == 0) return std::string("Ck-free only for odd k (bipartite graphs have C" +
                                          std::to_string(k) + ")");
       return std::string{};
     },
     [](const ScenarioCell& cell, util::Rng& rng) {
       return from_ck_free(graph::CkFreeFamily::kBipartite, cell, rng);
     }},
    {{"ckfree_highgirth", "random graph with girth > k (soundness family)"},
     [](unsigned, std::uint64_t n) {
       return n >= 4 ? std::string{} : std::string("needs n >= 4");
     },
     [](const ScenarioCell& cell, util::Rng& rng) {
       return from_ck_free(graph::CkFreeFamily::kHighGirth, cell, rng);
     }},
    {{"ckfree_blowup", "disjoint K_{k-1} cliques + bridges (max cycle length k-1)"},
     [](unsigned k, std::uint64_t n) {
       if (n < 4) return std::string("needs n >= 4");
       if (k < 4) return std::string("needs k >= 4 (K_{k-1} must contain a cycle-free bound)");
       return std::string{};
     },
     [](const ScenarioCell& cell, util::Rng& rng) {
       return from_ck_free(graph::CkFreeFamily::kCliqueBlowup, cell, rng);
     }},
};

const FamilyEntry* find_family(std::string_view name) {
  for (const FamilyEntry& entry : kFamilies) {
    if (entry.info.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::span<const FamilyInfo> known_families() {
  static const std::vector<FamilyInfo> infos = [] {
    std::vector<FamilyInfo> out;
    for (const FamilyEntry& entry : kFamilies) out.push_back(entry.info);
    return out;
  }();
  return infos;
}

namespace {

std::string validate_entry(const FamilyEntry* entry, std::string_view family, unsigned k,
                           std::uint64_t n) {
  if (entry == nullptr) {
    return "unknown graph family '" + std::string(family) + "' (known: " + known_family_list() +
           ")";
  }
  std::string err = entry->validate(k, n);
  if (!err.empty()) {
    err = "family '" + std::string(family) + "' with k=" + std::to_string(k) +
          " n=" + std::to_string(n) + ": " + err;
  }
  return err;
}

}  // namespace

std::string validate_family(std::string_view family, unsigned k, std::uint64_t n) {
  return validate_entry(find_family(family), family, k, n);
}

BuiltTopology build_topology(const ScenarioCell& cell, util::Rng& rng) {
  const FamilyEntry* entry = find_family(cell.family);
  const std::string err = validate_entry(entry, cell.family, cell.k, cell.n);
  if (!err.empty()) fail(err);
  return entry->build(cell, rng);
}

std::string_view ground_truth_name(GroundTruth t) noexcept {
  switch (t) {
    case GroundTruth::kCkFree: return "ck_free";
    case GroundTruth::kHasCk: return "has_ck";
    case GroundTruth::kFar: return "far";
    case GroundTruth::kUnknown: return "unknown";
  }
  return "unknown";
}

std::string_view seed_mode_name(SeedMode m) noexcept {
  return m == SeedMode::kSharedGraph ? "shared" : "fresh";
}

std::string AdversarySpec::name() const {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kUniform: return "uniform:" + json_double(rate);
    case Kind::kOneWay: return "oneway:" + json_double(rate);
    case Kind::kLate: return "late:" + json_double(rate);
  }
  return "none";
}

AdversarySpec parse_adversary(std::string_view token) {
  AdversarySpec spec;
  std::string_view name = token;
  std::string_view rate_str;
  const std::size_t colon = token.find(':');
  if (colon != std::string_view::npos) {
    name = token.substr(0, colon);
    rate_str = token.substr(colon + 1);
  }
  if (name == "none") {
    if (colon != std::string_view::npos) {
      fail("adversary 'none' takes no rate (got '" + std::string(token) + "')");
    }
    return spec;
  }
  if (name == "uniform") {
    spec.kind = AdversarySpec::Kind::kUniform;
  } else if (name == "oneway") {
    spec.kind = AdversarySpec::Kind::kOneWay;
  } else if (name == "late") {
    spec.kind = AdversarySpec::Kind::kLate;
  } else {
    fail("unknown adversary '" + std::string(name) + "' (known: none, uniform:R, oneway:R, late:R)");
  }
  if (rate_str.empty()) {
    fail("adversary '" + std::string(name) + "' needs a drop rate, e.g. " + std::string(name) +
         ":0.2");
  }
  spec.rate = parse_double("adversary", rate_str);
  if (spec.rate < 0.0 || spec.rate > 1.0) {
    fail("adversary drop rate must be in [0, 1], got " + std::string(rate_str));
  }
  return spec;
}

congest::Simulator::DropFilter make_drop_filter(const AdversarySpec& spec, std::uint64_t seed) {
  if (spec.kind == AdversarySpec::Kind::kNone || spec.rate <= 0.0) return nullptr;
  const AdversarySpec::Kind kind = spec.kind;
  const double rate = spec.rate;
  // Stateless per-(round, from, to) coin — deterministic, thread-safe, pure.
  return [kind, rate, seed](std::uint64_t round, graph::Vertex from, graph::Vertex to) {
    if (kind == AdversarySpec::Kind::kOneWay && from > to) return false;
    if (kind == AdversarySpec::Kind::kLate && round < 2) return false;
    std::uint64_t h = util::splitmix64(seed ^ util::splitmix64(round));
    h = util::splitmix64(h ^ from);
    h = util::splitmix64(h ^ to);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
  };
}

std::string ScenarioCell::key() const {
  std::string out = "family=" + family;
  out += " k=" + std::to_string(k);
  out += " eps=" + json_double(epsilon);
  out += " n=" + std::to_string(n);
  out += " adversary=" + adversary.name();
  DECYCLE_CHECK_MSG(model != nullptr, "scenario cell has no communication model");
  // Appended only for non-congest models so pre-model cells keep their
  // historical keys — cell seeds are content-addressed from this string and
  // the golden nightly matrix pins the congest cells byte-for-byte.
  if (model->kind() != congest::CommModelKind::kCongest) {
    out += " model=" + std::string(model->name());
  }
  DECYCLE_CHECK_MSG(algo != nullptr, "scenario cell has no detection algorithm");
  out += " algo=" + std::string(algo->name());
  return out;
}

std::uint64_t ScenarioCell::cell_seed() const {
  // Content-addressed over the canonical key via the engine's shared fold
  // (engine/lanes.hpp) — pinned by tests/lab/seed_stability_test.cpp.
  return engine::fold_seed(util::splitmix64(base_seed ^ 0x6c61625f63656c6cULL),  // "lab_cell"
                           key());
}

ScenarioSpec ScenarioSpec::parse(std::span<const std::pair<std::string, std::string>> pairs) {
  ScenarioSpec spec;
  std::set<std::string, std::less<>> seen;
  for (const auto& [key, value] : pairs) {
    // A silently overridden repeat would run a different matrix than half
    // the command line reads (cf. util::Args, which rejects duplicate
    // flags for the same reason — this guards the programmatic pair path).
    if (!seen.insert(key).second) {
      fail("scenario key '" + key +
           "' given twice (merge the values into one comma list, e.g. " + key + "=v1,v2)");
    }
    if (key == "family") {
      spec.families = split_commas(value);
      for (const std::string& name : spec.families) {
        if (find_family(name) == nullptr) {
          fail("unknown graph family '" + name + "' (known: " + known_family_list() + ")");
        }
      }
    } else if (key == "k") {
      spec.ks.clear();
      for (const std::uint64_t v : parse_u64_axis(key, value)) {
        if (v < 3) fail("scenario key 'k': cycle length must be >= 3, got " + std::to_string(v));
        if (v > 64) fail("scenario key 'k': cycle length must be <= 64, got " + std::to_string(v));
        spec.ks.push_back(static_cast<unsigned>(v));
      }
    } else if (key == "eps") {
      spec.epsilons = parse_double_axis(key, value);
      for (const double e : spec.epsilons) {
        if (!(e > 0.0 && e <= 1.0)) {
          fail("scenario key 'eps': epsilon must be in (0, 1], got " + json_double(e));
        }
      }
    } else if (key == "n") {
      spec.sizes = parse_u64_axis(key, value);
      for (const std::uint64_t v : spec.sizes) {
        if (v == 0) fail("scenario key 'n': size must be positive");
        // Builders take 32-bit Vertex; a silent narrowing would build a
        // different instance than the JSON record claims.
        if (v >= 0xFFFFFFFFULL) {
          fail("scenario key 'n': " + std::to_string(v) + " does not fit a 32-bit vertex id");
        }
      }
    } else if (key == "adversary") {
      spec.adversaries.clear();
      for (const std::string& token : split_commas(value)) {
        spec.adversaries.push_back(parse_adversary(token));
      }
    } else if (key == "model") {
      spec.models.clear();
      for (const std::string& token : split_commas(value)) {
        const congest::CommModel* model = congest::CommModel::find(token);
        if (model == nullptr) {
          fail("scenario key 'model': unknown communication model '" + token +
               "' (known: " + congest::CommModel::known_names() + ")");
        }
        spec.models.push_back(model);
      }
    } else if (key == "algo") {
      const core::DetectorRegistry& registry = core::DetectorRegistry::builtin();
      spec.algos.clear();
      for (const std::string& token : split_commas(value)) {
        const core::Detector* detector = registry.find(token);
        if (detector == nullptr) {
          fail("scenario key 'algo': unknown algorithm '" + token +
               "' (known: " + registry.known_names() + ")");
        }
        spec.algos.push_back(detector);
      }
    } else if (key == "trials") {
      spec.trials = parse_u64(key, value);
      if (spec.trials == 0) fail("scenario key 'trials': need at least one trial");
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "reps") {
      spec.repetitions = parse_u64(key, value);
    } else if (key == "budget") {
      spec.budget = core::threshold::BudgetSchedule::parse(value);
    } else if (key == "track") {
      spec.track = parse_u64(key, value);
    } else if (key == "seed_mode") {
      if (value == "shared") {
        spec.seed_mode = SeedMode::kSharedGraph;
      } else if (value == "fresh") {
        spec.seed_mode = SeedMode::kFreshGraph;
      } else {
        fail("scenario key 'seed_mode': expected shared or fresh, got '" + value + "'");
      }
    } else if (key == "delivery") {
      if (value == "arena") {
        spec.delivery = congest::DeliveryMode::kArena;
      } else if (value == "legacy") {
        spec.delivery = congest::DeliveryMode::kLegacy;
      } else {
        fail("scenario key 'delivery': expected arena or legacy, got '" + value + "'");
      }
    } else {
      fail("unknown scenario key '" + key +
           "' (axes: family, k, eps, n, adversary, model, algo; scalars: trials, seed, reps, "
           "seed_mode, delivery, budget, track)");
    }
  }
  return spec;
}

ScenarioSpec ScenarioSpec::parse_tokens(const std::vector<std::string>& tokens) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(tokens.size());
  for (const std::string& token : tokens) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      fail("scenario token '" + token + "' is not of the form key=value");
    }
    pairs.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return parse(pairs);
}

std::vector<ScenarioCell> ScenarioSpec::expand() const {
  std::vector<ScenarioCell> cells;
  for (const std::string& family : families) {
    for (const unsigned k : ks) {
      for (const double eps : epsilons) {
        for (const std::uint64_t n : sizes) {
          const std::string err = validate_family(family, k, n);
          if (!err.empty()) fail("scenario matrix contains an unbuildable cell: " + err);
          for (const AdversarySpec& adversary : adversaries) {
            for (const congest::CommModel* model : models) {
              for (const core::Detector* algo : algos) {
                const std::string aerr =
                    core::DetectorRegistry::builtin().validate_k(*algo, k);
                if (!aerr.empty()) {
                  fail("scenario matrix contains an unsupported cell: " + aerr);
                }
                const std::string merr =
                    core::DetectorRegistry::builtin().validate_model(*algo, *model);
                if (!merr.empty()) {
                  fail("scenario matrix contains an unsupported cell: " + merr);
                }
                ScenarioCell cell;
                cell.index = cells.size();
                cell.family = family;
                cell.k = k;
                cell.epsilon = eps;
                cell.n = n;
                cell.adversary = adversary;
                cell.model = model;
                cell.algo = algo;
                cell.seed_mode = seed_mode;
                cell.delivery = delivery;
                cell.trials = trials;
                cell.base_seed = seed;
                cell.repetitions = repetitions;
                cell.budget = budget;
                cell.track = track;
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace decycle::lab
