#include "lab/json.hpp"

#include <charconv>
#include <cmath>

#include "util/check.hpp"

namespace decycle::lab {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_double(double d) {
  if (!std::isfinite(d)) return "null";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  DECYCLE_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Frame::kObject) {
    DECYCLE_CHECK_MSG(have_key_, "JSON value inside an object needs a key() first");
    have_key_ = false;
  } else {
    if (need_comma_) raw(",");
  }
}

JsonWriter& JsonWriter::key(std::string_view k) {
  DECYCLE_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                    "JSON key() outside an object");
  DECYCLE_CHECK_MSG(!have_key_, "JSON key() twice without a value");
  if (need_comma_) raw(",");
  raw(json_quote(k));
  raw(":");
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DECYCLE_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                    "JSON end_object() without begin_object()");
  DECYCLE_CHECK_MSG(!have_key_, "JSON object closed with a dangling key");
  stack_.pop_back();
  raw("}");
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DECYCLE_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                    "JSON end_array() without begin_array()");
  stack_.pop_back();
  raw("]");
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  raw(json_quote(s));
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  raw(b ? "true" : "false");
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  raw(json_double(d));
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  before_value();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), u);
  DECYCLE_CHECK(ec == std::errc());
  raw(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  before_value();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), i);
  DECYCLE_CHECK(ec == std::errc());
  raw(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::str() && {
  DECYCLE_CHECK_MSG(stack_.empty(), "JSON document finished with open nesting");
  return std::move(out_);
}

}  // namespace decycle::lab
