#include "core/witness.hpp"

#include "graph/subgraph.hpp"
#include "util/check.hpp"

namespace decycle::core {

std::vector<graph::Vertex> validated_witness_vertices(const graph::Graph& g,
                                                      const graph::IdAssignment& ids,
                                                      std::span<const graph::NodeId> cycle_ids) {
  DECYCLE_CHECK_MSG(cycle_ids.size() >= 3, "witness cycle too short");
  std::vector<graph::Vertex> vertices;
  vertices.reserve(cycle_ids.size());
  for (const graph::NodeId id : cycle_ids) {
    DECYCLE_CHECK_MSG(ids.has_id(id), "witness references an unknown node ID");
    vertices.push_back(ids.vertex_of(id));
  }
  DECYCLE_CHECK_MSG(graph::validate_cycle(g, vertices),
                    "soundness violation: rejected without a real k-cycle witness");
  return vertices;
}

}  // namespace decycle::core
