#include "core/cycle_detector.hpp"

#include "core/wire.hpp"
#include "core/witness.hpp"
#include "util/check.hpp"

namespace decycle::core {

void EdgeCheckProgram::on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) {
  const std::uint64_t g = ctx.round();
  std::vector<IdSeq> to_send;
  if (g == 0) {
    to_send = state_.seed();
  } else if (g <= state_.half()) {
    std::vector<IdSeq> received;
    for (const congest::Envelope& env : inbox) {
      congest::MessageReader r(env.payload);
      auto seqs = read_sequences(r);
      received.insert(received.end(), std::make_move_iterator(seqs.begin()),
                      std::make_move_iterator(seqs.end()));
    }
    to_send = state_.step(g, std::move(received));
  }
  if (!to_send.empty()) {
    congest::MessageWriter w;
    write_sequences(w, to_send);
    ctx.send_all(w.finish());
  }
}

EdgeDetectionResult detect_cycle_through_edge(const graph::Graph& g,
                                              const graph::IdAssignment& ids, graph::Edge e,
                                              const EdgeDetectionOptions& options) {
  // Validate before paying the O(m) reverse-port-table construction.
  DECYCLE_CHECK_MSG(g.has_edge(e.first, e.second), "edge to check is not in the graph");
  congest::Simulator sim(g, ids);
  return detect_cycle_through_edge(sim, e, options);
}

EdgeDetectionResult detect_cycle_through_edge(congest::Simulator& sim, graph::Edge e,
                                              const EdgeDetectionOptions& options) {
  const graph::Graph& g = sim.graph();
  const graph::IdAssignment& ids = sim.ids();
  DECYCLE_CHECK_MSG(g.has_edge(e.first, e.second), "edge to check is not in the graph");
  const NodeId u = ids.id_of(e.first);
  const NodeId v = ids.id_of(e.second);
  DetectParams params = options.detect;

  sim.reset([&](graph::Vertex vert) {
    return std::make_unique<EdgeCheckProgram>(params, ids.id_of(vert), u, v);
  });

  congest::Simulator::Options sim_options;
  sim_options.pool = options.pool;
  sim_options.record_rounds = options.record_rounds;
  sim_options.drop = options.drop;
  sim_options.delivery = options.delivery;
  sim_options.max_rounds = params.k + 2;  // ⌊k/2⌋+1 rounds suffice; margin for safety
  EdgeDetectionResult result;
  result.stats = sim.run(sim_options);

  result.max_bundle_by_round.assign(params.k / 2 + 1, 0);
  sim.for_each_program<EdgeCheckProgram>([&](graph::Vertex vert, const EdgeCheckProgram& prog) {
    const EdgeDetectState& state = prog.state();
    result.overflow = result.overflow || state.overflowed();
    const auto counts = state.sent_counts();
    for (std::size_t round = 0; round < counts.size(); ++round) {
      result.max_bundle_sequences = std::max(result.max_bundle_sequences, counts[round]);
      result.max_bundle_by_round[round] = std::max(result.max_bundle_by_round[round], counts[round]);
    }
    if (!result.found && state.rejected()) {
      result.found = true;
      result.rejecting_vertex = vert;
      const auto cycle_ids = state.witness_cycle_ids();
      if (options.validate_witness) {
        result.witness = validated_witness_vertices(g, ids, cycle_ids);
      } else {
        for (const NodeId id : cycle_ids) result.witness.push_back(ids.vertex_of(id));
      }
    }
  });
  return result;
}

}  // namespace decycle::core
