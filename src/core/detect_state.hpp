/// \file detect_state.hpp
/// \brief Per-node state machine for Phase 2 of Algorithm 1 (one edge).
///
/// This class is the algorithm with the network abstracted away: the caller
/// feeds it the sequences received each round and broadcasts whatever it
/// returns. Both the single-edge checker (cycle_detector.hpp) and the full
/// tester (tester.hpp) drive instances of it; unit tests drive it directly
/// with hand-crafted traces (including the erratum counterexamples).
///
/// Round alignment (DESIGN.md §3.2): simulator round g carries sequences of
/// length g. seed() produces the round-0 broadcast ({(myid)} at the edge's
/// endpoints); step(g, received) handles 1 <= g <= half(): it prunes with
/// paper-round t = g+1 and returns the bundle to broadcast while g < half(),
/// and runs the final check (with the E-A/E-B corrections) at g == half().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/pruning.hpp"
#include "core/sequence.hpp"
#include "core/trace.hpp"

namespace decycle::core {

struct DetectParams {
  unsigned k = 5;
  PruningMode pruning = PruningMode::kRepresentative;
  bool fake_ids = true;              ///< Instruction 14 (ablation switch)
  std::size_t naive_cap = 1u << 18;  ///< family cap for PruningMode::kNaive
  TraceSink* trace = nullptr;        ///< optional execution trace (trace.hpp)
};

/// The rejecting pair of the final check. For odd k both members were
/// received this round; for even k `first` is one of the node's own last
/// sent sequences (ending in its ID) and `second` was received.
struct FinalPair {
  IdSeq first;
  IdSeq second;
};

class EdgeDetectState {
 public:
  EdgeDetectState(const DetectParams& params, NodeId my_id, NodeId u, NodeId v);

  [[nodiscard]] unsigned k() const noexcept { return params_.k; }
  /// ⌊k/2⌋ — the number of Phase-2 communication rounds.
  [[nodiscard]] unsigned half() const noexcept { return params_.k / 2; }
  [[nodiscard]] NodeId my_id() const noexcept { return my_id_; }
  [[nodiscard]] NodeId edge_u() const noexcept { return u_; }
  [[nodiscard]] NodeId edge_v() const noexcept { return v_; }

  /// Round-0 broadcast: {(my_id)} iff this node is an endpoint of the edge.
  [[nodiscard]] std::vector<IdSeq> seed();

  /// Processes the sequences received at simulator round \p g (all of length
  /// g) and returns the bundle to broadcast (empty at g == half(), where the
  /// final check runs instead). Feeding rounds out of order is allowed —
  /// a node that switches edges mid-phase starts at whatever round the new
  /// edge's traffic reaches it.
  [[nodiscard]] std::vector<IdSeq> step(std::uint64_t g, std::vector<IdSeq> received);

  [[nodiscard]] bool rejected() const noexcept { return pair_.has_value(); }
  [[nodiscard]] const std::optional<FinalPair>& witness_pair() const noexcept { return pair_; }

  /// The k IDs of the detected cycle, in cyclic order (empty if accepted).
  [[nodiscard]] std::vector<NodeId> witness_cycle_ids() const;

  [[nodiscard]] bool overflowed() const noexcept { return overflow_; }

  /// sent_counts()[g] = number of sequences broadcast at round g (Lemma 3
  /// instrumentation; index 0 = seed round).
  [[nodiscard]] std::span<const std::size_t> sent_counts() const noexcept {
    return sent_counts_;
  }

 private:
  void final_check(std::span<const IdSeq> received);
  void trace(TraceEvent::Kind kind, std::uint64_t round, const IdSeq& sequence) const;

  DetectParams params_;
  NodeId my_id_;
  NodeId u_;
  NodeId v_;
  std::unique_ptr<Pruner> pruner_;
  std::vector<IdSeq> last_sent_;  ///< S of the last pruning round (even-k check)
  std::optional<FinalPair> pair_;
  bool overflow_ = false;
  std::vector<std::size_t> sent_counts_;
};

}  // namespace decycle::core
