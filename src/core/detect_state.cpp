#include "core/detect_state.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace decycle::core {

EdgeDetectState::EdgeDetectState(const DetectParams& params, NodeId my_id, NodeId u, NodeId v)
    : params_(params), my_id_(my_id), u_(u), v_(v) {
  DECYCLE_CHECK_MSG(params.k >= 3, "k must be at least 3");
  DECYCLE_CHECK_MSG(u != v, "edge endpoints must differ");
  PrunerConfig cfg;
  cfg.k = params.k;
  cfg.fake_ids = params.fake_ids;
  cfg.naive_cap = params.naive_cap;
  pruner_ = make_pruner(params.pruning, cfg);
  sent_counts_.assign(half() + 1, 0);
}

void EdgeDetectState::trace(TraceEvent::Kind kind, std::uint64_t round,
                            const IdSeq& sequence) const {
  if (params_.trace != nullptr) {
    params_.trace->record(TraceEvent{kind, round, my_id_, sequence});
  }
}

std::vector<IdSeq> EdgeDetectState::seed() {
  std::vector<IdSeq> out;
  if (my_id_ == u_ || my_id_ == v_) {
    IdSeq self;
    self.push_back(my_id_);
    trace(TraceEvent::Kind::kSeed, 0, self);
    out.push_back(std::move(self));
    sent_counts_[0] = 1;
  }
  return out;
}

std::vector<IdSeq> EdgeDetectState::step(std::uint64_t g, std::vector<IdSeq> received) {
  DECYCLE_CHECK_MSG(g >= 1 && g <= half(), "phase round out of range");

  // Instruction 11-12: R is a *set* of sequences of length g, with every
  // sequence containing this node's own ID removed.
  std::erase_if(received, [&](const IdSeq& s) { return seq_contains(s, my_id_); });
  for (const IdSeq& s : received) {
    DECYCLE_CHECK_MSG(s.size() == g, "received sequence length does not match round");
  }
  canonicalize(received);
  for (const IdSeq& s : received) trace(TraceEvent::Kind::kReceive, g, s);

  if (g == half()) {
    final_check(received);
    if (pair_) {
      const auto cycle = witness_cycle_ids();
      trace(TraceEvent::Kind::kReject, g, IdSeq(std::span<const NodeId>(cycle)));
    }
    return {};
  }
  if (received.empty()) return {};

  const auto t = static_cast<unsigned>(g + 1);  // paper round index
  Pruner::Result selected = pruner_->select(received, t);
  overflow_ = overflow_ || selected.overflow;
  if (params_.trace != nullptr) {
    for (const IdSeq& s : received) {
      const bool kept = std::find(selected.accepted.begin(), selected.accepted.end(), s) !=
                        selected.accepted.end();
      trace(kept ? TraceEvent::Kind::kKeep : TraceEvent::Kind::kDrop, g, s);
    }
  }

  // Instruction 24: append own ID to every kept sequence.
  std::vector<IdSeq> out = std::move(selected.accepted);
  for (IdSeq& s : out) s.push_back(my_id_);
  for (const IdSeq& s : out) trace(TraceEvent::Kind::kSend, g, s);

  if (params_.k % 2 == 0 && g == half() - 1) {
    last_sent_ = out;  // S feeds the even-k final check (erratum E-A)
  }
  sent_counts_[g] = std::max(sent_counts_[g], out.size());
  return out;
}

void EdgeDetectState::final_check(std::span<const IdSeq> received) {
  // Erratum E-B (DESIGN.md §2): received sequences containing my own ID were
  // already filtered by step(); the pair structure below (odd: two received;
  // even: one own S member x one received) is what Lemma 2's proof actually
  // certifies, and each hit reconstructs a genuine k-cycle.
  const unsigned k = params_.k;
  if (k % 2 == 1) {
    for (std::size_t i = 0; i < received.size() && !pair_; ++i) {
      for (std::size_t j = i + 1; j < received.size() && !pair_; ++j) {
        if (!seqs_disjoint(received[i], received[j])) continue;
        DECYCLE_CHECK(union_size(received[i], received[j], my_id_) == k);
        pair_ = FinalPair{received[i], received[j]};
      }
    }
    return;
  }
  for (const IdSeq& own : last_sent_) {
    for (const IdSeq& recv : received) {
      if (!seqs_disjoint(own, recv)) continue;
      DECYCLE_CHECK(union_size(own, recv, my_id_) == k);
      pair_ = FinalPair{own, recv};
      return;
    }
  }
}

std::vector<NodeId> EdgeDetectState::witness_cycle_ids() const {
  std::vector<NodeId> cycle;
  if (!pair_) return cycle;
  const unsigned k = params_.k;
  cycle.reserve(k);
  // Odd k: first-path, this node, reversed second-path.
  // Even k: first already ends with this node's ID; append reversed second.
  for (const NodeId id : pair_->first) cycle.push_back(id);
  if (k % 2 == 1) cycle.push_back(my_id_);
  for (std::size_t i = pair_->second.size(); i > 0; --i) {
    cycle.push_back(pair_->second[i - 1]);
  }
  DECYCLE_CHECK(cycle.size() == k);
  return cycle;
}

}  // namespace decycle::core
