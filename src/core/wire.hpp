/// \file wire.hpp
/// \brief Serialization of sequence bundles (shared by detector and tester).
///
/// Bundle layout: varint count, then per sequence varint length followed by
/// the IDs. Fake IDs never travel (Instruction 20 keeps S to existing IDs),
/// so all wire IDs are plain unsigned values.
#pragma once

#include <vector>

#include "congest/message.hpp"
#include "core/sequence.hpp"

namespace decycle::core {

inline void write_sequences(congest::MessageWriter& w, std::span<const IdSeq> seqs) {
  w.put_u64(seqs.size());
  for (const IdSeq& s : seqs) {
    w.put_u64(s.size());
    for (const NodeId id : s) w.put_u64(id);
  }
}

inline std::vector<IdSeq> read_sequences(congest::MessageReader& r) {
  const std::uint64_t count = r.get_u64();
  std::vector<IdSeq> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.get_u64();
    IdSeq s;
    for (std::uint64_t j = 0; j < len; ++j) s.push_back(r.get_u64());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace decycle::core
