/// \file cycle_detector.hpp
/// \brief The deterministic single-edge checker: "is there a Ck through e?"
///
/// This is Phase 2 run in isolation — the subroutine Theorem 1's reduction
/// produces. It is fully deterministic and does not rely on ε-farness: if
/// any k-cycle passes through the given edge, some node rejects (Lemma 2),
/// and every rejection carries a validated witness cycle. Experiment T4
/// sweeps this checker against the exact oracle over every edge of random
/// graphs.
#pragma once

#include <optional>

#include "congest/simulator.hpp"
#include "core/detect_state.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace decycle::core {

/// NodeProgram running EdgeDetectState for one fixed edge. All nodes know
/// (u, v) up front — the dissemination of the chosen edge is Phase 1's job
/// and is handled by the full tester.
class EdgeCheckProgram final : public congest::NodeProgram {
 public:
  EdgeCheckProgram(const DetectParams& params, NodeId my_id, NodeId u, NodeId v)
      : state_(params, my_id, u, v) {}

  void on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) override;

  [[nodiscard]] const EdgeDetectState& state() const noexcept { return state_; }

 private:
  EdgeDetectState state_;
};

struct EdgeDetectionResult {
  bool found = false;
  std::vector<graph::Vertex> witness;  ///< validated k-cycle (empty if !found)
  graph::Vertex rejecting_vertex = graph::kInvalidVertex;
  bool overflow = false;               ///< naive pruning hit its cap
  std::size_t max_bundle_sequences = 0;  ///< max |S| in any broadcast (Lemma 3)
  /// max |S| per phase round g (index 0 = seeds), across all nodes.
  std::vector<std::size_t> max_bundle_by_round;
  congest::RunStats stats;
};

struct EdgeDetectionOptions {
  DetectParams detect;
  util::ThreadPool* pool = nullptr;
  bool record_rounds = false;
  bool validate_witness = true;
  congest::Simulator::DropFilter drop;  ///< optional message-loss adversary
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
};

/// Runs the checker for edge \p e on the CONGEST simulator and aggregates
/// the per-node verdicts. \p e must be an edge of \p g.
[[nodiscard]] EdgeDetectionResult detect_cycle_through_edge(const graph::Graph& g,
                                                            const graph::IdAssignment& ids,
                                                            graph::Edge e,
                                                            const EdgeDetectionOptions& options);

/// Same, but on an existing Simulator for the topology: resets it with
/// checker programs and runs. Sweeping many edges of one graph (T4-style
/// scans, lab edge-checker cells) reuses the CSR table and arenas; the
/// result is bit-identical to the fresh-build overload.
[[nodiscard]] EdgeDetectionResult detect_cycle_through_edge(congest::Simulator& sim, graph::Edge e,
                                                            const EdgeDetectionOptions& options);

}  // namespace decycle::core
