/// \file phase1.hpp
/// \brief Phase 1 of the tester: random edge ranks and minimum selection.
///
/// Every edge is owned by its smaller-ID endpoint; the owner draws a uniform
/// rank and ships it across the edge (one round, one O(log n)-bit message).
/// Each node then works for its minimum-rank incident edge, and the
/// prioritized-search rule (smaller (rank, u, v) wins) arbitrates between
/// concurrent executions. Lemma 5: with ranks from [1, m²] the minimum is
/// unique with probability >= 1/e² — measured by experiment T6.
///
/// The distributed implementation cannot know m, so it draws from
/// [1, R(n)] with R(n) = min(n⁴, 2⁶²) >= m²; a larger range only lowers the
/// collision probability, so Lemma 5's bound still applies (and the rank
/// still fits in O(log n) bits).
#pragma once

#include <cstdint>

#include "core/sequence.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace decycle::core {

/// Identity of a Phase-2 execution: the edge being checked plus its rank.
/// Ordering is (rank, u, v) lexicographic — the paper's tie-breaking "based
/// on the ID of extremities". Smaller wins.
struct EdgePriority {
  std::uint64_t rank = ~std::uint64_t{0};
  NodeId u = 0;  ///< smaller endpoint ID
  NodeId v = 0;  ///< larger endpoint ID

  friend bool operator==(const EdgePriority&, const EdgePriority&) = default;
  friend auto operator<=>(const EdgePriority& a, const EdgePriority& b) = default;
};

/// Rank range used by the distributed tester: min(n⁴, 2⁶²), saturating.
[[nodiscard]] std::uint64_t rank_range_for(std::uint64_t n) noexcept;

/// The "no rank received" sentinel stored per port between the rank round
/// and the selection round. draw_rank can never produce it (it returns
/// values >= 1 by construction), so a legitimately drawn minimum rank is
/// always distinguishable from a lost rank message. Regression-pinned in
/// tests/core/phase1_test.cpp and tests/core/tester_test.cpp.
inline constexpr std::uint64_t kRankMissing = 0;

/// Uniform rank in [1, range] — strictly greater than kRankMissing.
[[nodiscard]] std::uint64_t draw_rank(util::Rng& rng, std::uint64_t range) noexcept;

/// One Lemma 5 trial: draws m ranks from [1, m²] and reports whether the
/// minimum is unique (experiment T6).
[[nodiscard]] bool unique_min_rank_trial(std::size_t m, util::Rng& rng);

/// ⌈e² · ln 3 / ε⌉ — the amplification count from the proof of Theorem 1.
[[nodiscard]] std::size_t recommended_repetitions(double epsilon) noexcept;

}  // namespace decycle::core
