#include "core/sequence.hpp"

#include <algorithm>

namespace decycle::core {

bool seqs_disjoint(const IdSeq& a, const IdSeq& b) noexcept {
  for (const NodeId x : a) {
    if (b.contains(x)) return false;
  }
  return true;
}

std::size_t union_size(const IdSeq& a, const IdSeq& b, NodeId extra) {
  util::SmallVector<NodeId, 17> all;
  for (const NodeId x : a) all.push_back(x);
  for (const NodeId x : b) all.push_back(x);
  all.push_back(extra);
  std::sort(all.begin(), all.end());
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i == 0 || all[i] != all[i - 1]) ++distinct;
  }
  return distinct;
}

void canonicalize(std::vector<IdSeq>& seqs) {
  std::sort(seqs.begin(), seqs.end());
  seqs.erase(std::unique(seqs.begin(), seqs.end()), seqs.end());
}

std::string to_string(const IdSeq& seq) {
  std::string out = "(";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(seq[i]);
  }
  out += ')';
  return out;
}

}  // namespace decycle::core
