#include "core/census.hpp"

#include "util/check.hpp"

namespace decycle::core {

CensusResult cycle_census(const graph::Graph& g, const graph::IdAssignment& ids,
                          const CensusOptions& options) {
  DECYCLE_CHECK_MSG(options.k_min >= 3, "census k_min must be at least 3");
  DECYCLE_CHECK_MSG(options.k_min <= options.k_max, "census range is empty");

  CensusResult out;
  out.entries.reserve(options.k_max - options.k_min + 1);
  for (unsigned k = options.k_min; k <= options.k_max; ++k) {
    TesterOptions topt;
    topt.k = k;
    topt.epsilon = options.epsilon;
    topt.repetitions = options.repetitions;
    topt.detect = options.detect;
    topt.pool = options.pool;
    topt.seed = util::splitmix64(options.seed ^ util::splitmix64(k));
    const TestVerdict verdict = test_ck_freeness(g, ids, topt);

    CensusEntry entry;
    entry.k = k;
    entry.accepted = verdict.accepted;
    entry.witness = verdict.witness;
    entry.rounds = verdict.stats.rounds_executed;
    entry.messages = verdict.stats.total_messages;
    entry.bits = verdict.stats.total_bits;
    out.total_rounds += entry.rounds;
    out.total_messages += entry.messages;
    out.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace decycle::core
