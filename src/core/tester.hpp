/// \file tester.hpp
/// \brief The complete distributed property-testing algorithm of Theorem 1.
///
/// Protocol per repetition (rep_len = ⌊k/2⌋ + 2 rounds):
///   phase 0: each edge's owner (smaller-ID endpoint) draws a rank and sends
///            it across the edge;
///   phase 1: every node selects its minimum-(rank,u,v) incident edge and
///            broadcasts the Phase-2 seed for it;
///   phase 2+g (g = 1..⌊k/2⌋): Phase-2 traffic, tagged with the edge's
///            priority. A node serves one edge at a time: messages for a
///            lower-priority edge are discarded, a higher-priority edge takes
///            over (fresh Phase-2 state) — the paper's prioritized search.
///            Since each node sends for at most one edge per round, no link
///            ever carries two executions in one direction simultaneously.
///
/// ⌈e²·ln3/ε⌉ repetitions run back-to-back with fresh ranks (Theorem 1's
/// amplification); a node's final output is reject iff any repetition's
/// final check fired. Every rejection is validated against the graph — the
/// tester cannot report a cycle that does not exist (1-sided error).
#pragma once

#include <cstdint>
#include <optional>

#include "congest/simulator.hpp"
#include "core/detect_state.hpp"
#include "core/phase1.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace decycle::core {

/// The per-node program implementing the full tester.
class TesterProgram final : public congest::NodeProgram {
 public:
  TesterProgram(const DetectParams& params, std::size_t repetitions, std::uint64_t seed,
                std::uint64_t n, NodeId my_id);

  void on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) override;

  [[nodiscard]] bool rejected() const noexcept { return !witness_ids_.empty(); }
  [[nodiscard]] const std::vector<NodeId>& witness_ids() const noexcept { return witness_ids_; }
  [[nodiscard]] std::size_t rejecting_repetition() const noexcept { return reject_rep_; }
  [[nodiscard]] bool overflowed() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t switches() const noexcept { return switches_; }
  [[nodiscard]] std::size_t discarded_messages() const noexcept { return discarded_; }
  /// max bundle size broadcast at phase round g (Lemma 3 instrumentation).
  [[nodiscard]] std::span<const std::size_t> max_sent_by_round() const noexcept {
    return max_sent_by_round_;
  }

 private:
  void start_repetition(congest::Context& ctx, std::size_t rep);
  void select_and_seed(congest::Context& ctx, std::span<const congest::Envelope> inbox);
  void phase2_round(congest::Context& ctx, std::span<const congest::Envelope> inbox,
                    std::uint64_t g);
  void broadcast_sequences(congest::Context& ctx, std::span<const IdSeq> seqs);

  DetectParams params_;
  std::size_t repetitions_;
  std::uint64_t seed_;
  std::uint64_t rank_range_;
  NodeId my_id_;
  unsigned half_;
  std::uint64_t rep_len_;

  // Per-repetition state.
  std::vector<std::uint64_t> port_rank_;       ///< rank per incident edge (by port)
  std::optional<EdgePriority> current_;        ///< edge this node currently serves
  std::optional<EdgeDetectState> state_;

  // Outputs / instrumentation.
  std::vector<NodeId> witness_ids_;
  std::size_t reject_rep_ = 0;
  bool overflow_ = false;
  std::size_t switches_ = 0;
  std::size_t discarded_ = 0;
  std::vector<std::size_t> max_sent_by_round_;
};

struct TesterOptions {
  unsigned k = 5;
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  /// 0 = use recommended_repetitions(epsilon).
  std::size_t repetitions = 0;
  DetectParams detect;  ///< k field is overwritten with TesterOptions::k
  bool validate_witnesses = true;
  bool record_rounds = false;
  util::ThreadPool* pool = nullptr;
  congest::Simulator::DropFilter drop;  ///< optional message-loss adversary
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
};

struct TestVerdict {
  bool accepted = true;                 ///< all nodes accepted in all repetitions
  std::size_t rejecting_nodes = 0;
  std::vector<graph::Vertex> witness;   ///< validated cycle when rejected
  std::size_t repetitions = 0;
  bool overflow = false;
  /// True when the run hit the internal max_rounds cap instead of
  /// quiescing — i.e. the final repetition's Phase 2 was cut short and the
  /// verdict under-reports detections. The cap is derived from
  /// (repetitions, k) with slack, so this firing indicates a bound bug;
  /// tests assert it stays false at the boundary (reps = 1, large k).
  bool truncated = false;
  std::size_t max_bundle_sequences = 0;
  std::size_t total_switches = 0;
  std::size_t total_discarded = 0;
  congest::RunStats stats;
};

/// Runs the full tester on the simulator and aggregates node outputs.
[[nodiscard]] TestVerdict test_ck_freeness(const graph::Graph& g, const graph::IdAssignment& ids,
                                           const TesterOptions& options);

/// Same, but on an existing Simulator for \p sim's topology: resets it with
/// tester programs and runs. Reusing one Simulator across trials on a fixed
/// topology (estimator workloads) skips the per-trial CSR table build and
/// arena warm-up; the verdict is bit-identical to the fresh-build overload.
[[nodiscard]] TestVerdict test_ck_freeness(congest::Simulator& sim, const TesterOptions& options);

}  // namespace decycle::core
