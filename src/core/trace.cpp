#include "core/trace.hpp"

#include <algorithm>

namespace decycle::core {

const char* trace_kind_name(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kSeed: return "seed";
    case TraceEvent::Kind::kReceive: return "recv";
    case TraceEvent::Kind::kKeep: return "keep";
    case TraceEvent::Kind::kDrop: return "drop";
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kReject: return "REJECT";
  }
  return "?";
}

namespace {

bool event_order(const TraceEvent& a, const TraceEvent& b) {
  if (a.round != b.round) return a.round < b.round;
  if (a.node != b.node) return a.node < b.node;
  if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  return a.sequence < b.sequence;
}

}  // namespace

void TraceSink::record(TraceEvent event) {
  const std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::events() const {
  const std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out = events_;
  std::stable_sort(out.begin(), out.end(), event_order);
  return out;
}

std::size_t TraceSink::count(TraceEvent::Kind kind) const {
  const std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++total;
  }
  return total;
}

std::vector<TraceEvent> TraceSink::events_for(NodeId node) const {
  auto all = events();
  std::erase_if(all, [node](const TraceEvent& e) { return e.node != node; });
  return all;
}

std::string TraceSink::render() const {
  std::string out;
  for (const auto& e : events()) {
    out += "round " + std::to_string(e.round) + ": node " + std::to_string(e.node) + ' ' +
           trace_kind_name(e.kind) + ' ' + to_string(e.sequence) + '\n';
  }
  return out;
}

void TraceSink::clear() {
  const std::lock_guard lock(mutex_);
  events_.clear();
}

}  // namespace decycle::core
