/// \file representative_family.hpp
/// \brief The Erdős–Hajnal–Moon representative-family computation.
///
/// The paper (§1.2) observes that its pruning technique is a distributed
/// implementation of a 1964 lemma of Erdős, Hajnal and Moon: for any family
/// F of sets of size at most p over a universe V and any q, there is a
/// subfamily F̂ ⊆ F with |F̂| <= C(p+q, p) such that for every C ⊆ V with
/// |C| <= q, if some L ∈ F avoids C then some L̂ ∈ F̂ avoids C.
///
/// This module exposes the computation centrally (used directly in tests and
/// by the sequential longest-path-style applications the lemma is known for)
/// and provides the bounded hitting-set search that both it and the
/// distributed pruner (pruning.cpp) are built on. The greedy construction
/// here accepts L iff the previously accepted sets admit a hitting set of
/// size <= q avoiding L — exactly the surviving-𝒳 criterion of Algorithm 1,
/// so the distributed pruner and this module cannot drift apart.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/sequence.hpp"

namespace decycle::core {

/// True iff there exists H with |H| <= budget, H ∩ avoid = ∅, and
/// H ∩ F_i != ∅ for every F_i in \p family. Complete bounded-depth
/// branch-and-bound on the first un-hit set; O(p^budget · |family|) worst
/// case with p = max set size.
[[nodiscard]] bool exists_bounded_hitting_set(std::span<const IdSeq> family, const IdSeq& avoid,
                                              unsigned budget);

/// Greedy q-representative subfamily: returns indices into \p family (in
/// input order) forming F̂. Guarantees the representation property above; the
/// size is bounded by (q+1)^p (Lemma 3's argument), which exceeds the
/// optimal C(p+q, p) but is achieved constructively in one pass.
[[nodiscard]] std::vector<std::size_t> representative_subfamily(std::span<const IdSeq> family,
                                                                unsigned q);

/// The Erdős–Hajnal–Moon cardinality bound C(p+q, p).
[[nodiscard]] double ehm_bound(unsigned p, unsigned q) noexcept;

}  // namespace decycle::core
