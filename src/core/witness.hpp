/// \file witness.hpp
/// \brief Witness-cycle validation: 1-sided error as a runtime invariant.
///
/// The paper's tester is 1-sided: a rejection must imply a real k-cycle. The
/// harness enforces this mechanically — every rejecting node's witness pair
/// is assembled into an explicit cycle and checked edge-by-edge against the
/// input graph. A failed validation throws, so a soundness bug can never
/// masquerade as a successful detection in any test or experiment table.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace decycle::core {

/// Maps a cyclic ID sequence onto vertices and verifies it is a genuine
/// simple cycle of g: k distinct vertices, all k closing edges present.
/// Throws util::CheckError when the witness is bogus.
[[nodiscard]] std::vector<graph::Vertex> validated_witness_vertices(
    const graph::Graph& g, const graph::IdAssignment& ids, std::span<const graph::NodeId> cycle_ids);

}  // namespace decycle::core
