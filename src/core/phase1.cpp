#include "core/phase1.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace decycle::core {

std::uint64_t rank_range_for(std::uint64_t n) noexcept {
  constexpr std::uint64_t kCap = std::uint64_t{1} << 62;
  const std::uint64_t n2 = n >= (std::uint64_t{1} << 31) ? kCap : n * n;
  if (n2 >= (std::uint64_t{1} << 31)) return kCap;
  return std::max<std::uint64_t>(4, n2 * n2);
}

std::uint64_t draw_rank(util::Rng& rng, std::uint64_t range) noexcept {
  // Written as 1 + [0, range) rather than next_in(1, range) so the ">= 1"
  // post-condition (no collision with kRankMissing) is visible in the
  // expression itself; the two forms draw identical values.
  return 1 + rng.next_below(range);
}

bool unique_min_rank_trial(std::size_t m, util::Rng& rng) {
  DECYCLE_CHECK_MSG(m >= 1, "need at least one edge");
  const std::uint64_t range = static_cast<std::uint64_t>(m) * m;  // paper: [1, m²]
  std::uint64_t best = ~std::uint64_t{0};
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t r = draw_rank(rng, range);
    if (r < best) {
      best = r;
      best_count = 1;
    } else if (r == best) {
      ++best_count;
    }
  }
  return best_count == 1;
}

std::size_t recommended_repetitions(double epsilon) noexcept {
  if (epsilon <= 0.0 || epsilon >= 1.0) epsilon = std::clamp(epsilon, 1e-6, 1.0);
  const double e2 = std::exp(2.0);
  const double reps = std::ceil(e2 * std::log(3.0) / epsilon);
  return static_cast<std::size_t>(reps);
}

}  // namespace decycle::core
