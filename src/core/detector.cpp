#include "core/detector.hpp"

#include <utility>

#include "baselines/c4_tester.hpp"
#include "baselines/clique_hcycle.hpp"
#include "baselines/color_coding.hpp"
#include "baselines/triangle_chs.hpp"
#include "core/cycle_detector.hpp"
#include "core/tester.hpp"
#include "core/threshold/threshold_tester.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::core {

namespace {

/// Seed-stream tag for the per-run target edge of draws_edge detectors.
/// Identical to the stream the lab runner historically used, so registry
/// dispatch reproduces pre-registry edge_checker cells byte-for-byte.
constexpr std::uint64_t kEdgeTag = 0x656467655f5f5f31ULL;  // "edge___1"

// --- FO17 tester (Theorem 1) ----------------------------------------------

class TesterDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "tester"; }

  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    // max_k = 64 is the historical scenario-axis bound (wire-format IdSeqs
    // and Phase-2 state grow with k; 64 keeps them comfortably bounded),
    // not an algorithmic limit — the same cap the k axis always enforced.
    static constexpr DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 64,
        .uses_epsilon = true,
        .summary = "Theorem-1 amplified property tester (FO17): ⌈e²·ln3/ε⌉ "
                   "prioritized Phase-2 repetitions"};
    return caps;
  }

  [[nodiscard]] std::span<const CounterDef> counters() const noexcept override {
    // Aggregated but not emitted: pre-registry tester cells carry no
    // counter fields and their JSONL bytes are pinned by golden CI.
    static constexpr CounterDef defs[] = {
        {"switches_total", CounterKind::kSum, /*emit=*/false},
        {"discarded_total", CounterKind::kSum, /*emit=*/false},
    };
    return defs;
  }

  [[nodiscard]] Verdict run(congest::Simulator& sim,
                            const DetectorOptions& options) const override {
    TesterOptions topt;
    topt.k = options.k;
    topt.epsilon = options.epsilon;
    topt.seed = options.seed;
    topt.repetitions = options.repetitions;
    topt.validate_witnesses = options.validate_witnesses;
    topt.pool = options.pool;
    topt.drop = options.drop;
    topt.delivery = options.delivery;
    TestVerdict tv = test_ck_freeness(sim, topt);
    Verdict v;
    v.accepted = tv.accepted;
    v.rejecting_nodes = tv.rejecting_nodes;
    v.witness = std::move(tv.witness);
    v.repetitions = tv.repetitions;
    v.overflow = tv.overflow;
    v.truncated = tv.truncated;
    v.max_bundle_sequences = tv.max_bundle_sequences;
    v.stats = std::move(tv.stats);
    v.counters = {tv.total_switches, tv.total_discarded};
    return v;
  }
};

// --- Deterministic single-edge checker (Phase 2 in isolation) -------------

class EdgeCheckerDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "edge_checker"; }

  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    static constexpr DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 64,
        .has_repetitions = false,
        .draws_edge = true,
        .summary = "deterministic single-edge checker (Phase 2 in isolation): "
                   "is there a Ck through the target edge?"};
    return caps;
  }

  [[nodiscard]] Verdict run(congest::Simulator& sim,
                            const DetectorOptions& options) const override {
    const graph::Graph& g = sim.graph();
    graph::Edge target;
    if (options.edge.has_value()) {
      target = *options.edge;
    } else {
      DECYCLE_CHECK_MSG(g.num_edges() > 0,
                        "edge_checker ran on an edgeless instance — nothing to draw a "
                        "target edge from");
      util::Rng erng(util::splitmix64(options.seed ^ kEdgeTag));
      target = g.edge(static_cast<graph::EdgeId>(erng.next_below(g.num_edges())));
    }
    EdgeDetectionOptions eopt;
    eopt.detect.k = options.k;
    eopt.validate_witness = options.validate_witnesses;
    eopt.pool = options.pool;
    eopt.drop = options.drop;
    eopt.delivery = options.delivery;
    EdgeDetectionResult result = detect_cycle_through_edge(sim, target, eopt);
    Verdict v;
    v.accepted = !result.found;
    v.rejecting_nodes = result.rejecting_vertex != graph::kInvalidVertex ? 1 : 0;
    v.witness = std::move(result.witness);
    v.overflow = result.overflow;
    v.truncated = !result.stats.halted;
    v.max_bundle_sequences = result.max_bundle_sequences;
    v.stats = std::move(result.stats);
    return v;
  }
};

// --- Threshold family (all edges at once, explicit congestion caps) -------

class ThresholdDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "threshold"; }

  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    static constexpr DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 64,
        .uses_threshold_knobs = true,
        .summary = "threshold family: Phase 2 for every edge in one sweep, congestion "
                   "bounded by budget/track caps"};
    return caps;
  }

  [[nodiscard]] std::span<const CounterDef> counters() const noexcept override {
    // Names and order are the JSONL contract for algo=threshold cells.
    static constexpr CounterDef defs[] = {
        {"seeded_total", CounterKind::kSum},
        {"seed_capped_total", CounterKind::kSum},
        {"evictions_total", CounterKind::kSum},
        {"discarded_seqs_total", CounterKind::kSum},
        {"budget_truncated_total", CounterKind::kSum},
        {"peak_tracked", CounterKind::kMax},
    };
    return defs;
  }

  [[nodiscard]] Verdict run(congest::Simulator& sim,
                            const DetectorOptions& options) const override {
    threshold::ThresholdOptions topt;
    topt.k = options.k;
    topt.seed = options.seed;
    topt.sweeps = options.repetitions != 0 ? options.repetitions : 1;
    topt.budget = options.budget;
    topt.max_tracked = options.max_tracked;
    topt.validate_witnesses = options.validate_witnesses;
    topt.pool = options.pool;
    topt.drop = options.drop;
    topt.delivery = options.delivery;
    threshold::ThresholdVerdict tv = threshold::test_ck_freeness_threshold(sim, topt);
    Verdict v;
    v.accepted = tv.verdict.accepted;
    v.rejecting_nodes = tv.verdict.rejecting_nodes;
    v.witness = std::move(tv.verdict.witness);
    v.repetitions = tv.verdict.repetitions;
    v.overflow = tv.verdict.overflow;
    v.truncated = tv.verdict.truncated;
    v.max_bundle_sequences = tv.verdict.max_bundle_sequences;
    v.stats = std::move(tv.verdict.stats);
    v.counters = {tv.threshold.seeded_executions, tv.threshold.seed_capped,
                  tv.threshold.evictions,         tv.threshold.discarded_sequences,
                  tv.threshold.budget_truncated,  tv.threshold.peak_tracked};
    return v;
  }
};

// --- FRST-style C4 tester (DISC 2016, reference [20]) ---------------------

class C4Detector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "c4"; }

  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    static constexpr DetectorCapabilities caps{
        .min_k = 4,
        .max_k = 4,
        .summary = "FRST-style C4 tester [20]: random cherry sampling; the technique "
                   "provably fails for k >= 5"};
    return caps;
  }

  [[nodiscard]] Verdict run(congest::Simulator& sim,
                            const DetectorOptions& options) const override {
    DECYCLE_CHECK_MSG(options.k == 4,
                      "detector 'c4' supports k=4 only, got k=" + std::to_string(options.k));
    baselines::C4TesterOptions bopt;
    bopt.iterations = options.repetitions != 0 ? options.repetitions : bopt.iterations;
    bopt.seed = options.seed;
    bopt.validate_witnesses = options.validate_witnesses;
    bopt.drop = options.drop;
    bopt.delivery = options.delivery;
    baselines::C4Verdict bv = baselines::test_c4_freeness_frst(sim, bopt);
    Verdict v;
    v.accepted = bv.accepted;
    v.rejecting_nodes = bv.rejecting_nodes;
    v.witness = std::move(bv.witness);
    v.repetitions = bopt.iterations;
    v.stats = std::move(bv.stats);
    return v;
  }
};

// --- CHS-style triangle tester (DISC 2016, reference [7]) -----------------

class TriangleDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "triangle"; }

  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    static constexpr DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 3,
        .summary = "CHS-style triangle tester [7]: random neighbor-pair adjacency "
                   "queries against the KT1 neighbor table"};
    return caps;
  }

  [[nodiscard]] Verdict run(congest::Simulator& sim,
                            const DetectorOptions& options) const override {
    DECYCLE_CHECK_MSG(options.k == 3, "detector 'triangle' supports k=3 only, got k=" +
                                          std::to_string(options.k));
    baselines::TriangleTesterOptions bopt;
    bopt.iterations = options.repetitions != 0 ? options.repetitions : bopt.iterations;
    bopt.seed = options.seed;
    bopt.validate_witnesses = options.validate_witnesses;
    bopt.drop = options.drop;
    bopt.delivery = options.delivery;
    baselines::TriangleVerdict bv = baselines::test_triangle_freeness_chs(sim, bopt);
    Verdict v;
    v.accepted = bv.accepted;
    v.rejecting_nodes = bv.rejecting_nodes;
    v.witness = std::move(bv.witness);
    v.repetitions = bopt.iterations;
    v.stats = std::move(bv.stats);
    return v;
  }
};

// --- Centralized color coding (Alon–Yuster–Zwick) -------------------------

class ColorCodingDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "color_coding"; }

  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    // max_k is a lab-practicality bound: auto iteration counts grow like
    // e^k, so k=8 already means ~3000 colorings of an O(m·2^k) DP.
    static constexpr DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 8,
        .distributed = false,
        // Reads sim.graph() only, so any communication model is fine.
        .models = congest::kModelAll,
        .summary = "centralized color-coding reference (Alon–Yuster–Zwick): ⌈e^k·ln3⌉ "
                   "random colorings, colorful-cycle DP"};
    return caps;
  }

  [[nodiscard]] std::span<const CounterDef> counters() const noexcept override {
    static constexpr CounterDef defs[] = {
        {"iterations_total", CounterKind::kSum},
    };
    return defs;
  }

  [[nodiscard]] Verdict run(congest::Simulator& sim,
                            const DetectorOptions& options) const override {
    baselines::ColorCodingOptions copt;
    copt.iterations = options.repetitions;
    copt.seed = options.seed;
    baselines::ColorCodingResult result =
        baselines::find_cycle_color_coding(sim.graph(), options.k, copt);
    Verdict v;
    v.accepted = !result.found;
    v.rejecting_nodes = result.found ? 1 : 0;
    v.witness = std::move(result.witness);
    v.repetitions = result.iterations_budget;
    v.counters = {result.iterations_used};
    return v;
  }
};

// --- Cycle-count-adaptive clique h-cycle detector (arXiv 2408.15132) ------

class CliqueHCycleDetector final : public Detector {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "clique_hcycle"; }

  [[nodiscard]] const DetectorCapabilities& capabilities() const noexcept override {
    // max_k = 16 is a lab-practicality bound on the collector's exact
    // search over sampled subgraphs, not an algorithmic limit.
    static constexpr DetectorCapabilities caps{
        .min_k = 3,
        .max_k = 16,
        .has_repetitions = false,
        .models = congest::kModelClique,
        .exact_when_lossless = true,
        .summary = "cycle-count-adaptive Congested-Clique h-cycle detection (CEW): "
                   "doubling vertex samples to a collector, exact subgraph search, "
                   "early exit when copies abound"};
    return caps;
  }

  [[nodiscard]] std::span<const CounterDef> counters() const noexcept override {
    // Names and order are the JSONL contract for algo=clique_hcycle cells.
    static constexpr CounterDef defs[] = {
        {"phases_total", CounterKind::kSum},
        {"sampled_vertices_total", CounterKind::kSum},
        {"sampled_edges_total", CounterKind::kSum},
        {"early_exit_trials", CounterKind::kSum},
        {"rounds_saved_total", CounterKind::kSum},
    };
    return defs;
  }

  [[nodiscard]] Verdict run(congest::Simulator& sim,
                            const DetectorOptions& options) const override {
    baselines::CliqueHCycleOptions bopt;
    bopt.k = options.k;
    bopt.seed = options.seed;
    bopt.validate_witnesses = options.validate_witnesses;
    bopt.pool = options.pool;
    bopt.drop = options.drop;
    bopt.delivery = options.delivery;
    baselines::CliqueHCycleVerdict bv = baselines::detect_hcycle_clique(sim, bopt);
    Verdict v;
    v.accepted = bv.accepted;
    v.rejecting_nodes = bv.rejecting_nodes;
    v.witness = std::move(bv.witness);
    v.truncated = !bv.stats.halted;
    v.stats = std::move(bv.stats);
    v.counters = {bv.phases, bv.sampled_vertices, bv.sampled_edges,
                  bv.early_exit ? std::uint64_t{1} : std::uint64_t{0}, bv.rounds_saved};
    return v;
  }
};

}  // namespace

const congest::CommModel& default_comm_model(const DetectorCapabilities& caps) {
  // Congest first: the historical default, and the choice that keeps every
  // pre-model run_fresh call byte-identical.
  if (supports_model(caps, congest::CommModelKind::kCongest)) return congest::CommModel::congest();
  if (supports_model(caps, congest::CommModelKind::kClique)) return congest::CommModel::clique();
  return congest::CommModel::broadcast();
}

Verdict Detector::run_fresh(const graph::Graph& g, const graph::IdAssignment& ids,
                            const DetectorOptions& options) const {
  congest::Simulator sim(g, ids, default_comm_model(capabilities()));
  return run(sim, options);
}

std::string capability_line(const Detector& d) {
  const DetectorCapabilities& caps = d.capabilities();
  std::string out(d.name());
  out += ": k in [" + std::to_string(caps.min_k) + ", " + std::to_string(caps.max_k) + "]";
  std::string knobs = "reps";
  if (caps.uses_epsilon) knobs += ", eps";
  if (caps.uses_threshold_knobs) knobs += ", budget, track";
  if (!caps.has_repetitions) knobs = "none";
  out += "; knobs: " + knobs;
  if (caps.draws_edge) out += "; draws one target edge per run";
  out += caps.distributed ? "; distributed" : "; centralized";
  if (caps.distributed && caps.simulator_reuse) out += ", simulator-reuse";
  out += "; models: " + congest::model_mask_names(caps.models);
  out += " — ";
  out += caps.summary;
  return out;
}

const DetectorRegistry& DetectorRegistry::builtin() {
  // Registration happens here, explicitly and in fixed order, rather than
  // via static self-registration objects: those are silently dropped when
  // the library is linked statically and nothing references their
  // translation unit.
  static const DetectorRegistry registry = [] {
    DetectorRegistry r;
    r.add(std::make_unique<TesterDetector>());
    r.add(std::make_unique<EdgeCheckerDetector>());
    r.add(std::make_unique<ThresholdDetector>());
    r.add(std::make_unique<C4Detector>());
    r.add(std::make_unique<TriangleDetector>());
    r.add(std::make_unique<ColorCodingDetector>());
    r.add(std::make_unique<CliqueHCycleDetector>());
    return r;
  }();
  return registry;
}

void DetectorRegistry::add(std::unique_ptr<Detector> detector) {
  DECYCLE_CHECK_MSG(detector != nullptr, "cannot register a null detector");
  const std::string_view name = detector->name();
  DECYCLE_CHECK_MSG(!name.empty(), "detector name must be non-empty");
  DECYCLE_CHECK_MSG(find(name) == nullptr,
                    "detector '" + std::string(name) + "' is already registered");
  DECYCLE_CHECK_MSG(detector->capabilities().min_k <= detector->capabilities().max_k,
                    "detector '" + std::string(name) + "' has an empty k range");
  order_.push_back(detector.get());
  owned_.push_back(std::move(detector));
}

const Detector* DetectorRegistry::find(std::string_view name) const noexcept {
  for (const Detector* d : order_) {
    if (d->name() == name) return d;
  }
  return nullptr;
}

const Detector& DetectorRegistry::require(std::string_view name) const {
  const Detector* d = find(name);
  DECYCLE_CHECK_MSG(d != nullptr, "unknown detection algorithm '" + std::string(name) +
                                      "' (known: " + known_names() + ")");
  return *d;
}

std::string DetectorRegistry::known_names() const {
  std::string out;
  for (const Detector* d : order_) {
    if (!out.empty()) out += ", ";
    out += d->name();
  }
  return out;
}

std::string DetectorRegistry::names_supporting_k(unsigned k) const {
  std::string out;
  for (const Detector* d : order_) {
    const DetectorCapabilities& caps = d->capabilities();
    if (k < caps.min_k || k > caps.max_k) continue;
    if (!out.empty()) out += ", ";
    out += d->name();
  }
  return out;
}

std::string DetectorRegistry::names_supporting_model(congest::CommModelKind kind) const {
  std::string out;
  for (const Detector* d : order_) {
    if (!supports_model(d->capabilities(), kind)) continue;
    if (!out.empty()) out += ", ";
    out += d->name();
  }
  return out;
}

std::string DetectorRegistry::validate_model(const Detector& d,
                                             const congest::CommModel& model) const {
  const DetectorCapabilities& caps = d.capabilities();
  if (supports_model(caps, model.kind())) return {};
  std::string msg = "algorithm '" + std::string(d.name()) + "' runs under models [" +
                    congest::model_mask_names(caps.models) + "], got model '" +
                    std::string(model.name()) + "'";
  const std::string alternatives = names_supporting_model(model.kind());
  msg += alternatives.empty() ? " (no registered algorithm accepts this model)"
                              : " (algorithms accepting model=" + std::string(model.name()) +
                                    ": " + alternatives + ")";
  return msg;
}

std::string DetectorRegistry::validate_k(const Detector& d, unsigned k) const {
  const DetectorCapabilities& caps = d.capabilities();
  if (k >= caps.min_k && k <= caps.max_k) return {};
  std::string msg = "algorithm '" + std::string(d.name()) + "' supports k in [" +
                    std::to_string(caps.min_k) + ", " + std::to_string(caps.max_k) +
                    "], got k=" + std::to_string(k);
  const std::string alternatives = names_supporting_k(k);
  msg += alternatives.empty() ? " (no registered algorithm accepts this k)"
                              : " (algorithms accepting k=" + std::to_string(k) + ": " +
                                    alternatives + ")";
  return msg;
}

}  // namespace decycle::core
