/// \file sequence.hpp
/// \brief Ordered ID sequences — the unit of communication in Algorithm 1.
///
/// A sequence is a simple path's ID trace (Lemma 1): ordered, duplicate-free,
/// one extremity at u or v, the other at the most recent sender. Sequences
/// never exceed ⌊k/2⌋ entries, so they live in inline storage.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/ids.hpp"
#include "util/small_vector.hpp"

namespace decycle::core {

using graph::NodeId;

/// Inline capacity 8 covers k <= 17 without allocation.
using IdSeq = util::SmallVector<NodeId, 8>;

/// True iff \p seq contains \p id.
[[nodiscard]] inline bool seq_contains(const IdSeq& seq, NodeId id) noexcept {
  return seq.contains(id);
}

/// True iff the two sequences share no ID (O(|a|·|b|), both tiny).
[[nodiscard]] bool seqs_disjoint(const IdSeq& a, const IdSeq& b) noexcept;

/// |set(a) ∪ set(b) ∪ {extra}| — the quantity of Instruction 37.
[[nodiscard]] std::size_t union_size(const IdSeq& a, const IdSeq& b, NodeId extra);

/// Sorts + dedupes a batch of sequences (deterministic processing order for
/// the pruner; the paper's R is a set).
void canonicalize(std::vector<IdSeq>& seqs);

/// "(3 1 4)" — for traces and test failure messages.
[[nodiscard]] std::string to_string(const IdSeq& seq);

}  // namespace decycle::core
