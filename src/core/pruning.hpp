/// \file pruning.hpp
/// \brief Instruction 16-24 of Algorithm 1: selecting which sequences to
/// forward.
///
/// At paper round t a node holds candidate sequences R (length t-1 each, own
/// ID filtered out) and must pick a sub-family S to forward such that (a) |S|
/// stays bounded by (k-t+1)^(t-1) (Lemma 3) and (b) the witness-substitution
/// invariant of Lemma 2 holds: whenever a discarded L could close a k-cycle
/// with some completion set, an accepted L' closes one with the same
/// completion.
///
/// Three interchangeable implementations:
///
///  * RepresentativePruner — production. The literal algorithm manipulates
///    𝒳 = all (k-t)-subsets of I (exponential). Observing that after
///    accepting F the surviving 𝒳 is exactly {X : X hits every member of F},
///    a candidate L is accepted iff F has a hitting set of size <= k-t inside
///    I \ L (fake IDs pad any smaller hitting set up to the exact size k-t).
///    Decided by bounded-depth branch-and-bound — polynomial per candidate
///    for fixed k, and *bit-identical* to the literal algorithm when run in
///    the same candidate order (property-tested against ReferencePruner).
///
///  * ReferencePruner — Instruction 15 verbatim: materializes 𝒳 including
///    the k-t fake IDs {-1..-(k-t)} and removes covered subsets. Exponential;
///    guarded by a size check; exists as executable specification.
///
///  * PassThroughPruner — S ← R (the naive append-and-forward the paper
///    rules out). Used by the baseline tester and the ablation benches; caps
///    the family size and raises an overflow flag instead of eating the
///    machine.
///
/// The `fake_ids` switch exists to reproduce the paper's §3.3 walkthrough:
/// with it off, a node whose candidate pool I is too small to build any
/// (k-t)-subset forwards nothing and C9 detection collapses (bench f2).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/sequence.hpp"

namespace decycle::core {

enum class PruningMode {
  kRepresentative,  ///< fast exact implementation (default)
  kReference,       ///< literal Instruction 15 (tests/spec only)
  kNaive,           ///< no pruning (baseline)
};

[[nodiscard]] const char* pruning_mode_name(PruningMode mode) noexcept;

class Pruner {
 public:
  struct Result {
    std::vector<IdSeq> accepted;
    bool overflow = false;  ///< naive cap hit: family truncated
  };

  virtual ~Pruner() = default;

  /// Selects the forwarded sub-family. \p candidates must be canonicalized
  /// (sorted, deduped, free of the executing node's ID) and all of length
  /// t-1, with 2 <= t <= k/2. Iteration order is the candidates' order, so
  /// all implementations make identical accept/reject decisions.
  [[nodiscard]] virtual Result select(std::span<const IdSeq> candidates, unsigned t) = 0;
};

struct PrunerConfig {
  unsigned k = 5;
  bool fake_ids = true;          ///< Instruction 14 on/off (ablation)
  std::size_t naive_cap = 1u << 18;  ///< PassThroughPruner family bound
  std::size_t reference_subset_cap = 2'000'000;  ///< |𝒳| guard for the reference
};

[[nodiscard]] std::unique_ptr<Pruner> make_pruner(PruningMode mode, const PrunerConfig& config);

/// Lemma 3 bound on |S| at paper round t: (k-t+1)^(t-1).
[[nodiscard]] std::uint64_t lemma3_bound(unsigned k, unsigned t) noexcept;

}  // namespace decycle::core
