#include "core/tester.hpp"

#include <algorithm>

#include "core/wire.hpp"
#include "core/witness.hpp"
#include "util/check.hpp"

namespace decycle::core {

namespace {
// Message tags.
constexpr std::uint64_t kTagRank = 1;
constexpr std::uint64_t kTagSequences = 2;
}  // namespace

TesterProgram::TesterProgram(const DetectParams& params, std::size_t repetitions,
                             std::uint64_t seed, std::uint64_t n, NodeId my_id)
    : params_(params),
      repetitions_(repetitions),
      seed_(seed),
      rank_range_(rank_range_for(n)),
      my_id_(my_id),
      half_(params.k / 2),
      rep_len_(static_cast<std::uint64_t>(params.k / 2) + 2),
      max_sent_by_round_(half_ + 1, 0) {
  DECYCLE_CHECK_MSG(repetitions_ >= 1, "tester needs at least one repetition");
}

void TesterProgram::on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) {
  const std::uint64_t round = ctx.round();
  const std::uint64_t rep = round / rep_len_;
  const std::uint64_t phase = round % rep_len_;
  if (rep >= repetitions_) return;

  if (phase == 0) {
    start_repetition(ctx, rep);
  } else if (phase == 1) {
    select_and_seed(ctx, inbox);
  } else {
    phase2_round(ctx, inbox, phase - 1);
  }
}

void TesterProgram::start_repetition(congest::Context& ctx, std::size_t rep) {
  // Fresh per-repetition state.
  current_.reset();
  state_.reset();
  port_rank_.assign(ctx.degree(), kRankMissing);

  // Deterministic per-(seed, repetition, node) stream; draws happen in port
  // order, so the rank of each edge is independent of scheduling.
  util::Rng rng = util::Rng(seed_).fork(rep).fork(my_id_);
  for (std::uint32_t port = 0; port < ctx.degree(); ++port) {
    const NodeId other = ctx.neighbor_id(port);
    if (my_id_ < other) {  // this node owns the edge and assigns its rank
      const std::uint64_t rank = draw_rank(rng, rank_range_);
      port_rank_[port] = rank;
      congest::MessageWriter w;
      w.put_u64(kTagRank);
      w.put_u64(rank);
      ctx.send(port, w.finish());
    }
  }

  // Every node must run the selection phase even if it receives no rank
  // mail (e.g. a local-minimum-ID node owns all its incident edges).
  ctx.request_wakeup_at(ctx.round() + 1);
  (void)rep;
}

void TesterProgram::select_and_seed(congest::Context& ctx,
                                    std::span<const congest::Envelope> inbox) {
  for (const congest::Envelope& env : inbox) {
    congest::MessageReader r(env.payload);
    const std::uint64_t tag = r.get_u64();
    DECYCLE_CHECK_MSG(tag == kTagRank, "unexpected message in rank round");
    port_rank_[env.port] = r.get_u64();
  }
  const std::uint64_t rep = ctx.round() / rep_len_;
  if (rep + 1 < repetitions_) {
    ctx.request_wakeup_at((rep + 1) * rep_len_);  // next repetition's rank phase
  }
  if (ctx.degree() == 0) return;  // isolated node: nothing to test

  // Minimum-(rank, u, v) incident edge (Phase 1 selection). A rank can be
  // missing if the owner's rank message was lost (fault experiments); such
  // edges are simply not candidates here — the owner side still seeds them,
  // and soundness never depends on delivery. draw_rank never returns
  // kRankMissing, so a legitimately drawn minimum rank is never mistaken
  // for a lost message.
  std::optional<EdgePriority> best;
  for (std::uint32_t port = 0; port < ctx.degree(); ++port) {
    if (port_rank_[port] == kRankMissing) continue;
    const NodeId other = ctx.neighbor_id(port);
    const EdgePriority ep{port_rank_[port], std::min(my_id_, other), std::max(my_id_, other)};
    if (!best || ep < *best) best = ep;
  }
  if (!best) return;  // every incident rank was lost this repetition
  current_ = *best;
  state_.emplace(params_, my_id_, current_->u, current_->v);

  // This node is an endpoint of its chosen edge, so it always seeds.
  const auto seqs = state_->seed();
  DECYCLE_CHECK(!seqs.empty());
  max_sent_by_round_[0] = std::max(max_sent_by_round_[0], seqs.size());
  broadcast_sequences(ctx, seqs);
}

void TesterProgram::phase2_round(congest::Context& ctx, std::span<const congest::Envelope> inbox,
                                 std::uint64_t g) {
  if (g > half_) return;

  // First pass: the highest-priority edge mentioned this round (prioritized
  // search: smaller (rank, u, v) preempts).
  struct Incoming {
    EdgePriority ep;
    std::vector<IdSeq> seqs;
  };
  std::vector<Incoming> messages;
  messages.reserve(inbox.size());
  std::optional<EdgePriority> best = current_;
  for (const congest::Envelope& env : inbox) {
    congest::MessageReader r(env.payload);
    const std::uint64_t tag = r.get_u64();
    DECYCLE_CHECK_MSG(tag == kTagSequences, "unexpected message in phase-2 round");
    Incoming in;
    in.ep.rank = r.get_u64();
    in.ep.u = r.get_u64();
    in.ep.v = r.get_u64();
    in.seqs = read_sequences(r);
    if (!best || in.ep < *best) best = in.ep;
    messages.push_back(std::move(in));
  }
  if (!best) return;

  if (!current_ || *best < *current_) {
    // Switch to the higher-priority edge; prior execution state is dropped.
    if (current_) ++switches_;
    current_ = *best;
    state_.emplace(params_, my_id_, current_->u, current_->v);
  }

  std::vector<IdSeq> received;
  for (Incoming& in : messages) {
    if (in.ep == *current_) {
      received.insert(received.end(), std::make_move_iterator(in.seqs.begin()),
                      std::make_move_iterator(in.seqs.end()));
    } else {
      ++discarded_;  // lower-priority execution: message dropped
    }
  }
  if (received.empty()) return;

  auto to_send = state_->step(g, std::move(received));
  overflow_ = overflow_ || state_->overflowed();

  if (g == half_) {
    if (state_->rejected() && witness_ids_.empty()) {
      witness_ids_ = state_->witness_cycle_ids();
      reject_rep_ = static_cast<std::size_t>(ctx.round() / rep_len_);
    }
    return;
  }
  if (!to_send.empty()) {
    max_sent_by_round_[g] = std::max(max_sent_by_round_[g], to_send.size());
    broadcast_sequences(ctx, to_send);
  }
}

void TesterProgram::broadcast_sequences(congest::Context& ctx, std::span<const IdSeq> seqs) {
  congest::MessageWriter w;
  w.put_u64(kTagSequences);
  w.put_u64(current_->rank);
  w.put_u64(current_->u);
  w.put_u64(current_->v);
  write_sequences(w, seqs);
  const congest::Message msg = w.finish();
  ctx.send_all(msg);
}

TestVerdict test_ck_freeness(const graph::Graph& g, const graph::IdAssignment& ids,
                             const TesterOptions& options) {
  DECYCLE_CHECK_MSG(options.k >= 3, "k must be at least 3");  // before the O(m) table build
  congest::Simulator sim(g, ids);
  return test_ck_freeness(sim, options);
}

TestVerdict test_ck_freeness(congest::Simulator& sim, const TesterOptions& options) {
  DECYCLE_CHECK_MSG(options.k >= 3, "k must be at least 3");
  const graph::Graph& g = sim.graph();
  const graph::IdAssignment& ids = sim.ids();
  TestVerdict verdict;
  verdict.repetitions =
      options.repetitions != 0 ? options.repetitions : recommended_repetitions(options.epsilon);

  DetectParams params = options.detect;
  params.k = options.k;

  sim.reset([&](graph::Vertex v) {
    return std::make_unique<TesterProgram>(params, verdict.repetitions, options.seed,
                                           g.num_vertices(), ids.id_of(v));
  });

  congest::Simulator::Options sim_options;
  sim_options.pool = options.pool;
  sim_options.record_rounds = options.record_rounds;
  sim_options.drop = options.drop;
  sim_options.delivery = options.delivery;
  // Round budget audit: each repetition occupies exactly rep_len =
  // ⌊k/2⌋+2 rounds (phase 0 ranks, phase 1 selection, ⌊k/2⌋ Phase-2
  // rounds), so the last possible activity is round
  // repetitions·rep_len − 1; the +4 is delivery slack. A run that fails to
  // quiesce under this cap was truncated mid-Phase-2 — surfaced via
  // TestVerdict::truncated rather than silently under-reporting.
  sim_options.max_rounds =
      verdict.repetitions * (static_cast<std::uint64_t>(options.k / 2) + 2) + 4;
  verdict.stats = sim.run(sim_options);
  verdict.truncated = !verdict.stats.halted;

  sim.for_each_program<TesterProgram>([&](graph::Vertex vert, const TesterProgram& prog) {
    verdict.overflow = verdict.overflow || prog.overflowed();
    verdict.total_switches += prog.switches();
    verdict.total_discarded += prog.discarded_messages();
    for (const std::size_t count : prog.max_sent_by_round()) {
      verdict.max_bundle_sequences = std::max(verdict.max_bundle_sequences, count);
    }
    if (prog.rejected()) {
      verdict.accepted = false;
      verdict.rejecting_nodes += 1;
      if (verdict.witness.empty()) {
        if (options.validate_witnesses) {
          verdict.witness = validated_witness_vertices(g, ids, prog.witness_ids());
        } else {
          for (const NodeId id : prog.witness_ids()) verdict.witness.push_back(ids.vertex_of(id));
        }
      }
    }
    (void)vert;
  });
  return verdict;
}

}  // namespace decycle::core
