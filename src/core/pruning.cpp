#include "core/pruning.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/representative_family.hpp"
#include "util/check.hpp"

namespace decycle::core {

const char* pruning_mode_name(PruningMode mode) noexcept {
  switch (mode) {
    case PruningMode::kRepresentative: return "representative";
    case PruningMode::kReference: return "reference";
    case PruningMode::kNaive: return "naive";
  }
  return "?";
}

std::uint64_t lemma3_bound(unsigned k, unsigned t) noexcept {
  // (k - t + 1)^(t - 1), saturating.
  const std::uint64_t base = k - t + 1;
  std::uint64_t acc = 1;
  for (unsigned i = 1; i < t; ++i) {
    if (acc > std::numeric_limits<std::uint64_t>::max() / base) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    acc *= base;
  }
  return acc;
}

namespace {

void validate_candidates(std::span<const IdSeq> candidates, unsigned t, unsigned k) {
  DECYCLE_CHECK_MSG(t >= 2 && t <= k / 2, "pruning round t out of range");
  for (const IdSeq& c : candidates) {
    DECYCLE_CHECK_MSG(c.size() == t - 1, "candidate sequence has wrong length for round t");
  }
}

class RepresentativePruner final : public Pruner {
 public:
  explicit RepresentativePruner(const PrunerConfig& cfg) : cfg_(cfg) {}

  Result select(std::span<const IdSeq> candidates, unsigned t) override {
    validate_candidates(candidates, t, cfg_.k);
    const unsigned q = cfg_.k - t;  // |X| — the completion-set size

    std::size_t universe = 0;
    if (!cfg_.fake_ids) {
      // Without Instruction 14 the completion set must consist of real IDs
      // from I; |I \ L| = |I| - (t-1) must reach q at all. Counting the
      // distinct IDs via a reused flat scratch (sort + unique) beats the
      // per-element hash inserts this loop used to do every call.
      scratch_ids_.clear();
      scratch_ids_.reserve(candidates.size() * (t - 1));
      for (const IdSeq& c : candidates) {
        scratch_ids_.insert(scratch_ids_.end(), c.begin(), c.end());
      }
      std::sort(scratch_ids_.begin(), scratch_ids_.end());
      universe = static_cast<std::size_t>(
          std::unique(scratch_ids_.begin(), scratch_ids_.end()) - scratch_ids_.begin());
    }

    Result out;
    const std::uint64_t cap = lemma3_bound(cfg_.k, t);
    out.accepted.reserve(std::min<std::uint64_t>(candidates.size(), cap));
    for (const IdSeq& candidate : candidates) {
      // Without fake IDs, an exact-size completion set X needs |I \ L| >= q
      // real IDs; with them, the q fakes always pad a small hitting set.
      if (!cfg_.fake_ids && universe < (t - 1) + static_cast<std::size_t>(q)) continue;
      if (exists_bounded_hitting_set(out.accepted, candidate, q)) {
        out.accepted.push_back(candidate);
      }
    }
    return out;
  }

 private:
  PrunerConfig cfg_;
  std::vector<NodeId> scratch_ids_;  ///< reused across calls; hot path runs once per node per round
};

/// Signed IDs so the fake IDs {-1, ..., -(k-t)} of Instruction 14 are
/// representable verbatim.
using SignedId = std::int64_t;

class ReferencePruner final : public Pruner {
 public:
  explicit ReferencePruner(const PrunerConfig& cfg) : cfg_(cfg) {}

  Result select(std::span<const IdSeq> candidates, unsigned t) override {
    validate_candidates(candidates, t, cfg_.k);
    const unsigned q = cfg_.k - t;

    // I ← IDs present in R, plus the fake IDs (Instruction 13-14).
    std::vector<SignedId> universe;
    {
      std::unordered_set<NodeId> distinct;
      for (const IdSeq& c : candidates) distinct.insert(c.begin(), c.end());
      universe.reserve(distinct.size() + q);
      for (const NodeId id : distinct) {
        DECYCLE_CHECK_MSG(id <= static_cast<NodeId>(std::numeric_limits<SignedId>::max()),
                          "reference pruner supports IDs < 2^63");
        universe.push_back(static_cast<SignedId>(id));
      }
      if (cfg_.fake_ids) {
        for (unsigned f = 1; f <= q; ++f) universe.push_back(-static_cast<SignedId>(f));
      }
      std::sort(universe.begin(), universe.end());
    }

    Result out;
    if (universe.size() < q) return out;  // 𝒳 empty: nothing can be accepted

    // 𝒳 ← all q-subsets of I (Instruction 15), with a guard against misuse.
    double subsets = 1.0;
    for (unsigned i = 0; i < q; ++i) {
      subsets *= static_cast<double>(universe.size() - i) / static_cast<double>(i + 1);
    }
    DECYCLE_CHECK_MSG(subsets <= static_cast<double>(cfg_.reference_subset_cap),
                      "reference pruner: |X| too large; use RepresentativePruner");

    std::vector<std::vector<SignedId>> pool;
    pool.reserve(static_cast<std::size_t>(subsets) + 1);
    std::vector<std::size_t> idx(q);
    for (unsigned i = 0; i < q; ++i) idx[i] = i;
    while (true) {
      std::vector<SignedId> subset(q);
      for (unsigned i = 0; i < q; ++i) subset[i] = universe[idx[i]];
      pool.push_back(std::move(subset));
      // next combination
      std::size_t pos = q;
      while (pos > 0 && idx[pos - 1] == universe.size() - q + (pos - 1)) --pos;
      if (pos == 0) break;
      ++idx[pos - 1];
      for (std::size_t j = pos; j < q; ++j) idx[j] = idx[j - 1] + 1;
    }

    std::vector<char> alive(pool.size(), 1);
    const auto intersects = [](const std::vector<SignedId>& set, const IdSeq& seq) {
      for (const NodeId raw : seq) {
        const auto id = static_cast<SignedId>(raw);
        if (std::binary_search(set.begin(), set.end(), id)) return true;
      }
      return false;
    };

    // Instructions 17-23: accept L when some surviving X is disjoint from it;
    // then retire every such X.
    for (const IdSeq& candidate : candidates) {
      bool any = false;
      for (std::size_t x = 0; x < pool.size(); ++x) {
        if (!alive[x]) continue;
        if (!intersects(pool[x], candidate)) {
          alive[x] = 0;
          any = true;
        }
      }
      if (any) out.accepted.push_back(candidate);
    }
    return out;
  }

 private:
  PrunerConfig cfg_;
};

class PassThroughPruner final : public Pruner {
 public:
  explicit PassThroughPruner(const PrunerConfig& cfg) : cfg_(cfg) {}

  Result select(std::span<const IdSeq> candidates, unsigned t) override {
    validate_candidates(candidates, t, cfg_.k);
    Result out;
    const std::size_t keep = std::min(candidates.size(), cfg_.naive_cap);
    out.accepted.assign(candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(keep));
    out.overflow = keep < candidates.size();
    return out;
  }

 private:
  PrunerConfig cfg_;
};

}  // namespace

std::unique_ptr<Pruner> make_pruner(PruningMode mode, const PrunerConfig& config) {
  DECYCLE_CHECK_MSG(config.k >= 3, "k must be at least 3");
  switch (mode) {
    case PruningMode::kRepresentative: return std::make_unique<RepresentativePruner>(config);
    case PruningMode::kReference: return std::make_unique<ReferencePruner>(config);
    case PruningMode::kNaive: return std::make_unique<PassThroughPruner>(config);
  }
  DECYCLE_CHECK_MSG(false, "unknown pruning mode");
  return nullptr;
}

}  // namespace decycle::core
