/// \file census.hpp
/// \brief Multi-k cycle census built on the tester.
///
/// Applications rarely care about a single k: motif analysis, deadlock
/// monitoring and girth probing all sweep a range. The census runs the full
/// tester for each k in [k_min, k_max] (fresh seeds per k) and aggregates
/// verdicts, witnesses and communication totals. Soundness composes: a
/// census row can only report a cycle that exists; acceptance rows inherit
/// the per-k property-testing guarantee.
#pragma once

#include <vector>

#include "core/tester.hpp"

namespace decycle::core {

struct CensusOptions {
  unsigned k_min = 3;
  unsigned k_max = 8;
  double epsilon = 0.1;
  std::uint64_t seed = 1;
  std::size_t repetitions = 0;  ///< 0 = recommended_repetitions(epsilon) per k
  DetectParams detect;
  util::ThreadPool* pool = nullptr;
};

struct CensusEntry {
  unsigned k = 0;
  bool accepted = true;
  std::vector<graph::Vertex> witness;  ///< validated cycle when rejected
  std::uint64_t rounds = 0;
  std::size_t messages = 0;
  std::uint64_t bits = 0;
};

struct CensusResult {
  std::vector<CensusEntry> entries;  ///< one per k, ascending
  std::uint64_t total_rounds = 0;
  std::size_t total_messages = 0;

  [[nodiscard]] bool any_rejected() const noexcept {
    for (const auto& e : entries) {
      if (!e.accepted) return true;
    }
    return false;
  }

  /// Smallest k whose tester rejected (a girth upper bound), or 0.
  [[nodiscard]] unsigned smallest_detected() const noexcept {
    for (const auto& e : entries) {
      if (!e.accepted) return e.k;
    }
    return 0;
  }
};

[[nodiscard]] CensusResult cycle_census(const graph::Graph& g, const graph::IdAssignment& ids,
                                        const CensusOptions& options);

}  // namespace decycle::core
