/// \file trace.hpp
/// \brief Structured execution traces for Phase 2.
///
/// Research code lives or dies by observability: reviewers want to see WHICH
/// sequence was pruned at WHICH node and round, not just the final verdict.
/// A TraceSink attached to DetectParams records every seed / receive / keep /
/// drop / send / reject event; tests assert on pruning decisions directly,
/// and the walkthrough tooling renders paper-style narratives from the
/// stream. The sink is mutex-protected so traced runs work under the
/// simulator's parallel stepping (events are sorted by (round, node, kind)
/// for deterministic inspection).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/sequence.hpp"

namespace decycle::core {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSeed,     ///< endpoint emitted its initial (myid) sequence
    kReceive,  ///< sequence arrived (post my-id filter, pre pruning)
    kKeep,     ///< pruning accepted the sequence for forwarding
    kDrop,     ///< pruning discarded the sequence
    kSend,     ///< sequence (with own ID appended) broadcast
    kReject,   ///< final check fired; sequence holds the witness cycle IDs
  };

  Kind kind;
  std::uint64_t round;  ///< simulator phase round g
  NodeId node;
  IdSeq sequence;
};

[[nodiscard]] const char* trace_kind_name(TraceEvent::Kind kind) noexcept;

class TraceSink {
 public:
  void record(TraceEvent event);

  /// Sorted snapshot (round, node, kind, sequence).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t count(TraceEvent::Kind kind) const;
  [[nodiscard]] std::vector<TraceEvent> events_for(NodeId node) const;

  /// Multi-line human-readable rendering ("round 2: node 3 kept (1 2)").
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace decycle::core
