/// \file detector.hpp
/// \brief The unified detection-algorithm interface and registry.
///
/// The paper's experiments are head-to-head comparisons: Theorem 1's tester
/// against the specialized baselines it generalizes (the FRST C4 tester
/// whose technique fails for k >= 5, the CHS triangle tester), against the
/// threshold family, and against centralized references. Historically every
/// algorithm exposed a bespoke entry point with its own Options/Verdict
/// structs, so each consumer (lab runner, harness, benches, cross-tests)
/// grew an if-chain per algorithm and the baselines were unreachable from
/// the scenario matrix entirely.
///
/// This module makes every algorithm a first-class citizen behind one
/// interface:
///
///   * `Detector` — name(), capabilities() (supported k range, which knobs
///     apply, whether it is distributed and honors the Simulator-reuse
///     contract), a typed counter table for algo-specific instrumentation,
///     and run(Simulator&, DetectorOptions) -> Verdict;
///   * `Verdict` — one result surface: accepted/witness/truncated/RunStats
///     plus the counter values aligned with the detector's counter table.
///     The witness is always a validated cycle in *topology vertices*
///     (graph::Vertex); NodeId stays an implementation detail of the node
///     programs (see witness.hpp for the validation step that converts);
///   * `DetectorRegistry` — the fixed-order collection of built-in
///     detectors (tester, edge_checker, threshold, c4, triangle,
///     color_coding, clique_hcycle) that consumers iterate or look up by
///     name. Adding an algorithm is one registration, not edits to five
///     layers.
///
/// Determinism contract: run() must be a pure function of (topology, ids,
/// options) — bit-identical across thread counts and across the
/// fresh-build/reset reuse paths — because the lab's golden-file CI diffs
/// byte-level JSONL built from these verdicts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "congest/comm_model.hpp"
#include "congest/simulator.hpp"
#include "core/threshold/budget.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/thread_pool.hpp"

namespace decycle::core {

/// What a detector supports and which DetectorOptions knobs it reads.
/// Consumers use this to validate cells before running (the lab refuses
/// `algo=c4 k=5` at parse time) and to describe algorithms honestly
/// (`decycle_lab --list-algos`).
struct DetectorCapabilities {
  unsigned min_k = 3;   ///< smallest supported cycle length (inclusive)
  unsigned max_k = 64;  ///< largest supported cycle length (inclusive)
  /// Reads DetectorOptions::epsilon (drives the default repetition count).
  bool uses_epsilon = false;
  /// Reads DetectorOptions::budget / max_tracked (threshold family).
  bool uses_threshold_knobs = false;
  /// Verdict::repetitions is meaningful (repetitions / sweeps / iterations).
  /// False only for one-shot algorithms like the single-edge checker.
  bool has_repetitions = true;
  /// Targets one edge per run: DetectorOptions::edge, or a uniformly drawn
  /// edge derived from the seed when absent.
  bool draws_edge = false;
  /// Runs CONGEST rounds on the simulator. False = centralized reference
  /// (reads the topology only; RunStats stay zero, drop adversaries are
  /// vacuous).
  bool distributed = true;
  /// Honors the Simulator::reset reuse contract: run() on a reused
  /// simulator is bit-identical to a fresh build.
  bool simulator_reuse = true;
  /// Bitmask of congest::model_bit(CommModelKind) values naming the
  /// communication models this detector runs under. run() must be handed a
  /// Simulator built with a model in this mask (the lab refuses
  /// `model=clique algo=tester` at parse time; the soak picks a compatible
  /// model per detector). Centralized detectors read the topology only, so
  /// every model is vacuously compatible — they set congest::kModelAll.
  std::uint8_t models = congest::kModelCongest;
  /// Drop-free runs are exact: an accept must agree with the DFS oracle
  /// whatever the knobs (beyond the draws_edge / threshold-knob regimes the
  /// soak already infers). The clique h-cycle detector sets this — its
  /// final phase collects the whole graph.
  bool exact_when_lossless = false;
  std::string_view summary;  ///< one-line description for listings
};

/// Whether \p caps admit a Simulator built under model \p kind.
[[nodiscard]] constexpr bool supports_model(const DetectorCapabilities& caps,
                                            congest::CommModelKind kind) noexcept {
  return (caps.models & congest::model_bit(kind)) != 0;
}

/// The model run_fresh (and the soak) builds for a detector: congest when
/// the mask admits it (the historical behaviour, byte-identical), otherwise
/// the first model the mask names.
[[nodiscard]] const congest::CommModel& default_comm_model(const DetectorCapabilities& caps);

/// How a per-trial counter aggregates across a cell's trials.
enum class CounterKind : std::uint8_t { kSum, kMax };

/// One named instrumentation counter. The name doubles as the JSONL field
/// key when \p emit is set; non-emitted counters are still aggregated and
/// reachable programmatically (tests, benches) without perturbing the
/// byte-stable golden records of pre-existing cells.
struct CounterDef {
  std::string_view name;
  CounterKind kind = CounterKind::kSum;
  bool emit = true;
};

/// Unified options. Every detector reads the subset its capabilities
/// advertise and ignores the rest, so one struct parameterizes the whole
/// registry without per-algorithm plumbing.
struct DetectorOptions {
  unsigned k = 5;
  double epsilon = 0.1;    ///< farness parameter (uses_epsilon detectors)
  std::uint64_t seed = 1;  ///< all randomness derives from this
  /// Repetitions / sweeps / coloring iterations; 0 = the algorithm's own
  /// default (⌈e²·ln3/ε⌉ for the tester, 1 sweep for threshold, ⌈e^k·ln3⌉
  /// colorings for color coding, 64 iterations for the sampling baselines).
  std::size_t repetitions = 0;
  /// Threshold-family knobs (uses_threshold_knobs detectors).
  threshold::BudgetSchedule budget = threshold::BudgetSchedule::constant(16);
  std::size_t max_tracked = 8;  ///< 0 = unlimited
  /// Target edge for draws_edge detectors; when absent one is drawn
  /// uniformly from a stream derived from \p seed.
  std::optional<graph::Edge> edge;
  bool validate_witnesses = true;  ///< 1-sided-error enforcement (witness.hpp)
  util::ThreadPool* pool = nullptr;
  congest::Simulator::DropFilter drop;  ///< optional message-loss adversary
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
};

/// The unified verdict every detector returns. Aggregate fields that an
/// algorithm does not produce stay at their zero defaults, so downstream
/// reductions need no per-algorithm cases.
struct Verdict {
  bool accepted = true;             ///< no node rejected
  std::size_t rejecting_nodes = 0;  ///< nodes whose final check fired
  /// Validated witness cycle in topology vertices (empty when accepted).
  /// One type across the registry — NodeId never escapes the programs.
  std::vector<graph::Vertex> witness;
  /// Repetitions / sweeps / iterations the run was configured with (the
  /// resolved value, not the 0 sentinel); 0 for one-shot algorithms.
  std::size_t repetitions = 0;
  bool overflow = false;   ///< internal pruning cap hit (naive mode)
  bool truncated = false;  ///< hit the round cap instead of quiescing
  std::size_t max_bundle_sequences = 0;  ///< Lemma-3 instrumentation
  congest::RunStats stats;               ///< zero for centralized detectors
  /// Counter values aligned index-for-index with Detector::counters().
  std::vector<std::uint64_t> counters;
};

/// A detection algorithm. Implementations are stateless (everything a run
/// needs travels in DetectorOptions), so one instance serves all threads.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Canonical name — the lab's `algo=` axis value and the JSONL tag.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] virtual const DetectorCapabilities& capabilities() const noexcept = 0;

  /// The algorithm's instrumentation table (fixed order; may be empty).
  /// Verdict::counters aligns with this span.
  [[nodiscard]] virtual std::span<const CounterDef> counters() const noexcept { return {}; }

  /// Runs the algorithm on \p sim's topology. Distributed detectors reset
  /// the simulator with their programs (the reuse contract); centralized
  /// ones read sim.graph()/sim.ids() only.
  [[nodiscard]] virtual Verdict run(congest::Simulator& sim,
                                    const DetectorOptions& options) const = 0;

  /// Convenience: builds a topology-only Simulator for (g, ids) under
  /// default_comm_model(capabilities()) and runs.
  [[nodiscard]] Verdict run_fresh(const graph::Graph& g, const graph::IdAssignment& ids,
                                  const DetectorOptions& options) const;
};

/// One human-readable capability line for \p d: k range, knobs, execution
/// model — what `decycle_lab --list-algos` prints, so the CLI can never lie
/// about what `algo=` accepts.
[[nodiscard]] std::string capability_line(const Detector& d);

/// Ordered, named collection of detectors. builtin() holds the seven
/// algorithms of this repository in fixed registration order (tester,
/// edge_checker, threshold, c4, triangle, color_coding, clique_hcycle) —
/// the order is part of the output contract for listings and meta records.
/// Additional registries can be built for tests or extensions via add().
class DetectorRegistry {
 public:
  DetectorRegistry() = default;
  DetectorRegistry(const DetectorRegistry&) = delete;
  DetectorRegistry& operator=(const DetectorRegistry&) = delete;
  DetectorRegistry(DetectorRegistry&&) = default;
  DetectorRegistry& operator=(DetectorRegistry&&) = default;

  /// The process-wide registry of built-in algorithms.
  [[nodiscard]] static const DetectorRegistry& builtin();

  /// Registers \p detector (takes ownership). Throws CheckError on a
  /// duplicate or empty name.
  void add(std::unique_ptr<Detector> detector);

  /// nullptr when \p name is unknown.
  [[nodiscard]] const Detector* find(std::string_view name) const noexcept;

  /// Throws CheckError naming the known detectors when \p name is unknown.
  [[nodiscard]] const Detector& require(std::string_view name) const;

  /// All detectors in registration order.
  [[nodiscard]] std::span<const Detector* const> detectors() const noexcept { return order_; }

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  /// Comma-separated names in registration order ("tester, edge_checker, ...").
  [[nodiscard]] std::string known_names() const;

  /// Comma-separated names of detectors whose k range admits \p k.
  [[nodiscard]] std::string names_supporting_k(unsigned k) const;

  /// Comma-separated names of detectors whose model mask admits \p kind.
  [[nodiscard]] std::string names_supporting_model(congest::CommModelKind kind) const;

  /// Empty string when \p d runs under \p model; otherwise an error naming
  /// the models \p d accepts and the registered alternatives that do run
  /// under \p model (mirrors validate_k).
  [[nodiscard]] std::string validate_model(const Detector& d,
                                           const congest::CommModel& model) const;

  /// Empty string when \p d supports cycle length \p k; otherwise an error
  /// naming the supported range and the registered alternatives that do
  /// accept \p k.
  [[nodiscard]] std::string validate_k(const Detector& d, unsigned k) const;

 private:
  std::vector<std::unique_ptr<Detector>> owned_;
  std::vector<const Detector*> order_;
};

}  // namespace decycle::core
