#include "core/representative_family.hpp"

#include "util/small_vector.hpp"
#include "util/stats.hpp"

namespace decycle::core {

namespace {

class HittingSetSearch {
 public:
  HittingSetSearch(std::span<const IdSeq> family, const IdSeq& avoid, unsigned budget)
      : family_(family), avoid_(avoid), budget_(budget) {}

  [[nodiscard]] bool run() { return search(); }

 private:
  [[nodiscard]] bool is_hit(const IdSeq& set) const {
    for (const NodeId x : chosen_) {
      if (set.contains(x)) return true;
    }
    return false;
  }

  [[nodiscard]] bool search() {
    const IdSeq* unhit = nullptr;
    for (const IdSeq& set : family_) {
      if (!is_hit(set)) {
        unhit = &set;
        break;
      }
    }
    if (unhit == nullptr) return true;  // everything hit within budget
    if (chosen_.size() >= budget_) return false;
    // Any valid hitting set must contain a usable element of the first
    // un-hit set, so branching over them is complete.
    for (const NodeId e : *unhit) {
      if (avoid_.contains(e)) continue;
      chosen_.push_back(e);
      if (search()) return true;
      chosen_.pop_back();
    }
    return false;
  }

  std::span<const IdSeq> family_;
  const IdSeq& avoid_;
  unsigned budget_;
  util::SmallVector<NodeId, 16> chosen_;
};

}  // namespace

bool exists_bounded_hitting_set(std::span<const IdSeq> family, const IdSeq& avoid,
                                unsigned budget) {
  return HittingSetSearch(family, avoid, budget).run();
}

std::vector<std::size_t> representative_subfamily(std::span<const IdSeq> family, unsigned q) {
  std::vector<std::size_t> chosen_indices;
  std::vector<IdSeq> chosen_sets;
  for (std::size_t i = 0; i < family.size(); ++i) {
    // Accept L iff some size-q completion avoiding L survives, i.e. the
    // accepted sets admit a hitting set of size <= q inside V \ L (smaller
    // hitting sets extend to size q with fresh padding elements, which is
    // always possible over the unbounded universe the lemma assumes).
    if (exists_bounded_hitting_set(chosen_sets, family[i], q)) {
      chosen_indices.push_back(i);
      chosen_sets.push_back(family[i]);
    }
  }
  return chosen_indices;
}

double ehm_bound(unsigned p, unsigned q) noexcept { return util::binomial_coefficient(p + q, p); }

}  // namespace decycle::core
