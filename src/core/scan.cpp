#include "core/scan.hpp"

#include <atomic>
#include <mutex>

namespace decycle::core {

ScanResult exhaustive_ck_scan(const graph::Graph& g, const graph::IdAssignment& ids,
                              const ScanOptions& options) {
  ScanResult out;
  const std::uint64_t rounds_per_edge = options.detect.k / 2 + 1;

  EdgeDetectionOptions edge_opt;
  edge_opt.detect = options.detect;

  if (options.pool == nullptr || options.stop_at_first) {
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto result = detect_cycle_through_edge(g, ids, g.edge(e), edge_opt);
      ++out.edges_checked;
      out.schedule_rounds += rounds_per_edge;
      out.total_messages += result.stats.total_messages;
      out.total_bits += result.stats.total_bits;
      if (result.found) {
        if (!out.found) out.witness = result.witness;  // keep the first edge's witness
        out.found = true;
        if (options.stop_at_first) return out;
      }
    }
    return out;
  }

  // Parallel evaluation of independent executions (full sweep only, so the
  // reported counts do not depend on completion order).
  std::atomic<std::size_t> messages{0};
  std::atomic<std::uint64_t> bits{0};
  std::mutex witness_mutex;
  graph::EdgeId best_edge = graph::kInvalidEdge;
  std::vector<graph::Vertex> witness;
  options.pool->parallel_for(g.num_edges(), [&](std::size_t e) {
    const auto result =
        detect_cycle_through_edge(g, ids, g.edge(static_cast<graph::EdgeId>(e)), edge_opt);
    messages.fetch_add(result.stats.total_messages, std::memory_order_relaxed);
    bits.fetch_add(result.stats.total_bits, std::memory_order_relaxed);
    if (result.found) {
      const std::lock_guard lock(witness_mutex);
      // Deterministic tie-break: keep the smallest edge id's witness.
      if (static_cast<graph::EdgeId>(e) < best_edge) {
        best_edge = static_cast<graph::EdgeId>(e);
        witness = result.witness;
      }
    }
  });
  out.edges_checked = g.num_edges();
  out.schedule_rounds = rounds_per_edge * g.num_edges();
  out.total_messages = messages.load();
  out.total_bits = bits.load();
  out.found = best_edge != graph::kInvalidEdge;
  out.witness = std::move(witness);
  return out;
}

}  // namespace decycle::core
