/// \file scan.hpp
/// \brief Exhaustive deterministic Ck detection: Phase 2 over every edge.
///
/// The property-testing relaxation buys Theorem 1 its O(1/ε) rounds; without
/// it, the same Phase-2 subroutine still yields an *exact* distributed
/// detector by checking all m edges back-to-back: ⌈m·(⌊k/2⌋+1)⌉ rounds, no
/// randomness, no farness assumption. This module implements that scan —
/// both as the natural "strongest correctness baseline" and as one side of
/// the cost/accuracy trade-off measured by experiment A3 (the tester wins
/// whenever 1/ε ≪ m; the crossover is at ε* ≈ e²ln3·(⌊k/2⌋+2) /
/// (m·(⌊k/2⌋+1))).
#pragma once

#include "core/cycle_detector.hpp"

namespace decycle::core {

struct ScanOptions {
  DetectParams detect;
  bool stop_at_first = true;  ///< early exit once a cycle is found
  util::ThreadPool* pool = nullptr;
};

struct ScanResult {
  bool found = false;
  std::vector<graph::Vertex> witness;  ///< validated cycle when found
  std::size_t edges_checked = 0;
  /// Rounds of the sequential distributed schedule: one Phase-2 execution of
  /// (⌊k/2⌋+1) rounds per checked edge.
  std::uint64_t schedule_rounds = 0;
  std::size_t total_messages = 0;
  std::uint64_t total_bits = 0;
};

/// Runs the single-edge checker on every edge (in index order). Exact: finds
/// a Ck iff one exists. The per-edge executions are independent, so the
/// harness may evaluate them concurrently without changing the result; the
/// reported schedule_rounds always reflects the sequential distributed
/// schedule.
[[nodiscard]] ScanResult exhaustive_ck_scan(const graph::Graph& g,
                                            const graph::IdAssignment& ids,
                                            const ScanOptions& options);

}  // namespace decycle::core
