/// \file budget.hpp
/// \brief Per-round message budgets for the threshold detection family.
///
/// A threshold algorithm bounds its congestion explicitly: every link may
/// carry at most B(g) sequences in phase round g, and a node tracks at most
/// T concurrent edge executions. The schedule below is the B(g) part —
/// a per-round list of caps whose last entry repeats for all later rounds,
/// so "16" is a flat budget and "4,8,16" front-loads the squeeze where the
/// early rounds are cheap. An empty schedule means unlimited (the exhaustive
/// regime the oracle cross-test pins against the exact DFS oracle).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace decycle::core::threshold {

/// Sequences-per-link-per-round caps. Index g is the phase round the bundle
/// is broadcast in (0 = the seed round); past the end the last value holds.
struct BudgetSchedule {
  /// Empty = unlimited on every round. Entries are >= 1 (a zero-entry
  /// schedule would silence the algorithm and is rejected by parse()).
  std::vector<std::size_t> per_round;

  /// Cap for phase round \p g; 0 means unlimited.
  [[nodiscard]] std::size_t at(std::uint64_t g) const noexcept {
    if (per_round.empty()) return 0;
    const std::size_t idx = g < per_round.size() ? static_cast<std::size_t>(g)
                                                 : per_round.size() - 1;
    return per_round[idx];
  }

  [[nodiscard]] bool unlimited() const noexcept { return per_round.empty(); }

  [[nodiscard]] static BudgetSchedule none() { return {}; }
  [[nodiscard]] static BudgetSchedule constant(std::size_t cap) {
    BudgetSchedule out;
    if (cap != 0) out.per_round.push_back(cap);
    return out;
  }

  /// Parses a budget token: `none` (or `0`) for unlimited, `16` for a flat
  /// cap, `4,8,16` for a per-round schedule (last value repeats). Throws
  /// CheckError on malformed numbers, zero entries in a list, or caps above
  /// 2^20 (which would defeat the point of a threshold algorithm).
  [[nodiscard]] static BudgetSchedule parse(std::string_view token);

  /// Canonical token form (round-trips through parse()).
  [[nodiscard]] std::string name() const;

  friend bool operator==(const BudgetSchedule&, const BudgetSchedule&) = default;
};

}  // namespace decycle::core::threshold
