#include "core/threshold/budget.hpp"

#include <charconv>

#include "util/check.hpp"

namespace decycle::core::threshold {

namespace {

constexpr std::size_t kMaxBudget = std::size_t{1} << 20;

std::size_t parse_entry(std::string_view piece) {
  std::size_t out = 0;
  const auto [ptr, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), out);
  DECYCLE_CHECK_MSG(ec == std::errc() && ptr == piece.data() + piece.size(),
                    "budget schedule: expected unsigned integer, got '" + std::string(piece) +
                        "'");
  DECYCLE_CHECK_MSG(out <= kMaxBudget,
                    "budget schedule: cap " + std::string(piece) + " exceeds 2^20");
  return out;
}

}  // namespace

BudgetSchedule BudgetSchedule::parse(std::string_view token) {
  DECYCLE_CHECK_MSG(!token.empty(), "budget schedule: empty token (use 'none' for unlimited)");
  if (token == "none" || token == "0") return none();
  BudgetSchedule out;
  std::size_t start = 0;
  while (start <= token.size()) {
    const std::size_t comma = token.find(',', start);
    const std::string_view piece =
        token.substr(start, comma == std::string_view::npos ? comma : comma - start);
    const std::size_t cap = parse_entry(piece);
    DECYCLE_CHECK_MSG(cap != 0,
                      "budget schedule: a zero entry inside a list would silence the "
                      "algorithm (use 'none' for unlimited)");
    out.per_round.push_back(cap);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string BudgetSchedule::name() const {
  if (per_round.empty()) return "none";
  std::string out;
  for (const std::size_t cap : per_round) {
    if (!out.empty()) out.push_back(',');
    out += std::to_string(cap);
  }
  return out;
}

}  // namespace decycle::core::threshold
