#include "core/threshold/threshold_tester.hpp"

#include <algorithm>
#include <utility>

#include "core/wire.hpp"
#include "core/witness.hpp"
#include "util/check.hpp"

namespace decycle::core::threshold {

namespace {
// Message tags (this family's own wire namespace).
constexpr std::uint64_t kTagRank = 1;
constexpr std::uint64_t kTagBundle = 3;
}  // namespace

ThresholdProgram::ThresholdProgram(const DetectParams& params, const BudgetSchedule& budget,
                                   std::size_t max_tracked, std::size_t sweeps,
                                   std::uint64_t seed, std::uint64_t n, NodeId my_id)
    : params_(params),
      budget_(budget),
      max_tracked_(max_tracked),
      sweeps_(sweeps),
      seed_(seed),
      rank_range_(rank_range_for(n)),
      my_id_(my_id),
      half_(params.k / 2),
      sweep_len_(static_cast<std::uint64_t>(params.k / 2) + 2),
      max_sent_by_round_(half_ + 1, 0) {
  DECYCLE_CHECK_MSG(sweeps_ >= 1, "threshold tester needs at least one sweep");
}

void ThresholdProgram::on_round(congest::Context& ctx,
                                std::span<const congest::Envelope> inbox) {
  const std::uint64_t round = ctx.round();
  const std::uint64_t sweep = round / sweep_len_;
  const std::uint64_t phase = round % sweep_len_;
  if (sweep >= sweeps_) return;

  if (phase == 0) {
    start_sweep(ctx, sweep);
  } else if (phase == 1) {
    seed_executions(ctx, inbox);
  } else {
    bundle_round(ctx, inbox, phase - 1);
  }
}

void ThresholdProgram::start_sweep(congest::Context& ctx, std::size_t sweep) {
  tracked_.clear();
  port_rank_.assign(ctx.degree(), kRankMissing);

  // Same rank protocol as Phase 1 of the tester: the smaller-ID endpoint
  // owns the edge, draws its rank from a per-(seed, sweep, node) stream in
  // port order, and ships it across.
  util::Rng rng = util::Rng(seed_).fork(sweep).fork(my_id_);
  for (std::uint32_t port = 0; port < ctx.degree(); ++port) {
    const NodeId other = ctx.neighbor_id(port);
    if (my_id_ < other) {
      const std::uint64_t rank = draw_rank(rng, rank_range_);
      port_rank_[port] = rank;
      congest::MessageWriter w;
      w.put_u64(kTagRank);
      w.put_u64(rank);
      ctx.send(port, w.finish());
    }
  }
  // Every node runs the seeding phase even without inbound rank mail.
  ctx.request_wakeup_at(ctx.round() + 1);
}

void ThresholdProgram::seed_executions(congest::Context& ctx,
                                       std::span<const congest::Envelope> inbox) {
  for (const congest::Envelope& env : inbox) {
    congest::MessageReader r(env.payload);
    const std::uint64_t tag = r.get_u64();
    DECYCLE_CHECK_MSG(tag == kTagRank, "unexpected message in threshold rank round");
    port_rank_[env.port] = r.get_u64();
  }
  const std::uint64_t sweep = ctx.round() / sweep_len_;
  if (sweep + 1 < sweeps_) {
    ctx.request_wakeup_at((sweep + 1) * sweep_len_);  // next sweep's rank phase
  }
  if (ctx.degree() == 0) return;  // isolated node: nothing to seed

  // Every incident edge with a known rank is a candidate execution; this
  // node is an endpoint of each, so each seeds {(my_id)}. A missing rank
  // (owner's rank message lost) leaves the owner side to seed alone —
  // exactly the tester's fault posture.
  std::vector<EdgePriority> candidates;
  candidates.reserve(ctx.degree());
  for (std::uint32_t port = 0; port < ctx.degree(); ++port) {
    if (port_rank_[port] == kRankMissing) continue;
    const NodeId other = ctx.neighbor_id(port);
    candidates.push_back(
        EdgePriority{port_rank_[port], std::min(my_id_, other), std::max(my_id_, other)});
  }
  std::sort(candidates.begin(), candidates.end());

  const std::size_t cap =
      max_tracked_ == 0 ? candidates.size() : std::min(candidates.size(), max_tracked_);
  stats_.seed_capped += candidates.size() - cap;

  // Reserve up front: bundle entries point at tracked_ elements.
  tracked_.reserve(cap);
  std::vector<std::pair<const EdgePriority*, std::vector<IdSeq>>> out;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    tracked_.push_back(Execution{candidates[i],
                                 EdgeDetectState(params_, my_id_, candidates[i].u,
                                                 candidates[i].v),
                                 {}});
    auto seeds = tracked_.back().state.seed();
    DECYCLE_CHECK(!seeds.empty());  // this node is always an endpoint
    ++stats_.seeded_executions;
    out.emplace_back(&tracked_.back().ep, std::move(seeds));
  }
  stats_.peak_tracked = std::max(stats_.peak_tracked, tracked_.size());
  if (!out.empty()) broadcast_bundles(ctx, 0, out);
}

void ThresholdProgram::deliver(const EdgePriority& ep, std::vector<IdSeq>&& seqs) {
  const auto pos = [&] {
    return std::lower_bound(tracked_.begin(), tracked_.end(), ep,
                            [](const Execution& e, const EdgePriority& p) { return e.ep < p; });
  };
  auto it = pos();
  if (it != tracked_.end() && it->ep == ep) {
    it->pending.insert(it->pending.end(), std::make_move_iterator(seqs.begin()),
                       std::make_move_iterator(seqs.end()));
    return;
  }
  if (max_tracked_ != 0 && tracked_.size() >= max_tracked_) {
    if (!(ep < tracked_.back().ep)) {
      stats_.discarded_sequences += seqs.size();  // lower priority than everything tracked
      return;
    }
    // Evict the worst tracked execution; sequences it had already
    // accumulated this round are squeezed out too and must show up in the
    // discard counter (the "counted, never silently" contract).
    stats_.discarded_sequences += tracked_.back().pending.size();
    tracked_.pop_back();
    ++stats_.evictions;
    it = pos();
  }
  tracked_.insert(it, Execution{ep, EdgeDetectState(params_, my_id_, ep.u, ep.v),
                                std::move(seqs)});
  stats_.peak_tracked = std::max(stats_.peak_tracked, tracked_.size());
}

void ThresholdProgram::bundle_round(congest::Context& ctx,
                                    std::span<const congest::Envelope> inbox, std::uint64_t g) {
  if (g > half_) return;

  // Intake: route every execution's sequences, adopting or evicting under
  // the tracking cap. Envelope order (by port) and wire order make every
  // adoption decision deterministic.
  for (const congest::Envelope& env : inbox) {
    congest::MessageReader r(env.payload);
    const std::uint64_t tag = r.get_u64();
    DECYCLE_CHECK_MSG(tag == kTagBundle, "unexpected message in threshold bundle round");
    const std::uint64_t count = r.get_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      EdgePriority ep;
      ep.rank = r.get_u64();
      ep.u = r.get_u64();
      ep.v = r.get_u64();
      deliver(ep, read_sequences(r));
    }
  }

  // Step every execution that received traffic; tracked_ is stable here.
  std::vector<std::pair<const EdgePriority*, std::vector<IdSeq>>> out;
  for (Execution& ex : tracked_) {
    if (ex.pending.empty()) continue;
    auto to_send = ex.state.step(g, std::move(ex.pending));
    ex.pending.clear();
    overflow_ = overflow_ || ex.state.overflowed();
    if (g == half_) {
      if (ex.state.rejected() && witness_ids_.empty()) {
        witness_ids_ = ex.state.witness_cycle_ids();
        reject_sweep_ = static_cast<std::size_t>(ctx.round() / sweep_len_);
      }
      continue;
    }
    if (!to_send.empty()) out.emplace_back(&ex.ep, std::move(to_send));
  }
  if (!out.empty()) broadcast_bundles(ctx, g, out);
}

void ThresholdProgram::broadcast_bundles(
    congest::Context& ctx, std::uint64_t g,
    std::vector<std::pair<const EdgePriority*, std::vector<IdSeq>>>& out) {
  // Per-link budget: keep sequences in priority order (out is already
  // sorted by execution priority), truncate the rest. One merged message
  // per link keeps the CONGEST one-slot discipline.
  const std::size_t cap = budget_.at(g);
  std::size_t remaining = cap == 0 ? ~std::size_t{0} : cap;
  std::size_t kept_execs = 0;
  std::size_t kept_seqs = 0;
  std::vector<std::size_t> keep(out.size(), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    keep[i] = std::min(out[i].second.size(), remaining);
    remaining -= keep[i];
    stats_.budget_truncated += out[i].second.size() - keep[i];
    if (keep[i] != 0) ++kept_execs;
    kept_seqs += keep[i];
  }
  if (kept_seqs == 0) return;  // budget swallowed the whole round

  congest::MessageWriter w;
  w.put_u64(kTagBundle);
  w.put_u64(kept_execs);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (keep[i] == 0) continue;
    w.put_u64(out[i].first->rank);
    w.put_u64(out[i].first->u);
    w.put_u64(out[i].first->v);
    write_sequences(w, std::span<const IdSeq>(out[i].second.data(), keep[i]));
  }
  max_sent_by_round_[g] = std::max(max_sent_by_round_[g], kept_seqs);
  ctx.send_all(w.finish());
}

ThresholdVerdict test_ck_freeness_threshold(const graph::Graph& g,
                                            const graph::IdAssignment& ids,
                                            const ThresholdOptions& options) {
  DECYCLE_CHECK_MSG(options.k >= 3, "k must be at least 3");  // before the O(m) table build
  congest::Simulator sim(g, ids);
  return test_ck_freeness_threshold(sim, options);
}

ThresholdVerdict test_ck_freeness_threshold(congest::Simulator& sim,
                                            const ThresholdOptions& options) {
  DECYCLE_CHECK_MSG(options.k >= 3, "k must be at least 3");
  DECYCLE_CHECK_MSG(options.sweeps >= 1, "threshold tester needs at least one sweep");
  const graph::Graph& g = sim.graph();
  const graph::IdAssignment& ids = sim.ids();

  ThresholdVerdict out;
  TestVerdict& v = out.verdict;
  v.repetitions = options.sweeps;

  DetectParams params = options.detect;
  params.k = options.k;

  sim.reset([&](graph::Vertex vert) {
    return std::make_unique<ThresholdProgram>(params, options.budget, options.max_tracked,
                                              options.sweeps, options.seed, g.num_vertices(),
                                              ids.id_of(vert));
  });

  congest::Simulator::Options sim_options;
  sim_options.pool = options.pool;
  sim_options.record_rounds = options.record_rounds;
  sim_options.drop = options.drop;
  sim_options.delivery = options.delivery;
  // Same shape as the tester's bound: sweeps full windows of ⌊k/2⌋+2
  // rounds (the last activity is the final-check round at offset
  // sweep_len-1), plus delivery slack.
  sim_options.max_rounds =
      options.sweeps * (static_cast<std::uint64_t>(options.k / 2) + 2) + 4;
  v.stats = sim.run(sim_options);
  v.truncated = !v.stats.halted;

  sim.for_each_program<ThresholdProgram>([&](graph::Vertex vert, const ThresholdProgram& prog) {
    v.overflow = v.overflow || prog.overflowed();
    v.total_switches += prog.stats().evictions;
    v.total_discarded += prog.stats().discarded_sequences;
    for (const std::size_t count : prog.max_sent_by_round()) {
      v.max_bundle_sequences = std::max(v.max_bundle_sequences, count);
    }
    out.threshold.seeded_executions += prog.stats().seeded_executions;
    out.threshold.seed_capped += prog.stats().seed_capped;
    out.threshold.evictions += prog.stats().evictions;
    out.threshold.discarded_sequences += prog.stats().discarded_sequences;
    out.threshold.budget_truncated += prog.stats().budget_truncated;
    out.threshold.peak_tracked = std::max(out.threshold.peak_tracked, prog.stats().peak_tracked);
    if (prog.rejected()) {
      v.accepted = false;
      v.rejecting_nodes += 1;
      if (v.witness.empty()) {
        if (options.validate_witnesses) {
          v.witness = validated_witness_vertices(g, ids, prog.witness_ids());
        } else {
          for (const NodeId id : prog.witness_ids()) v.witness.push_back(ids.vertex_of(id));
        }
      }
    }
    (void)vert;
  });
  return out;
}

}  // namespace decycle::core::threshold
