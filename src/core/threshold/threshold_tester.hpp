/// \file threshold_tester.hpp
/// \brief Threshold-based Ck-detection family (competitor to Theorem 1).
///
/// Where the FO17 tester amplifies a single randomly selected edge execution
/// over many repetitions, the threshold family — in the spirit of
/// Fraigniaud–Luce–Todinca's threshold-based CONGEST algorithms and the
/// congested-clique "check all edges at once" style of Censor-Hillel et
/// al. — runs Phase 2 for *every* edge simultaneously in one sweep and
/// keeps the congestion bounded by explicit thresholds instead of by
/// random selection:
///
///   * every edge execution is identified by its (rank, u, v) priority,
///     ranks drawn per sweep exactly as in Phase 1 (phase1.hpp);
///   * a node tracks at most `max_tracked` concurrent executions; fresh
///     traffic for a higher-priority edge evicts the worst tracked one,
///     lower-priority traffic is discarded (counted, never silently);
///   * each link carries at most budget.at(g) sequences in phase round g
///     (one merged bundle message per link per round — the CONGEST slot
///     discipline holds); overflowing sequences are truncated in priority
///     order (counted per node).
///
/// Soundness is inherited, not argued: a node rejects only when an
/// execution's final check produces a witness pair, and every witness is
/// validated edge-by-edge against the input graph (witness.hpp), so the
/// family can never reject a Ck-free graph no matter how aggressive the
/// budgets are. Completeness degrades gracefully with the thresholds: with
/// unlimited budgets (`BudgetSchedule::none()`, max_tracked = 0) one sweep
/// is an exhaustive parallel edge scan and detection is deterministic —
/// the regime the oracle cross-test pins against the exact DFS oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/simulator.hpp"
#include "core/detect_state.hpp"
#include "core/phase1.hpp"
#include "core/tester.hpp"
#include "core/threshold/budget.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace decycle::core::threshold {

struct ThresholdOptions {
  unsigned k = 5;
  std::uint64_t seed = 1;
  /// Independent sweeps with fresh ranks; priorities reshuffle which
  /// executions survive the thresholds, so extra sweeps buy completeness
  /// back when the budgets bite. 1 is exhaustive when budgets are off.
  std::size_t sweeps = 1;
  BudgetSchedule budget = BudgetSchedule::constant(16);
  std::size_t max_tracked = 8;  ///< executions tracked per node; 0 = unlimited
  DetectParams detect;          ///< k field is overwritten with ThresholdOptions::k
  bool validate_witnesses = true;
  bool record_rounds = false;
  util::ThreadPool* pool = nullptr;
  congest::Simulator::DropFilter drop;  ///< optional message-loss adversary
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
};

/// Budget/threshold instrumentation aggregated over all nodes and sweeps.
struct ThresholdStats {
  std::uint64_t seeded_executions = 0;   ///< executions seeded at an endpoint
  std::uint64_t seed_capped = 0;         ///< incident edges not seeded (tracking cap)
  std::uint64_t evictions = 0;           ///< executions evicted by higher priority
  std::uint64_t discarded_sequences = 0; ///< traffic for untracked executions
  std::uint64_t budget_truncated = 0;    ///< sequences cut by the link budget
  std::size_t peak_tracked = 0;          ///< max concurrent executions at any node
};

/// The family's verdict: the same surface test_ck_freeness reports (witness
/// extraction, Lemma-3 bundle instrumentation, run stats — `repetitions`
/// holds the sweep count, `total_switches` the evictions and
/// `total_discarded` the discarded sequences), plus the threshold counters.
struct ThresholdVerdict {
  TestVerdict verdict;
  ThresholdStats threshold;
};

/// The per-node program. One instance per vertex; drives one EdgeDetectState
/// per tracked execution and merges all bundles into one message per link.
class ThresholdProgram final : public congest::NodeProgram {
 public:
  ThresholdProgram(const DetectParams& params, const BudgetSchedule& budget,
                   std::size_t max_tracked, std::size_t sweeps, std::uint64_t seed,
                   std::uint64_t n, NodeId my_id);

  void on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) override;

  [[nodiscard]] bool rejected() const noexcept { return !witness_ids_.empty(); }
  [[nodiscard]] const std::vector<NodeId>& witness_ids() const noexcept { return witness_ids_; }
  [[nodiscard]] std::size_t rejecting_sweep() const noexcept { return reject_sweep_; }
  [[nodiscard]] bool overflowed() const noexcept { return overflow_; }
  [[nodiscard]] const ThresholdStats& stats() const noexcept { return stats_; }
  /// max sequences in the merged bundle broadcast at phase round g
  /// (index 0 = seed round) — Lemma-3-style instrumentation.
  [[nodiscard]] std::span<const std::size_t> max_sent_by_round() const noexcept {
    return max_sent_by_round_;
  }

 private:
  /// One tracked edge execution. `pending` accumulates this round's inbound
  /// sequences before the state machine steps once per round.
  struct Execution {
    EdgePriority ep;
    EdgeDetectState state;
    std::vector<IdSeq> pending;
  };

  void start_sweep(congest::Context& ctx, std::size_t sweep);
  void seed_executions(congest::Context& ctx, std::span<const congest::Envelope> inbox);
  void bundle_round(congest::Context& ctx, std::span<const congest::Envelope> inbox,
                    std::uint64_t g);
  /// Adds sequences to the execution for \p ep, adopting (and possibly
  /// evicting) under the tracking cap. May create the execution's state.
  void deliver(const EdgePriority& ep, std::vector<IdSeq>&& seqs);
  /// Broadcasts every execution's outgoing bundle as one merged message,
  /// truncated to budget_.at(g) sequences in priority order.
  void broadcast_bundles(congest::Context& ctx, std::uint64_t g,
                         std::vector<std::pair<const EdgePriority*, std::vector<IdSeq>>>& out);

  DetectParams params_;
  BudgetSchedule budget_;
  std::size_t max_tracked_;
  std::size_t sweeps_;
  std::uint64_t seed_;
  std::uint64_t rank_range_;
  NodeId my_id_;
  unsigned half_;
  std::uint64_t sweep_len_;

  // Per-sweep state.
  std::vector<std::uint64_t> port_rank_;  ///< rank per incident edge (by port)
  std::vector<Execution> tracked_;        ///< sorted ascending by priority

  // Outputs / instrumentation.
  std::vector<NodeId> witness_ids_;
  std::size_t reject_sweep_ = 0;
  bool overflow_ = false;
  ThresholdStats stats_;
  std::vector<std::size_t> max_sent_by_round_;
};

/// Runs the threshold family on a fresh simulator for \p g.
[[nodiscard]] ThresholdVerdict test_ck_freeness_threshold(const graph::Graph& g,
                                                          const graph::IdAssignment& ids,
                                                          const ThresholdOptions& options);

/// Same, but on an existing Simulator for the topology (reset(factory)
/// reuse contract — bit-identical to the fresh-build overload).
[[nodiscard]] ThresholdVerdict test_ck_freeness_threshold(congest::Simulator& sim,
                                                          const ThresholdOptions& options);

}  // namespace decycle::core::threshold
