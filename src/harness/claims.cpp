#include "harness/claims.hpp"

#include <cstdio>

namespace decycle::harness {

ClaimSet::ClaimSet(std::string experiment_name) : name_(std::move(experiment_name)) {}

bool ClaimSet::check(const std::string& claim, bool holds) {
  ++total_;
  if (!holds) {
    ++failures_;
    failed_claims_.push_back(claim);
  }
  return holds;
}

int ClaimSet::summarize() const {
  std::printf("EXPERIMENT %s: %zu/%zu claims hold%s\n", name_.c_str(), total_ - failures_, total_,
              failures_ == 0 ? "" : " — FAILURES:");
  for (const auto& claim : failed_claims_) {
    std::printf("  FAILED: %s\n", claim.c_str());
  }
  std::fflush(stdout);
  return failures_ == 0 ? 0 : 1;
}

}  // namespace decycle::harness
