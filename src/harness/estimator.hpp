/// \file estimator.hpp
/// \brief Acceptance/rejection-rate estimation over independent trials.
///
/// The completeness experiments (T2) measure Pr[reject] over many
/// independent tester executions. Trials are embarrassingly parallel: each
/// gets its own seed derived from (base_seed, trial index), so the estimate
/// is identical for any thread count. Wilson intervals quantify the
/// uncertainty so benches can assert "detection >= 2/3" honestly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/detector.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace decycle::harness {

/// Trial \p trial's seed. The single definition shared by estimate_rate,
/// estimate_rate_lanes, and the lab runner — their estimates are
/// bit-compatible because they all derive seeds here.
[[nodiscard]] constexpr std::uint64_t trial_seed(std::uint64_t base_seed,
                                                 std::size_t trial) noexcept {
  return util::splitmix64(base_seed ^ util::splitmix64(trial + 1));
}

/// Lane \p lane's contiguous [begin, end) block of \p total trials.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> lane_range(
    std::size_t total, std::size_t lane, std::size_t lanes) noexcept {
  return {total * lane / lanes, total * (lane + 1) / lanes};
}

/// How many lanes \p trials split into on \p pool: one per worker, never
/// more than trials, 1 without a pool.
[[nodiscard]] inline std::size_t lane_count(const util::ThreadPool* pool,
                                            std::size_t trials) noexcept {
  if (pool == nullptr) return 1;
  return std::max<std::size_t>(1, std::min(pool->size(), trials));
}

struct RateEstimate {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  util::ProportionInterval interval{0, 0, 1};

  [[nodiscard]] double rate() const noexcept { return interval.estimate; }
};

/// Runs \p trial(trial_index, trial_seed) `trials` times (in parallel when a
/// pool is given) and reports the success rate with a 95% Wilson interval.
[[nodiscard]] RateEstimate estimate_rate(
    const std::function<bool(std::size_t, std::uint64_t)>& trial, std::size_t trials,
    std::uint64_t base_seed, util::ThreadPool* pool = nullptr);

/// One trial: (trial_index, trial_seed) -> success.
using TrialFn = std::function<bool(std::size_t, std::uint64_t)>;

/// Builds the trial functor for one execution lane. A lane is a contiguous
/// block of trial indices run serially on one worker; the functor owns
/// whatever expensive per-lane state the trials share — typically a
/// congest::Simulator reset between trials instead of rebuilt
/// (Simulator::reset), which is the hot-path win for estimator-heavy
/// workloads like T2 completeness sweeps.
using LaneFactory = std::function<TrialFn(std::size_t lane)>;

/// Like estimate_rate, but trials are partitioned into one lane per worker
/// so per-lane state amortizes across the lane's trials. The trial seed
/// derivation is identical to estimate_rate's — the estimate is
/// bit-identical for any thread count, any lane count, and to the unlaned
/// overload itself.
[[nodiscard]] RateEstimate estimate_rate_lanes(const LaneFactory& make_lane, std::size_t trials,
                                               std::uint64_t base_seed,
                                               util::ThreadPool* pool = nullptr);

/// Lane factory running any registry detector on one fixed topology: each
/// lane owns a Simulator for (g, ids) that the detector resets between
/// trials (the reuse contract), a trial's "success" is rejection, and the
/// per-trial seed overwrites \p base options' seed. This is the single way
/// rate-estimation benches drive detection algorithms — swap the detector,
/// not the plumbing. \p detector, \p g, and \p ids must outlive the
/// returned factory and every TrialFn it builds.
[[nodiscard]] LaneFactory detector_lanes(const core::Detector& detector, const graph::Graph& g,
                                         const graph::IdAssignment& ids,
                                         core::DetectorOptions base);

}  // namespace decycle::harness
