/// \file estimator.hpp
/// \brief Acceptance/rejection-rate estimation over independent trials.
///
/// The completeness experiments (T2) measure Pr[reject] over many
/// independent tester executions. Trials are embarrassingly parallel: each
/// gets its own seed derived from (base_seed, trial index), so the estimate
/// is identical for any thread count. Wilson intervals quantify the
/// uncertainty so benches can assert "detection >= 2/3" honestly.
#pragma once

#include <cstdint>
#include <functional>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace decycle::harness {

struct RateEstimate {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  util::ProportionInterval interval{0, 0, 1};

  [[nodiscard]] double rate() const noexcept { return interval.estimate; }
};

/// Runs \p trial(trial_index, trial_seed) `trials` times (in parallel when a
/// pool is given) and reports the success rate with a 95% Wilson interval.
[[nodiscard]] RateEstimate estimate_rate(
    const std::function<bool(std::size_t, std::uint64_t)>& trial, std::size_t trials,
    std::uint64_t base_seed, util::ThreadPool* pool = nullptr);

}  // namespace decycle::harness
