/// \file estimator.hpp
/// \brief Acceptance/rejection-rate estimation over independent trials.
///
/// The completeness experiments (T2) measure Pr[reject] over many
/// independent tester executions. Trials are embarrassingly parallel: each
/// gets its own seed derived from (base_seed, trial index), so the estimate
/// is identical for any thread count. Wilson intervals quantify the
/// uncertainty so benches can assert "detection >= 2/3" honestly.
///
/// Since the engine refactor (DESIGN.md §12) the lane plumbing lives in
/// engine/lanes.hpp and the detector-driving paths execute through the
/// shared DetectionEngine; the harness names below are thin veneers kept so
/// every historical call site (and the seed-stability goldens) read
/// unchanged.
#pragma once

#include <cstdint>
#include <functional>

#include "core/detector.hpp"
#include "engine/engine.hpp"
#include "engine/lanes.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace decycle::harness {

/// Seed/lane primitives — the single definitions, re-exported from the
/// engine so pre-refactor call sites (and pinned golden seed values) keep
/// compiling against harness::.
using engine::lane_count;
using engine::lane_range;
using engine::trial_seed;

struct RateEstimate {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  util::ProportionInterval interval{0, 0, 1};

  [[nodiscard]] double rate() const noexcept { return interval.estimate; }
};

/// Runs \p trial(trial_index, trial_seed) `trials` times (in parallel when a
/// pool is given) and reports the success rate with a 95% Wilson interval.
[[nodiscard]] RateEstimate estimate_rate(
    const std::function<bool(std::size_t, std::uint64_t)>& trial, std::size_t trials,
    std::uint64_t base_seed, util::ThreadPool* pool = nullptr);

/// One trial: (trial_index, trial_seed) -> success.
using TrialFn = std::function<bool(std::size_t, std::uint64_t)>;

/// Builds the trial functor for one execution lane. A lane is a contiguous
/// block of trial indices run serially on one worker; the functor owns
/// whatever expensive per-lane state the trials share — typically a leased
/// engine session whose Simulator resets between trials instead of being
/// rebuilt, which is the hot-path win for estimator-heavy workloads like T2
/// completeness sweeps.
using LaneFactory = std::function<TrialFn(std::size_t lane)>;

/// Like estimate_rate, but trials are partitioned into one lane per worker
/// (engine::for_lanes) so per-lane state amortizes across the lane's
/// trials. The trial seed derivation is identical to estimate_rate's — the
/// estimate is bit-identical for any thread count, any lane count, and to
/// the unlaned overload itself.
[[nodiscard]] RateEstimate estimate_rate_lanes(const LaneFactory& make_lane, std::size_t trials,
                                               std::uint64_t base_seed,
                                               util::ThreadPool* pool = nullptr);

/// Lane factory running any registry detector on one fixed topology: each
/// lane leases a session for (g, ids) from the process-wide
/// engine::shared_engine() — a cache hit when the same topology was
/// estimated before — and the detector resets it between trials (the reuse
/// contract). A trial's "success" is rejection; the per-trial seed
/// overwrites \p base options' seed. This is the single way rate-estimation
/// benches drive detection algorithms — swap the detector, not the
/// plumbing. \p detector, \p g, and \p ids must outlive the returned
/// factory and every TrialFn it builds.
[[nodiscard]] LaneFactory detector_lanes(const core::Detector& detector, const graph::Graph& g,
                                         const graph::IdAssignment& ids,
                                         core::DetectorOptions base);

/// The run_batch-native estimator: builds one engine::Query per trial
/// (seed = trial_seed(base_seed, i), model = the detector's default), runs
/// the batch through \p eng — leased sessions, cost-uniform lanes on eng's
/// pool — and folds rejections into a Wilson estimate. Bit-identical to
/// estimate_rate_lanes(detector_lanes(...)) on the same inputs.
[[nodiscard]] RateEstimate estimate_detector_rate(const engine::DetectionEngine& eng,
                                                  const engine::PinnedGraphPtr& graph,
                                                  const core::Detector& detector,
                                                  const core::DetectorOptions& base,
                                                  std::size_t trials, std::uint64_t base_seed);

}  // namespace decycle::harness
