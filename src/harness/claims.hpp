/// \file claims.hpp
/// \brief Pass/fail bookkeeping for experiment binaries.
///
/// Each bench checks the paper's quantitative claims row by row (e.g.
/// "detection rate >= 2/3", "|S| <= (k-t+1)^(t-1)") and exits non-zero when
/// any claim fails, so `for b in build/bench/*; do $b; done` doubles as a
/// reproduction audit.
#pragma once

#include <string>
#include <vector>

namespace decycle::harness {

class ClaimSet {
 public:
  explicit ClaimSet(std::string experiment_name);

  /// Records one claim outcome; returns \p holds for inline use.
  bool check(const std::string& claim, bool holds);

  [[nodiscard]] std::size_t failures() const noexcept { return failures_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Prints "EXPERIMENT <name>: n/m claims hold" (+ failed claim list) to
  /// stdout and returns the process exit code (0 iff all claims hold).
  int summarize() const;

 private:
  std::string name_;
  std::size_t total_ = 0;
  std::size_t failures_ = 0;
  std::vector<std::string> failed_claims_;
};

}  // namespace decycle::harness
