#include "harness/estimator.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "congest/simulator.hpp"
#include "util/rng.hpp"

namespace decycle::harness {

RateEstimate estimate_rate(const std::function<bool(std::size_t, std::uint64_t)>& trial,
                           std::size_t trials, std::uint64_t base_seed, util::ThreadPool* pool) {
  std::atomic<std::uint64_t> successes{0};
  const auto run_one = [&](std::size_t i) {
    if (trial(i, trial_seed(base_seed, i))) successes.fetch_add(1, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, run_one);
  } else {
    for (std::size_t i = 0; i < trials; ++i) run_one(i);
  }
  RateEstimate out;
  out.trials = trials;
  out.successes = successes.load();
  out.interval = util::wilson_interval(out.successes, out.trials);
  return out;
}

RateEstimate estimate_rate_lanes(const LaneFactory& make_lane, std::size_t trials,
                                 std::uint64_t base_seed, util::ThreadPool* pool) {
  if (trials == 0) {
    // Nothing to run: in particular make_lane is never invoked, so callers
    // don't pay for per-lane state (a Simulator build) they won't use.
    RateEstimate empty;
    empty.interval = util::wilson_interval(0, 0);
    return empty;
  }
  const std::size_t lanes = lane_count(pool, trials);
  // Per-trial outcomes are stored by index and reduced serially, so the
  // estimate cannot depend on lane boundaries or scheduling.
  std::vector<std::uint8_t> outcome(trials, 0);
  const auto run_lane = [&](std::size_t lane) {
    const TrialFn trial = make_lane(lane);
    const auto [begin, end] = lane_range(trials, lane, lanes);
    for (std::size_t i = begin; i < end; ++i) {
      outcome[i] = trial(i, trial_seed(base_seed, i)) ? 1 : 0;
    }
  };
  // lane_count never reports more than one lane without a pool, but the
  // dispatch below re-checks the pointer so a future lane policy can't
  // turn a serial call into a null deref.
  if (pool != nullptr && lanes > 1) {
    pool->for_weighted(lanes, nullptr, run_lane);
  } else {
    run_lane(0);
  }
  RateEstimate out;
  out.trials = trials;
  for (const std::uint8_t ok : outcome) out.successes += ok;
  out.interval = util::wilson_interval(out.successes, out.trials);
  return out;
}

LaneFactory detector_lanes(const core::Detector& detector, const graph::Graph& g,
                           const graph::IdAssignment& ids, core::DetectorOptions base) {
  return [&detector, &g, &ids, base = std::move(base)](std::size_t) -> TrialFn {
    // One topology-only Simulator per lane; shared_ptr keeps it alive for
    // the copyable std::function wrapper.
    auto sim = std::make_shared<congest::Simulator>(g, ids);
    return [&detector, base, sim](std::size_t, std::uint64_t seed) {
      core::DetectorOptions options = base;
      options.seed = seed;
      return !detector.run(*sim, options).accepted;
    };
  };
}

}  // namespace decycle::harness
