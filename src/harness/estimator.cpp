#include "harness/estimator.hpp"

#include <atomic>

#include "util/rng.hpp"

namespace decycle::harness {

RateEstimate estimate_rate(const std::function<bool(std::size_t, std::uint64_t)>& trial,
                           std::size_t trials, std::uint64_t base_seed, util::ThreadPool* pool) {
  std::atomic<std::uint64_t> successes{0};
  const auto run_one = [&](std::size_t i) {
    const std::uint64_t seed = util::splitmix64(base_seed ^ util::splitmix64(i + 1));
    if (trial(i, seed)) successes.fetch_add(1, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, run_one);
  } else {
    for (std::size_t i = 0; i < trials; ++i) run_one(i);
  }
  RateEstimate out;
  out.trials = trials;
  out.successes = successes.load();
  out.interval = util::wilson_interval(out.successes, out.trials);
  return out;
}

}  // namespace decycle::harness
