#include "harness/estimator.hpp"

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "congest/comm_model.hpp"
#include "engine/graph_store.hpp"
#include "engine/session_pool.hpp"

namespace decycle::harness {

RateEstimate estimate_rate(const std::function<bool(std::size_t, std::uint64_t)>& trial,
                           std::size_t trials, std::uint64_t base_seed, util::ThreadPool* pool) {
  std::atomic<std::uint64_t> successes{0};
  const auto run_one = [&](std::size_t i) {
    if (trial(i, trial_seed(base_seed, i))) successes.fetch_add(1, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, run_one);
  } else {
    for (std::size_t i = 0; i < trials; ++i) run_one(i);
  }
  RateEstimate out;
  out.trials = trials;
  out.successes = successes.load();
  out.interval = util::wilson_interval(out.successes, out.trials);
  return out;
}

RateEstimate estimate_rate_lanes(const LaneFactory& make_lane, std::size_t trials,
                                 std::uint64_t base_seed, util::ThreadPool* pool) {
  if (trials == 0) {
    // Nothing to run: in particular make_lane is never invoked, so callers
    // don't pay for per-lane state (a session lease) they won't use.
    RateEstimate empty;
    empty.interval = util::wilson_interval(0, 0);
    return empty;
  }
  // Per-trial outcomes are stored by index and reduced serially, so the
  // estimate cannot depend on lane boundaries or scheduling.
  std::vector<std::uint8_t> outcome(trials, 0);
  engine::for_lanes(pool, trials, nullptr,
                    [&](std::size_t lane, std::size_t begin, std::size_t end) {
                      const TrialFn trial = make_lane(lane);
                      for (std::size_t i = begin; i < end; ++i) {
                        outcome[i] = trial(i, trial_seed(base_seed, i)) ? 1 : 0;
                      }
                    });
  RateEstimate out;
  out.trials = trials;
  for (const std::uint8_t ok : outcome) out.successes += ok;
  out.interval = util::wilson_interval(out.successes, out.trials);
  return out;
}

LaneFactory detector_lanes(const core::Detector& detector, const graph::Graph& g,
                           const graph::IdAssignment& ids, core::DetectorOptions base) {
  // Pin once per factory (one O(n + m) hash sweep); every lane leases a
  // session for the pin from the shared engine, so a later estimate on the
  // same topology content starts warm.
  engine::PinnedGraphPtr pinned = engine::pin(g, ids);
  return [&detector, base = std::move(base),
          pinned = std::move(pinned)](std::size_t) -> TrialFn {
    auto& eng = engine::shared_engine();
    const congest::CommModel& model = core::default_comm_model(detector.capabilities());
    // shared_ptr keeps the move-only lease alive inside the copyable
    // std::function wrapper; release on lane teardown returns the session
    // to the cache.
    auto lease = std::make_shared<engine::SessionPool::Lease>(
        eng.sessions().lease(pinned, model, base.delivery));
    return [&detector, base, lease, pinned](std::size_t, std::uint64_t seed) {
      core::DetectorOptions options = base;
      options.seed = seed;
      return !detector.run(lease->sim(), options).accepted;
    };
  };
}

RateEstimate estimate_detector_rate(const engine::DetectionEngine& eng,
                                    const engine::PinnedGraphPtr& graph,
                                    const core::Detector& detector,
                                    const core::DetectorOptions& base, std::size_t trials,
                                    std::uint64_t base_seed) {
  const congest::CommModel& model = core::default_comm_model(detector.capabilities());
  std::vector<engine::Query> queries(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    queries[i].detector = &detector;
    queries[i].options = base;
    queries[i].options.seed = trial_seed(base_seed, i);
    queries[i].model = &model;
  }
  const std::vector<core::Verdict> verdicts = eng.run_batch(graph, queries);
  RateEstimate out;
  out.trials = trials;
  for (const core::Verdict& v : verdicts) out.successes += v.accepted ? 0 : 1;
  out.interval = util::wilson_interval(out.successes, out.trials);
  return out;
}

}  // namespace decycle::harness
