/// \file cli.hpp
/// \brief Tiny --key=value command-line parser for examples and benches.
///
/// Every experiment binary accepts overrides like `--n=100000 --k=7
/// --seed=42`; unknown keys are an error so typos do not silently run the
/// default workload. Not a general-purpose CLI library — exactly what the
/// executables in this repository need.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace decycle::util {

class Args {
 public:
  /// Parses argv. Accepts "--key=value" and "--flag" (value "1").
  /// Throws CheckError on malformed arguments.
  Args(int argc, const char* const* argv);

  /// Typed access with defaults. Throws CheckError if the value does not parse.
  [[nodiscard]] std::uint64_t get_u64(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] std::int64_t get_i64(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key, std::string_view fallback) const;

  [[nodiscard]] bool has(std::string_view key) const;

  /// Keys that were provided but never read — call at the end of main to
  /// reject typos. Returns empty vector when everything was consumed.
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Key=value pairs not read so far, in key order, marked as consumed.
  /// Lets a binary peel off its own flags and forward the rest to a second
  /// parser that owns the error reporting (decycle_lab forwards these as
  /// scenario-matrix tokens).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> take_unconsumed() const;

  /// Convenience: throws if unused() is non-empty.
  void reject_unknown() const;

 private:
  [[nodiscard]] std::optional<std::string> lookup(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> used_;
};

}  // namespace decycle::util
