#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace decycle::util {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DECYCLE_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  if (!rows_.empty()) {
    DECYCLE_CHECK_MSG(rows_.back().size() == headers_.size(),
                      "previous table row has wrong number of cells");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string text) {
  DECYCLE_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  DECYCLE_CHECK_MSG(rows_.back().size() < headers_.size(), "too many cells in table row");
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(const char* text) { return cell(std::string(text)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned value) { return cell(std::to_string(value)); }
Table& Table::cell(double value, int precision) { return cell(format_double(value, precision)); }
Table& Table::cell_ok(bool ok) { return cell(ok ? std::string("PASS") : std::string("FAIL")); }

void Table::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      out << ' ' << text;
      for (std::size_t pad = text.size(); pad < widths[c]; ++pad) out << ' ';
      out << " |";
    }
    out << '\n';
  };

  if (!title.empty()) out << "== " << title << " ==\n";
  print_row(headers_);
  out << "|";
  for (const std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) out << '-';
    out << '|';
  }
  out << '\n';
  for (const auto& r : rows_) print_row(r);
  out.flush();
}

}  // namespace decycle::util
