/// \file table.hpp
/// \brief Fixed-width ASCII table printer used by every experiment bench.
///
/// The experiment binaries print one table per paper claim; this class keeps
/// the formatting consistent (aligned columns, a header rule, optional
/// per-cell PASS/FAIL markers) so EXPERIMENTS.md can quote bench output
/// verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace decycle::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(std::string text);
  Table& cell(const char* text);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  Table& cell(unsigned value);
  /// Formats with \p precision digits after the decimal point.
  Table& cell(double value, int precision = 4);
  /// PASS / FAIL marker cell.
  Table& cell_ok(bool ok);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders the table (with title if non-empty) to \p out.
  void print(std::ostream& out, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace decycle::util
