#include "util/work_steal.hpp"

#include <algorithm>
#include <thread>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace decycle::util {

// Memory-ordering notes (after Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models"): the seq_cst fences order the
// owner's bottom decrement against the thief's top read; the buffer itself
// needs no ordering because it is immutable while a batch runs.

bool WorkStealScheduler::Deque::take(std::uint32_t& out) noexcept {
  const std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
  bottom.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top.load(std::memory_order_relaxed);
  if (t > b) {  // deque already empty
    bottom.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  out = items[static_cast<std::size_t>(b)];
  if (t == b) {
    // Last item: race the thieves for it.
    const bool won = top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                 std::memory_order_relaxed);
    bottom.store(b + 1, std::memory_order_relaxed);
    return won;
  }
  return true;
}

bool WorkStealScheduler::Deque::steal(std::uint32_t& out) noexcept {
  std::int64_t t = top.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom.load(std::memory_order_acquire);
  if (t >= b) return false;
  out = items[static_cast<std::size_t>(t)];
  return top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed);
}

void WorkStealScheduler::lane_loop(std::size_t lane, std::size_t lanes, IndexFnRef fn) {
  const auto execute = [&](std::uint32_t chunk) {
    try {
      fn(chunk);
    } catch (...) {
      const std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  };

  // Drain our own deque first (bottom side, cache-warm order).
  Deque& own = *deques_[lane];
  std::uint32_t chunk = 0;
  while (own.take(chunk)) execute(chunk);

  // Then steal until the whole batch is done. A full unsuccessful sweep
  // with work still outstanding means the tail chunks are executing on
  // other lanes — yield instead of hammering their cache lines.
  while (remaining_.load(std::memory_order_acquire) != 0) {
    bool stole = false;
    for (std::size_t i = 1; i < lanes; ++i) {
      Deque& victim = *deques_[(lane + i) % lanes];
      while (victim.steal(chunk)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        execute(chunk);
        stole = true;
      }
    }
    if (!stole && remaining_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }
}

void WorkStealScheduler::run(ThreadPool& pool, std::size_t count, const std::uint64_t* weights,
                             IndexFnRef fn) {
  if (count == 0) return;
  if (pool.size() == 0 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // One batch in flight per scheduler; concurrent external callers
  // serialize here (and again on the pool's own batch lock below).
  const std::lock_guard run_lock(run_mutex_);

  const std::size_t lanes = std::min(pool.size() + 1, count);
  while (deques_.size() < lanes) deques_.push_back(std::make_unique<Deque>());

  // Cost-weighted initial split: lane l receives the contiguous chunk run
  // that carries its fair share of the total weight, so every lane starts
  // with roughly equal *work* even when chunk costs are wildly skewed;
  // stealing mops up whatever the estimate missed. Every lane gets at
  // least one chunk (lanes <= count).
  const auto weight_of = [&](std::size_t i) -> std::uint64_t {
    return weights != nullptr ? weights[i] : 1;
  };
  std::uint64_t total = 0;
  for (std::size_t i = 0; weights != nullptr && i < count; ++i) total += weights[i];
  if (weights == nullptr) total = count;

  std::size_t next = 0;
  std::uint64_t prefix = 0;
  for (std::size_t l = 0; l < lanes; ++l) {
    Deque& d = *deques_[l];
    d.items.clear();
    // Stop early enough that each of the lanes - 1 - l later lanes still
    // gets a chunk; the last lane absorbs everything left.
    const std::size_t hard_end = count - (lanes - 1 - l);
    const std::uint64_t target = l + 1 == lanes ? ~std::uint64_t{0} : total * (l + 1) / lanes;
    do {
      d.items.push_back(static_cast<std::uint32_t>(next));
      prefix += weight_of(next);
      ++next;
    } while (next < hard_end && prefix < target);
    d.top.store(0, std::memory_order_relaxed);
    d.bottom.store(static_cast<std::int64_t>(d.items.size()), std::memory_order_relaxed);
  }
  DECYCLE_CHECK_MSG(next == count, "work-steal split dropped chunks");

  remaining_.store(count, std::memory_order_relaxed);
  first_error_ = nullptr;

  const auto lane_fn = [&](std::size_t lane) { lane_loop(lane, lanes, fn); };
  pool.run_lanes(lanes, lane_fn);

  if (first_error_) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace decycle::util
