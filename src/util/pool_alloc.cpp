#include "util/pool_alloc.hpp"

#include <bit>
#include <new>

namespace decycle::util {

std::size_t PoolAllocator::class_for(std::size_t bytes) noexcept {
  const std::size_t clamped = bytes < class_bytes(0) ? class_bytes(0) : bytes;
  const auto log = static_cast<std::size_t>(std::bit_width(clamped - 1));
  return log - kMinClassLog;
}

void PoolAllocator::grow(std::size_t cls) {
  const std::size_t block = class_bytes(cls);
  const std::size_t slab_bytes = block > kSlabBytes ? block : kSlabBytes;
  auto slab = std::make_unique<std::byte[]>(slab_bytes);
  std::byte* base = slab.get();
  // Thread every block onto the free list (reverse order so the list hands
  // them out front-to-back, keeping early allocations contiguous).
  const std::size_t blocks = slab_bytes / block;
  for (std::size_t i = blocks; i-- > 0;) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * block);
    node->next = free_[cls];
    free_[cls] = node;
  }
  slabs_.push_back(std::move(slab));
  ++stats_.slab_allocations;
  stats_.slab_bytes += slab_bytes;
}

void* PoolAllocator::allocate(std::size_t bytes) {
  const std::size_t cls = class_for(bytes);
  if (cls >= kNumClasses) {
    ++stats_.oversize;
    return ::operator new(bytes);
  }
  if (free_[cls] == nullptr) grow(cls);
  FreeNode* node = free_[cls];
  free_[cls] = node->next;
  ++stats_.allocations;
  return node;
}

void PoolAllocator::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  const std::size_t cls = class_for(bytes);
  if (cls >= kNumClasses) {
    ::operator delete(p);
    return;
  }
  auto* node = static_cast<FreeNode*>(p);
  node->next = free_[cls];
  free_[cls] = node;
}

namespace {

/// 16 bytes so the user pointer keeps max_align_t alignment; remembers the
/// origin pool (nullptr = global heap) and the full block size.
struct alignas(16) PooledHeader {
  PoolAllocator* pool;
  std::size_t bytes;
};
static_assert(sizeof(PooledHeader) == 16);

thread_local PoolAllocator* tls_pool = nullptr;

}  // namespace

void* pooled_allocate(std::size_t bytes) {
  const std::size_t total = bytes + sizeof(PooledHeader);
  PoolAllocator* pool = tls_pool;
  void* raw = pool != nullptr ? pool->allocate(total) : ::operator new(total);
  auto* header = static_cast<PooledHeader*>(raw);
  header->pool = pool;
  header->bytes = total;
  return header + 1;
}

void pooled_deallocate(void* p) noexcept {
  if (p == nullptr) return;
  auto* header = static_cast<PooledHeader*>(p) - 1;
  if (header->pool != nullptr) {
    header->pool->deallocate(header, header->bytes);
  } else {
    ::operator delete(header);
  }
}

PoolScope::PoolScope(PoolAllocator* pool) noexcept : prev_(tls_pool) { tls_pool = pool; }

PoolScope::~PoolScope() { tls_pool = prev_; }

PoolAllocator* current_pool() noexcept { return tls_pool; }

}  // namespace decycle::util
