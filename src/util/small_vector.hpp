/// \file small_vector.hpp
/// \brief A vector with inline storage for small sizes.
///
/// Sequences exchanged by Algorithm 1 contain at most ⌊k/2⌋ node IDs, so the
/// dominant container in the hot path is a tiny array. SmallVector keeps up to
/// N elements inline (no heap allocation) and spills to the heap only beyond
/// that, following the common HPC idiom of allocation-free inner loops.
///
/// Only trivially copyable element types are supported; this keeps the
/// implementation simple and is all the library needs (IDs and indices).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace decycle::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector supports trivially copyable types only");
  static_assert(N >= 1, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept = default;

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  explicit SmallVector(std::span<const T> values) { assign(values.begin(), values.end()); }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept {
    if (other.on_heap()) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      assign(other.begin(), other.end());
      other.size_ = 0;
    }
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    release_heap();
    if (other.on_heap()) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      size_ = 0;
      capacity_ = N;
      assign(other.begin(), other.end());
      other.size_ = 0;
    }
    return *this;
  }

  ~SmallVector() { release_heap(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] static constexpr std::size_t inline_capacity() noexcept { return N; }
  [[nodiscard]] bool on_heap() const noexcept { return heap_ != nullptr; }

  [[nodiscard]] T* data() noexcept { return on_heap() ? heap_ : inline_data(); }
  [[nodiscard]] const T* data() const noexcept { return on_heap() ? heap_ : inline_data(); }

  [[nodiscard]] iterator begin() noexcept { return data(); }
  [[nodiscard]] iterator end() noexcept { return data() + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data(); }
  [[nodiscard]] const_iterator end() const noexcept { return data() + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data()[i]; }

  [[nodiscard]] T& at(std::size_t i) {
    DECYCLE_CHECK_MSG(i < size_, "SmallVector::at out of range");
    return data()[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    DECYCLE_CHECK_MSG(i < size_, "SmallVector::at out of range");
    return data()[i];
  }

  [[nodiscard]] T& front() noexcept { return data()[0]; }
  [[nodiscard]] const T& front() const noexcept { return data()[0]; }
  [[nodiscard]] T& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data()[size_ - 1]; }

  operator std::span<const T>() const noexcept { return {data(), size_}; }
  [[nodiscard]] std::span<const T> as_span() const noexcept { return {data(), size_}; }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t want) {
    if (want > capacity_) grow_to(want);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    data()[size_++] = value;
  }

  void pop_back() noexcept { --size_; }

  void resize(std::size_t n, const T& fill = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data()[i] = fill;
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  /// Returns true iff \p value occurs in the vector (linear scan — sequences
  /// are tiny, so this beats any set structure).
  [[nodiscard]] bool contains(const T& value) const noexcept {
    return std::find(begin(), end(), value) != end();
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) noexcept {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  /// Lexicographic order; used to iterate received sequences deterministically.
  friend bool operator<(const SmallVector& a, const SmallVector& b) noexcept {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  [[nodiscard]] T* inline_data() noexcept { return reinterpret_cast<T*>(storage_); }
  [[nodiscard]] const T* inline_data() const noexcept {
    return reinterpret_cast<const T*>(storage_);
  }

  void grow_to(std::size_t want) {
    const std::size_t new_cap = std::max<std::size_t>(want, capacity_ * 2);
    T* fresh = new T[new_cap];
    std::memcpy(static_cast<void*>(fresh), static_cast<const void*>(data()), size_ * sizeof(T));
    release_heap();
    heap_ = fresh;
    capacity_ = new_cap;
  }

  void release_heap() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
  }

  alignas(T) std::byte storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace decycle::util
