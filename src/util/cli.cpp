#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

#include "util/check.hpp"

namespace decycle::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    DECYCLE_CHECK_MSG(arg.substr(0, 2) == "--",
                      "arguments must look like --key=value, got: " + std::string(arg));
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    const auto [it, inserted] =
        eq == std::string_view::npos
            ? values_.emplace(std::string(body), "1")
            : values_.emplace(std::string(body.substr(0, eq)), std::string(body.substr(eq + 1)));
    // A silently dropped repeat would run a different workload than the
    // command line reads (e.g. --k=4 --k=5 keeping only k=4).
    DECYCLE_CHECK_MSG(inserted, "duplicate argument --" + it->first +
                                    " (use a comma list for multiple values)");
  }
}

std::optional<std::string> Args::lookup(std::string_view key) const {
  used_[std::string(key)] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Args::get_u64(std::string_view key, std::uint64_t fallback) const {
  const auto raw = lookup(key);
  if (!raw) return fallback;
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), out);
  DECYCLE_CHECK_MSG(ec == std::errc() && ptr == raw->data() + raw->size(),
                    "expected unsigned integer for --" + std::string(key));
  return out;
}

std::int64_t Args::get_i64(std::string_view key, std::int64_t fallback) const {
  const auto raw = lookup(key);
  if (!raw) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), out);
  DECYCLE_CHECK_MSG(ec == std::errc() && ptr == raw->data() + raw->size(),
                    "expected integer for --" + std::string(key));
  return out;
}

double Args::get_double(std::string_view key, double fallback) const {
  const auto raw = lookup(key);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*raw, &pos);
    DECYCLE_CHECK_MSG(pos == raw->size(), "trailing characters in --" + std::string(key));
    return out;
  } catch (const std::invalid_argument&) {
    DECYCLE_CHECK_MSG(false, "expected number for --" + std::string(key));
  }
  return fallback;  // unreachable
}

bool Args::get_bool(std::string_view key, bool fallback) const {
  const auto raw = lookup(key);
  if (!raw) return fallback;
  if (*raw == "1" || *raw == "true" || *raw == "yes" || *raw == "on") return true;
  if (*raw == "0" || *raw == "false" || *raw == "no" || *raw == "off") return false;
  DECYCLE_CHECK_MSG(false, "expected boolean for --" + std::string(key));
  return fallback;  // unreachable
}

std::string Args::get_string(std::string_view key, std::string_view fallback) const {
  const auto raw = lookup(key);
  if (!raw) return std::string(fallback);
  return *raw;
}

bool Args::has(std::string_view key) const { return lookup(key).has_value(); }

std::vector<std::pair<std::string, std::string>> Args::take_unconsumed() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, value] : values_) {
    const auto it = used_.find(key);
    if (it == used_.end() || !it->second) {
      out.emplace_back(key, value);
      used_[key] = true;
    }
  }
  return out;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    const auto it = used_.find(key);
    if (it == used_.end() || !it->second) out.push_back(key);
  }
  return out;
}

void Args::reject_unknown() const {
  const auto leftover = unused();
  if (leftover.empty()) return;
  std::string msg = "unknown arguments:";
  for (const auto& key : leftover) msg += " --" + key;
  DECYCLE_CHECK_MSG(false, msg);
}

}  // namespace decycle::util
