#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace decycle::util {

namespace {

LogLevel initial_level() noexcept {
  const char* env = std::getenv("DECYCLE_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kInfo;
}

std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) noexcept { level_storage().store(static_cast<int>(level)); }

void log_line(LogLevel level, const std::string& message) {
  static std::mutex mutex;
  const std::lock_guard lock(mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace decycle::util
