/// \file check.hpp
/// \brief Runtime precondition / invariant checking for the decycle library.
///
/// Library code uses DECYCLE_CHECK for conditions that must hold regardless of
/// build type (argument validation, protocol invariants whose violation would
/// silently corrupt results). Violations throw decycle::util::CheckError with
/// the failing expression and location, so tests can assert on them and
/// experiment harnesses fail loudly instead of producing bogus tables.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace decycle::util {

/// Exception thrown when a DECYCLE_CHECK condition fails.
class CheckError final : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(std::string_view expr, std::string_view file, long line,
                                      std::string_view msg) {
  std::string full = "DECYCLE_CHECK failed: ";
  full.append(expr);
  full.append(" at ");
  full.append(file);
  full.append(":");
  full.append(std::to_string(line));
  if (!msg.empty()) {
    full.append(" — ");
    full.append(msg);
  }
  throw CheckError(full);
}
}  // namespace detail

}  // namespace decycle::util

/// Always-on invariant check. Throws CheckError on failure.
#define DECYCLE_CHECK(cond)                                                              \
  do {                                                                                   \
    if (!(cond)) ::decycle::util::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Always-on invariant check with an explanatory message.
#define DECYCLE_CHECK_MSG(cond, msg)                                                      \
  do {                                                                                    \
    if (!(cond)) ::decycle::util::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
