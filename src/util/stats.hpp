/// \file stats.hpp
/// \brief Streaming statistics used by the experiment harness.
///
/// OnlineStats implements Welford's numerically stable running mean/variance.
/// Percentiles keeps raw samples and answers order statistics; suitable for
/// the sample counts the experiments produce (<= a few million). Wilson score
/// intervals back the acceptance-probability tables (T1/T2) so the benches can
/// assert "detection >= 2/3" with an explicit confidence bound rather than a
/// point estimate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace decycle::util {

/// Welford running mean / variance / min / max.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator (parallel reduction), Chan et al. update.
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics over retained samples.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// Returns the q-quantile (q in [0,1]) by linear interpolation.
  /// Sorts lazily; calling add() afterwards is allowed and re-sorts.
  /// Empty windows answer 0.0 (a serving dashboard's "no traffic yet" row
  /// must render, not NaN); a non-finite q throws CheckError.
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] double median() { return quantile(0.5); }

  /// Appends \p other's samples (per-tenant windows folding into a global
  /// one). Merging an empty window is a no-op; merging into an empty window
  /// copies. Quantiles after merge equal quantiles over the union.
  void merge(const Percentiles& other);

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Binomial proportion confidence interval.
struct ProportionInterval {
  double estimate;  ///< successes / trials
  double low;       ///< lower bound
  double high;      ///< upper bound
};

/// Wilson score interval for \p successes out of \p trials at confidence
/// z (default z=1.96 ~ 95%). Well-behaved at the 0/1 boundaries, unlike the
/// normal approximation — exactly the regime of 1-sided-error experiments
/// where the measured acceptance rate is 1.0.
[[nodiscard]] ProportionInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                                 double z = 1.96) noexcept;

/// n choose r as double (overflow-free for the bound tables).
[[nodiscard]] double binomial_coefficient(unsigned n, unsigned r) noexcept;

}  // namespace decycle::util
