/// \file logging.hpp
/// \brief Minimal leveled logging to stderr.
///
/// The library itself never logs on hot paths; logging is for the harness,
/// examples, and long-running benches (progress lines). Level is process-wide
/// and settable from the DECYCLE_LOG environment variable (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace decycle::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current process-wide level (default: info, or $DECYCLE_LOG).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emits one line "[level] message" to stderr (thread-safe).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) noexcept : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace decycle::util

#define DECYCLE_LOG(level)                                            \
  if (static_cast<int>(level) > static_cast<int>(::decycle::util::log_level())) \
    ;                                                                 \
  else                                                                \
    ::decycle::util::detail::LogStream(level)

#define DECYCLE_LOG_INFO DECYCLE_LOG(::decycle::util::LogLevel::kInfo)
#define DECYCLE_LOG_WARN DECYCLE_LOG(::decycle::util::LogLevel::kWarn)
#define DECYCLE_LOG_ERROR DECYCLE_LOG(::decycle::util::LogLevel::kError)
#define DECYCLE_LOG_DEBUG DECYCLE_LOG(::decycle::util::LogLevel::kDebug)
