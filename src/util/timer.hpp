/// \file timer.hpp
/// \brief Wall-clock timing helper for the benches.
#pragma once

#include <chrono>

namespace decycle::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace decycle::util
