/// \file hash.hpp
/// \brief Hash helpers for composite keys (ID pairs, ID sequences).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/rng.hpp"

namespace decycle::util {

/// boost-style combine on 64 bits.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) noexcept {
  return seed ^ (splitmix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Order-sensitive hash of a span of 64-bit values.
[[nodiscard]] constexpr std::uint64_t hash_span(std::span<const std::uint64_t> values) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (const std::uint64_t v : values) h = hash_combine(h, v);
  return h;
}

/// Hash functor for std::pair-like 64-bit keys in unordered containers.
struct PairHash {
  [[nodiscard]] std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p) const noexcept {
    return static_cast<std::size_t>(hash_combine(splitmix64(p.first), p.second));
  }
};

}  // namespace decycle::util
