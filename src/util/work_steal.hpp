/// \file work_steal.hpp
/// \brief Work-stealing batch scheduler over a ThreadPool's lanes.
///
/// The fixed receiver-range sharding this replaces (PR 1) left cores idle
/// whenever per-shard costs were skewed: a shard is claimed once, so one
/// expensive shard serializes the round while the other lanes wait at the
/// barrier. The scheduler here keeps the batch model (submit N independent
/// chunks, block until all ran) but distributes chunks Chase–Lev style:
///
///   * every lane owns a bounded deque, pre-filled before the batch starts
///     with a contiguous run of chunk ids whose *weights* sum to roughly
///     total/lanes (cost-weighted initial split — by measured work such as
///     inbox envelope counts, not by chunk count);
///   * a lane pops work from the bottom of its own deque (plain CAS-free in
///     the common case) and, when empty, steals from the top of a victim's
///     deque with a single compare-exchange — the classic lock-free
///     take/steal protocol, simplified by the batch discipline: all pushes
///     happen before the workers start, so the buffer itself is immutable
///     while the batch runs and only `top`/`bottom` are contended.
///
/// Determinism: which lane executes a chunk is scheduling-dependent, but
/// callers slot results per chunk id and reduce in fixed chunk order, so
/// every output is bit-identical for any thread count — the same contract
/// ThreadPool::for_weighted always had (DESIGN.md §3.2, §10).
///
/// All buffers (deques, their item arrays) grow to a high-water mark and
/// are reused across batches, so a steady-state batch performs no heap
/// allocation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

namespace decycle::util {

class ThreadPool;
class IndexFnRef;

class WorkStealScheduler {
 public:
  WorkStealScheduler() = default;
  WorkStealScheduler(const WorkStealScheduler&) = delete;
  WorkStealScheduler& operator=(const WorkStealScheduler&) = delete;

  /// Runs fn(i) exactly once for every i in [0, count), blocking until all
  /// chunks finished. \p weights (length count) biases the initial split:
  /// lane l receives a contiguous run of chunks whose weight sum is close
  /// to total/lanes. Pass nullptr for unit weights. The calling thread
  /// participates. Exceptions from fn are captured; the first one rethrows
  /// after the batch drains (remaining chunks still run, matching
  /// ThreadPool::for_weighted semantics). Not reentrant: must not be called
  /// from inside pool work. Concurrent callers serialize on the scheduler,
  /// then on the pool's batch lock.
  void run(ThreadPool& pool, std::size_t count, const std::uint64_t* weights, IndexFnRef fn);

  /// Total successful steals across all batches (diagnostics / tests).
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One lane's bounded deque. `items` is written only between batches
  /// (before the workers are released), so during a batch the only shared
  /// mutable state is top/bottom. Padded to keep the hot atomics of
  /// different lanes off one cache line.
  struct alignas(64) Deque {
    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};
    std::vector<std::uint32_t> items;

    /// Owner-side pop from the bottom (LIFO). Lock-free; contends with
    /// steal() only on the last remaining item.
    bool take(std::uint32_t& out) noexcept;

    /// Thief-side pop from the top (FIFO). One CAS; returns false on an
    /// empty deque or a lost race.
    bool steal(std::uint32_t& out) noexcept;
  };

  void lane_loop(std::size_t lane, std::size_t lanes, IndexFnRef fn);

  std::mutex run_mutex_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace decycle::util
