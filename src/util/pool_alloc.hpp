/// \file pool_alloc.hpp
/// \brief Size-classed pool allocator for lane-confined hot-path state.
///
/// Construction-heavy sweeps (lab lanes, soak campaigns, repeated
/// Simulator::reset) rebuild n node programs per trial; with the global
/// heap every rebuild is n malloc/free round trips through a contended
/// allocator. This pool — after the ponyrt runtime's POOL_ALLOC/POOL_FREE
/// idiom — carves large slabs into power-of-two size classes (32 B … 1 MiB)
/// and keeps freed blocks on per-class free lists, so the steady state of a
/// reset/run/reset loop recycles blocks without touching the heap at all:
/// the first trial's allocations set the high-water mark, every later trial
/// is malloc-free (extending DESIGN.md §4's zero-steady-state-allocation
/// guarantee from the round loop to whole trial sweeps).
///
/// Deliberately NOT thread-safe. Every pool is lane-confined: the
/// Simulator's program pool is only touched from reset() (serial) and
/// program destruction (serial), and each lab/soak lane owns its own
/// Simulator and therefore its own pool. The batch protocol of
/// ThreadPool::for_weighted provides the happens-before edges when a lane's
/// objects migrate between worker threads across batches.
///
/// Two layers:
///   * PoolAllocator — the raw classed allocator (allocate/deallocate with
///     explicit sizes, oversize requests fall through to the global heap);
///   * pooled_allocate/pooled_deallocate — a headered wrapper used by
///     NodeProgram's class-level operator new/delete: each block remembers
///     its origin pool, so objects can be deleted after the TLS scope that
///     allocated them ended (but never after the pool itself is destroyed).
///     Outside any PoolScope the wrapper degrades to the global heap, so
///     programs built without a simulator (unit tests, ad-hoc probes) work
///     unchanged.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace decycle::util {

class PoolAllocator {
 public:
  static constexpr std::size_t kMinClassLog = 5;   ///< 32 B smallest class
  static constexpr std::size_t kMaxClassLog = 20;  ///< 1 MiB largest class
  static constexpr std::size_t kNumClasses = kMaxClassLog - kMinClassLog + 1;
  /// Slabs are carved in 64 KiB units (or one block, if the class is larger).
  static constexpr std::size_t kSlabBytes = std::size_t{64} * 1024;

  PoolAllocator() = default;
  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;
  ~PoolAllocator() = default;  // slabs release; all blocks must be dead

  /// Returns a block of at least \p bytes (rounded up to its size class),
  /// aligned to alignof(std::max_align_t). Requests above the largest class
  /// go straight to the global heap.
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// Returns a block obtained from allocate(\p bytes) — the same byte count
  /// must be passed back (callers that need free-without-size keep their own
  /// header; see pooled_allocate).
  void deallocate(void* p, std::size_t bytes) noexcept;

  struct Stats {
    std::uint64_t allocations = 0;    ///< allocate() calls served by a class
    std::uint64_t slab_allocations = 0;  ///< times a fresh slab was carved
    std::uint64_t oversize = 0;       ///< requests above the largest class
    std::size_t slab_bytes = 0;       ///< total bytes held in slabs
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  /// Smallest class index whose block size holds \p bytes.
  [[nodiscard]] static std::size_t class_for(std::size_t bytes) noexcept;
  [[nodiscard]] static constexpr std::size_t class_bytes(std::size_t cls) noexcept {
    return std::size_t{1} << (cls + kMinClassLog);
  }

  /// Carves a fresh slab for \p cls and threads its blocks onto the free list.
  void grow(std::size_t cls);

  std::array<FreeNode*, kNumClasses> free_{};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  Stats stats_;
};

/// Headered allocation routed to the calling thread's current PoolScope
/// pool (or the global heap when no scope is active). The returned pointer
/// is aligned to 16 bytes; the header remembers the origin, so
/// pooled_deallocate works from any thread-local state.
[[nodiscard]] void* pooled_allocate(std::size_t bytes);
void pooled_deallocate(void* p) noexcept;

/// RAII scope installing \p pool as the calling thread's pooled_allocate
/// target. Scopes nest (the previous target is restored); pass nullptr to
/// force the global heap inside an outer scope.
class PoolScope {
 public:
  explicit PoolScope(PoolAllocator* pool) noexcept;
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  PoolAllocator* prev_;
};

/// The calling thread's current pooled_allocate target (nullptr outside any
/// PoolScope). Exposed for tests.
[[nodiscard]] PoolAllocator* current_pool() noexcept;

}  // namespace decycle::util
