#include "util/rng.hpp"

#include <numeric>
#include <unordered_set>

namespace decycle::util {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift with rejection of the biased low band.
  // https://arxiv.org/abs/1805.10941
  if (bound == 0) return 0;  // degenerate; callers validate, avoid UB anyway
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t universe, std::size_t count) {
  DECYCLE_CHECK_MSG(count <= universe, "cannot sample more distinct values than the universe");
  std::vector<std::uint64_t> out;
  out.reserve(count);
  if (universe <= 4 * static_cast<std::uint64_t>(count) && universe <= (1ULL << 24)) {
    // Dense case: shuffle a prefix of the identity permutation.
    std::vector<std::uint64_t> all(static_cast<std::size_t>(universe));
    std::iota(all.begin(), all.end(), 0ULL);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(next_below(universe - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling with a hash set.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count * 2);
  while (out.size() < count) {
    const std::uint64_t v = next_below(universe);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0U);
  shuffle(std::span<std::uint32_t>(p));
  return p;
}

}  // namespace decycle::util
