/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random number generation.
///
/// Experiments must be reproducible bit-for-bit across runs and across thread
/// counts, so all randomness flows from explicit 64-bit seeds through
/// xoshiro256** generators (seeded via SplitMix64, per the generator authors'
/// recommendation). Rng::fork(tag) derives an independent stream for a
/// subtask, which lets the harness hand each trial / node / repetition its own
/// generator without any shared state.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace decycle::util {

/// SplitMix64 step: used for seeding and for stateless hashing of seed tags.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      sm = splitmix64(sm);
      word = sm;
    }
  }

  /// Derives an independent generator for a subtask identified by \p tag.
  /// Deterministic in (current seed material, tag); does not advance *this.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept {
    return Rng(splitmix64(state_[0] ^ splitmix64(tag ^ 0xa5a5a5a5a5a5a5a5ULL)));
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). \p bound must be positive.
  /// Uses Lemire-style rejection for unbiased results.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability \p p.
  [[nodiscard]] bool next_bool(double p) noexcept { return next_double() < p; }

  /// Fisher–Yates shuffle of \p values.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples \p count distinct integers from [0, universe), in random order.
  /// Requires count <= universe. O(count) expected time via hashing when the
  /// universe is large, O(universe) via shuffle when it is small.
  [[nodiscard]] std::vector<std::uint64_t> sample_distinct(std::uint64_t universe,
                                                           std::size_t count);

  /// A uniformly random permutation of [0, n).
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::uint32_t n);

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace decycle::util
