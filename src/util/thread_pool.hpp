/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with a blocking parallel_for and a
/// zero-allocation indexed batch mode.
///
/// Two uses in the repository:
///   * the experiment harness fans independent tester trials out across
///     cores (each trial owns its RNG stream, so results are identical for
///     any thread count) — via parallel_for;
///   * the CONGEST simulator steps active nodes and shards the delivery
///     merge within every round — via for_weighted, which dispatches chunk
///     ids through the work-stealing scheduler (work_steal.hpp) so skewed
///     chunk costs rebalance across lanes, and a steady-state round
///     performs no heap allocation in the pool (DESIGN.md §4, §10).
///     parallel_for is a thin chunking layer on top.
///
/// The lane layer underneath is deliberately simple — one mutex-guarded
/// in-flight batch that workers join by snapshotting its descriptor; the
/// only lock-free machinery is the scheduler's per-lane deque. Batches
/// block the caller and must not be submitted from inside pool work (no
/// nesting), matching the blocking parallel_for's existing constraint.
#pragma once

#include <atomic>
#include <concepts>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/work_steal.hpp"

namespace decycle::util {

/// Non-owning reference to a callable taking a std::size_t index. Trivially
/// copyable, never allocates; the referent must outlive every call.
class IndexFnRef {
 public:
  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, IndexFnRef>)
  IndexFnRef(F& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* o, std::size_t i) { (*static_cast<F*>(o))(i); }) {}

  IndexFnRef() noexcept = default;

  void operator()(std::size_t i) const { call_(obj_, i); }
  [[nodiscard]] bool valid() const noexcept { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*, std::size_t) = nullptr;
};

class ThreadPool {
 public:
  /// Creates \p num_threads workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count), blocking until all iterations finish.
  /// Iterations are chunked into ~4 tasks per worker to amortize dispatch.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for but hands each task a contiguous [begin, end) range.
  void parallel_for_chunked(std::size_t count,
                            const std::function<void(std::size_t, std::size_t)>& fn);

  /// Work-stealing batch with a cost-weighted initial split: runs fn(i) for
  /// i in [0, count), blocking until done; \p weights (length \p count,
  /// nullptr for unit) biases which contiguous chunk runs seed each lane's
  /// deque, and lanes rebalance by stealing. The calling thread
  /// participates. Indices should be coarse chunks (the caller decides the
  /// chunking — this is what makes results independent of the worker
  /// count). Exceptions propagate (first one wins) after the batch drains.
  /// Steady-state batches perform no heap allocation. Concurrent calls from
  /// different threads serialize. Not reentrant: must not be called from
  /// inside a pool task.
  void for_weighted(std::size_t count, const std::uint64_t* weights, IndexFnRef fn);

  /// Low-level lane dispatch used by the scheduler: runs fn(l) exactly once
  /// for every lane l in [0, lanes), claimed from an atomic cursor by the
  /// caller plus any workers that wake in time (so one thread may execute
  /// several lanes). Most code wants for_weighted instead.
  void run_lanes(std::size_t lanes, IndexFnRef fn);

  /// Successful steals across all batches (diagnostics / tests).
  [[nodiscard]] std::uint64_t steal_count() const noexcept { return scheduler_.steals(); }

 private:
  void worker_loop();
  /// Claims and runs batch indices until the cursor is exhausted.
  void drain_batch(IndexFnRef fn, std::size_t count);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // --- indexed batch state (one batch in flight; guarded by mutex_ for
  // writes, read by workers after they observe the epoch change;
  // submit_mutex_ serializes whole batches across calling threads) ---
  std::mutex submit_mutex_;
  IndexFnRef batch_fn_;
  std::size_t batch_count_ = 0;
  std::uint64_t batch_epoch_ = 0;      ///< bumped per batch, under mutex_
  std::atomic<std::size_t> batch_next_{0};
  std::atomic<std::size_t> batch_done_{0};
  std::size_t batch_workers_inside_ = 0;  ///< workers currently draining
  std::condition_variable batch_cv_;      ///< completion / drain signaling
  std::exception_ptr batch_error_;

  WorkStealScheduler scheduler_;  ///< chunk distribution for for_weighted
};

/// Process-wide pool for the harness (constructed on first use).
[[nodiscard]] ThreadPool& global_pool();

}  // namespace decycle::util
