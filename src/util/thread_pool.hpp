/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with a blocking parallel_for.
///
/// Two uses in the repository:
///   * the experiment harness fans independent tester trials out across
///     cores (each trial owns its RNG stream, so results are identical for
///     any thread count);
///   * the CONGEST simulator optionally steps active nodes in parallel
///     within a round (per-thread outboxes merged deterministically).
///
/// The pool is deliberately simple — a mutex-protected deque is plenty for
/// coarse-grained tasks (every task here simulates whole rounds or whole
/// trials); no lock-free machinery to audit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace decycle::util {

class ThreadPool {
 public:
  /// Creates \p num_threads workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count), blocking until all iterations finish.
  /// Iterations are chunked into ~4 tasks per worker to amortize dispatch.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for but hands each task a contiguous [begin, end) range.
  void parallel_for_chunked(std::size_t count,
                            const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool for the harness (constructed on first use).
[[nodiscard]] ThreadPool& global_pool();

}  // namespace decycle::util
