#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace decycle::util {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  // m2_ can drift epsilon-negative through merge()'s catastrophic
  // cancellation on near-identical windows; clamping keeps stddev() a
  // number instead of sqrt(-0.0…e-17) = NaN on the serving stats path.
  return std::max(0.0, m2_ / static_cast<double>(count_ - 1));
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentiles::quantile(double q) {
  // NaN would sail through std::clamp and turn the index arithmetic below
  // into undefined float->size_t conversion; refuse loudly instead.
  DECYCLE_CHECK_MSG(std::isfinite(q), "Percentiles::quantile: q must be finite in [0,1]");
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Percentiles::merge(const Percentiles& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

ProportionInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double z) noexcept {
  if (trials == 0) return {0.0, 0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

double binomial_coefficient(unsigned n, unsigned r) noexcept {
  if (r > n) return 0.0;
  r = std::min(r, n - r);
  double acc = 1.0;
  for (unsigned i = 1; i <= r; ++i) {
    acc *= static_cast<double>(n - r + i);
    acc /= static_cast<double>(i);
  }
  return acc;
}

}  // namespace decycle::util
