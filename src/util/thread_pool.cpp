#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"

namespace decycle::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunked(std::size_t count,
                                      const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t max_tasks = std::max<std::size_t>(1, workers_.size() * 4);
  const std::size_t chunk = std::max<std::size_t>(1, (count + max_tasks - 1) / max_tasks);
  const std::size_t num_tasks = (count + chunk - 1) / chunk;

  // Completion state lives on this stack frame; the counter must only be
  // decremented under done_mutex, otherwise the waiter can observe zero,
  // return, and destroy the mutex while the last task still holds it.
  std::size_t remaining = num_tasks;
  std::exception_ptr first_error;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    auto task = [&, begin, end] {
      std::exception_ptr error;
      try {
        fn(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      const std::lock_guard dl(done_mutex);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_all();
    };
    {
      const std::lock_guard lock(mutex_);
      tasks_.emplace_back(std::move(task));
    }
    cv_.notify_one();
  }

  std::unique_lock done_lock(done_mutex);
  done_cv.wait(done_lock, [&] { return remaining == 0; });
  done_lock.unlock();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(count, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace decycle::util
