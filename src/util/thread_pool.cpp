#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"

namespace decycle::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    // Let any in-flight batch finish before tearing the workers down.
    batch_cv_.wait(lock, [&] { return batch_workers_inside_ == 0; });
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    IndexFnRef batch_fn;
    std::size_t batch_count = 0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || batch_epoch_ != seen_epoch; });
      if (stopping_) return;
      // Enter the current batch: snapshot its descriptor under the lock.
      // for_weighted() never replaces the descriptor while any worker is
      // inside (it waits for batch_workers_inside_ == 0), so the snapshot
      // and the shared cursors always belong to the same batch.
      seen_epoch = batch_epoch_;
      batch_fn = batch_fn_;
      batch_count = batch_count_;
      ++batch_workers_inside_;
    }
    drain_batch(batch_fn, batch_count);
    {
      const std::lock_guard lock(mutex_);
      --batch_workers_inside_;
    }
    batch_cv_.notify_all();
  }
}

void ThreadPool::drain_batch(IndexFnRef fn, std::size_t count) {
  for (;;) {
    const std::size_t i = batch_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    try {
      fn(i);
    } catch (...) {
      {
        const std::lock_guard lock(mutex_);
        if (!batch_error_) batch_error_ = std::current_exception();
      }
    }
    if (batch_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      // Last index finished: wake the blocked caller. Take the lock so the
      // notification cannot slip between the caller's predicate check and
      // its wait.
      const std::lock_guard lock(mutex_);
      batch_cv_.notify_all();
    }
  }
}

void ThreadPool::for_weighted(std::size_t count, const std::uint64_t* weights, IndexFnRef fn) {
  scheduler_.run(*this, count, weights, fn);
}

void ThreadPool::run_lanes(std::size_t lanes, IndexFnRef fn) {
  const std::size_t count = lanes;
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One caller owns the pool's batch machinery at a time; concurrent
  // external callers (e.g. two threads sharing global_pool()) serialize
  // here instead of corrupting each other's cursors.
  const std::lock_guard submit_lock(submit_mutex_);
  {
    std::unique_lock lock(mutex_);
    // One batch in flight: wait out any straggler workers of the previous
    // batch before overwriting the descriptor they might still read.
    batch_cv_.wait(lock, [&] { return batch_workers_inside_ == 0; });
    batch_fn_ = fn;
    batch_count_ = count;
    batch_error_ = nullptr;
    batch_next_.store(0, std::memory_order_relaxed);
    batch_done_.store(0, std::memory_order_relaxed);
    ++batch_epoch_;
  }
  cv_.notify_all();
  drain_batch(fn, count);  // the caller participates
  {
    std::unique_lock lock(mutex_);
    batch_cv_.wait(lock,
                   [&] { return batch_done_.load(std::memory_order_acquire) == count; });
    if (batch_error_) {
      const std::exception_ptr err = batch_error_;
      batch_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

void ThreadPool::parallel_for_chunked(std::size_t count,
                                      const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t max_tasks = std::max<std::size_t>(1, workers_.size() * 4);
  const std::size_t chunk = std::max<std::size_t>(1, (count + max_tasks - 1) / max_tasks);
  const std::size_t num_tasks = (count + chunk - 1) / chunk;

  const auto run_chunk = [&](std::size_t t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    fn(begin, end);
  };
  for_weighted(num_tasks, nullptr, run_chunk);
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(count, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace decycle::util
