/// \file differential.hpp
/// \brief Insertion-prefix differential: incremental verdicts vs the DFS
/// oracle vs batch detectors.
///
/// The soak subsystem cross-checks batch detectors on static instances;
/// this is the streaming complement. A stream is replayed insert by insert
/// and, at checked prefixes, three systems must agree:
///
///   * the incremental verdict — ForestConnectivity's "did this insert
///     close a cycle?" (DagLevels for directed streams) — is pinned
///     against a from-scratch BFS oracle on the explicit prefix graph:
///     closure iff the endpoints were already connected (iff a v ⇝ u path
///     existed, directed);
///   * every closure's witness must be a genuine cycle of the post-insert
///     prefix graph, and the repo's DFS oracle must find a cycle of the
///     witness length through the inserted edge;
///   * batch detectors (at least two exact-regime registry detectors, by
///     name) run through the IncrementalSession checkpoint bridge on the
///     post-insert snapshot: on a closure of length L they are queried for
///     C_L (threshold with an unlimited untracked budget is an exhaustive
///     scan; the edge checker is handed the inserted edge explicitly) and
///     must reject with a valid witness; while the stream is still a
///     forest they are queried on sampled prefixes and must accept.
///
/// Every check routes through the session's epoch/purge machinery, so a
/// stale cached Simulator session surviving a mutation would surface here
/// as a mismatch. Directed streams pin against the oracle only (the
/// registry detectors speak undirected CONGEST) and stop at the first
/// closure, where DagLevels' contract ends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "incremental/stream.hpp"

namespace decycle::incremental {

struct PrefixCheckOptions {
  /// Upper bound on checked prefixes; 0 checks every insert. Closures are
  /// always checked — the stride only thins the quiet stretches.
  std::size_t max_prefixes = 0;
  /// Longest cycle length forwarded to the DFS oracle and batch detectors
  /// (longer witnesses are still structurally validated). Exact-regime C_k
  /// scans grow exponentially in k — soak's instance space stops at k=9
  /// for the same reason.
  unsigned max_query_k = 10;
  /// Exact-regime registry detectors to pin (registry names).
  std::vector<std::string> detectors = {"threshold", "edge_checker"};
  const core::DetectorRegistry* registry = nullptr;  ///< builtin when null
};

struct PrefixMismatch {
  std::size_t prefix = 0;  ///< insert index the disagreement surfaced at
  std::string detail;
};

struct PrefixCheckReport {
  std::size_t prefixes_checked = 0;
  std::size_t closures = 0;
  std::size_t batch_queries = 0;   ///< detector runs through the session bridge
  std::size_t oracle_queries = 0;  ///< BFS/DFS oracle evaluations
  std::vector<PrefixMismatch> mismatches;

  [[nodiscard]] bool failed() const noexcept { return !mismatches.empty(); }
};

/// Replays \p stream and pins the three systems against each other. Pure
/// function of (stream, options) — a failing prefix travels as the stream's
/// first (prefix+1) inserts via write_stream.
[[nodiscard]] PrefixCheckReport check_stream_prefixes(const InsertStream& stream,
                                                      const PrefixCheckOptions& options = {});

}  // namespace decycle::incremental
