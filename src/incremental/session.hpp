/// \file session.hpp
/// \brief IncrementalSession: streaming inserts wired into the engine's
/// snapshot/epoch machinery.
///
/// The detectors in incremental.hpp answer per-insert closure on the hot
/// path; the batch detectors answer C_k-specific queries on immutable
/// snapshots. IncrementalSession is the bridge (the integration PR 8's
/// epoch counters were built for):
///
///   * it owns a named graph in a DetectionEngine's GraphStore and a
///     ForestConnectivity over the same vertex set;
///   * apply() streams a batch of inserts through the detector (per-insert
///     verdicts) and, because the graph content just changed, retires every
///     cached Simulator session of the previous snapshot: one
///     GraphStore::bump_epoch (in-flight leases finish on the old epoch,
///     new leases miss) plus one SessionPool::purge (idle sessions are
///     destroyed rather than left to age out of the LRU);
///   * checkpoint() materializes the accumulated edges as an immutable
///     pinned Graph interned under the session's name — batch detectors
///     lease fresh sessions against it and seamlessly run on the current
///     snapshot;
///   * run_batch() is the query bridge: checkpoint, then
///     DetectionEngine::run_batch. The insert stream answers k=∞ closure;
///     the engine answers C_k-specific queries on demand.
///
/// Determinism: everything is a pure function of the insert sequence and
/// the queries, so differential replays (differential.hpp) pin the three
/// systems — incremental verdicts, the DFS oracle, batch detectors —
/// against each other at any prefix.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "incremental/incremental.hpp"
#include "incremental/stream.hpp"

namespace decycle::incremental {

/// Per-insert verdicts of one apply() batch.
struct BatchVerdicts {
  std::size_t closures = 0;
  /// closed[i] — did batch insert i close a cycle? (std::uint8_t: a bitset
  /// would save space but per-insert answers are the service's product.)
  std::vector<std::uint8_t> closed;
};

class IncrementalSession {
 public:
  /// Binds the session to \p engine's store under \p name, on \p n
  /// vertices. The name must be unused for the engine's lifetime or
  /// intentionally shared (re-interning replaces the entry).
  IncrementalSession(engine::DetectionEngine& engine, std::string name, graph::Vertex n);

  IncrementalSession(const IncrementalSession&) = delete;
  IncrementalSession& operator=(const IncrementalSession&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t inserts() const noexcept { return detector_.inserts(); }
  [[nodiscard]] std::uint64_t closures() const noexcept { return detector_.closures(); }
  [[nodiscard]] const ForestConnectivity& detector() const noexcept { return detector_; }
  [[nodiscard]] std::span<const Insert> edges() const noexcept { return edges_; }

  /// Streams \p batch through the detector and accumulates the edges for
  /// the next checkpoint. When at least one insert lands and a snapshot
  /// exists, bumps the snapshot's epoch and purges its cached sessions —
  /// the mutation half of the epoch/purge contract.
  BatchVerdicts apply(std::span<const Insert> batch);

  /// Single-insert convenience over apply().
  [[nodiscard]] bool insert(graph::Vertex u, graph::Vertex v);

  /// The current snapshot: builds and interns the accumulated graph when
  /// dirty, otherwise returns the existing pin. O(n + m) when dirty, O(1)
  /// when clean.
  engine::PinnedGraphPtr checkpoint();

  /// Checkpoint, then run \p queries through the engine on the snapshot —
  /// the "any registry detector on the live stream" bridge.
  [[nodiscard]] std::vector<core::Verdict> run_batch(std::span<const engine::Query> queries);

 private:
  engine::DetectionEngine& engine_;
  std::string name_;
  graph::Vertex n_ = 0;
  ForestConnectivity detector_;
  std::vector<graph::Edge> edges_;  ///< canonicalized accumulated edges
  engine::PinnedGraphPtr pin_;      ///< last checkpoint (nullptr before first)
  bool dirty_ = true;
};

}  // namespace decycle::incremental
