/// \file incremental.hpp
/// \brief Streaming cycle detection under edge insertions.
///
/// Production callers do not hand over a finished graph — they insert edges
/// one at a time and ask "did this insert close a cycle?" per operation
/// (ROADMAP's incremental-service item, after the labeling approach of
/// Cohen–Fiat–Kaplan–Roditty, arXiv 1310.8381). Two structures answer that
/// question on the hot path, both with zero-allocation steady state:
///
///   * ForestConnectivity — the undirected verdict. Union-find with path
///     compression and union by rank answers "are u and v already
///     connected?" in near-constant amortized time; a parallel spanning
///     forest with small-tree re-rooting records one actual tree path per
///     component, so a closing insert can surface a *witness cycle* (the
///     u..v tree path plus the inserted edge) in O(cycle length) — the same
///     validated-witness discipline every batch detector obeys.
///   * DagLevels — the directed-DAG maintenance variant. Every vertex
///     carries a level label with the CFKR invariant level(a) < level(b) for
///     each arc a→b; inserting u→v with level(u) < level(v) is a free
///     accept, otherwise levels are raised along a forward search from v
///     that either restores the invariant or walks into u — which proves a
///     directed cycle, reported with the v ⇝ u trace as witness. Arc lists
///     grow through fixed-size blocks carved from a util::PoolAllocator, so
///     steady-state insertion never touches the global heap and reset()
///     recycles every block.
///
/// Both detectors require duplicate-free input (a duplicate undirected edge
/// would be a 2-cycle in a multigraph but no cycle in the simple-graph model
/// everything downstream assumes); the stream format (stream.hpp) and the
/// generator enforce that offline so the hot path never pays a membership
/// probe. IncrementalSession (session.hpp) wraps either structure with the
/// engine's snapshot/epoch machinery for batch-detector interop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/pool_alloc.hpp"

namespace decycle::incremental {

/// Verdict of one streamed insert. The witness span points into a buffer
/// owned by the detector and is valid until the next insert() or reset().
struct InsertVerdict {
  bool closed_cycle = false;
  /// Witness cycle as a vertex sequence (consecutive vertices adjacent, the
  /// last closing back to the first through the inserted edge). Empty when
  /// the insert did not close a cycle.
  std::span<const graph::Vertex> witness;
};

/// Undirected streaming connectivity: union-find verdicts plus a spanning
/// forest for witness-path extraction. All storage is sized by reset(n) and
/// reused across inserts; the steady state allocates nothing.
class ForestConnectivity {
 public:
  ForestConnectivity() = default;
  explicit ForestConnectivity(graph::Vertex n) { reset(n); }

  /// Prepares for a fresh stream on \p n vertices. Reuses prior capacity.
  void reset(graph::Vertex n);

  [[nodiscard]] graph::Vertex num_vertices() const noexcept {
    return static_cast<graph::Vertex>(uf_parent_.size());
  }
  [[nodiscard]] std::uint64_t inserts() const noexcept { return inserts_; }
  [[nodiscard]] std::uint64_t closures() const noexcept { return closures_; }

  /// Streams undirected edge {u,v}. Endpoints must be < n and distinct, and
  /// the edge must not have been inserted before (duplicate-free contract).
  /// Returns whether the insert closed a cycle, with the witness when it did.
  InsertVerdict insert(graph::Vertex u, graph::Vertex v);

  /// The union-find verdict alone — the branch-only hot path the throughput
  /// gate measures. Identical closed_cycle answer to insert(), no witness,
  /// and the forest still tracks tree edges so later insert() calls stay
  /// correct.
  bool insert_fast(graph::Vertex u, graph::Vertex v);

  /// Current component representative of \p v (path-compressing).
  [[nodiscard]] graph::Vertex find(graph::Vertex v);

  [[nodiscard]] bool connected(graph::Vertex u, graph::Vertex v) {
    return find(u) == find(v);
  }

 private:
  /// Reverses tree-parent pointers along v → root so \p v becomes the root
  /// of its forest tree. Cost: the old v→root path length.
  void reroot(graph::Vertex v);
  /// Records tree edge {u,v} joining two components (v's is the smaller).
  void link(graph::Vertex u, graph::Vertex v, graph::Vertex root_u, graph::Vertex root_v);
  void extract_witness(graph::Vertex u, graph::Vertex v);

  std::vector<graph::Vertex> uf_parent_;
  std::vector<std::uint8_t> uf_rank_;
  std::vector<std::uint32_t> comp_size_;     ///< valid at union-find roots
  std::vector<graph::Vertex> tree_parent_;   ///< spanning forest, kInvalidVertex at roots
  std::vector<std::uint32_t> stamp_;         ///< witness-walk marks
  std::uint32_t stamp_round_ = 0;
  std::vector<graph::Vertex> witness_;       ///< reused witness buffer
  std::vector<graph::Vertex> path_v_;        ///< scratch for the v-side walk
  std::uint64_t inserts_ = 0;
  std::uint64_t closures_ = 0;
};

/// Directed streaming cycle detection via CFKR-style level labels. Maintains
/// the invariant level(a) < level(b) for every inserted arc a→b while the
/// graph is acyclic; the first insert that closes a directed cycle is
/// reported with a witness and poisons the structure (levels of a cyclic
/// graph are meaningless), so callers must reset() before streaming on.
class DagLevels {
 public:
  DagLevels() = default;
  explicit DagLevels(graph::Vertex n) { reset(n); }

  /// Prepares for a fresh stream on \p n vertices. Recycles every arc block
  /// back to the pool — after the first stream warmed the slabs, later
  /// streams of similar shape allocate nothing.
  void reset(graph::Vertex n);

  [[nodiscard]] graph::Vertex num_vertices() const noexcept {
    return static_cast<graph::Vertex>(level_.size());
  }
  [[nodiscard]] std::uint64_t inserts() const noexcept { return inserts_; }
  [[nodiscard]] bool cyclic() const noexcept { return cyclic_; }
  [[nodiscard]] std::uint32_t level(graph::Vertex v) const { return level_[v]; }

  /// Streams arc u→v (u ≠ v, both < n, duplicate-free). Must not be called
  /// after a cycle was reported (cyclic() — reset() first); checked.
  InsertVerdict insert(graph::Vertex u, graph::Vertex v);

 private:
  /// Fixed-size arc block: sized exactly to the pool's 32-byte class so the
  /// allocator never rounds up. Blocks prepend per vertex; iteration order
  /// is a pure function of insertion order (determinism contract).
  struct ArcBlock {
    ArcBlock* next;
    std::uint32_t count;
    graph::Vertex targets[5];
  };
  static_assert(sizeof(ArcBlock) == 32);

  void add_arc(graph::Vertex u, graph::Vertex v);
  void release_blocks();

  util::PoolAllocator arena_;
  std::vector<ArcBlock*> head_;          ///< per-vertex arc chain
  std::vector<std::uint32_t> level_;
  std::vector<graph::Vertex> prop_parent_;  ///< forward-search witness trace
  std::vector<graph::Vertex> stack_;     ///< reused search stack
  std::vector<graph::Vertex> witness_;
  std::uint64_t inserts_ = 0;
  bool cyclic_ = false;
};

}  // namespace decycle::incremental
