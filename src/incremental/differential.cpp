#include "incremental/differential.hpp"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "core/threshold/budget.hpp"
#include "engine/engine.hpp"
#include "engine/lanes.hpp"
#include "graph/subgraph.hpp"
#include "incremental/incremental.hpp"
#include "incremental/session.hpp"
#include "util/check.hpp"

namespace decycle::incremental {

namespace {

/// BFS over an explicit adjacency list: is \p to reachable from \p from?
/// The independent connectivity oracle — deliberately not union-find.
bool reachable(const std::vector<std::vector<graph::Vertex>>& adj, graph::Vertex from,
               graph::Vertex to, std::vector<std::uint32_t>& mark, std::uint32_t round) {
  if (from == to) return true;
  std::deque<graph::Vertex> queue{from};
  mark[from] = round;
  while (!queue.empty()) {
    const graph::Vertex w = queue.front();
    queue.pop_front();
    for (const graph::Vertex x : adj[w]) {
      if (mark[x] == round) continue;
      if (x == to) return true;
      mark[x] = round;
      queue.push_back(x);
    }
  }
  return false;
}

std::string joined(std::span<const graph::Vertex> cycle) {
  std::string out;
  for (const graph::Vertex v : cycle) {
    if (!out.empty()) out += "-";
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

PrefixCheckReport check_stream_prefixes(const InsertStream& stream,
                                        const PrefixCheckOptions& options) {
  PrefixCheckReport report;
  const core::DetectorRegistry& registry =
      options.registry != nullptr ? *options.registry : core::DetectorRegistry::builtin();
  const std::size_t m = stream.inserts.size();
  const std::size_t stride =
      options.max_prefixes == 0 ? 1 : std::max<std::size_t>(1, m / options.max_prefixes);

  auto mismatch = [&](std::size_t prefix, std::string detail) {
    report.mismatches.push_back({prefix, std::move(detail)});
  };

  // Explicit prefix adjacency for the BFS oracle (arcs for directed
  // streams, both directions for undirected ones).
  std::vector<std::vector<graph::Vertex>> adj(stream.n);
  std::vector<std::uint32_t> mark(stream.n, 0);
  std::uint32_t round = 0;

  if (stream.directed) {
    DagLevels dag(stream.n);
    for (std::size_t i = 0; i < m; ++i) {
      const auto [u, v] = stream.inserts[i];
      const bool check = i % stride == stride - 1 || i + 1 == m;
      bool oracle_closed = false;
      if (check) {
        ++report.oracle_queries;
        oracle_closed = reachable(adj, v, u, mark, ++round);
      }
      const InsertVerdict verdict = dag.insert(u, v);
      adj[u].push_back(v);
      if (!check && !verdict.closed_cycle) continue;
      if (!check) {  // a closure on an unchecked prefix: check it anyway
        ++report.oracle_queries;
        oracle_closed = true;  // DagLevels never reports without a witness; verify it below
      }
      ++report.prefixes_checked;
      if (check && verdict.closed_cycle != oracle_closed) {
        mismatch(i, "directed closure verdict " + std::to_string(verdict.closed_cycle) +
                        " but BFS oracle says " + std::to_string(oracle_closed));
      }
      if (verdict.closed_cycle) {
        ++report.closures;
        // Witness arcs must all exist: consecutive pairs plus the wrap.
        const auto& w = verdict.witness;
        bool valid = w.size() >= 2 && w[0] == u && w[1] == v;
        for (std::size_t j = 0; valid && j < w.size(); ++j) {
          const graph::Vertex a = w[j];
          const graph::Vertex b = w[(j + 1) % w.size()];
          valid = std::find(adj[a].begin(), adj[a].end(), b) != adj[a].end();
        }
        if (!valid) {
          mismatch(i, "directed witness " + joined(w) + " is not an arc cycle through " +
                          std::to_string(u) + "->" + std::to_string(v));
        }
        break;  // DagLevels' contract ends at the first cycle
      }
    }
    return report;
  }

  // Undirected: witness-extracting detector + the engine bridge. The
  // session re-runs the same inserts through its own union-find — its
  // closure count must agree (internal consistency) — and its epoch/purge
  // path is what every batch query below leases against.
  engine::DetectionEngine engine;
  IncrementalSession session(engine, "prefix-differential", stream.n);
  ForestConnectivity fc(stream.n);
  std::vector<graph::Edge> edges;
  edges.reserve(m);

  std::vector<const core::Detector*> detectors;
  for (const std::string& name : options.detectors) {
    detectors.push_back(&registry.require(name));
  }

  for (std::size_t i = 0; i < m; ++i) {
    const auto [u, v] = stream.inserts[i];
    const bool strided = i % stride == stride - 1 || i + 1 == m;
    bool oracle_closed = false;
    if (strided) {
      ++report.oracle_queries;
      oracle_closed = reachable(adj, u, v, mark, ++round);
    }
    const InsertVerdict verdict = fc.insert(u, v);
    const bool session_closed = session.insert(u, v);
    adj[u].push_back(v);
    adj[v].push_back(u);
    edges.emplace_back(std::min(u, v), std::max(u, v));
    if (session_closed != verdict.closed_cycle) {
      mismatch(i, "session verdict disagrees with detector verdict");
    }
    const bool check = strided || verdict.closed_cycle;
    if (!check) continue;
    ++report.prefixes_checked;
    if (!strided) {
      // A closure on an unchecked prefix is still checked: probe pre-insert
      // connectivity by dropping the just-appended edge for the BFS.
      ++report.oracle_queries;
      adj[u].pop_back();
      adj[v].pop_back();
      oracle_closed = reachable(adj, u, v, mark, ++round);
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
    if (verdict.closed_cycle != oracle_closed) {
      mismatch(i, "closure verdict " + std::to_string(verdict.closed_cycle) +
                      " but BFS oracle says " + std::to_string(oracle_closed));
      continue;
    }

    if (verdict.closed_cycle) {
      ++report.closures;
      const graph::Graph g = graph::Graph::from_edges(stream.n, edges);
      if (!graph::validate_cycle(g, verdict.witness)) {
        mismatch(i, "witness " + joined(verdict.witness) + " is not a cycle of the prefix graph");
        continue;
      }
      const unsigned len = static_cast<unsigned>(verdict.witness.size());
      if (len > options.max_query_k) continue;
      // The repo's DFS oracle must see a C_len through the inserted edge.
      ++report.oracle_queries;
      if (!graph::has_cycle_through_edge(g, len, u, v)) {
        mismatch(i, "DFS oracle finds no C_" + std::to_string(len) + " through " +
                        std::to_string(u) + "-" + std::to_string(v));
        continue;
      }
      // Batch detectors on the snapshot: exact-regime C_len queries must
      // reject with a valid witness.
      for (const core::Detector* d : detectors) {
        const core::DetectorCapabilities& caps = d->capabilities();
        if (len < caps.min_k || len > caps.max_k) continue;
        engine::Query q;
        q.detector = d;
        q.options.k = len;
        q.options.seed = engine::trial_seed(stream.seed, i);
        q.options.budget = core::threshold::BudgetSchedule::none();
        q.options.max_tracked = 0;
        if (caps.draws_edge) q.options.edge = graph::Edge{std::min(u, v), std::max(u, v)};
        const std::vector<core::Verdict> verdicts = session.run_batch({&q, 1});
        ++report.batch_queries;
        if (verdicts[0].accepted) {
          mismatch(i, std::string(d->name()) + " accepted although a C_" +
                          std::to_string(len) + " closed at this prefix");
        }
      }
    } else if (fc.closures() == 0) {
      // Still a forest: every C_k query must accept. Draw one k per checked
      // prefix to sweep the range without k-sized blowup.
      for (const core::Detector* d : detectors) {
        const core::DetectorCapabilities& caps = d->capabilities();
        const unsigned lo = std::max(3u, caps.min_k);
        const unsigned hi = std::min(options.max_query_k, caps.max_k);
        if (lo > hi) continue;
        engine::Query q;
        q.detector = d;
        q.options.k = lo + static_cast<unsigned>(i % (hi - lo + 1));
        q.options.seed = engine::trial_seed(stream.seed, i);
        q.options.budget = core::threshold::BudgetSchedule::none();
        q.options.max_tracked = 0;
        if (caps.draws_edge) q.options.edge = graph::Edge{std::min(u, v), std::max(u, v)};
        const std::vector<core::Verdict> verdicts = session.run_batch({&q, 1});
        ++report.batch_queries;
        if (!verdicts[0].accepted) {
          mismatch(i, std::string(d->name()) + " rejected (k=" + std::to_string(q.options.k) +
                          ") although the prefix graph is a forest");
        }
      }
    }
  }
  return report;
}

}  // namespace decycle::incremental
