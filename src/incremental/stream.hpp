/// \file stream.hpp
/// \brief Insert-stream replay files and the seeded stream generator.
///
/// A stream file is everything needed to replay one insertion sequence
/// deterministically, in the soak repro tradition (plain text, comment
/// lines ignored, loud parser naming accepted alternatives):
///
///   # decycle_incr stream v1          (comment lines, ignored)
///   stream n=100 directed=0 seed=7    (one header line)
///   12                                (insert count...)
///   0 1                               (...then one insert per line, in
///   4 7                                stream order — NOT canonicalized:
///   ...                                directed streams keep orientation)
///
/// The parser enforces the detectors' duplicate-free contract offline
/// (undirected inserts are compared as unordered pairs, directed ones as
/// ordered arcs), so the hot path never pays a membership probe. Streams
/// are generated from a seed (generate_stream), so CI smokes and benches
/// never check binary corpora in — a failing prefix re-emerges from
/// (spec, seed) or travels as a small text repro (write_stream of the
/// prefix).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace decycle::incremental {

/// One insertion: (first → second) for directed streams, an unordered
/// {first, second} edge for undirected ones. Unlike graph::Edge this is
/// deliberately NOT canonicalized — orientation is payload.
using Insert = std::pair<graph::Vertex, graph::Vertex>;

struct InsertStream {
  graph::Vertex n = 0;
  bool directed = false;
  std::uint64_t seed = 0;  ///< provenance only; replay never re-draws
  std::vector<Insert> inserts;
};

/// Writes the stream format above. Deterministic bytes (write → read →
/// write round-trips identically).
void write_stream(std::ostream& out, const InsertStream& stream);

/// Parses the stream format. Throws CheckError on malformed headers,
/// unknown/duplicate header keys, bad counts, out-of-range endpoints,
/// self-loops, or duplicate inserts — each message naming the offending
/// line or insert index and the accepted alternatives.
[[nodiscard]] InsertStream read_stream(std::istream& in);

/// What generate_stream draws.
struct StreamSpec {
  graph::Vertex n = 64;
  std::size_t inserts = 128;  ///< clamped to the number of distinct edges/arcs
  bool directed = false;
  /// Directed only: orient every arc along a hidden random topological
  /// order, so the stream provably never closes a directed cycle — the
  /// regime DagLevels maintenance (and its bench) needs. Ignored for
  /// undirected streams.
  bool acyclic = false;
  std::uint64_t seed = 1;
};

/// Draws a duplicate-free insertion stream: distinct undirected edges (or
/// distinct arcs, no self-loops, no 2-cycles when acyclic) in uniformly
/// shuffled order. Pure function of \p spec.
[[nodiscard]] InsertStream generate_stream(const StreamSpec& spec);

}  // namespace decycle::incremental
