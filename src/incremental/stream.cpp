#include "incremental/stream.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_set>

#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace decycle::incremental {

namespace {

/// Canonical 64-bit key of one insert for duplicate detection: unordered
/// for undirected streams, ordered for directed ones.
std::uint64_t insert_key(const Insert& e, bool directed) {
  graph::Vertex a = e.first;
  graph::Vertex b = e.second;
  if (!directed && a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Decodes triangular index \p idx into the canonical pair (u < v) with
/// idx = v(v-1)/2 + u. Double sqrt gets within one of the right row; the
/// adjustment loop makes it exact for any 64-bit-triangular universe.
Insert decode_pair(std::uint64_t idx) {
  auto v = static_cast<std::uint64_t>(
      (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
  while (v * (v - 1) / 2 > idx) --v;
  while ((v + 1) * v / 2 <= idx) ++v;
  const std::uint64_t u = idx - v * (v - 1) / 2;
  return {static_cast<graph::Vertex>(u), static_cast<graph::Vertex>(v)};
}

}  // namespace

void write_stream(std::ostream& out, const InsertStream& stream) {
  out << "# decycle_incr stream v1\n";
  out << "stream n=" << stream.n << " directed=" << (stream.directed ? 1 : 0)
      << " seed=" << stream.seed << "\n";
  out << stream.inserts.size() << "\n";
  for (const Insert& e : stream.inserts) out << e.first << " " << e.second << "\n";
}

InsertStream read_stream(std::istream& in) {
  std::string line;
  auto next_content_line = [&](const char* what) {
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      return;
    }
    DECYCLE_CHECK_MSG(false, std::string("stream parse: unexpected end of file, expected ") + what);
  };

  next_content_line("the 'stream n=... directed=... seed=...' header");
  std::istringstream header(line);
  std::string tag;
  header >> tag;
  DECYCLE_CHECK_MSG(tag == "stream",
                    "stream parse: header must start with 'stream', got '" + tag + "'");
  InsertStream out;
  bool saw_n = false;
  bool saw_directed = false;
  std::string token;
  while (header >> token) {
    const std::size_t eq = token.find('=');
    DECYCLE_CHECK_MSG(eq != std::string::npos,
                      "stream parse: header token '" + token + "' is not key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "n") {
        DECYCLE_CHECK_MSG(!saw_n, "stream parse: duplicate header key 'n'");
        out.n = static_cast<graph::Vertex>(std::stoull(value));
        saw_n = true;
      } else if (key == "directed") {
        DECYCLE_CHECK_MSG(!saw_directed, "stream parse: duplicate header key 'directed'");
        DECYCLE_CHECK_MSG(value == "0" || value == "1",
                          "stream parse: directed must be 0 or 1, got '" + value + "'");
        out.directed = value == "1";
        saw_directed = true;
      } else if (key == "seed") {
        out.seed = std::stoull(value);
      } else {
        DECYCLE_CHECK_MSG(false, "stream parse: unknown header key '" + key +
                                     "' (accepted: n, directed, seed)");
      }
    } catch (const std::invalid_argument&) {
      DECYCLE_CHECK_MSG(false, "stream parse: malformed value for '" + key + "': '" + value + "'");
    } catch (const std::out_of_range&) {
      DECYCLE_CHECK_MSG(false, "stream parse: value for '" + key + "' out of range: '" + value + "'");
    }
  }
  DECYCLE_CHECK_MSG(saw_n, "stream parse: header is missing n=");
  DECYCLE_CHECK_MSG(saw_directed, "stream parse: header is missing directed=");

  next_content_line("the insert count");
  std::size_t count = 0;
  {
    std::istringstream counter(line);
    DECYCLE_CHECK_MSG(static_cast<bool>(counter >> count),
                      "stream parse: malformed insert count '" + line + "'");
  }

  out.inserts.reserve(count);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count * 2);
  for (std::size_t i = 0; i < count; ++i) {
    next_content_line("an insert line");
    std::istringstream edge_line(line);
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    DECYCLE_CHECK_MSG(static_cast<bool>(edge_line >> a >> b),
                      "stream parse: malformed insert " + std::to_string(i) + ": '" + line + "'");
    DECYCLE_CHECK_MSG(a < out.n && b < out.n,
                      "stream parse: insert " + std::to_string(i) + " endpoint out of range (n=" +
                          std::to_string(out.n) + "): '" + line + "'");
    DECYCLE_CHECK_MSG(a != b, "stream parse: insert " + std::to_string(i) + " is a self-loop");
    const Insert e{static_cast<graph::Vertex>(a), static_cast<graph::Vertex>(b)};
    DECYCLE_CHECK_MSG(seen.insert(insert_key(e, out.directed)).second,
                      "stream parse: insert " + std::to_string(i) +
                          " duplicates an earlier insert (streams are duplicate-free)");
    out.inserts.push_back(e);
  }
  return out;
}

InsertStream generate_stream(const StreamSpec& spec) {
  DECYCLE_CHECK_MSG(spec.n >= 2, "generate_stream: need at least 2 vertices");
  InsertStream out;
  out.n = spec.n;
  out.directed = spec.directed;
  out.seed = spec.seed;

  const std::uint64_t n = spec.n;
  util::Rng rng = util::Rng(spec.seed)
                      .fork(n)
                      .fork((spec.directed ? 2u : 0u) | (spec.acyclic ? 1u : 0u));

  if (spec.directed && !spec.acyclic) {
    // Distinct ordered arcs (no self-loops), uniformly ordered.
    const std::uint64_t universe = n * (n - 1);
    const std::size_t m = static_cast<std::size_t>(
        std::min<std::uint64_t>(spec.inserts, universe));
    for (const std::uint64_t idx : rng.sample_distinct(universe, m)) {
      const std::uint64_t a = idx / (n - 1);
      const std::uint64_t r = idx % (n - 1);
      const std::uint64_t b = r + (r >= a ? 1 : 0);
      out.inserts.emplace_back(static_cast<graph::Vertex>(a), static_cast<graph::Vertex>(b));
    }
    return out;
  }

  // Distinct unordered pairs. Directed+acyclic orients each along a hidden
  // uniform topological order, so the stream cannot close a directed cycle.
  const std::uint64_t universe = n * (n - 1) / 2;
  const std::size_t m =
      static_cast<std::size_t>(std::min<std::uint64_t>(spec.inserts, universe));
  std::vector<std::uint32_t> order;
  if (spec.directed) order = rng.permutation(spec.n);
  for (const std::uint64_t idx : rng.sample_distinct(universe, m)) {
    Insert e = decode_pair(idx);
    if (spec.directed && order[e.first] > order[e.second]) std::swap(e.first, e.second);
    out.inserts.push_back(e);
  }
  return out;
}

}  // namespace decycle::incremental
