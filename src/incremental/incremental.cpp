#include "incremental/incremental.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace decycle::incremental {

// ---------------------------------------------------------------------------
// ForestConnectivity
// ---------------------------------------------------------------------------

void ForestConnectivity::reset(graph::Vertex n) {
  uf_parent_.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) uf_parent_[v] = v;
  uf_rank_.assign(n, 0);
  comp_size_.assign(n, 1);
  tree_parent_.assign(n, graph::kInvalidVertex);
  stamp_.assign(n, 0);
  stamp_round_ = 0;
  witness_.clear();
  path_v_.clear();
  inserts_ = 0;
  closures_ = 0;
}

graph::Vertex ForestConnectivity::find(graph::Vertex v) {
  // Path halving: one pass, no stack, same amortized bound as full
  // compression and friendlier to the branch predictor on long streams.
  while (uf_parent_[v] != v) {
    uf_parent_[v] = uf_parent_[uf_parent_[v]];
    v = uf_parent_[v];
  }
  return v;
}

void ForestConnectivity::reroot(graph::Vertex v) {
  graph::Vertex prev = graph::kInvalidVertex;
  graph::Vertex cur = v;
  while (cur != graph::kInvalidVertex) {
    const graph::Vertex next = tree_parent_[cur];
    tree_parent_[cur] = prev;
    prev = cur;
    cur = next;
  }
}

void ForestConnectivity::link(graph::Vertex u, graph::Vertex v, graph::Vertex root_u,
                              graph::Vertex root_v) {
  // Forest: re-root the smaller tree at v, then hang it off u — the
  // small-to-large choice bounds total re-rooting work by O(n log n) over
  // any insertion sequence.
  reroot(v);
  tree_parent_[v] = u;
  // Union-find: by rank, component size kept at the surviving root.
  const std::uint32_t total = comp_size_[root_u] + comp_size_[root_v];
  if (uf_rank_[root_u] < uf_rank_[root_v]) std::swap(root_u, root_v);
  uf_parent_[root_v] = root_u;
  if (uf_rank_[root_u] == uf_rank_[root_v]) ++uf_rank_[root_u];
  comp_size_[root_u] = total;
}

bool ForestConnectivity::insert_fast(graph::Vertex u, graph::Vertex v) {
  ++inserts_;
  graph::Vertex ru = find(u);
  graph::Vertex rv = find(v);
  if (ru == rv) {
    ++closures_;
    return true;
  }
  if (comp_size_[ru] < comp_size_[rv]) {
    std::swap(u, v);
    std::swap(ru, rv);
  }
  link(u, v, ru, rv);
  return false;
}

void ForestConnectivity::extract_witness(graph::Vertex u, graph::Vertex v) {
  // Mark the u → root tree path, then walk v upward until the first marked
  // vertex: that is the meeting point (at worst the root, which both walks
  // reach — u and v share a tree here).
  ++stamp_round_;
  for (graph::Vertex w = u; w != graph::kInvalidVertex; w = tree_parent_[w]) {
    stamp_[w] = stamp_round_;
  }
  path_v_.clear();
  graph::Vertex meet = v;
  while (stamp_[meet] != stamp_round_) {
    path_v_.push_back(meet);
    meet = tree_parent_[meet];
  }
  // Cycle = u, parent(u), ..., meet, then back down the v side: consecutive
  // vertices are tree edges, and the final v closes to u through the
  // inserted edge.
  witness_.clear();
  for (graph::Vertex w = u;; w = tree_parent_[w]) {
    witness_.push_back(w);
    if (w == meet) break;
  }
  for (auto it = path_v_.rbegin(); it != path_v_.rend(); ++it) witness_.push_back(*it);
}

InsertVerdict ForestConnectivity::insert(graph::Vertex u, graph::Vertex v) {
  const graph::Vertex n = num_vertices();
  DECYCLE_CHECK_MSG(u < n && v < n, "incremental insert: endpoint out of range");
  DECYCLE_CHECK_MSG(u != v, "incremental insert: self-loop");
  ++inserts_;
  graph::Vertex ru = find(u);
  graph::Vertex rv = find(v);
  if (ru == rv) {
    ++closures_;
    extract_witness(u, v);
    return {true, witness_};
  }
  if (comp_size_[ru] < comp_size_[rv]) {
    std::swap(u, v);
    std::swap(ru, rv);
  }
  link(u, v, ru, rv);
  return {false, {}};
}

// ---------------------------------------------------------------------------
// DagLevels
// ---------------------------------------------------------------------------

void DagLevels::release_blocks() {
  for (ArcBlock*& head : head_) {
    while (head != nullptr) {
      ArcBlock* next = head->next;
      arena_.deallocate(head, sizeof(ArcBlock));
      head = next;
    }
  }
}

void DagLevels::reset(graph::Vertex n) {
  release_blocks();
  head_.assign(n, nullptr);
  level_.assign(n, 0);
  prop_parent_.assign(n, graph::kInvalidVertex);
  stack_.clear();
  witness_.clear();
  inserts_ = 0;
  cyclic_ = false;
}

void DagLevels::add_arc(graph::Vertex u, graph::Vertex v) {
  ArcBlock* head = head_[u];
  if (head == nullptr || head->count == std::size(head->targets)) {
    auto* block = static_cast<ArcBlock*>(arena_.allocate(sizeof(ArcBlock)));
    block->next = head;
    block->count = 0;
    head_[u] = head = block;
  }
  head->targets[head->count++] = v;
}

InsertVerdict DagLevels::insert(graph::Vertex u, graph::Vertex v) {
  const graph::Vertex n = num_vertices();
  DECYCLE_CHECK_MSG(u < n && v < n, "incremental insert: endpoint out of range");
  DECYCLE_CHECK_MSG(u != v, "incremental insert: self-loop");
  DECYCLE_CHECK_MSG(!cyclic_, "DagLevels: a cycle was already reported — reset() first");
  ++inserts_;
  add_arc(u, v);
  // Invariant: level(a) < level(b) for every arc a→b, so any v ⇝ u path
  // forces level(v) < level(u). When level(u) < level(v) no such path can
  // exist and the invariant already holds for the new arc: the free accept
  // that makes random DAG streams cheap.
  if (level_[u] < level_[v]) return {false, {}};
  // Forward search from v, raising levels to restore the invariant. Reaching
  // u proves a v ⇝ u path, i.e. the inserted arc closed a directed cycle.
  level_[v] = level_[u] + 1;
  prop_parent_[v] = graph::kInvalidVertex;  // v terminates the witness trace
  stack_.clear();
  stack_.push_back(v);
  while (!stack_.empty()) {
    const graph::Vertex w = stack_.back();
    stack_.pop_back();
    const std::uint32_t need = level_[w] + 1;
    for (const ArcBlock* block = head_[w]; block != nullptr; block = block->next) {
      for (std::uint32_t i = 0; i < block->count; ++i) {
        const graph::Vertex x = block->targets[i];
        if (x == u) {
          // Cycle: u →(inserted arc) v ⇝ w → u. The prop trace runs w back
          // to v; every vertex on it was raised during this propagation, so
          // the chain is fresh by construction.
          cyclic_ = true;
          witness_.clear();
          for (graph::Vertex y = w; y != graph::kInvalidVertex; y = prop_parent_[y]) {
            witness_.push_back(y);
          }
          witness_.push_back(u);
          std::reverse(witness_.begin(), witness_.end());
          return {true, witness_};
        }
        if (level_[x] >= need) continue;
        level_[x] = need;
        prop_parent_[x] = w;
        stack_.push_back(x);
      }
    }
  }
  return {false, {}};
}

}  // namespace decycle::incremental
