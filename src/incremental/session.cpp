#include "incremental/session.hpp"

#include <algorithm>
#include <utility>

#include "graph/ids.hpp"
#include "util/check.hpp"

namespace decycle::incremental {

IncrementalSession::IncrementalSession(engine::DetectionEngine& engine, std::string name,
                                       graph::Vertex n)
    : engine_(engine), name_(std::move(name)), n_(n), detector_(n) {
  DECYCLE_CHECK_MSG(!name_.empty(), "incremental session: name must be non-empty");
}

BatchVerdicts IncrementalSession::apply(std::span<const Insert> batch) {
  BatchVerdicts out;
  out.closed.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto [u, v] = batch[i];
    const bool closed = detector_.insert_fast(u, v);
    out.closed[i] = closed ? 1 : 0;
    out.closures += closed ? 1 : 0;
    edges_.emplace_back(std::min(u, v), std::max(u, v));
  }
  if (!batch.empty()) {
    dirty_ = true;
    if (pin_ != nullptr) {
      // The snapshot no longer matches the stream: retire its cached
      // sessions. The epoch bump makes in-flight leases the last users of
      // the old sessions (they complete, then die on release once a newer
      // epoch exists past capacity); the purge frees the idle ones now.
      engine_.store().bump_epoch(name_);
      engine_.sessions().purge(pin_->hash);
    }
  }
  return out;
}

bool IncrementalSession::insert(graph::Vertex u, graph::Vertex v) {
  const Insert one{u, v};
  return apply({&one, 1}).closures == 1;
}

engine::PinnedGraphPtr IncrementalSession::checkpoint() {
  if (!dirty_ && pin_ != nullptr) return pin_;
  pin_ = engine_.store().intern(name_, graph::Graph::from_edges(n_, edges_),
                                graph::IdAssignment::identity(n_));
  dirty_ = false;
  return pin_;
}

std::vector<core::Verdict> IncrementalSession::run_batch(
    std::span<const engine::Query> queries) {
  return engine_.run_batch(checkpoint(), queries);
}

}  // namespace decycle::incremental
