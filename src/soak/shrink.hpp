/// \file shrink.hpp
/// \brief Automatic scenario shrinking for differential mismatches.
///
/// A mismatch found on a 48-vertex random composition is a lousy bug report.
/// The shrinker turns it into a minimal one: greedily delete vertices, then
/// edges, while the mismatch still reproduces, and tighten the scalar knobs
/// (drop adversary off, repetitions down to one, budget caps off) whenever
/// the tightened scenario still reproduces. The result is 1-minimal under
/// the probed moves — no single remaining vertex or edge can be removed —
/// which in practice collapses an unsound rejection to the few vertices that
/// trigger it (a planted always-reject-on-any-cycle fault shrinks to one
/// bare cycle).
///
/// Everything is deterministic: candidates are probed in a fixed order and
/// the predicate must be a pure function of (scenario, graph) —
/// check_detector is exactly that — so a shrink replays bit-identically.
#pragma once

#include <cstddef>
#include <functional>

#include "core/detector.hpp"
#include "graph/graph.hpp"
#include "soak/differential.hpp"
#include "soak/space.hpp"

namespace decycle::soak {

/// True when the mismatch still reproduces on the candidate.
using ShrinkPredicate = std::function<bool(const SoakScenario&, const graph::Graph&)>;

struct ShrinkOptions {
  /// Hard cap on predicate evaluations; the shrinker stops (keeping the best
  /// candidate so far) when it is exhausted. Each probe runs one detector
  /// plus the oracle, so this bounds shrink wall-clock.
  std::size_t max_probes = 20000;
  /// Deletion passes run to a fixpoint, capped here as a safety net.
  std::size_t max_rounds = 16;
};

struct ShrinkStats {
  std::size_t probes = 0;  ///< predicate evaluations spent
  std::size_t rounds = 0;  ///< deletion passes run
  bool converged = true;   ///< false = probe/round budget hit before fixpoint
};

struct ShrinkOutcome {
  SoakScenario scenario;  ///< tightened knobs
  graph::Graph graph;     ///< reduced instance (still reproduces)
  ShrinkStats stats;
};

/// \p g with vertex \p v deleted (incident edges dropped, higher vertices
/// renumbered down by one). Exposed for tests.
[[nodiscard]] graph::Graph remove_vertex(const graph::Graph& g, graph::Vertex v);

/// \p g with edge \p id deleted. Exposed for tests.
[[nodiscard]] graph::Graph remove_edge(const graph::Graph& g, graph::EdgeId id);

/// Shrinks (scenario, g) under \p reproduces. Requires the predicate to hold
/// on the input (throws CheckError otherwise — shrinking a non-mismatch
/// would "minimize" to garbage).
[[nodiscard]] ShrinkOutcome shrink_mismatch(const SoakScenario& scenario,
                                            const graph::Graph& g,
                                            const ShrinkPredicate& reproduces,
                                            const ShrinkOptions& options = {});

/// The standard predicate: detector \p d still produces a mismatch of kind
/// \p kind on the candidate (via check_detector).
[[nodiscard]] ShrinkPredicate mismatch_predicate(const core::Detector& d, MismatchKind kind);

}  // namespace decycle::soak
