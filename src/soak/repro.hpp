/// \file repro.hpp
/// \brief Self-contained mismatch reproducer files.
///
/// A repro is everything needed to replay one differential mismatch
/// deterministically, in two plain-text parts:
///
///   # decycle_soak repro v1            (comment lines, ignored)
///   scenario detector=tester kind=unsound k=5 eps=0.125 reps=1 [...]
///                                      (one line: ... budget, track,
///                                       adversary, seed)
///   6 6                                (edge list: "n m" header...)
///   0 1                                (...then m edges — graph/io.hpp)
///   ...
///
/// The scenario line carries the detector name, the expected mismatch kind,
/// and every knob of SoakScenario; the graph travels as the standard edge
/// list. Nothing else is needed: probe edges and drop coins re-derive from
/// the scenario seed. `decycle_soak --repro FILE` loads the case and asserts
/// the recorded kind still reproduces. Parsing is loud in the lab parser's
/// tradition: unknown keys, bad kinds, and malformed values name the
/// accepted alternatives.
#pragma once

#include <iosfwd>
#include <string>

#include "core/detector.hpp"
#include "graph/graph.hpp"
#include "soak/differential.hpp"
#include "soak/space.hpp"

namespace decycle::soak {

/// One recorded mismatch: scenario knobs + detector + kind + instance.
struct ReproCase {
  SoakScenario scenario;
  std::string detector;  ///< registry name
  MismatchKind kind = MismatchKind::kUnsound;
  graph::Graph graph;
};

/// Writes the repro format above. Deterministic bytes (write → read → write
/// round-trips identically).
void write_repro(std::ostream& out, const ReproCase& repro);

/// Parses the repro format. Throws CheckError on unknown/duplicate/missing
/// scenario keys, bad kinds, or malformed edge lists — each message naming
/// the accepted alternatives.
[[nodiscard]] ReproCase read_repro(std::istream& in);

struct ReplayResult {
  MismatchKind observed = MismatchKind::kNone;
  bool reproduced = false;  ///< observed == recorded kind
  std::string detail;       ///< mismatch detail from the replayed run
};

/// Replays \p repro: looks the detector up in \p registry (throws CheckError
/// naming the registered detectors when absent) and re-runs the differential
/// check. Pure, so a repro replays bit-identically forever.
[[nodiscard]] ReplayResult replay_repro(
    const ReproCase& repro,
    const core::DetectorRegistry& registry = core::DetectorRegistry::builtin());

}  // namespace decycle::soak
