#include "soak/repro.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>
#include <vector>

#include "graph/io.hpp"
#include "lab/json.hpp"
#include "util/check.hpp"

namespace decycle::soak {

namespace {

constexpr std::string_view kAcceptedKeys =
    "detector, kind, k, eps, reps, budget, track, adversary, seed";

[[noreturn]] void fail(const std::string& msg) { DECYCLE_CHECK_MSG(false, msg); }

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    fail("repro scenario key '" + std::string(key) + "': expected unsigned integer, got '" +
         std::string(value) + "'");
  }
  return out;
}

double parse_double(std::string_view key, std::string_view value) {
  double out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    fail("repro scenario key '" + std::string(key) + "': expected number, got '" +
         std::string(value) + "'");
  }
  return out;
}

}  // namespace

void write_repro(std::ostream& out, const ReproCase& repro) {
  out << "# decycle_soak repro v1\n";
  out << "# replay: decycle_soak --repro <this file>\n";
  out << "scenario detector=" << repro.detector << " kind=" << mismatch_kind_name(repro.kind)
      << " " << repro.scenario.key() << "\n";
  graph::write_edge_list(out, repro.graph);
}

ReproCase read_repro(std::istream& in) {
  // The scenario line is the first non-comment, non-empty line; everything
  // after it is the standard edge list (which skips comments itself).
  std::string line;
  for (;;) {
    if (!std::getline(in, line)) fail("repro file: missing 'scenario' line");
    if (line.empty() || line[0] == '#') continue;
    break;
  }
  std::istringstream ls(line);
  std::string head;
  ls >> head;
  if (head != "scenario") {
    fail("repro file: expected a line starting with 'scenario', got '" + head + "'");
  }

  ReproCase repro;
  bool have_detector = false;
  bool have_k = false;
  std::set<std::string> seen;
  std::string token;
  while (ls >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      fail("repro scenario token '" + token + "' is not of the form key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (!seen.insert(key).second) {
      fail("repro scenario key '" + key + "' given twice");
    }
    if (key == "detector") {
      if (value.empty()) fail("repro scenario key 'detector': empty name");
      repro.detector = value;
      have_detector = true;
    } else if (key == "kind") {
      repro.kind = parse_mismatch_kind(value);
    } else if (key == "k") {
      repro.scenario.k = static_cast<unsigned>(parse_u64(key, value));
      have_k = true;
    } else if (key == "eps") {
      repro.scenario.epsilon = parse_double(key, value);
    } else if (key == "reps") {
      repro.scenario.repetitions = parse_u64(key, value);
    } else if (key == "budget") {
      repro.scenario.budget = core::threshold::BudgetSchedule::parse(value);
    } else if (key == "track") {
      repro.scenario.track = parse_u64(key, value);
    } else if (key == "adversary") {
      repro.scenario.adversary = lab::parse_adversary(value);
    } else if (key == "seed") {
      repro.scenario.seed = parse_u64(key, value);
    } else {
      fail("unknown repro scenario key '" + key + "' (accepted: " + std::string(kAcceptedKeys) +
           ")");
    }
  }
  if (!have_detector) {
    fail("repro scenario line is missing the 'detector' key (accepted keys: " +
         std::string(kAcceptedKeys) + ")");
  }
  if (!have_k) {
    fail("repro scenario line is missing the 'k' key (accepted keys: " +
         std::string(kAcceptedKeys) + ")");
  }
  repro.graph = graph::read_edge_list(in);
  return repro;
}

ReplayResult replay_repro(const ReproCase& repro, const core::DetectorRegistry& registry) {
  const core::Detector& detector = registry.require(repro.detector);
  ReplayResult out;
  out.observed = check_detector(repro.graph, repro.scenario, detector, &out.detail);
  out.reproduced = out.observed == repro.kind;
  return out;
}

}  // namespace decycle::soak
