#include "soak/differential.hpp"

#include <optional>
#include <utility>

#include "engine/graph_store.hpp"
#include "graph/ids.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::soak {

namespace {

// Seed-stream tags: the probe edge and the drop coin draw from streams
// derived from scenario.seed alone, so a repro file (scenario line + edge
// list) replays the identical run without carrying either explicitly.
constexpr std::uint64_t kProbeTag = 0x70726f62655f5f31ULL;  // "probe__1"
constexpr std::uint64_t kDropTag = 0x64726f705f5f5f32ULL;   // "drop___2"
constexpr std::uint64_t kRunTag = 0x72756e5f5f5f5f31ULL;    // "run____1"

/// Largest instance for which run_differential will build a dense-model
/// (clique) simulator for detectors that cannot run under congest.
constexpr graph::Vertex kDenseModelMaxN = 512;

/// Per-(scenario, detector) run seed: fold the detector name so sibling
/// detectors never share a random stream.
std::uint64_t run_seed(const SoakScenario& s, std::string_view detector) {
  std::uint64_t h = util::splitmix64(s.seed ^ kRunTag);
  for (const char c : detector) h = util::splitmix64(h ^ static_cast<unsigned char>(c));
  return h;
}

/// Whether this run is in a regime where accept must equal the oracle:
/// drop-free, and the detector advertises determinism through its
/// capability flags — draws_edge (the single-edge checker is exact per
/// Lemma 2) or threshold knobs with nothing capped (an unlimited sweep is an
/// exhaustive parallel edge scan). Injected test detectors must not set
/// these flags unless they honor the corresponding exactness.
bool exact_regime(const core::DetectorCapabilities& caps, const SoakScenario& s) {
  if (s.adversary.kind != lab::AdversarySpec::Kind::kNone && s.adversary.rate > 0.0) {
    return false;
  }
  // Unconditionally exact when lossless (the clique h-cycle detector's final
  // phase collects the whole graph), whatever the knobs.
  if (caps.exact_when_lossless) return true;
  if (caps.draws_edge) return true;
  return caps.uses_threshold_knobs && s.budget.unlimited() && s.track == 0;
}

DetectorOutcome run_one(const graph::Graph& g, const SoakScenario& s,
                        const core::Detector& d, const OracleContext& oracle,
                        congest::Simulator& sim) {
  DetectorOutcome out;
  out.detector = &d;
  const core::DetectorCapabilities& caps = d.capabilities();
  if (s.k < caps.min_k || s.k > caps.max_k) return out;
  // Model gate: a detector only runs on a simulator whose communication
  // model its capability mask admits (run_differential hands model-specific
  // detectors a compatible simulator when the instance is small enough).
  if (!core::supports_model(caps, sim.model().kind())) return out;
  if (caps.draws_edge && !oracle.has_probe) return out;
  out.ran = true;
  out.exact_regime = exact_regime(caps, s);

  core::DetectorOptions opt;
  opt.k = s.k;
  opt.epsilon = s.epsilon;
  opt.seed = run_seed(s, d.name());
  opt.repetitions = s.repetitions;
  // A centralized reference left on its own default would run ⌈e^k·ln3⌉
  // colorings — thousands per instance. The soak caps it: accepts are never
  // per-instance mismatches for probabilistic detectors, so a smaller
  // iteration count only trades detection rate for throughput.
  if (!caps.distributed && opt.repetitions == 0) opt.repetitions = 32;
  opt.budget = s.budget;
  opt.max_tracked = s.track;
  if (caps.draws_edge) opt.edge = oracle.probe;
  opt.drop = lab::make_drop_filter(s.adversary, util::splitmix64(s.seed ^ kDropTag));

  core::Verdict verdict;
  try {
    verdict = d.run(sim, opt);
  } catch (const util::CheckError& e) {
    // The library's internal witness validation (and any other invariant)
    // throwing mid-run IS the soundness violation the soak hunts; surface it
    // as a shrinkable mismatch instead of crashing the campaign.
    out.rejected = true;
    out.mismatch = MismatchKind::kUnsound;
    out.detail = "run threw: " + std::string(e.what());
    return out;
  }

  out.rejected = !verdict.accepted;
  if (out.rejected) {
    if (verdict.witness.size() != s.k || !graph::validate_cycle(g, verdict.witness)) {
      out.mismatch = MismatchKind::kUnsound;
      out.detail = "rejected without a genuine C_" + std::to_string(s.k) +
                   " witness (witness length " + std::to_string(verdict.witness.size()) + ")";
    } else if (!oracle.has_ck) {
      out.mismatch = MismatchKind::kUnsound;
      out.detail = "rejected but the oracle finds no C_" + std::to_string(s.k);
    }
    return out;
  }

  if (out.exact_regime && !verdict.overflow && !verdict.truncated) {
    const bool oracle_found = caps.draws_edge ? oracle.probe_has_ck : oracle.has_ck;
    if (oracle_found) {
      out.mismatch = MismatchKind::kMissedCycle;
      out.detail = caps.draws_edge
                       ? "accepted although the oracle finds a C_" + std::to_string(s.k) +
                             " through probe edge {" + std::to_string(oracle.probe.first) +
                             "," + std::to_string(oracle.probe.second) + "}"
                       : "exact-regime accept although the oracle finds a C_" +
                             std::to_string(s.k);
    }
  }
  return out;
}

}  // namespace

std::string_view mismatch_kind_name(MismatchKind kind) noexcept {
  switch (kind) {
    case MismatchKind::kNone: return "none";
    case MismatchKind::kUnsound: return "unsound";
    case MismatchKind::kMissedCycle: return "missed_cycle";
  }
  return "none";
}

MismatchKind parse_mismatch_kind(std::string_view token) {
  if (token == "none") return MismatchKind::kNone;
  if (token == "unsound") return MismatchKind::kUnsound;
  if (token == "missed_cycle") return MismatchKind::kMissedCycle;
  DECYCLE_CHECK_MSG(false, "unknown mismatch kind '" + std::string(token) +
                               "' (known: none, unsound, missed_cycle)");
}

OracleContext oracle_context(const graph::Graph& g, const SoakScenario& s) {
  OracleContext out;
  out.has_ck = graph::has_cycle(g, s.k);
  if (g.num_edges() > 0) {
    out.has_probe = true;
    util::Rng prng(util::splitmix64(s.seed ^ kProbeTag));
    out.probe = g.edge(static_cast<graph::EdgeId>(prng.next_below(g.num_edges())));
    out.probe_has_ck = graph::has_cycle_through_edge(g, s.k, out.probe.first, out.probe.second);
  }
  return out;
}

DifferentialReport run_differential(const graph::Graph& g, const SoakScenario& s,
                                    const core::DetectorRegistry& registry,
                                    engine::SessionPool* sessions) {
  DifferentialReport report;
  report.oracle = oracle_context(g, s);
  const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
  // One congest simulator for the whole call, reset by every congest-model
  // detector: leased from the caller's session pool when given (warm across
  // repeated differentials on the same content), built locally otherwise.
  engine::SessionPool::Lease lease;
  std::optional<congest::Simulator> own_sim;
  if (sessions != nullptr) {
    lease = sessions->lease(engine::pin(g, ids), congest::CommModel::congest());
  } else {
    own_sim.emplace(g, ids);
  }
  congest::Simulator& sim = sessions != nullptr ? lease.sim() : *own_sim;
  // Detectors whose mask excludes congest get a lazily built simulator under
  // their default model — capped by instance size, because the clique model
  // materializes K_n (n = 512 is ~131k links; the soak's instances are far
  // smaller, so in practice nothing is gated out by the cap).
  std::optional<congest::Simulator> alt_sim;
  const congest::CommModel* alt_model = nullptr;
  report.outcomes.reserve(registry.size());
  for (const core::Detector* d : registry.detectors()) {
    const core::DetectorCapabilities& caps = d->capabilities();
    congest::Simulator* target = &sim;
    if (!core::supports_model(caps, congest::CommModelKind::kCongest) &&
        g.num_vertices() <= kDenseModelMaxN) {
      const congest::CommModel& model = core::default_comm_model(caps);
      if (alt_model != &model) {
        alt_sim.emplace(g, ids, model);
        alt_model = &model;
      }
      target = &*alt_sim;
    }
    report.outcomes.push_back(run_one(g, s, *d, report.oracle, *target));
    if (report.outcomes.back().mismatch != MismatchKind::kNone) ++report.mismatches;
  }
  return report;
}

MismatchKind check_detector(const graph::Graph& g, const SoakScenario& s,
                            const core::Detector& detector, std::string* detail) {
  const OracleContext oracle = oracle_context(g, s);
  const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
  // The detector's default model, so replay/shrink probes of model-specific
  // detectors actually run instead of being capability-gated to a vacuous
  // kNone.
  congest::Simulator sim(g, ids, core::default_comm_model(detector.capabilities()));
  const DetectorOutcome outcome = run_one(g, s, detector, oracle, sim);
  if (detail != nullptr) *detail = outcome.detail;
  return outcome.mismatch;
}

std::optional<bool> amplified_far_rejects(const graph::Graph& g, const SoakScenario& s,
                                          const core::DetectorRegistry& registry) {
  for (const core::Detector* d : registry.detectors()) {
    const core::DetectorCapabilities& caps = d->capabilities();
    if (!caps.uses_epsilon) continue;
    if (s.k < caps.min_k || s.k > caps.max_k) return std::nullopt;
    SoakScenario audit = s;
    audit.repetitions = 0;  // the amplified default Theorem 1 speaks about
    audit.adversary = lab::AdversarySpec{};
    const OracleContext oracle = oracle_context(g, audit);
    const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
    congest::Simulator sim(g, ids);
    return run_one(g, audit, *d, oracle, sim).rejected;
  }
  return std::nullopt;
}

}  // namespace decycle::soak
