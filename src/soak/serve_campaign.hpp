/// \file serve_campaign.hpp
/// \brief The serve differential: client-path replies vs direct engine runs.
///
/// The classic soak campaign (campaign.hpp) checks detectors against the DFS
/// oracle. This mode checks the *serving stack* against the engine it wraps:
/// every drawn soak instance is loaded into an in-process serve::Server as a
/// fresh tenant (empty create + incremental insert batches — the exact
/// mutation path a real client uses), then every capability-compatible
/// detector is queried twice:
///
///   * through the client path — a protocol payload submitted to the server,
///     traversing parse, admission control, worker batching, the verdict
///     cache, and reply formatting;
///   * directly — the same canonicalized edge list pinned into a private
///     DetectionEngine and run through run_one, formatted with the same
///     format_verdict.
///
/// The two reply bodies must be byte-identical (the registry determinism
/// contract makes a detector run a pure function of graph content + resolved
/// options, and format_verdict carries no timing), and the tenant's
/// checkpoint hash must equal the direct pin's structural hash. Any
/// divergence is a mismatch: the campaign records it, writes a self-contained
/// serve repro file (the request transcript that rebuilds the tenant plus
/// both replies), and fails.
///
/// Determinism: the campaign drives the server with one closed-loop client,
/// so the JSONL log is a pure function of (space bounds, seed, instance
/// count) — byte-identical at every server worker count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "soak/space.hpp"

namespace decycle::soak {

struct ServeCampaignOptions {
  std::uint64_t seed = 1;
  /// Stop after exactly this many instances (0 = no instance bound).
  std::uint64_t instances = 0;
  /// Stop after roughly this many wall-clock seconds, checked between
  /// instances (0 = no time budget). At least one of instances/seconds must
  /// be set.
  double seconds = 0.0;
  SoakSpace space;
  serve::ServerOptions server;
  /// Directory for serve repro files (one per mismatch, named
  /// serve_repro_i<index>_<what>.txt). Empty = keep repros in memory only.
  std::string repro_dir;
  std::ostream* progress = nullptr;  ///< optional per-instance progress lines
};

/// A self-contained serve mismatch reproducer: the request transcript that
/// rebuilds the tenant from an empty graph (create, insert batches, the
/// diverging request last) plus both replies recorded at campaign time.
struct ServeRepro {
  std::vector<std::string> requests;  ///< replayed in order; last is the probe
  std::string served;                 ///< reply through the client path
  std::string direct;                 ///< reply from the direct engine run
};

/// Writes the serve repro format: comment header, one `request <payload>`
/// line per transcript entry, then `served <reply>` and `direct <reply>`.
/// Deterministic bytes (write → read → write round-trips identically).
void write_serve_repro(std::ostream& out, const ServeRepro& repro);

/// Parses the serve repro format. Throws CheckError on unknown directives,
/// missing sections, or a transcript whose final request is not a query or
/// checkpoint — each message naming the accepted alternatives.
[[nodiscard]] ServeRepro read_serve_repro(std::istream& in);

struct ServeReplayResult {
  std::string served;       ///< client-path reply observed on replay
  std::string direct;       ///< direct-engine reply recomputed on replay
  bool reproduced = false;  ///< served != direct (the mismatch is still live)
};

/// Replays \p repro: a fresh in-process server executes the transcript, the
/// final request is recomputed on a private engine, and the two replies are
/// compared again. Pure function of the transcript.
[[nodiscard]] ServeReplayResult replay_serve_repro(const ServeRepro& repro);

/// One serve-vs-direct divergence, ready to file as a bug.
struct ServeMismatch {
  std::uint64_t instance_index = 0;
  std::string request;  ///< the diverging payload
  std::string served;
  std::string direct;
  ServeRepro repro;
  std::string repro_path;  ///< empty when repro_dir was not set
};

struct ServeCampaignSummary {
  std::uint64_t instances = 0;
  std::uint64_t queries = 0;         ///< client-path queries cross-checked
  std::uint64_t edges_inserted = 0;  ///< edges streamed through insert batches
  std::uint64_t skipped_queries = 0; ///< capability-gated (k/model) detector skips
  std::vector<ServeMismatch> mismatches;
  std::string jsonl;  ///< the full campaign log

  [[nodiscard]] bool failed() const noexcept { return !mismatches.empty(); }
};

/// Runs a serve differential campaign. Throws CheckError when neither an
/// instance nor a time budget is set, or the space bounds are invalid.
[[nodiscard]] ServeCampaignSummary run_serve_campaign(const ServeCampaignOptions& options);

}  // namespace decycle::soak
