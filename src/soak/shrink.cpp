#include "soak/shrink.hpp"

#include <utility>
#include <vector>

#include "util/check.hpp"

namespace decycle::soak {

namespace {

/// Probes one candidate, spending budget; adopts it into (scenario, g) on
/// success. Returns false (without probing) once the budget is exhausted.
class Prober {
 public:
  Prober(const ShrinkPredicate& pred, const ShrinkOptions& options, ShrinkStats& stats)
      : pred_(pred), options_(options), stats_(stats) {}

  [[nodiscard]] bool exhausted() const { return stats_.probes >= options_.max_probes; }

  bool try_adopt(SoakScenario& scenario, graph::Graph& g, const SoakScenario& cand_scenario,
                 graph::Graph cand_graph) {
    if (exhausted()) {
      stats_.converged = false;
      return false;
    }
    ++stats_.probes;
    if (!pred_(cand_scenario, cand_graph)) return false;
    scenario = cand_scenario;
    g = std::move(cand_graph);
    return true;
  }

 private:
  const ShrinkPredicate& pred_;
  const ShrinkOptions& options_;
  ShrinkStats& stats_;
};

/// One knob-tightening sweep: adversary off, repetitions down to one, budget
/// and tracking caps off. Each move probed independently, kept only if the
/// mismatch survives.
void tighten_scalars(SoakScenario& scenario, graph::Graph& g, Prober& prober) {
  if (scenario.adversary.kind != lab::AdversarySpec::Kind::kNone) {
    SoakScenario cand = scenario;
    cand.adversary = lab::AdversarySpec{};
    (void)prober.try_adopt(scenario, g, cand, g);
  }
  if (scenario.repetitions != 1) {
    SoakScenario cand = scenario;
    cand.repetitions = 1;
    (void)prober.try_adopt(scenario, g, cand, g);
  }
  if (!scenario.budget.unlimited() || scenario.track != 0) {
    SoakScenario cand = scenario;
    cand.budget = core::threshold::BudgetSchedule::none();
    cand.track = 0;
    (void)prober.try_adopt(scenario, g, cand, g);
  }
}

/// One pass of single-vertex deletions, highest vertex first (deleting v
/// only renumbers vertices above it, so descending order keeps the indices
/// of not-yet-probed candidates stable within the pass). Returns true if
/// anything was deleted.
bool vertex_pass(SoakScenario& scenario, graph::Graph& g, Prober& prober) {
  bool changed = false;
  for (graph::Vertex v = g.num_vertices(); v-- > 0;) {
    if (g.num_vertices() <= 1 || prober.exhausted()) break;
    changed |= prober.try_adopt(scenario, g, scenario, remove_vertex(g, v));
  }
  return changed;
}

/// One pass of single-edge deletions, highest edge id first (same stability
/// argument as the vertex pass).
bool edge_pass(SoakScenario& scenario, graph::Graph& g, Prober& prober) {
  bool changed = false;
  for (graph::EdgeId id = static_cast<graph::EdgeId>(g.num_edges()); id-- > 0;) {
    if (prober.exhausted()) break;
    changed |= prober.try_adopt(scenario, g, scenario, remove_edge(g, id));
  }
  return changed;
}

}  // namespace

graph::Graph remove_vertex(const graph::Graph& g, graph::Vertex v) {
  graph::GraphBuilder b(g.num_vertices() > 0 ? g.num_vertices() - 1 : 0);
  for (const graph::Edge& e : g.edges()) {
    if (e.first == v || e.second == v) continue;
    b.add_edge(e.first > v ? e.first - 1 : e.first, e.second > v ? e.second - 1 : e.second);
  }
  return b.build();
}

graph::Graph remove_edge(const graph::Graph& g, graph::EdgeId id) {
  graph::GraphBuilder b(g.num_vertices());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (e == id) continue;
    b.add_edge(g.edge(e).first, g.edge(e).second);
  }
  return b.build();
}

ShrinkOutcome shrink_mismatch(const SoakScenario& scenario, const graph::Graph& g,
                              const ShrinkPredicate& reproduces, const ShrinkOptions& options) {
  DECYCLE_CHECK_MSG(reproduces(scenario, g),
                    "shrink_mismatch called on an input that does not reproduce the mismatch");
  ShrinkOutcome out;
  out.scenario = scenario;
  out.graph = g;
  Prober prober(reproduces, options, out.stats);

  // Knobs first: a simpler scenario usually makes the deletion probes
  // cheaper (no amplified repetitions, no drop coin), then deletion passes
  // to a fixpoint, then knobs again — a smaller graph may allow a
  // tightening that the original did not.
  tighten_scalars(out.scenario, out.graph, prober);
  bool changed = true;
  while (changed && out.stats.rounds < options.max_rounds && !prober.exhausted()) {
    ++out.stats.rounds;
    changed = vertex_pass(out.scenario, out.graph, prober);
    changed |= edge_pass(out.scenario, out.graph, prober);
  }
  if (changed && (out.stats.rounds >= options.max_rounds || prober.exhausted())) {
    out.stats.converged = false;
  }
  tighten_scalars(out.scenario, out.graph, prober);
  return out;
}

ShrinkPredicate mismatch_predicate(const core::Detector& d, MismatchKind kind) {
  const core::Detector* detector = &d;
  return [detector, kind](const SoakScenario& scenario, const graph::Graph& g) {
    return check_detector(g, scenario, *detector) == kind;
  };
}

}  // namespace decycle::soak
