#include "soak/serve_campaign.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <fstream>
#include <istream>
#include <ostream>
#include <span>
#include <utility>

#include "congest/comm_model.hpp"
#include "core/detector.hpp"
#include "engine/engine.hpp"
#include "engine/graph_store.hpp"
#include "graph/ids.hpp"
#include "incremental/stream.hpp"
#include "lab/json.hpp"
#include "serve/protocol.hpp"
#include "util/check.hpp"

namespace decycle::soak {

namespace {

/// Lowercase hex of \p value — matches the server's hash formatting, so the
/// checkpoint cross-check compares strings the wire actually carries.
std::string hex64(std::uint64_t value) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value, 16);
  DECYCLE_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

/// Extracts the value of `key=` (key includes the '=') from a reply body;
/// empty when absent.
std::string reply_field(const std::string& reply, std::string_view key) {
  const std::size_t pos = reply.find(key);
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + key.size();
  const std::size_t end = reply.find(' ', start);
  return reply.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

/// The model a query for \p d should run under: congest when the capability
/// mask admits it (every classic detector), otherwise the first registered
/// model it does accept; nullptr when none does.
const congest::CommModel* pick_model(const core::DetectorRegistry& registry,
                                     const core::Detector& d) {
  for (const congest::CommModel* model :
       {&congest::CommModel::congest(), &congest::CommModel::broadcast(),
        &congest::CommModel::clique()}) {
    if (registry.validate_model(d, *model).empty()) return model;
  }
  return nullptr;
}

/// Splits the instance's canonical edge list into insert payloads of at most
/// \p max_edges edges each.
std::vector<std::string> insert_payloads(const std::string& tenant,
                                         std::span<const graph::Edge> edges,
                                         std::size_t max_edges) {
  std::vector<std::string> out;
  serve::Request r;
  r.verb = serve::Verb::kInsert;
  r.tenant = tenant;
  for (std::size_t begin = 0; begin < edges.size(); begin += max_edges) {
    const std::size_t end = std::min(edges.size(), begin + max_edges);
    r.edges.assign(edges.begin() + static_cast<std::ptrdiff_t>(begin),
                   edges.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(serve::format_request(r));
  }
  return out;
}

/// The direct half of the differential: the same canonical edge list the
/// insert stream carried, pinned into a private engine (the session the
/// tenant's IncrementalSession would intern: from_edges + identity ids).
engine::PinnedGraphPtr direct_pin(graph::Vertex n, std::span<const graph::Edge> edges) {
  return engine::pin(graph::Graph::from_edges(n, edges), graph::IdAssignment::identity(n));
}

std::string direct_query_reply(const engine::DetectionEngine& engine,
                               const engine::PinnedGraphPtr& pin, const serve::Request& r) {
  core::DetectorOptions options;
  options.k = r.k;
  options.epsilon = r.epsilon;
  options.seed = r.seed;
  options.repetitions = r.repetitions;
  const core::Verdict verdict = engine.run_one(
      pin, engine::Query{.detector = r.algo, .options = options, .model = r.model, .weight = 1});
  return "OK query " + serve::format_verdict(verdict);
}

std::string meta_record(const ServeCampaignOptions& options) {
  lab::JsonWriter w;
  w.begin_object()
      .field("type", "meta")
      .field("tool", "decycle_soak")
      .field("mode", "serve")
      .field("format", 1)
      .field("seed", options.seed)
      .field("instances_budget", options.instances)
      .field("seconds_budget", options.seconds)
      .field("server_workers", std::uint64_t{options.server.workers})
      .field("verdict_cache", std::uint64_t{options.server.verdict_cache_capacity});
  w.key("space")
      .begin_object()
      .field("min_k", options.space.min_k)
      .field("max_k", options.space.max_k)
      .field("min_n", options.space.min_n)
      .field("max_n", options.space.max_n)
      .end_object();
  w.end_object();
  return std::move(w).str();
}

std::string mismatch_record(const ServeMismatch& m) {
  lab::JsonWriter w;
  w.begin_object()
      .field("type", "mismatch")
      .field("mode", "serve")
      .field("index", m.instance_index)
      .field("request", m.request)
      .field("served", m.served)
      .field("direct", m.direct)
      .field("repro", m.repro_path)
      .end_object();
  return std::move(w).str();
}

}  // namespace

void write_serve_repro(std::ostream& out, const ServeRepro& repro) {
  out << "# decycle_soak serve repro v1\n";
  out << "# replay: decycle_soak --serve-repro FILE\n";
  for (const std::string& request : repro.requests) {
    out << "request " << request << "\n";
  }
  out << "served " << repro.served << "\n";
  out << "direct " << repro.direct << "\n";
}

ServeRepro read_serve_repro(std::istream& in) {
  ServeRepro repro;
  bool saw_served = false;
  bool saw_direct = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    const std::size_t space = line.find(' ');
    const std::string directive = line.substr(0, space);
    const std::string rest = space == std::string::npos ? std::string() : line.substr(space + 1);
    if (directive == "request") {
      DECYCLE_CHECK_MSG(!rest.empty(), "serve repro: empty request line");
      repro.requests.push_back(rest);
    } else if (directive == "served") {
      DECYCLE_CHECK_MSG(!saw_served, "serve repro: duplicate served line");
      repro.served = rest;
      saw_served = true;
    } else if (directive == "direct") {
      DECYCLE_CHECK_MSG(!saw_direct, "serve repro: duplicate direct line");
      repro.direct = rest;
      saw_direct = true;
    } else {
      DECYCLE_CHECK_MSG(false, "serve repro: unknown directive '" + directive +
                                   "'; accepted: request, served, direct (and # comments)");
    }
  }
  DECYCLE_CHECK_MSG(!repro.requests.empty(), "serve repro: no request lines");
  DECYCLE_CHECK_MSG(saw_served && saw_direct,
                    "serve repro: missing served/direct lines recording the divergence");
  const serve::Request last = serve::parse_request(repro.requests.back());
  DECYCLE_CHECK_MSG(last.verb == serve::Verb::kQuery || last.verb == serve::Verb::kCheckpoint,
                    "serve repro: final request must be the probe (a query or checkpoint), got "
                    "verb '" +
                        std::string(serve::verb_name(last.verb)) + "'");
  return repro;
}

ServeReplayResult replay_serve_repro(const ServeRepro& repro) {
  // Client path: a fresh single-worker server executes the transcript.
  serve::ServerOptions server_options;
  server_options.workers = 1;
  serve::Server server(server_options);
  server.start();
  std::string last_reply;
  for (const std::string& request : repro.requests) {
    last_reply = server.call(request);
  }
  server.stop();

  // Direct path: rebuild the tenant's edge list from the same transcript.
  graph::Vertex n = 0;
  std::vector<graph::Edge> edges;
  serve::Request probe;
  for (const std::string& request : repro.requests) {
    probe = serve::parse_request(request);
    if (probe.verb == serve::Verb::kCreate) {
      DECYCLE_CHECK_MSG(probe.family.empty(),
                        "serve repro: transcripts rebuild tenants from the empty graph; "
                        "family creates are not replayable");
      n = probe.n;
      edges.clear();
    } else if (probe.verb == serve::Verb::kInsert) {
      for (const auto& [u, v] : probe.edges) {
        edges.emplace_back(std::min(u, v), std::max(u, v));
      }
    }
  }

  ServeReplayResult result;
  const engine::PinnedGraphPtr pin = direct_pin(n, edges);
  if (probe.verb == serve::Verb::kCheckpoint) {
    // Hash probes compare the one field the direct path can recompute.
    result.served = "hash=" + reply_field(last_reply, "hash=");
    result.direct = "hash=" + hex64(pin->hash);
  } else {
    engine::DetectionEngine engine{engine::EngineOptions{}};
    result.served = last_reply;
    result.direct = direct_query_reply(engine, pin, probe);
  }
  result.reproduced = result.served != result.direct;
  return result;
}

ServeCampaignSummary run_serve_campaign(const ServeCampaignOptions& options) {
  DECYCLE_CHECK_MSG(options.instances > 0 || options.seconds > 0.0,
                    "serve campaign: set at least one of instances/seconds");
  if (std::string err = options.space.validate(); !err.empty()) {
    DECYCLE_CHECK_MSG(false, "serve campaign: " + err);
  }
  const core::DetectorRegistry& registry = core::DetectorRegistry::builtin();

  serve::Server server(options.server);
  server.start();
  engine::DetectionEngine direct_engine{engine::EngineOptions{}};

  ServeCampaignSummary summary;
  std::string jsonl = meta_record(options);
  jsonl.push_back('\n');

  const auto start = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (options.instances > 0 && summary.instances >= options.instances) return true;
    if (options.seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (elapsed >= options.seconds) return true;
    }
    return false;
  };

  for (std::uint64_t index = 0; !out_of_budget(); ++index) {
    const SoakInstance instance = options.space.draw(options.seed, index);
    const std::string tenant = "i" + std::to_string(index);
    const graph::Vertex n = instance.graph.num_vertices();
    const std::span<const graph::Edge> edges = instance.graph.edges();

    // Transcript: the requests that rebuild this tenant, kept for repros.
    std::vector<std::string> transcript;
    serve::Request create;
    create.verb = serve::Verb::kCreate;
    create.tenant = tenant;
    create.n = n;
    transcript.push_back(serve::format_request(create));
    for (std::string& payload :
         insert_payloads(tenant, edges, options.server.limits.max_insert_edges)) {
      transcript.push_back(std::move(payload));
    }
    for (const std::string& request : transcript) {
      const std::string reply = server.call(request);
      DECYCLE_CHECK_MSG(serve::is_ok(reply),
                        "serve campaign: loading instance " + std::to_string(index) +
                            " failed: request '" + request + "' -> " + reply);
    }
    summary.edges_inserted += edges.size();

    const auto record_mismatch = [&](const std::string& request, std::string served,
                                     std::string direct) {
      ServeMismatch m;
      m.instance_index = index;
      m.request = request;
      m.served = std::move(served);
      m.direct = std::move(direct);
      m.repro.requests = transcript;
      m.repro.requests.push_back(request);
      m.repro.served = m.served;
      m.repro.direct = m.direct;
      if (!options.repro_dir.empty()) {
        const std::string what =
            m.request.rfind("query", 0) == 0 ? reply_field(m.request, "algo=") : "hash";
        m.repro_path = options.repro_dir + "/serve_repro_i" + std::to_string(index) + "_" +
                       what + ".txt";
        std::ofstream out(m.repro_path, std::ios::binary);
        DECYCLE_CHECK_MSG(out.good(), "cannot write serve repro: " + m.repro_path);
        write_serve_repro(out, m.repro);
      }
      jsonl += mismatch_record(m);
      jsonl.push_back('\n');
      summary.mismatches.push_back(std::move(m));
    };

    // Structural cross-check: the tenant's checkpoint hash must equal the
    // direct pin's structural hash of the same canonical edge list.
    const engine::PinnedGraphPtr pin = direct_pin(n, edges);
    const std::string checkpoint_payload = "checkpoint tenant=" + tenant;
    const std::string checkpoint_reply = server.call(checkpoint_payload);
    DECYCLE_CHECK_MSG(serve::is_ok(checkpoint_reply),
                      "serve campaign: checkpoint failed: " + checkpoint_reply);
    const std::string served_hash = reply_field(checkpoint_reply, "hash=");
    const std::string expected_hash = hex64(pin->hash);
    const bool hash_ok = served_hash == expected_hash;
    if (!hash_ok) {
      record_mismatch(checkpoint_payload, "hash=" + served_hash, "hash=" + expected_hash);
    }

    // Query every capability-compatible detector through both paths. The
    // drawn scenario supplies the knobs; repetitions are clamped to >= 1 so
    // an amplified default draw cannot blow the smoke budget.
    std::size_t instance_queries = 0;
    std::size_t instance_mismatches = hash_ok ? 0 : 1;
    if (hash_ok) {
      for (const core::Detector* detector : registry.detectors()) {
        const unsigned k = instance.scenario.k;
        if (k > options.server.limits.max_query_k || !registry.validate_k(*detector, k).empty()) {
          ++summary.skipped_queries;
          continue;
        }
        const congest::CommModel* model = pick_model(registry, *detector);
        if (model == nullptr) {
          ++summary.skipped_queries;
          continue;
        }
        serve::Request query;
        query.verb = serve::Verb::kQuery;
        query.tenant = tenant;
        query.algo = detector;
        query.k = k;
        query.model = model;
        query.epsilon = instance.scenario.epsilon;
        query.seed = instance.scenario.seed;
        query.repetitions = std::max<std::size_t>(1, instance.scenario.repetitions);
        const std::string payload = serve::format_request(query);
        const std::string served = server.call(payload);
        const std::string direct = direct_query_reply(direct_engine, pin, query);
        ++summary.queries;
        ++instance_queries;
        if (served != direct) {
          ++instance_mismatches;
          record_mismatch(payload, served, direct);
        }
      }
    }

    lab::JsonWriter w;
    w.begin_object()
        .field("type", "instance")
        .field("mode", "serve")
        .field("index", index)
        .field("seed", instance.instance_seed)
        .field("base", instance.base)
        .field("k", instance.scenario.k)
        .field("eps", instance.scenario.epsilon)
        .field("n", std::uint64_t{n})
        .field("m", std::uint64_t{edges.size()})
        .field("hash", expected_hash)
        .field("queries", std::uint64_t{instance_queries})
        .field("mismatches", std::uint64_t{instance_mismatches})
        .end_object();
    jsonl += std::move(w).str();
    jsonl.push_back('\n');

    ++summary.instances;
    if (options.progress != nullptr && summary.instances % 32 == 0) {
      *options.progress << "serve campaign: " << summary.instances << " instances, "
                        << summary.queries << " queries, " << summary.mismatches.size()
                        << " mismatches\n";
    }
  }

  const serve::Server::CacheStats cache = server.verdict_cache_stats();
  lab::JsonWriter w;
  w.begin_object()
      .field("type", "summary")
      .field("mode", "serve")
      .field("instances", summary.instances)
      .field("queries", summary.queries)
      .field("edges_inserted", summary.edges_inserted)
      .field("skipped_queries", summary.skipped_queries)
      .field("mismatches", std::uint64_t{summary.mismatches.size()})
      .field("verdict_hits", cache.hits)
      .field("verdict_misses", cache.misses)
      .end_object();
  jsonl += std::move(w).str();
  jsonl.push_back('\n');
  summary.jsonl = std::move(jsonl);

  server.stop();
  return summary;
}

}  // namespace decycle::soak
