/// \file space.hpp
/// \brief The randomized soak instance space.
///
/// The lab's 16 curated families are a fixed matrix; the soak space is the
/// open-ended complement: every instance is drawn from a seeded distribution
/// over random graph shapes (G(n,m), regular, bipartite, trees, grids,
/// high-girth backgrounds, certified-far plantings) *composed* with 0..3
/// freshly planted C_k's, random k/ε, a random drop adversary, and random
/// threshold budget/track schedules. No hand-written matrix covers this
/// interaction space — the differential campaign walks it by index.
///
/// Determinism contract: an instance is a pure function of
/// (campaign seed, index). The instance seed is content-addressed — folded
/// from the literal string "soak/v1 seed=<S> instance=<I>" exactly like the
/// lab's cell seeds — so a campaign is byte-replayable from its seed alone
/// and growing or splitting a campaign never reshuffles earlier instances.
#pragma once

#include <cstdint>
#include <string>

#include "core/threshold/budget.hpp"
#include "graph/graph.hpp"
#include "lab/scenario.hpp"

namespace decycle::soak {

/// The non-graph half of an instance: every knob a differential run needs.
/// This is what a repro file's scenario line serializes — together with the
/// edge list it makes a mismatch self-contained.
struct SoakScenario {
  unsigned k = 5;
  double epsilon = 0.125;
  /// Detector repetitions/sweeps/iterations; 0 = the algorithm's own
  /// (amplified) default.
  std::size_t repetitions = 1;
  core::threshold::BudgetSchedule budget = core::threshold::BudgetSchedule::none();
  std::uint64_t track = 0;  ///< 0 = unlimited
  lab::AdversarySpec adversary;
  /// Base seed for the run-level randomness (per-detector run seeds and the
  /// drop-filter coin derive from this).
  std::uint64_t seed = 1;

  /// Canonical `key=value` form, e.g. "k=5 eps=0.125 reps=1 budget=none
  /// track=0 adversary=none seed=7". Round-trips through the repro parser.
  [[nodiscard]] std::string key() const;
};

/// One fully drawn instance: scenario knobs plus the topology they run on.
struct SoakInstance {
  std::uint64_t index = 0;
  std::uint64_t instance_seed = 0;
  SoakScenario scenario;
  graph::Graph graph;
  std::string base;  ///< human-readable composition, e.g. "gnm(n=40,m=96)+2xC5"
  /// The composition certifies the instance ε-far from Ck-free for the
  /// scenario's ε (far-generator base whose certificate covers ε, planted
  /// cycles left intact). Drives the campaign's completeness audit.
  bool certified_far = false;
};

/// Bounds of the drawn distribution. The defaults keep the DFS oracle and a
/// full registry sweep cheap per instance (hundreds of instances per second)
/// while still crossing every knob; the CLI exposes the size bounds.
struct SoakSpace {
  unsigned min_k = 3;
  unsigned max_k = 9;
  graph::Vertex min_n = 8;
  graph::Vertex max_n = 48;
  /// Probability that the drawn repetitions value is 0 (= the detector's
  /// own amplified default — expensive, but the regime the completeness
  /// audit needs).
  double default_reps_probability = 0.15;

  /// Hard limits of the configurable bounds. k must stay in the registry's
  /// supported window; n must stay small enough for the DFS oracle and
  /// large enough for every base generator's precondition.
  static constexpr unsigned kMinK = 3;
  static constexpr unsigned kMaxK = 64;
  static constexpr graph::Vertex kMinN = 8;
  static constexpr graph::Vertex kMaxN = 4096;

  /// Empty string when the bounds are drawable; otherwise a message naming
  /// the offending bound and the accepted window. draw() and run_campaign
  /// enforce this, so a typo'd --max-n can never underflow into a
  /// billion-vertex draw or silently clamp.
  [[nodiscard]] std::string validate() const;

  /// Content-addressed seed of instance \p index of campaign \p seed.
  [[nodiscard]] static std::uint64_t instance_seed(std::uint64_t campaign_seed,
                                                   std::uint64_t index);

  /// Draws instance \p index of campaign \p campaign_seed. Pure function of
  /// (space bounds, campaign_seed, index). Throws CheckError when
  /// validate() reports an error.
  [[nodiscard]] SoakInstance draw(std::uint64_t campaign_seed, std::uint64_t index) const;
};

}  // namespace decycle::soak
