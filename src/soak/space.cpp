#include "soak/space.hpp"

#include <algorithm>
#include <numeric>

#include "engine/lanes.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "lab/json.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::soak {

namespace {

constexpr std::uint64_t kInstanceTag = 0x736f616b5f763120ULL;  // "soak_v1 "

/// Smallest s >= wanted with gcd(s, k-1) == 1 (layered_instance needs the
/// shifted cycles edge-disjoint).
graph::Vertex coprime_layer_size(std::uint64_t wanted, unsigned k) {
  std::uint64_t s = std::max<std::uint64_t>(wanted, 2);
  while (std::gcd(s, static_cast<std::uint64_t>(k - 1)) != 1) ++s;
  return static_cast<graph::Vertex>(s);
}

/// Adds \p count fresh vertex-disjoint C_k's to \p base, each bridged to a
/// random existing vertex so the composition stays connected-ish. Fresh
/// vertices + a cut bridge: the planted cycles are genuine C_k subgraphs and
/// never merge with base cycles.
graph::Graph plant_cycles(const graph::Graph& base, unsigned k, std::size_t count,
                          util::Rng& rng) {
  graph::GraphBuilder b(base.num_vertices());
  for (const graph::Edge& e : base.edges()) b.add_edge(e.first, e.second);
  for (std::size_t c = 0; c < count; ++c) {
    const graph::Vertex first = b.num_vertices();
    b.ensure_vertices(first + k);
    for (unsigned i = 0; i < k; ++i) {
      b.add_edge(first + i, first + (i + 1) % k);
    }
    if (base.num_vertices() > 0) {
      b.add_edge(first, static_cast<graph::Vertex>(rng.next_below(base.num_vertices())));
    }
  }
  return b.build();
}

struct BaseDraw {
  graph::Graph graph;
  std::string description;
  double certified_epsilon = 0.0;  ///< >0 only for far-generator bases
  bool allow_planting = true;      ///< far bases keep their certificate untouched
};

BaseDraw draw_base(unsigned k, graph::Vertex n, util::Rng& rng) {
  BaseDraw out;
  const std::uint64_t shape = rng.next_below(12);
  const std::string ns = std::to_string(n);
  switch (shape) {
    case 0: {
      const std::size_t m = n + rng.next_below(2 * std::uint64_t{n});
      out.graph = graph::erdos_renyi_gnm(n, m, rng);
      out.description = "gnm(n=" + ns + ",m=" + std::to_string(m) + ")";
      return out;
    }
    case 1: {
      const graph::Vertex even_n = n + (n % 2);
      const unsigned d = 3 + static_cast<unsigned>(rng.next_below(2));
      out.graph = graph::random_regular(even_n, d, rng);
      out.description = std::to_string(d) + "-regular(n=" + std::to_string(even_n) + ")";
      return out;
    }
    case 2:
      out.graph = graph::random_tree(n, rng);
      out.description = "tree(n=" + ns + ")";
      return out;
    case 3: {
      const graph::Vertex a = n / 2;
      const graph::Vertex b = n - a;
      const std::size_t m = std::min<std::size_t>(2 * std::size_t{n},
                                                  std::size_t{a} * std::size_t{b});
      out.graph = graph::random_bipartite(a, b, m, rng);
      out.description = "bipartite(" + std::to_string(a) + "+" + std::to_string(b) + ")";
      return out;
    }
    case 4: {
      const std::size_t m = n - 1 + rng.next_below(n);
      out.graph = graph::random_connected(n, m, rng);
      out.description = "connected(n=" + ns + ",m=" + std::to_string(m) + ")";
      return out;
    }
    case 5: {
      const graph::Vertex side = 3 + static_cast<graph::Vertex>(rng.next_below(4));
      out.graph = graph::grid(side, side, rng.next_bool(0.25));
      out.description = "grid(" + std::to_string(side) + "x" + std::to_string(side) + ")";
      return out;
    }
    case 6:
      out.graph = graph::cycle(std::max<graph::Vertex>(n, 3));
      out.description = "cycle(n=" + ns + ")";
      return out;
    case 7:
      out.graph = graph::high_girth_graph(n, 2 * std::size_t{n}, k, rng);
      out.description = "highgirth(n=" + ns + ")";
      return out;
    case 8: {
      const graph::CkFreeFamily family =
          k >= 4 ? graph::CkFreeFamily::kCliqueBlowup : graph::CkFreeFamily::kForest;
      out.graph = graph::ck_free_instance(family, k, n, rng);
      out.description = std::string(graph::family_name(family)) + "(n=" + ns + ")";
      return out;
    }
    case 9: {
      graph::PlantedOptions opt;
      opt.k = k;
      opt.num_cycles = std::max<std::size_t>(1, n / k);
      opt.padding_leaves = rng.next_below(n / 2 + 1);
      graph::FarInstance far = graph::planted_cycles_instance(opt, rng);
      out.certified_epsilon = far.certified_epsilon();
      out.description = "planted(c=" + std::to_string(opt.num_cycles) + ")";
      out.graph = std::move(far.graph);
      out.allow_planting = false;
      return out;
    }
    case 10: {
      graph::NoisyFarOptions opt;
      opt.k = k;
      opt.num_cycles = std::max<std::size_t>(1, n / 16);
      opt.background_n = std::max<graph::Vertex>(n, 2 * k);  // generator precondition
      opt.background_m = 2 * std::size_t{n};
      graph::FarInstance far = graph::noisy_far_instance(opt, rng);
      out.certified_epsilon = far.certified_epsilon();
      out.description = "noisy(c=" + std::to_string(opt.num_cycles) + ")";
      out.graph = std::move(far.graph);
      out.allow_planting = false;
      return out;
    }
    default: {
      const graph::Vertex layer = coprime_layer_size(std::max<graph::Vertex>(n / k, 2), k);
      graph::FarInstance far = graph::layered_instance(k, layer, 2, rng);
      out.certified_epsilon = far.certified_epsilon();
      out.description = "layered(s=" + std::to_string(layer) + ")";
      out.graph = std::move(far.graph);
      out.allow_planting = false;
      return out;
    }
  }
}

}  // namespace

std::string SoakScenario::key() const {
  std::string out = "k=" + std::to_string(k);
  out += " eps=" + lab::json_double(epsilon);
  out += " reps=" + std::to_string(repetitions);
  out += " budget=" + budget.name();
  out += " track=" + std::to_string(track);
  out += " adversary=" + adversary.name();
  out += " seed=" + std::to_string(seed);
  return out;
}

std::string SoakSpace::validate() const {
  const auto window = [](auto lo, auto hi, auto min_v, auto max_v, const char* what) {
    std::string err;
    if (lo < min_v || lo > max_v || hi < min_v || hi > max_v || lo > hi) {
      err = std::string("soak space: ") + what + " bounds [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "] must satisfy " + std::to_string(min_v) +
            " <= min <= max <= " + std::to_string(max_v);
    }
    return err;
  };
  std::string err = window(min_k, max_k, kMinK, kMaxK, "k");
  if (err.empty()) err = window(min_n, max_n, kMinN, kMaxN, "n");
  if (err.empty() &&
      !(default_reps_probability >= 0.0 && default_reps_probability <= 1.0)) {
    err = "soak space: default_reps_probability must be in [0, 1], got " +
          lab::json_double(default_reps_probability);
  }
  return err;
}

std::uint64_t SoakSpace::instance_seed(std::uint64_t campaign_seed, std::uint64_t index) {
  // Content-addressed exactly like lab cell seeds: fold the literal identity
  // string, so the derivation is pinned by what the instance *is*, not by
  // incidental code structure. tests/lab/seed_stability_test.cpp pins golden
  // values — changing this fold shifts every campaign and nightly repro.
  const std::string id =
      "soak/v1 seed=" + std::to_string(campaign_seed) + " instance=" + std::to_string(index);
  return engine::fold_seed(util::splitmix64(kInstanceTag), id);
}

SoakInstance SoakSpace::draw(std::uint64_t campaign_seed, std::uint64_t index) const {
  const std::string err = validate();
  DECYCLE_CHECK_MSG(err.empty(), err);
  SoakInstance inst;
  inst.index = index;
  inst.instance_seed = instance_seed(campaign_seed, index);
  util::Rng rng(inst.instance_seed);

  SoakScenario& s = inst.scenario;
  s.k = min_k + static_cast<unsigned>(rng.next_below(max_k - min_k + 1));
  static constexpr double kEpsilons[] = {0.125, 0.25, 0.5};
  s.epsilon = kEpsilons[rng.next_below(3)];
  const graph::Vertex n =
      min_n + static_cast<graph::Vertex>(rng.next_below(max_n - min_n + 1));

  // Detector knobs. Budget "none" forces track 0: that pair is the exact
  // threshold regime the differential can pin against the oracle, so it gets
  // a dedicated slice of the space instead of requiring two independent
  // lucky draws.
  s.repetitions = rng.next_bool(default_reps_probability)
                      ? 0
                      : static_cast<std::size_t>(1) << rng.next_below(3);  // 1, 2, 4
  const std::uint64_t budget_shape = rng.next_below(4);
  if (budget_shape == 0) {
    s.budget = core::threshold::BudgetSchedule::none();
    s.track = 0;
  } else if (budget_shape == 1) {
    s.budget = core::threshold::BudgetSchedule::parse("2,4,8");
    s.track = 2 + rng.next_below(7);
  } else {
    s.budget = core::threshold::BudgetSchedule::constant(4u << rng.next_below(3));  // 4, 8, 16
    s.track = rng.next_bool(0.25) ? 0 : 2 + rng.next_below(7);
  }
  if (rng.next_bool(0.5)) {
    static constexpr lab::AdversarySpec::Kind kKinds[] = {lab::AdversarySpec::Kind::kUniform,
                                                          lab::AdversarySpec::Kind::kOneWay,
                                                          lab::AdversarySpec::Kind::kLate};
    static constexpr double kRates[] = {0.1, 0.25, 0.5};
    s.adversary.kind = kKinds[rng.next_below(3)];
    s.adversary.rate = kRates[rng.next_below(3)];
  }

  BaseDraw base = draw_base(s.k, n, rng);
  inst.base = std::move(base.description);
  if (base.allow_planting && rng.next_bool(0.5)) {
    const std::size_t planted = 1 + rng.next_below(3);
    inst.graph = plant_cycles(base.graph, s.k, planted, rng);
    inst.base += "+";
    inst.base += std::to_string(planted);
    inst.base += "xC";
    inst.base += std::to_string(s.k);
  } else {
    inst.graph = std::move(base.graph);
  }
  inst.certified_far = base.certified_epsilon >= s.epsilon;

  s.seed = rng();
  return inst;
}

}  // namespace decycle::soak
