#include "soak/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <ostream>
#include <utility>

#include "engine/lanes.hpp"
#include "lab/json.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace decycle::soak {

namespace {

/// Everything one instance produces, stored by batch-local index so the
/// serial reduction can never observe lane boundaries.
struct InstanceOutcome {
  SoakInstance instance;      ///< graph kept: the shrinker needs it on mismatch
  DifferentialReport report;
  std::string record;         ///< this instance's JSONL line
  std::size_t runs = 0;
  std::size_t rejections = 0;
  bool far_audit = false;     ///< counts toward the completeness audit
  bool far_rejected = false;  ///< the audited tester run rejected
};

std::string meta_record(const CampaignOptions& options) {
  lab::JsonWriter w;
  w.begin_object()
      .field("type", "meta")
      .field("tool", "decycle_soak")
      .field("format", 1)
      .field("seed", options.seed)
      .field("instances_budget", options.instances)
      .field("seconds_budget", options.seconds)
      .field("shrink", options.shrink);
  w.key("space")
      .begin_object()
      .field("min_k", options.space.min_k)
      .field("max_k", options.space.max_k)
      .field("min_n", options.space.min_n)
      .field("max_n", options.space.max_n)
      .field("default_reps_probability", options.space.default_reps_probability)
      .end_object();
  w.end_object();
  return std::move(w).str();
}

std::string instance_record(const InstanceOutcome& o) {
  const SoakInstance& inst = o.instance;
  lab::JsonWriter w;
  w.begin_object()
      .field("type", "instance")
      .field("index", inst.index)
      .field("seed", inst.instance_seed)
      .field("base", inst.base)
      .field("k", inst.scenario.k)
      .field("eps", inst.scenario.epsilon)
      .field("n", std::uint64_t{inst.graph.num_vertices()})
      .field("m", std::uint64_t{inst.graph.num_edges()})
      .field("reps", std::uint64_t{inst.scenario.repetitions})
      .field("budget", inst.scenario.budget.name())
      .field("track", inst.scenario.track)
      .field("adversary", inst.scenario.adversary.name())
      .field("certified_far", inst.certified_far)
      .field("oracle_has_ck", o.report.oracle.has_ck);
  w.key("verdicts").begin_object();
  for (const DetectorOutcome& d : o.report.outcomes) {
    w.field(d.detector->name(), !d.ran ? "skip" : d.rejected ? "reject" : "accept");
  }
  w.end_object();
  w.field("mismatches", std::uint64_t{o.report.mismatches});
  w.end_object();
  return std::move(w).str();
}

std::string mismatch_record(const MismatchRecord& m) {
  lab::JsonWriter w;
  w.begin_object()
      .field("type", "mismatch")
      .field("index", m.instance_index)
      .field("detector", m.repro.detector)
      .field("kind", mismatch_kind_name(m.repro.kind))
      .field("detail", m.detail)
      .field("original_vertices", m.original_vertices)
      .field("original_edges", m.original_edges)
      .field("shrunk_vertices", std::uint64_t{m.repro.graph.num_vertices()})
      .field("shrunk_edges", std::uint64_t{m.repro.graph.num_edges()})
      .field("shrink_probes", std::uint64_t{m.shrink_stats.probes})
      .field("shrink_rounds", std::uint64_t{m.shrink_stats.rounds})
      .field("shrink_converged", m.shrink_stats.converged)
      .field("scenario", m.repro.scenario.key())
      .field("repro", m.repro_path)
      .end_object();
  return std::move(w).str();
}

/// Shrinks one mismatch (serially, in index order) and optionally writes the
/// repro file.
MismatchRecord build_mismatch(const CampaignOptions& options, const InstanceOutcome& o,
                              const DetectorOutcome& d) {
  MismatchRecord m;
  m.instance_index = o.instance.index;
  m.detail = d.detail;
  m.original_vertices = o.instance.graph.num_vertices();
  m.original_edges = o.instance.graph.num_edges();
  m.repro.detector = std::string(d.detector->name());
  m.repro.kind = d.mismatch;
  bool shrunk_ok = false;
  if (options.shrink) {
    try {
      ShrinkOutcome shrunk =
          shrink_mismatch(o.instance.scenario, o.instance.graph,
                          mismatch_predicate(*d.detector, d.mismatch),
                          options.shrink_options);
      m.repro.scenario = std::move(shrunk.scenario);
      m.repro.graph = std::move(shrunk.graph);
      m.shrink_stats = shrunk.stats;
      shrunk_ok = true;
    } catch (const util::CheckError&) {
      // The mismatch fired in the campaign's reused-simulator run but not
      // on the shrinker's fresh-simulator replay — itself strong evidence
      // (a reuse-contract or statefulness bug, exactly what the soak
      // hunts). Ship the original instance unshrunk rather than aborting
      // the campaign and losing every repro.
      m.shrink_stats.converged = false;
      m.detail += " [shrink skipped: mismatch did not reproduce on a fresh replay]";
    }
  }
  if (!shrunk_ok) {
    m.repro.scenario = o.instance.scenario;
    m.repro.graph = o.instance.graph;
  }
  if (!options.repro_dir.empty()) {
    m.repro_path = options.repro_dir + "/soak_repro_i" + std::to_string(m.instance_index) +
                   "_" + m.repro.detector + ".txt";
    std::ofstream out(m.repro_path, std::ios::binary);
    DECYCLE_CHECK_MSG(out.good(), "cannot open repro file: " + m.repro_path);
    write_repro(out, m.repro);
    out.flush();
    DECYCLE_CHECK_MSG(out.good(), "failed writing repro file: " + m.repro_path);
  }
  return m;
}

}  // namespace

CampaignSummary run_campaign(const CampaignOptions& options) {
  DECYCLE_CHECK_MSG(options.instances > 0 || options.seconds > 0.0,
                    "campaign needs a budget: set instances (--instances) or a wall-clock "
                    "limit (--seconds)");
  // Validate the space up front — a bad bound must fail here, loudly, not
  // inside a worker lane mid-batch.
  const std::string space_err = options.space.validate();
  DECYCLE_CHECK_MSG(space_err.empty(), space_err);
  const core::DetectorRegistry& registry =
      options.registry != nullptr ? *options.registry : core::DetectorRegistry::builtin();
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  CampaignSummary summary;
  summary.jsonl = meta_record(options);
  summary.jsonl.push_back('\n');

  util::ThreadPool* pool = options.pool;
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  const std::size_t batch_size = std::max<std::size_t>(16, 4 * workers);

  std::uint64_t next = 0;
  std::vector<InstanceOutcome> outcomes;
  for (;;) {
    std::size_t count = batch_size;
    if (options.instances > 0) {
      count = static_cast<std::size_t>(
          std::min<std::uint64_t>(count, options.instances - next));
    }
    if (count == 0) break;

    // Parallel phase: draw + differential + record, into indexed slots.
    // Lanes come from the engine's shared dispatch (engine/lanes.hpp) — the
    // same contiguous partition the lab runner and the harness use.
    outcomes.assign(count, InstanceOutcome{});
    const auto run_lane = [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        InstanceOutcome& o = outcomes[i];
        o.instance = options.space.draw(options.seed, next + i);
        o.report = run_differential(o.instance.graph, o.instance.scenario, registry);
        for (const DetectorOutcome& d : o.report.outcomes) {
          if (!d.ran) continue;
          ++o.runs;
          o.rejections += d.rejected ? 1 : 0;
        }
        // Completeness audit: certified-far instances get one dedicated
        // amplified drop-free run of the epsilon-driven detector — Theorem 1
        // claims rejection w.p. >= 2/3 there, audited in aggregate.
        if (o.instance.certified_far) {
          const std::optional<bool> rejected =
              amplified_far_rejects(o.instance.graph, o.instance.scenario, registry);
          if (rejected.has_value()) {
            o.far_audit = true;
            o.far_rejected = *rejected;
            ++o.runs;
          }
        }
        o.record = instance_record(o);
      }
    };
    engine::for_lanes(pool, count, nullptr, run_lane);

    // Serial reduction in index order: tallies, log lines, and shrinking.
    for (InstanceOutcome& o : outcomes) {
      ++summary.instances;
      summary.detector_runs += o.runs;
      summary.rejections += o.rejections;
      summary.far_trials += o.far_audit ? 1 : 0;
      summary.far_rejections += o.far_rejected ? 1 : 0;
      summary.jsonl += o.record;
      summary.jsonl.push_back('\n');
      for (const DetectorOutcome& d : o.report.outcomes) {
        if (d.mismatch == MismatchKind::kNone) continue;
        summary.mismatches.push_back(build_mismatch(options, o, d));
        summary.jsonl += mismatch_record(summary.mismatches.back());
        summary.jsonl.push_back('\n');
      }
    }
    next += count;
    if (options.progress != nullptr) {
      *options.progress << "[soak] instances=" << next
                        << " mismatches=" << summary.mismatches.size() << "\n";
    }
    if (options.instances > 0 && next >= options.instances) break;
    if (options.seconds > 0.0 && elapsed() >= options.seconds) break;
  }

  // The audit is meaningful only with a sample. At 20 trials the Wilson
  // upper bound stays above 2/3 for any plausible run of a healthy tester
  // (whose observed rate is ~1), and still collapses below it decisively
  // when completeness is genuinely broken.
  const util::ProportionInterval far =
      util::wilson_interval(summary.far_rejections, summary.far_trials);
  summary.completeness_violation = summary.far_trials >= 20 && far.high < 2.0 / 3.0;

  lab::JsonWriter w;
  w.begin_object()
      .field("type", "summary")
      .field("instances", summary.instances)
      .field("detector_runs", summary.detector_runs)
      .field("rejections", summary.rejections)
      .field("mismatches", std::uint64_t{summary.mismatches.size()})
      .field("far_trials", summary.far_trials)
      .field("far_rejections", summary.far_rejections)
      .field("far_wilson_high", far.high)
      .field("completeness_violation", summary.completeness_violation)
      .end_object();
  summary.jsonl += std::move(w).str();
  summary.jsonl.push_back('\n');
  return summary;
}

}  // namespace decycle::soak
