/// \file campaign.hpp
/// \brief Differential soak campaigns: budgeted, parallel, byte-replayable.
///
/// A campaign walks the soak instance space by index, runs the differential
/// contract on every instance, and shrinks every mismatch to a minimal repro
/// file. Instances are processed in batches whose trials are partitioned
/// into contiguous lanes across the thread pool (the lab runner's scheme);
/// per-instance outcomes land in indexed slots and are reduced serially, so
/// the JSONL campaign log is byte-identical for any thread count. The
/// wall-clock budget (--seconds) only decides *how many* instances run —
/// each instance's bytes are still pure functions of (campaign seed, index).
///
/// The log is JSONL via lab::JsonWriter: a meta record, one record per
/// instance (per-detector verdicts included), one record per mismatch (with
/// shrink statistics and the repro path), and a closing summary record that
/// also carries the campaign-level completeness audit: over certified-far
/// drop-free instances run at the tester's amplified default, the observed
/// rejection rate must not fall below the paper's 2/3 bound (Wilson upper
/// bound — a deterministic check for a pinned seed).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "soak/differential.hpp"
#include "soak/repro.hpp"
#include "soak/shrink.hpp"
#include "soak/space.hpp"
#include "util/thread_pool.hpp"

namespace decycle::soak {

struct CampaignOptions {
  std::uint64_t seed = 1;
  /// Stop after exactly this many instances (0 = no instance bound).
  std::uint64_t instances = 0;
  /// Stop after roughly this many wall-clock seconds, checked between
  /// batches (0 = no time budget). At least one of instances/seconds must
  /// be set.
  double seconds = 0.0;
  SoakSpace space;
  util::ThreadPool* pool = nullptr;          ///< instance-level parallelism
  const core::DetectorRegistry* registry = nullptr;  ///< null = builtin()
  bool shrink = true;                        ///< shrink mismatches to minimal repros
  ShrinkOptions shrink_options;
  /// Directory for repro files (one per mismatch, named
  /// soak_repro_i<index>_<detector>.txt). Empty = keep repros in memory only.
  std::string repro_dir;
  std::ostream* progress = nullptr;  ///< optional per-batch progress lines
};

/// One shrunk mismatch, ready to file as a bug.
struct MismatchRecord {
  std::uint64_t instance_index = 0;
  std::string detail;  ///< classifier's reason on the original instance
  ReproCase repro;     ///< shrunk scenario + graph (writable via write_repro)
  ShrinkStats shrink_stats;
  std::uint64_t original_vertices = 0;
  std::uint64_t original_edges = 0;
  std::string repro_path;  ///< empty when repro_dir was not set
};

struct CampaignSummary {
  std::uint64_t instances = 0;
  std::uint64_t detector_runs = 0;
  std::uint64_t rejections = 0;  ///< across all detector runs
  /// Completeness audit subset: certified-far, drop-free instances run at
  /// the tester's amplified default repetitions.
  std::uint64_t far_trials = 0;
  std::uint64_t far_rejections = 0;
  bool completeness_violation = false;
  std::vector<MismatchRecord> mismatches;
  std::string jsonl;  ///< the full campaign log

  /// Campaign verdict: any differential mismatch or a completeness audit
  /// failure. The CLI exit code.
  [[nodiscard]] bool failed() const noexcept {
    return !mismatches.empty() || completeness_violation;
  }
};

/// Runs a campaign. Throws CheckError when neither an instance nor a time
/// budget is set.
[[nodiscard]] CampaignSummary run_campaign(const CampaignOptions& options);

}  // namespace decycle::soak
