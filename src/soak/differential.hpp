/// \file differential.hpp
/// \brief The differential contract: every detector vs the DFS oracle.
///
/// A soak instance is run through every capability-compatible detector of a
/// registry, and every verdict is cross-checked:
///
///   * soundness (all detectors, all adversaries) — a rejection must carry a
///     witness that is a genuine C_k of the instance (validate_cycle, length
///     exactly k). The one-sided-error guarantee is unconditional, so a
///     rejection without such a witness — including a run that throws — is a
///     mismatch of kind kUnsound.
///   * exactness (drop-free runs only) — detectors that advertise an exact
///     regime must agree with the oracle in it: a draws_edge detector's
///     accept is checked against the oracle's cycle search through its probe
///     edge, a threshold-knob detector with an unlimited budget and
///     untracked executions is an exhaustive scan whose accept must match
///     has_cycle, and an exact_when_lossless detector (the clique h-cycle
///     detector) pins its accept to the oracle under every knob setting.
///     An accept where the oracle finds a cycle is kMissedCycle.
///
/// Communication models: each detector runs on a simulator whose model its
/// capability mask admits — the shared congest simulator for the classic
/// detectors, a lazily built dense-model simulator (clique) for the rest.
/// A detector with no compatible simulator for the instance is
/// capability-gated out (ran = false), exactly like an out-of-range k.
///
/// Probabilistic accepts (amplified tester under drops, sampling baselines)
/// are never per-instance mismatches; their aggregate behaviour is audited
/// at campaign level (see campaign.hpp). Detectors disagreeing with *each
/// other* reduce to these two kinds: any valid rejection proves the cycle
/// exists, so an exact-regime accept on the same instance is a mismatch
/// against the oracle, not merely against a peer.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "congest/simulator.hpp"
#include "core/detector.hpp"
#include "engine/session_pool.hpp"
#include "graph/graph.hpp"
#include "soak/space.hpp"

namespace decycle::soak {

enum class MismatchKind : std::uint8_t {
  kNone,         ///< verdict consistent with the contract
  kUnsound,      ///< rejected without a genuine C_k witness (or run threw)
  kMissedCycle,  ///< exact-regime accept although the oracle finds a cycle
};

[[nodiscard]] std::string_view mismatch_kind_name(MismatchKind kind) noexcept;

/// Parses "none" / "unsound" / "missed_cycle"; throws CheckError naming the
/// accepted kinds otherwise.
[[nodiscard]] MismatchKind parse_mismatch_kind(std::string_view token);

/// Oracle facts shared by every detector run of one instance.
struct OracleContext {
  bool has_ck = false;        ///< exact DFS: does the instance contain a C_k?
  bool has_probe = false;     ///< instance has edges (draws_edge detectors run)
  graph::Edge probe{};        ///< the target edge handed to draws_edge detectors
  bool probe_has_ck = false;  ///< oracle: C_k through the probe edge?
};

/// Computes the oracle facts for (g, scenario). The probe edge is drawn from
/// a stream derived from scenario.seed, so replays and shrink probes agree
/// on the target without carrying it in the repro file.
[[nodiscard]] OracleContext oracle_context(const graph::Graph& g, const SoakScenario& s);

/// One detector's differential outcome on one instance.
struct DetectorOutcome {
  const core::Detector* detector = nullptr;
  bool ran = false;       ///< false = capability-gated out (record says "skip")
  bool rejected = false;  ///< verdict (meaningful when ran)
  bool exact_regime = false;
  MismatchKind mismatch = MismatchKind::kNone;
  std::string detail;  ///< human-readable mismatch reason (empty when kNone)
};

struct DifferentialReport {
  OracleContext oracle;
  std::vector<DetectorOutcome> outcomes;  ///< registry order, gated ones included
  std::size_t mismatches = 0;
};

/// Runs every detector of \p registry on (g, scenario) — one congest
/// Simulator per call, reset by each congest-model detector (the reuse
/// contract), plus a lazily built dense-model simulator for detectors whose
/// mask excludes congest — and classifies every verdict. Defaults to the
/// built-in registry. When \p sessions is non-null the congest simulator is
/// leased from that engine::SessionPool instead of built locally, so
/// repeated differentials on the same topology content (replays, shrink
/// probes, fixed-corpus sweeps) start from a warm session; nullptr keeps
/// the historical build-per-call behaviour. Verdicts are bit-identical
/// either way (the reuse contract).
[[nodiscard]] DifferentialReport run_differential(
    const graph::Graph& g, const SoakScenario& s,
    const core::DetectorRegistry& registry = core::DetectorRegistry::builtin(),
    engine::SessionPool* sessions = nullptr);

/// Re-checks a single detector on (g, scenario): the primitive the shrinker
/// probes and `decycle_soak --repro` replays. Pure function of its inputs.
[[nodiscard]] MismatchKind check_detector(const graph::Graph& g, const SoakScenario& s,
                                          const core::Detector& detector,
                                          std::string* detail = nullptr);

/// Campaign completeness-audit primitive: runs the registry's first
/// epsilon-driven detector at its amplified default repetitions, drop-free,
/// and reports whether it rejected. nullopt when no registered detector is
/// epsilon-driven or the scenario's k is outside its range. The campaign
/// calls this on certified-far instances only — Theorem 1 then claims
/// rejection with probability >= 2/3 per run, which the campaign audits in
/// aggregate.
[[nodiscard]] std::optional<bool> amplified_far_rejects(
    const graph::Graph& g, const SoakScenario& s,
    const core::DetectorRegistry& registry = core::DetectorRegistry::builtin());

}  // namespace decycle::soak
