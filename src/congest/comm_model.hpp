/// \file comm_model.hpp
/// \brief Pluggable communication models for the round-based simulator.
///
/// The FO17 reproduction started out hardwired to per-edge CONGEST delivery:
/// the input graph *was* the communication graph, and the only bandwidth
/// notion was the statistics the simulator recorded. The follow-on
/// algorithms this repository targets (Broadcast-CONGEST even-cycle
/// detection, Congested Clique h-cycle detection) differ exactly in that
/// layer, so the model is a first-class object the Simulator is constructed
/// with:
///
///   * `CongestModel` ("congest") — the classic model. Communication links
///     are the input graph's edges; per-link bandwidth is accounted in
///     RunStats (bit totals, max_link_bits, normalized_rounds) but not
///     enforced, matching the repository's historical behaviour. This model
///     is the default everywhere and its runs are byte-identical to the
///     pre-model simulator.
///   * `BroadcastCongestModel` ("broadcast") — links are still the input
///     edges, but a node gets ONE B-bit broadcast per round: every message
///     it sends in a round must be byte-identical to the first one, and at
///     most B bits long. Violations throw CheckError at send time (loudly,
///     naming the node, round, and budget) — an algorithm claiming to be a
///     Broadcast-CONGEST algorithm is held to it. Sending on a subset of
///     ports is permitted (physically it broadcasts and some neighbors
///     ignore it), so send_all and selective sends both work.
///   * `CliqueModel` ("clique") — the Congested Clique: every ordered pair
///     of nodes is a link, whatever the input graph's edges. The model
///     builds K_n as the communication topology; the Simulator keeps the
///     *input* graph separate (algorithms still reason about its edges —
///     that is the object under test) and runs delivery over the clique
///     links with the same CSR reverse-port table, envelope arenas, and
///     pooled parallel machinery as CONGEST. Bandwidth is accounted, not
///     enforced, like CONGEST.
///
/// Models are stateless singletons (congest()/broadcast()/clique()) looked
/// up by name — the lab's `model=` axis — plus a constructible
/// BroadcastCongestModel for tests that want a custom B.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace decycle::congest {

/// Model discriminator. The numeric values are the bit positions of the
/// capability mask below, so the enum and the mask can never drift apart.
enum class CommModelKind : std::uint8_t { kCongest = 0, kBroadcastCongest = 1, kClique = 2 };

/// Capability-mask bit for \p kind (core::DetectorCapabilities::models).
[[nodiscard]] constexpr std::uint8_t model_bit(CommModelKind kind) noexcept {
  return static_cast<std::uint8_t>(1U << static_cast<unsigned>(kind));
}

inline constexpr std::uint8_t kModelCongest = model_bit(CommModelKind::kCongest);
inline constexpr std::uint8_t kModelBroadcast = model_bit(CommModelKind::kBroadcastCongest);
inline constexpr std::uint8_t kModelClique = model_bit(CommModelKind::kClique);
inline constexpr std::uint8_t kModelAll = kModelCongest | kModelBroadcast | kModelClique;

/// Canonical name for \p kind ("congest", "broadcast", "clique").
[[nodiscard]] std::string_view comm_model_kind_name(CommModelKind kind) noexcept;

/// Comma-separated canonical names of the models in \p mask, in kind order
/// (e.g. "congest, clique"). Empty mask yields "".
[[nodiscard]] std::string model_mask_names(std::uint8_t mask);

/// A communication model: who can talk to whom (the link graph) and what a
/// node may send per round (the bandwidth contract). Stateless and
/// thread-safe; one instance serves every Simulator.
class CommModel {
 public:
  virtual ~CommModel() = default;

  [[nodiscard]] virtual CommModelKind kind() const noexcept = 0;

  /// Canonical lookup name — the lab's `model=` axis value and JSONL tag.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// One-line description for listings and docs.
  [[nodiscard]] virtual std::string_view summary() const noexcept = 0;

  /// Per-node-per-round bandwidth in bits; 0 = accounted in RunStats but
  /// not enforced (CONGEST's O(log n) stays a statistics contract). Only
  /// the broadcast model enforces its budget at send time.
  [[nodiscard]] virtual std::uint64_t bandwidth_bits() const noexcept { return 0; }

  /// The communication topology for \p input. nullopt = communicate on the
  /// input graph itself (no extra storage); a value = the Simulator owns
  /// that graph as its link topology (the clique model returns K_n here).
  [[nodiscard]] virtual std::optional<graph::Graph> build_links(const graph::Graph& input) const;

  // --- registered singletons (the `model=` axis values) -------------------
  [[nodiscard]] static const CommModel& congest();
  [[nodiscard]] static const CommModel& broadcast();
  [[nodiscard]] static const CommModel& clique();

  /// nullptr when \p name is not a registered model name.
  [[nodiscard]] static const CommModel* find(std::string_view name) noexcept;

  /// Throws CheckError naming the known models when \p name is unknown.
  [[nodiscard]] static const CommModel& require(std::string_view name);

  /// "congest, broadcast, clique" — for loud parse errors and docs.
  [[nodiscard]] static std::string known_names();
};

/// The classic CONGEST model (see file comment). Links = input edges.
class CongestModel final : public CommModel {
 public:
  [[nodiscard]] CommModelKind kind() const noexcept override { return CommModelKind::kCongest; }
  [[nodiscard]] std::string_view name() const noexcept override { return "congest"; }
  [[nodiscard]] std::string_view summary() const noexcept override {
    return "per-edge CONGEST: links are the input edges, bandwidth accounted per link";
  }
};

/// Broadcast-CONGEST: one B-bit broadcast per node per round, enforced at
/// send time (see file comment). Constructible with a custom budget for
/// tests; the registered singleton uses kDefaultBandwidthBits.
class BroadcastCongestModel final : public CommModel {
 public:
  /// Default budget: a roomy O(log n) word — IDs are u64 varints (<= 80
  /// bits), so one identifier plus a tag always fits.
  static constexpr std::uint64_t kDefaultBandwidthBits = 256;

  explicit BroadcastCongestModel(std::uint64_t bandwidth_bits = kDefaultBandwidthBits) noexcept
      : bandwidth_bits_(bandwidth_bits) {}

  [[nodiscard]] CommModelKind kind() const noexcept override {
    return CommModelKind::kBroadcastCongest;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "broadcast"; }
  [[nodiscard]] std::string_view summary() const noexcept override {
    return "Broadcast-CONGEST: one identical B-bit message per node per round, "
           "enforced at send time";
  }
  [[nodiscard]] std::uint64_t bandwidth_bits() const noexcept override { return bandwidth_bits_; }

 private:
  std::uint64_t bandwidth_bits_;
};

/// The Congested Clique: all-to-all links over the input's vertex set (see
/// file comment).
class CliqueModel final : public CommModel {
 public:
  [[nodiscard]] CommModelKind kind() const noexcept override { return CommModelKind::kClique; }
  [[nodiscard]] std::string_view name() const noexcept override { return "clique"; }
  [[nodiscard]] std::string_view summary() const noexcept override {
    return "Congested Clique: every ordered pair is a link; the input graph stays "
           "the object under test";
  }
  [[nodiscard]] std::optional<graph::Graph> build_links(
      const graph::Graph& input) const override;
};

}  // namespace decycle::congest
