/// \file metrics.hpp
/// \brief Communication statistics collected by the simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace decycle::congest {

/// Per-round communication profile.
struct RoundStats {
  std::uint64_t round = 0;
  std::size_t active_nodes = 0;
  std::size_t messages = 0;       ///< non-empty messages sent
  std::uint64_t bits = 0;         ///< total payload bits
  std::uint64_t max_link_bits = 0;  ///< largest single message (one link slot)
};

/// Whole-run statistics. "Logical rounds" are the paper's unit — one
/// bounded-size bundle per link per round. normalized_rounds() charges each
/// logical round ⌈max_link_bits/B⌉ strict B-bit rounds instead, i.e. the
/// cost of shipping the same traffic through literal O(log n)-bit packets.
struct RunStats {
  std::uint64_t rounds_executed = 0;
  std::size_t total_messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_link_bits = 0;       ///< max over all rounds/links
  std::size_t max_active_nodes = 0;
  std::size_t dropped_messages = 0;      ///< removed by the drop adversary
  bool halted = false;                   ///< true: quiesced; false: hit round cap
  std::vector<RoundStats> per_round;     ///< filled when Options::record_rounds

  [[nodiscard]] std::uint64_t normalized_rounds(std::uint64_t bandwidth_bits) const {
    if (bandwidth_bits == 0) return rounds_executed;
    std::uint64_t total = 0;
    for (const auto& r : per_round) {
      const std::uint64_t packets = (r.max_link_bits + bandwidth_bits - 1) / bandwidth_bits;
      total += packets == 0 ? 1 : packets;
    }
    return total;
  }
};

}  // namespace decycle::congest
