/// \file simulator.hpp
/// \brief Synchronous round-based CONGEST network simulator.
///
/// Execution model (paper §2.1): all nodes start simultaneously and proceed
/// in synchronized rounds; in each round a node computes, sends at most one
/// message per incident link, and receives what neighbors sent this round
/// (delivered at the start of the next step). The simulator is event-driven:
/// after round 0 (where every node runs) only nodes with incoming mail or a
/// scheduled wake-up are stepped, so quiet regions of a large network cost
/// nothing.
///
/// Message path (DESIGN.md §4): receiver ports come from a CSR reverse-port
/// table precomputed at construction (O(1) per message); inboxes live in a
/// double-buffered flat envelope arena filled by counting placement (never
/// sorted — ascending sender order already yields ascending receiver ports);
/// the delivery merge is sharded by receiver range across the thread pool
/// with per-shard statistics reduced in fixed order; wake-ups sit in a
/// bucketed timer wheel with a min-heap overflow for far targets. A
/// steady-state round performs no heap allocation.
///
/// Communication models (DESIGN.md §11): the simulator is constructed with
/// a CommModel (comm_model.hpp) that decides the link topology and the
/// per-round bandwidth contract — classic CONGEST (the default; links are
/// the input edges), Broadcast-CONGEST (one B-bit broadcast per node per
/// round, enforced at send time), or the Congested Clique (all-to-all
/// links). graph() always returns the INPUT graph (the object under test);
/// comm_graph() is the model's link topology, which every delivery
/// structure above is built from.
///
/// Determinism: node stepping and delivery may be spread across a thread
/// pool, but every inbox, every statistic, and the full round schedule are
/// bit-identical for any thread count and either delivery mode —
/// property-tested in tests/congest/simulator_test.cpp.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "congest/comm_model.hpp"
#include "congest/metrics.hpp"
#include "congest/node.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/pool_alloc.hpp"
#include "util/thread_pool.hpp"

namespace decycle::congest {

/// Which delivery implementation a run uses. kArena is the production path
/// described above; kLegacy is the straightforward per-receiver-vector loop
/// (binary-search port lookup, per-inbox sort, allocating containers) kept
/// as a semantics oracle and as the baseline that bench/m2_simulator_micro
/// measures speedups against.
enum class DeliveryMode : std::uint8_t { kArena, kLegacy };

class Simulator {
 public:
  /// \p factory builds the program for each vertex (same code everywhere,
  /// per the model — but the factory sees the vertex so tests can inject
  /// faults or roles).
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(Vertex)>;

  /// Fault-injection hook: return true to silently drop the message sent at
  /// \p round from \p from to \p to. Used by the fault experiments — the
  /// tester must stay 1-sided under arbitrary message loss (a dropped
  /// message can only lose detections, never fabricate a cycle). The filter
  /// is invoked exactly once per message, possibly concurrently from
  /// delivery shards, so it must be thread-safe; determinism of the run
  /// requires it to be a pure function of its arguments.
  using DropFilter = std::function<bool(std::uint64_t round, Vertex from, Vertex to)>;

  /// Run options. The struct stays an aggregate — designated/aggregate
  /// initialization (`run({.max_rounds = 8})`) keeps working — and the
  /// `with_*` builders below are the fluent alternative for call sites that
  /// set several knobs: each mutates in place and returns *this, so they
  /// chain on lvalues and temporaries alike
  /// (`sim.run(Options{}.with_pool(&pool).with_drop(filter))`). Both styles
  /// configure the same public fields; mixing them is well-defined (last
  /// write wins).
  struct Options {
    std::uint64_t max_rounds = 1'000'000;  ///< safety cap
    bool record_rounds = false;            ///< keep per-round stats (for T3/T5)
    util::ThreadPool* pool = nullptr;      ///< optional parallel stepping/delivery
    std::size_t parallel_threshold = 256;  ///< min active nodes / messages to go parallel
    DropFilter drop;                       ///< optional message-loss adversary
    DeliveryMode delivery = DeliveryMode::kArena;

    Options& with_max_rounds(std::uint64_t v) {
      max_rounds = v;
      return *this;
    }
    Options& with_record_rounds(bool v = true) {
      record_rounds = v;
      return *this;
    }
    Options& with_pool(util::ThreadPool* p) {
      pool = p;
      return *this;
    }
    Options& with_parallel_threshold(std::size_t v) {
      parallel_threshold = v;
      return *this;
    }
    Options& with_drop(DropFilter f) {
      drop = std::move(f);
      return *this;
    }
    Options& with_delivery(DeliveryMode m) {
      delivery = m;
      return *this;
    }
  };

  /// Constructs under \p model: the model decides the communication
  /// topology (graph() keeps returning the *input* graph — the object the
  /// algorithms reason about — while delivery, ports, and Context neighbor
  /// views run over comm_graph()). The model must outlive the simulator;
  /// the CommModel singletons always do.
  Simulator(const graph::Graph& g, const graph::IdAssignment& ids, const CommModel& model,
            const ProgramFactory& factory);

  /// Topology-only construction under \p model (reuse workflows): builds
  /// the CSR reverse-port table but no programs. reset() must be called
  /// before run().
  Simulator(const graph::Graph& g, const graph::IdAssignment& ids, const CommModel& model);

  /// Classic CONGEST construction — identical to passing
  /// CommModel::congest(); every pre-model call site compiles and behaves
  /// byte-identically.
  Simulator(const graph::Graph& g, const graph::IdAssignment& ids, const ProgramFactory& factory);
  Simulator(const graph::Graph& g, const graph::IdAssignment& ids);

  ~Simulator();

  /// Re-arms the simulator for a fresh run on the same topology: replaces
  /// every node program via \p factory while keeping the CSR reverse-port
  /// table and all run-time buffers (envelope arenas at their traffic
  /// high-water mark, timer wheel, step contexts). A reset-then-run is
  /// bit-identical to constructing a fresh Simulator with the same factory
  /// and running it (property-tested) — consecutive trials on one topology
  /// skip the O(m) table build and the first-run arena growth.
  void reset(const ProgramFactory& factory);

  /// Runs until the network quiesces (no mail in flight, no wake-ups) or the
  /// round cap is hit.
  RunStats run(const Options& options);
  RunStats run() { return run(Options{}); }

  /// Access to per-node programs after (or between) runs.
  [[nodiscard]] NodeProgram& program(Vertex v) { return *programs_[v]; }
  [[nodiscard]] const NodeProgram& program(Vertex v) const { return *programs_[v]; }

  /// The INPUT graph — what the algorithms test for cycles. Identical to
  /// comm_graph() under congest/broadcast; under clique the two differ.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const graph::IdAssignment& ids() const noexcept { return *ids_; }

  /// The communication topology the model picked (drives ports, Context
  /// degrees/neighbors, and delivery).
  [[nodiscard]] const graph::Graph& comm_graph() const noexcept { return *comm_graph_; }

  [[nodiscard]] const CommModel& model() const noexcept { return *model_; }

  /// Typed sweep over all programs (harness convenience).
  template <typename P, typename Fn>
  void for_each_program(Fn&& fn) const {
    for (Vertex v = 0; v < graph_->num_vertices(); ++v) {
      fn(v, static_cast<const P&>(*programs_[v]));
    }
  }

 private:
  RunStats run_arena(const Options& options);
  RunStats run_legacy(const Options& options);

  const graph::Graph* graph_;
  const graph::IdAssignment* ids_;
  const CommModel* model_;

  /// Model-owned link topology (the clique model's K_n); disengaged when
  /// the model communicates on the input graph itself. comm_graph_ points
  /// here or at graph_ and is what every delivery structure is built from.
  std::optional<graph::Graph> link_graph_;
  const graph::Graph* comm_graph_;

  /// Backs every program instance built by reset() (declared before
  /// programs_ so the blocks outlive their owners at destruction). The pool
  /// is touched serially (reset, program destruction), never from delivery
  /// shards.
  util::PoolAllocator program_pool_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;

  /// CSR offsets into the graph's flattened adjacency (n+1 entries) and the
  /// reverse-port table aligned with it: for the directed link that is
  /// sender u's port p, rev_ports_[adj_offsets_[u] + p] is the receiver's
  /// port for u. Built once in O(m) at construction.
  std::vector<std::size_t> adj_offsets_;
  std::vector<std::uint32_t> rev_ports_;

  /// Reusable per-run buffers (arenas, timer wheel, step contexts); lazily
  /// built on first arena run and reused across runs.
  std::unique_ptr<SimRuntime> runtime_;
};

}  // namespace decycle::congest
