/// \file simulator.hpp
/// \brief Synchronous round-based CONGEST network simulator.
///
/// Execution model (paper §2.1): all nodes start simultaneously and proceed
/// in synchronized rounds; in each round a node computes, sends at most one
/// message per incident link, and receives what neighbors sent this round
/// (delivered at the start of the next step). The simulator is event-driven:
/// after round 0 (where every node runs) only nodes with incoming mail or a
/// scheduled wake-up are stepped, so quiet regions of a large network cost
/// nothing.
///
/// Determinism: node stepping may be spread across a thread pool, but
/// delivery order is canonicalized (inboxes sorted by receiver port), so a
/// run's outcome and statistics are bit-identical for any thread count —
/// property-tested in tests/congest/simulator_test.cpp.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "congest/metrics.hpp"
#include "congest/node.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/thread_pool.hpp"

namespace decycle::congest {

class Simulator {
 public:
  /// \p factory builds the program for each vertex (same code everywhere,
  /// per the model — but the factory sees the vertex so tests can inject
  /// faults or roles).
  using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(Vertex)>;

  /// Fault-injection hook: return true to silently drop the message sent at
  /// \p round from \p from to \p to. Used by the fault experiments — the
  /// tester must stay 1-sided under arbitrary message loss (a dropped
  /// message can only lose detections, never fabricate a cycle).
  using DropFilter = std::function<bool(std::uint64_t round, Vertex from, Vertex to)>;

  struct Options {
    std::uint64_t max_rounds = 1'000'000;  ///< safety cap
    bool record_rounds = false;            ///< keep per-round stats (for T3/T5)
    util::ThreadPool* pool = nullptr;      ///< optional parallel node stepping
    std::size_t parallel_threshold = 256;  ///< min active nodes to go parallel
    DropFilter drop;                       ///< optional message-loss adversary
  };

  Simulator(const graph::Graph& g, const graph::IdAssignment& ids, const ProgramFactory& factory);

  /// Runs until the network quiesces (no mail in flight, no wake-ups) or the
  /// round cap is hit.
  RunStats run(const Options& options);
  RunStats run() { return run(Options{}); }

  /// Access to per-node programs after (or between) runs.
  [[nodiscard]] NodeProgram& program(Vertex v) { return *programs_[v]; }
  [[nodiscard]] const NodeProgram& program(Vertex v) const { return *programs_[v]; }

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const graph::IdAssignment& ids() const noexcept { return *ids_; }

  /// Typed sweep over all programs (harness convenience).
  template <typename P, typename Fn>
  void for_each_program(Fn&& fn) const {
    for (Vertex v = 0; v < graph_->num_vertices(); ++v) {
      fn(v, static_cast<const P&>(*programs_[v]));
    }
  }

 private:
  const graph::Graph* graph_;
  const graph::IdAssignment* ids_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
};

}  // namespace decycle::congest
