#include "congest/message.hpp"

namespace decycle::congest {

std::uint64_t MessageReader::get_u64() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    DECYCLE_CHECK_MSG(pos_ < bytes_.size(), "message underflow");
    const std::uint8_t byte = bytes_[pos_++];
    DECYCLE_CHECK_MSG(shift < 64, "varint too long");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

std::uint32_t MessageReader::get_u32() {
  const std::uint64_t v = get_u64();
  DECYCLE_CHECK_MSG(v <= 0xffffffffULL, "u32 overflow in message");
  return static_cast<std::uint32_t>(v);
}

}  // namespace decycle::congest
