#include "congest/algorithms/bfs.hpp"

namespace decycle::congest {

void BfsProgram::on_round(Context& ctx, std::span<const Envelope> inbox) {
  if (ctx.round() == 0 && is_root_) {
    distance_ = 0;
    MessageWriter w;
    w.put_u64(1);  // distance offered to neighbors
    ctx.send_all(w.finish());
    return;
  }
  if (distance_.has_value()) return;  // already layered; late offers are ignored

  std::optional<std::uint64_t> best;
  std::optional<std::uint32_t> best_port;
  for (const Envelope& env : inbox) {
    MessageReader r(env.payload);
    const std::uint64_t offered = r.get_u64();
    if (!best || offered < *best) {
      best = offered;
      best_port = env.port;
    }
  }
  if (!best) return;
  distance_ = *best;
  parent_port_ = best_port;
  MessageWriter w;
  w.put_u64(*distance_ + 1);
  ctx.send_all(w.finish());
}

}  // namespace decycle::congest
