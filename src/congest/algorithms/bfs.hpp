/// \file bfs.hpp
/// \brief Distributed BFS layering — a reference CONGEST algorithm.
///
/// Not part of the paper's contribution; lives here to (a) validate the
/// simulator against an algorithm whose behaviour is trivially checkable
/// (distances must match centralized BFS) and (b) serve as the "hello world"
/// of the substrate in examples/congest_playground.
#pragma once

#include <cstdint>
#include <optional>

#include "congest/node.hpp"

namespace decycle::congest {

class BfsProgram final : public NodeProgram {
 public:
  explicit BfsProgram(bool is_root) : is_root_(is_root) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  /// Hop distance from the root; nullopt if never reached.
  [[nodiscard]] std::optional<std::uint64_t> distance() const noexcept { return distance_; }

  /// Port towards the parent in the BFS tree (nullopt at the root / unreached).
  [[nodiscard]] std::optional<std::uint32_t> parent_port() const noexcept { return parent_port_; }

 private:
  bool is_root_;
  std::optional<std::uint64_t> distance_;
  std::optional<std::uint32_t> parent_port_;
};

}  // namespace decycle::congest
