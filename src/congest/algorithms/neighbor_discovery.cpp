#include "congest/algorithms/neighbor_discovery.hpp"

namespace decycle::congest {

void NeighborDiscoveryProgram::on_round(Context& ctx, std::span<const Envelope> inbox) {
  if (ctx.round() == 0) {
    learned_.assign(ctx.degree(), 0);
    MessageWriter w;
    w.put_u64(ctx.my_id());
    ctx.send_all(w.finish());
    return;
  }
  for (const Envelope& env : inbox) {
    MessageReader r(env.payload);
    learned_[env.port] = r.get_u64();
  }
}

}  // namespace decycle::congest
