/// \file flood_max.hpp
/// \brief Flood-max leader election — second reference CONGEST algorithm.
///
/// Every node floods the largest ID it has seen; after diameter rounds all
/// nodes agree on the global maximum. Exercises multi-round convergence and
/// quiescence detection in the simulator.
#pragma once

#include "congest/node.hpp"

namespace decycle::congest {

class FloodMaxProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  [[nodiscard]] NodeId leader() const noexcept { return leader_; }
  [[nodiscard]] bool is_leader(NodeId my_id) const noexcept { return leader_ == my_id; }

 private:
  NodeId leader_ = 0;
  bool started_ = false;
};

}  // namespace decycle::congest
