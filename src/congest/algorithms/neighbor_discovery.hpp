/// \file neighbor_discovery.hpp
/// \brief KT0 → KT1 in one round.
///
/// The library's Context exposes neighbor IDs directly (the KT1 knowledge
/// model, which the paper's edge-ownership rule needs). Under the stricter
/// KT0 assumption nodes initially know only their own ID; this program shows
/// the standard fix — everyone broadcasts its ID once — costing exactly one
/// round and one O(log n)-bit message per link. Every KT1 round count in the
/// repository therefore translates to KT0 as "+1 round".
#pragma once

#include <vector>

#include "congest/node.hpp"

namespace decycle::congest {

class NeighborDiscoveryProgram final : public NodeProgram {
 public:
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  /// learned()[port] = that neighbor's ID (valid after the run quiesces).
  [[nodiscard]] const std::vector<NodeId>& learned() const noexcept { return learned_; }

 private:
  std::vector<NodeId> learned_;
};

}  // namespace decycle::congest
