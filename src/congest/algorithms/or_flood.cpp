#include "congest/algorithms/or_flood.hpp"

namespace decycle::congest {

void OrFloodProgram::on_round(Context& ctx, std::span<const Envelope> inbox) {
  if (!value_ && !inbox.empty()) value_ = true;  // any token means some input was 1
  if (value_ && !announced_) {
    announced_ = true;
    MessageWriter w;
    w.put_u64(1);
    ctx.send_all(w.finish());
  }
}

}  // namespace decycle::congest
