#include "congest/algorithms/flood_max.hpp"

namespace decycle::congest {

void FloodMaxProgram::on_round(Context& ctx, std::span<const Envelope> inbox) {
  bool improved = false;
  if (!started_) {
    leader_ = ctx.my_id();
    started_ = true;
    improved = true;
  }
  for (const Envelope& env : inbox) {
    MessageReader r(env.payload);
    const NodeId candidate = r.get_u64();
    if (candidate > leader_) {
      leader_ = candidate;
      improved = true;
    }
  }
  if (improved) {
    MessageWriter w;
    w.put_u64(leader_);
    ctx.send_all(w.finish());
  }
}

}  // namespace decycle::congest
