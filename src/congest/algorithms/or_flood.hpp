/// \file or_flood.hpp
/// \brief Distributed OR-aggregation by flooding (verdict dissemination).
///
/// The tester's contract is "at least one node outputs reject" — but in a
/// deployment every node wants to KNOW the global verdict (e.g. to abort a
/// transaction on deadlock). OR-flooding closes that gap: every node holding
/// a 1 floods a token once; everyone who hears it adopts and re-floods once.
/// After at most diameter rounds all nodes agree on the OR of the inputs,
/// with one O(1)-bit message per link per direction in total. Composed with
/// the tester in tests/integration.
#pragma once

#include "congest/node.hpp"

namespace decycle::congest {

class OrFloodProgram final : public NodeProgram {
 public:
  explicit OrFloodProgram(bool initial) : value_(initial) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  /// The OR of all inputs once the network quiesces.
  [[nodiscard]] bool value() const noexcept { return value_; }

 private:
  bool value_;
  bool announced_ = false;
};

}  // namespace decycle::congest
