/// \file node.hpp
/// \brief Per-node program interface for the CONGEST simulator.
///
/// An algorithm is a NodeProgram subclass instantiated once per vertex
/// (every node runs the same code on its own state — paper §2.1). The
/// simulator calls on_round() with the messages delivered this round; the
/// program reacts by sending at most one message per incident link (the
/// CONGEST slot discipline, enforced) and/or scheduling a wake-up.
///
/// Knowledge model: a node knows its own ID, its degree, and the IDs of its
/// neighbors (port -> ID). This is the standard KT1 assumption; with KT0 the
/// neighbor IDs cost one extra round of exchange, which shifts every round
/// count by one and nothing else.
#pragma once

#include <cstdint>
#include <span>

#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace decycle::congest {

using graph::NodeId;
using graph::Vertex;

/// A message as seen by the receiver. \p port is the receiver's port number
/// for the sending neighbor (dense 0..deg-1, sorted by neighbor vertex).
struct Envelope {
  std::uint32_t port;
  Message payload;
};

/// The per-round view a node has of itself and its links. Constructed by the
/// simulator; programs only ever see references.
class Context {
 public:
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] Vertex vertex() const noexcept { return vertex_; }
  [[nodiscard]] NodeId my_id() const noexcept { return ids_->id_of(vertex_); }
  [[nodiscard]] std::size_t degree() const noexcept { return graph_->degree(vertex_); }

  [[nodiscard]] NodeId neighbor_id(std::uint32_t port) const {
    return ids_->id_of(graph_->neighbors(vertex_)[port]);
  }

  /// Queues \p msg on \p port. At most one send per port per round
  /// (CONGEST); violations throw.
  void send(std::uint32_t port, Message msg);

  /// Broadcasts a copy of \p msg on every port.
  void send_all(const Message& msg);

  /// Ensures this node is stepped at \p round even without incoming mail
  /// (used for repetition boundaries). Must be in the future.
  void request_wakeup_at(std::uint64_t round);

  /// A queued send (exposed for the simulator's merge phase).
  struct Outgoing {
    std::uint32_t port;
    Message payload;
  };

 private:
  friend class Simulator;
  Context(const graph::Graph& g, const graph::IdAssignment& ids) : graph_(&g), ids_(&ids) {}

  const graph::Graph* graph_;
  const graph::IdAssignment* ids_;
  Vertex vertex_ = 0;
  std::uint64_t round_ = 0;
  std::vector<Outgoing> outbox_;
  std::vector<char> port_used_;
  std::uint64_t wakeup_ = kNoWakeup;

  static constexpr std::uint64_t kNoWakeup = ~std::uint64_t{0};

  void reset(Vertex v, std::uint64_t round) {
    vertex_ = v;
    round_ = round;
    outbox_.clear();
    port_used_.assign(graph_->degree(v), 0);
    wakeup_ = kNoWakeup;
  }
};

/// Base class for distributed algorithms. One instance per vertex; the
/// simulator owns the instances and exposes them back to the harness after
/// the run (for reading per-node outputs).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called every round the node is active: round 0 for all nodes, later
  /// rounds only when mail arrived or a wake-up was scheduled. \p inbox is
  /// sorted by port and contains at most one envelope per port.
  virtual void on_round(Context& ctx, std::span<const Envelope> inbox) = 0;
};

inline void Context::send(std::uint32_t port, Message msg) {
  DECYCLE_CHECK_MSG(port < degree(), "send: port out of range");
  DECYCLE_CHECK_MSG(!port_used_[port], "CONGEST violation: two messages on one link in a round");
  port_used_[port] = 1;
  outbox_.push_back({port, std::move(msg)});
}

inline void Context::send_all(const Message& msg) {
  for (std::uint32_t p = 0; p < degree(); ++p) send(p, msg);
}

inline void Context::request_wakeup_at(std::uint64_t round) {
  DECYCLE_CHECK_MSG(round > round_, "wakeup must be scheduled in the future");
  wakeup_ = wakeup_ == kNoWakeup ? round : std::min(wakeup_, round);
}

}  // namespace decycle::congest
