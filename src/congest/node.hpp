/// \file node.hpp
/// \brief Per-node program interface for the CONGEST simulator.
///
/// An algorithm is a NodeProgram subclass instantiated once per vertex
/// (every node runs the same code on its own state — paper §2.1). The
/// simulator calls on_round() with the messages delivered this round; the
/// program reacts by sending at most one message per incident link (the
/// CONGEST slot discipline, enforced) and/or scheduling a wake-up.
///
/// Knowledge model: a node knows its own ID, its degree, and the IDs of its
/// neighbors (port -> ID). This is the standard KT1 assumption; with KT0 the
/// neighbor IDs cost one extra round of exchange, which shifts every round
/// count by one and nothing else.
#pragma once

#include <cstdint>
#include <new>
#include <span>
#include <vector>

#include "congest/comm_model.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/pool_alloc.hpp"

namespace decycle::congest {

using graph::NodeId;
using graph::Vertex;

/// A message as seen by the receiver. \p port is the receiver's port number
/// for the sending neighbor (dense 0..deg-1, sorted by neighbor vertex).
struct Envelope {
  std::uint32_t port = 0;
  Message payload;
};

/// The simulator's per-run machinery (delivery arenas, timer wheel, step
/// contexts); defined in simulator.cpp. Declared here so it can drive the
/// Context internals below.
struct SimRuntime;

/// The per-round view a node has of itself and its links. Constructed by the
/// simulator; programs only ever see references.
class Context {
 public:
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] Vertex vertex() const noexcept { return vertex_; }
  [[nodiscard]] NodeId my_id() const noexcept { return ids_->id_of(vertex_); }
  [[nodiscard]] std::size_t degree() const noexcept { return nbrs_.size(); }

  [[nodiscard]] NodeId neighbor_id(std::uint32_t port) const { return ids_->id_of(nbrs_[port]); }

  /// Queues \p msg on \p port. At most one send per port per round
  /// (CONGEST); violations throw.
  void send(std::uint32_t port, Message msg);

  /// Broadcasts a copy of \p msg on every port.
  void send_all(const Message& msg);

  /// Ensures this node is stepped at \p round even without incoming mail
  /// (used for repetition boundaries). Must be in the future.
  void request_wakeup_at(std::uint64_t round);

  /// A queued send as the simulator's delivery merge sees it, minus its
  /// payload: metadata and message bytes live in parallel arrays so the
  /// counting pass streams over lean fixed-size records without pulling
  /// payload cache lines. The receiver vertex and its port for the sender
  /// are resolved at enqueue time from the simulator's precomputed
  /// reverse-port table (O(1)), so the merge never searches adjacency
  /// lists. \p dropped is set by the delivery pass when the fault adversary
  /// removes the message.
  struct OutMeta {
    std::uint64_t bits = 0;  ///< payload bit size (stats without payload access)
    Vertex from = 0;
    Vertex dest = 0;
    std::uint32_t rport = 0;  ///< receiver's port for \p from
    std::uint8_t dropped = 0;
  };

  /// Sentinel for "no wake-up scheduled"; shared with the simulator so the
  /// two sides can never drift apart.
  static constexpr std::uint64_t kNoWakeup = ~std::uint64_t{0};

 private:
  friend class Simulator;
  friend struct SimRuntime;

  /// \p g is the *communication* graph the model picked (== the input graph
  /// for congest/broadcast, K_n for clique). \p rev_ports may be null
  /// (legacy delivery resolves receiver ports by binary search instead).
  /// Send-slot stamps are sized to the graph's maximum degree.
  Context(const graph::Graph& g, const graph::IdAssignment& ids, const std::uint32_t* rev_ports,
          const CommModel& model)
      : graph_(&g),
        ids_(&ids),
        rev_ports_(rev_ports),
        model_kind_(model.kind()),
        bandwidth_bits_(model.bandwidth_bits()) {
    port_stamp_.resize(g.max_degree(), 0);
  }

  /// Broadcast-model send discipline (one identical <= B-bit message per
  /// node per round); throws CheckError on violations. Out of line — the
  /// congest hot path only pays the kind branch in send().
  void enforce_broadcast(const Message& msg) const;

  const graph::Graph* graph_;
  const graph::IdAssignment* ids_;
  const std::uint32_t* rev_ports_;  ///< CSR-aligned reverse ports, or null
  CommModelKind model_kind_ = CommModelKind::kCongest;
  std::uint64_t bandwidth_bits_ = 0;  ///< 0 = accounted, not enforced
  /// out_payload_ size at reset(): this node's sends for the current step
  /// start here (the chunk outbox is shared by every node the chunk steps),
  /// so the broadcast check can compare against the node's first message.
  std::size_t step_out_base_ = 0;
  std::vector<OutMeta>* out_meta_ = nullptr;     ///< chunk outbox (owned by the simulator)
  std::vector<Message>* out_payload_ = nullptr;  ///< payloads, in lockstep with out_meta_
  std::span<const Vertex> nbrs_;
  std::size_t adj_base_ = 0;  ///< offset of vertex_'s adjacency in the CSR
  Vertex vertex_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t wakeup_ = kNoWakeup;

  /// One-message-per-link enforcement without an O(degree) clear per step:
  /// a port is used this step iff its stamp equals the current step serial.
  std::vector<std::uint64_t> port_stamp_;
  std::uint64_t step_serial_ = 0;

  void reset(Vertex v, std::uint64_t round, std::size_t adj_base, std::vector<OutMeta>* meta,
             std::vector<Message>* payload) {
    vertex_ = v;
    round_ = round;
    adj_base_ = adj_base;
    out_meta_ = meta;
    out_payload_ = payload;
    nbrs_ = graph_->neighbors(v);
    wakeup_ = kNoWakeup;
    step_out_base_ = payload->size();
    ++step_serial_;
  }
};

/// Base class for distributed algorithms. One instance per vertex; the
/// simulator owns the instances and exposes them back to the harness after
/// the run (for reading per-node outputs).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called every round the node is active: round 0 for all nodes, later
  /// rounds only when mail arrived or a wake-up was scheduled. \p inbox is
  /// sorted by port and contains at most one envelope per port.
  virtual void on_round(Context& ctx, std::span<const Envelope> inbox) = 0;

  /// Program instances route through the lane-confined size-classed pool
  /// when a util::PoolScope is active (Simulator::reset installs one), so
  /// reset-heavy sweeps recycle program blocks instead of hitting the
  /// global heap; outside a scope this IS the global heap, so ad-hoc
  /// construction in tests works unchanged. Each block carries its origin,
  /// so deletion is correct from any context that outlives the pool.
  static void* operator new(std::size_t bytes) { return util::pooled_allocate(bytes); }
  static void operator delete(void* p) noexcept { util::pooled_deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept { util::pooled_deallocate(p); }
  /// Over-aligned subclasses bypass the 16-byte-aligned pool entirely.
  static void* operator new(std::size_t bytes, std::align_val_t al) {
    return ::operator new(bytes, al);
  }
  static void operator delete(void* p, std::align_val_t al) noexcept { ::operator delete(p, al); }
};

inline void Context::send(std::uint32_t port, Message msg) {
  DECYCLE_CHECK_MSG(port < degree(), "send: port out of range");
  DECYCLE_CHECK_MSG(port_stamp_[port] != step_serial_,
                    "CONGEST violation: two messages on one link in a round");
  if (model_kind_ == CommModelKind::kBroadcastCongest) enforce_broadcast(msg);
  port_stamp_[port] = step_serial_;
  const std::uint32_t rport =
      rev_ports_ != nullptr ? rev_ports_[adj_base_ + port] : ~std::uint32_t{0};
  out_meta_->push_back(OutMeta{msg.bit_size(), vertex_, nbrs_[port], rport, 0});
  out_payload_->push_back(std::move(msg));
}

inline void Context::send_all(const Message& msg) {
  for (std::uint32_t p = 0; p < degree(); ++p) send(p, msg);
}

inline void Context::request_wakeup_at(std::uint64_t round) {
  DECYCLE_CHECK_MSG(round > round_, "wakeup must be scheduled in the future");
  wakeup_ = wakeup_ == kNoWakeup ? round : std::min(wakeup_, round);
}

}  // namespace decycle::congest
