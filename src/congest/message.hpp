/// \file message.hpp
/// \brief Wire messages and the varint codec.
///
/// The CONGEST model bounds each link to O(log n) bits per round (paper
/// §2.1). To keep the accounting honest, every message in the simulator is a
/// real byte buffer produced by a codec — algorithms cannot smuggle
/// unbounded state through pointers. Bit sizes feed the per-round link
/// statistics and the bandwidth-normalized round metric (DESIGN.md §3.4).
///
/// Encoding: LEB128-style varints (7 bits per byte), so an ID costs
/// ⌈bits(id)/7⌉ bytes — proportional to log n, as the model assumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace decycle::congest {

/// An opaque payload travelling over one link in one round.
class Message {
 public:
  Message() = default;
  explicit Message(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] bool empty() const noexcept { return bytes_.empty(); }
  [[nodiscard]] std::size_t byte_size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::uint64_t bit_size() const noexcept { return bytes_.size() * 8; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Serializes unsigned integers into a Message.
class MessageWriter {
 public:
  MessageWriter& put_u64(std::uint64_t value);

  /// Convenience for small counts/tags.
  MessageWriter& put_u32(std::uint32_t value) { return put_u64(value); }

  [[nodiscard]] Message finish() { return Message(std::move(bytes_)); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Deserializes in the same order the writer produced. Holds a view into
/// the message, so the Message must outlive the reader (binding a temporary
/// is rejected at compile time).
class MessageReader {
 public:
  explicit MessageReader(const Message& msg) : bytes_(msg.bytes()) {}
  explicit MessageReader(Message&&) = delete;

  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace decycle::congest
