/// \file message.hpp
/// \brief Wire messages and the varint codec.
///
/// The CONGEST model bounds each link to O(log n) bits per round (paper
/// §2.1). To keep the accounting honest, every message in the simulator is a
/// real byte buffer produced by a codec — algorithms cannot smuggle
/// unbounded state through pointers. Bit sizes feed the per-round link
/// statistics and the bandwidth-normalized round metric (DESIGN.md §3.4).
///
/// Encoding: LEB128-style varints (7 bits per byte), so an ID costs
/// ⌈bits(id)/7⌉ bytes — proportional to log n, as the model assumes.
///
/// Storage: messages carry small-buffer inline storage (kInlineCapacity
/// bytes). A legal CONGEST payload is O(log n) bits — a couple of varints —
/// so in practice payloads live entirely inline and moving a Message through
/// the simulator's delivery arena never touches the heap (DESIGN.md §4).
/// Oversized payloads (the harness sometimes ships diagnostic bundles) spill
/// to a heap buffer transparently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace decycle::congest {

/// An opaque payload travelling over one link in one round.
class Message {
 public:
  /// Bytes held inline before spilling to the heap. Sized so a handful of
  /// worst-case 10-byte varints (one u64 each) still fit without allocating.
  static constexpr std::size_t kInlineCapacity = 24;

  // User-provided (not defaulted) so `const Message m;` is legal without
  // zero-filling the inline buffer.
  Message() noexcept {}  // NOLINT(modernize-use-equals-default)

  /// Compatibility constructor: copies the bytes into inline or heap
  /// storage as size dictates.
  explicit Message(const std::vector<std::uint8_t>& bytes) { assign(bytes.data(), bytes.size()); }
  explicit Message(std::span<const std::uint8_t> bytes) { assign(bytes.data(), bytes.size()); }

  Message(const Message& other) { assign(other.data(), other.size_); }
  Message& operator=(const Message& other) {
    if (this != &other) assign(other.data(), other.size_);
    return *this;
  }

  Message(Message&& other) noexcept { steal(other); }
  Message& operator=(Message&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~Message() { release(); }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t byte_size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t bit_size() const noexcept { return std::uint64_t{size_} * 8; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept { return {data(), size_}; }
  [[nodiscard]] bool on_heap() const noexcept { return heap_ != nullptr; }

 private:
  friend class MessageWriter;

  [[nodiscard]] std::uint8_t* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }

  void assign(const std::uint8_t* src, std::size_t n) {
    reserve(n);
    if (n != 0) std::memcpy(data(), src, n);
    size_ = static_cast<std::uint32_t>(n);
  }

  /// Grows capacity to at least \p want, preserving contents.
  void reserve(std::size_t want) {
    if (want <= capacity_) return;
    const std::size_t new_cap = want > 2 * std::size_t{capacity_} ? want : 2 * capacity_;
    auto* fresh = new std::uint8_t[new_cap];
    if (size_ != 0) std::memcpy(fresh, data(), size_);
    delete[] heap_;
    heap_ = fresh;
    capacity_ = static_cast<std::uint32_t>(new_cap);
  }

  void steal(Message& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = kInlineCapacity;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      capacity_ = kInlineCapacity;
      size_ = other.size_;
      if (size_ != 0) std::memcpy(inline_, other.inline_, size_);
      other.size_ = 0;
    }
  }

  void release() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    size_ = 0;
  }

  std::uint8_t* heap_ = nullptr;  ///< nullptr: payload lives in inline_
  std::uint32_t capacity_ = kInlineCapacity;
  std::uint32_t size_ = 0;
  std::uint8_t inline_[kInlineCapacity];
};

/// Serializes unsigned integers into a Message. Builds directly into the
/// message's (inline-first) storage, so writing a typical payload performs
/// no heap allocation.
class MessageWriter {
 public:
  MessageWriter& put_u64(std::uint64_t value) {
    // Encode to a stack scratch first so the message grows by the exact
    // byte count (a speculative worst-case reserve would spill near-full
    // inline payloads to the heap for nothing).
    std::uint8_t scratch[kMaxVarintBytes];
    std::uint32_t n = 0;
    while (value >= 0x80) {
      scratch[n++] = static_cast<std::uint8_t>(value | 0x80);
      value >>= 7;
    }
    scratch[n++] = static_cast<std::uint8_t>(value);
    msg_.reserve(msg_.size_ + n);
    std::memcpy(msg_.data() + msg_.size_, scratch, n);
    msg_.size_ += n;
    return *this;
  }

  /// Convenience for small counts/tags.
  MessageWriter& put_u32(std::uint32_t value) { return put_u64(value); }

  [[nodiscard]] Message finish() { return std::move(msg_); }

 private:
  static constexpr std::uint32_t kMaxVarintBytes = 10;  ///< ⌈64/7⌉

  Message msg_;
};

/// Deserializes in the same order the writer produced. Holds a view into
/// the message, so the Message must outlive the reader (binding a temporary
/// is rejected at compile time).
class MessageReader {
 public:
  explicit MessageReader(const Message& msg) : bytes_(msg.bytes()) {}
  explicit MessageReader(Message&&) = delete;

  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace decycle::congest
