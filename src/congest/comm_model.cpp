#include "congest/comm_model.hpp"

#include <algorithm>

#include "congest/node.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace decycle::congest {

std::string_view comm_model_kind_name(CommModelKind kind) noexcept {
  switch (kind) {
    case CommModelKind::kCongest: return "congest";
    case CommModelKind::kBroadcastCongest: return "broadcast";
    case CommModelKind::kClique: return "clique";
  }
  return "congest";
}

std::string model_mask_names(std::uint8_t mask) {
  std::string out;
  for (const CommModelKind kind : {CommModelKind::kCongest, CommModelKind::kBroadcastCongest,
                                   CommModelKind::kClique}) {
    if ((mask & model_bit(kind)) == 0) continue;
    if (!out.empty()) out += ", ";
    out += comm_model_kind_name(kind);
  }
  return out;
}

std::optional<graph::Graph> CommModel::build_links(const graph::Graph&) const {
  return std::nullopt;
}

std::optional<graph::Graph> CliqueModel::build_links(const graph::Graph& input) const {
  return graph::complete(input.num_vertices());
}

const CommModel& CommModel::congest() {
  static const CongestModel model;
  return model;
}

const CommModel& CommModel::broadcast() {
  static const BroadcastCongestModel model;
  return model;
}

const CommModel& CommModel::clique() {
  static const CliqueModel model;
  return model;
}

const CommModel* CommModel::find(std::string_view name) noexcept {
  for (const CommModel* m : {&congest(), &broadcast(), &clique()}) {
    if (m->name() == name) return m;
  }
  return nullptr;
}

const CommModel& CommModel::require(std::string_view name) {
  const CommModel* m = find(name);
  DECYCLE_CHECK_MSG(m != nullptr, "unknown communication model '" + std::string(name) +
                                      "' (known: " + known_names() + ")");
  return *m;
}

std::string CommModel::known_names() {
  std::string out;
  for (const CommModel* m : {&congest(), &broadcast(), &clique()}) {
    if (!out.empty()) out += ", ";
    out += m->name();
  }
  return out;
}

// --- Broadcast-CONGEST send-time enforcement (cold path; see node.hpp) -----

void Context::enforce_broadcast(const Message& msg) const {
  if (bandwidth_bits_ != 0 && msg.bit_size() > bandwidth_bits_) {
    DECYCLE_CHECK_MSG(false, "Broadcast-CONGEST violation: node " + std::to_string(vertex_) +
                                 " sent a " + std::to_string(msg.bit_size()) +
                                 "-bit message in round " + std::to_string(round_) +
                                 ", the model's broadcast budget is B=" +
                                 std::to_string(bandwidth_bits_) + " bits");
  }
  if (out_payload_->size() > step_out_base_) {
    const auto first = (*out_payload_)[step_out_base_].bytes();
    const auto cur = msg.bytes();
    const bool identical =
        first.size() == cur.size() && std::equal(first.begin(), first.end(), cur.begin());
    DECYCLE_CHECK_MSG(identical,
                      "Broadcast-CONGEST violation: node " + std::to_string(vertex_) +
                          " sent two different messages in round " + std::to_string(round_) +
                          " (the model grants one identical broadcast per node per round)");
  }
}

}  // namespace decycle::congest
