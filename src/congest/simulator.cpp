#include "congest/simulator.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace decycle::congest {

Simulator::Simulator(const graph::Graph& g, const graph::IdAssignment& ids,
                     const ProgramFactory& factory)
    : graph_(&g), ids_(&ids) {
  DECYCLE_CHECK_MSG(ids.num_vertices() == g.num_vertices(),
                    "ID assignment size does not match graph");
  programs_.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    programs_.push_back(factory(v));
    DECYCLE_CHECK_MSG(programs_.back() != nullptr, "program factory returned null");
  }
}

namespace {

struct StepResult {
  std::vector<Context::Outgoing> outgoing;
  std::uint64_t wakeup = ~std::uint64_t{0};
};

/// Receiver's port for neighbor \p from (adjacency is sorted).
std::uint32_t port_of(const graph::Graph& g, Vertex receiver, Vertex from) {
  const auto nb = g.neighbors(receiver);
  const auto it = std::lower_bound(nb.begin(), nb.end(), from);
  DECYCLE_CHECK(it != nb.end() && *it == from);
  return static_cast<std::uint32_t>(it - nb.begin());
}

}  // namespace

RunStats Simulator::run(const Options& options) {
  const Vertex n = graph_->num_vertices();
  std::vector<std::vector<Envelope>> inbox(n);
  std::map<std::uint64_t, std::vector<Vertex>> wakeups;

  std::vector<Vertex> active(n);
  for (Vertex v = 0; v < n; ++v) active[v] = v;

  RunStats stats;
  std::uint64_t round = 0;

  while (round <= options.max_rounds) {
    // Fold scheduled wake-ups for this round into the active set.
    if (const auto it = wakeups.find(round); it != wakeups.end()) {
      active.insert(active.end(), it->second.begin(), it->second.end());
      std::sort(active.begin(), active.end());
      active.erase(std::unique(active.begin(), active.end()), active.end());
      wakeups.erase(it);
    }

    if (active.empty()) {
      if (wakeups.empty()) {
        stats.halted = true;
        break;
      }
      round = wakeups.begin()->first;  // fast-forward over idle rounds
      continue;
    }

    // --- Step all active nodes (parallel when worthwhile). ---
    std::vector<StepResult> results(active.size());
    const auto step_range = [&](std::size_t begin, std::size_t end) {
      Context ctx(*graph_, *ids_);
      for (std::size_t i = begin; i < end; ++i) {
        const Vertex v = active[i];
        ctx.reset(v, round);
        programs_[v]->on_round(ctx, inbox[v]);
        results[i].outgoing = std::move(ctx.outbox_);
        results[i].wakeup = ctx.wakeup_;
      }
    };
    if (options.pool != nullptr && active.size() >= options.parallel_threshold) {
      options.pool->parallel_for_chunked(active.size(), step_range);
    } else {
      step_range(0, active.size());
    }

    // Consumed inboxes must be cleared before any delivery: an active node
    // may both read mail this round and receive fresh mail for the next one.
    for (const Vertex v : active) inbox[v].clear();

    // --- Deterministic merge: senders in ascending vertex order, so each
    // receiver's inbox arrives sorted by its port numbering. ---
    RoundStats rs;
    rs.round = round;
    rs.active_nodes = active.size();
    std::vector<Vertex> next_active;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Vertex from = active[i];
      for (auto& out : results[i].outgoing) {
        const Vertex dest = graph_->neighbors(from)[out.port];
        // The message was *sent* either way (it occupies the link and counts
        // towards the stats); the adversary removes it before delivery.
        rs.messages += 1;
        rs.bits += out.payload.bit_size();
        rs.max_link_bits = std::max(rs.max_link_bits, out.payload.bit_size());
        if (options.drop && options.drop(round, from, dest)) {
          stats.dropped_messages += 1;
          continue;
        }
        const std::uint32_t rport = port_of(*graph_, dest, from);
        if (inbox[dest].empty()) next_active.push_back(dest);
        inbox[dest].push_back(Envelope{rport, std::move(out.payload)});
      }
      if (results[i].wakeup != ~std::uint64_t{0}) {
        wakeups[results[i].wakeup].push_back(from);
      }
    }
    std::sort(next_active.begin(), next_active.end());
    for (const Vertex v : next_active) {
      std::sort(inbox[v].begin(), inbox[v].end(),
                [](const Envelope& a, const Envelope& b) { return a.port < b.port; });
    }

    stats.rounds_executed += 1;
    stats.total_messages += rs.messages;
    stats.total_bits += rs.bits;
    stats.max_link_bits = std::max(stats.max_link_bits, rs.max_link_bits);
    stats.max_active_nodes = std::max(stats.max_active_nodes, rs.active_nodes);
    if (options.record_rounds) stats.per_round.push_back(rs);

    active = std::move(next_active);
    ++round;
  }

  return stats;
}

}  // namespace decycle::congest
