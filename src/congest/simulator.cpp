#include "congest/simulator.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <numeric>

#include "util/check.hpp"

namespace decycle::congest {

namespace {

constexpr std::uint64_t kNoWakeup = Context::kNoWakeup;
constexpr std::uint64_t kNeverStamp = ~std::uint64_t{0};

/// Receiver's port for neighbor \p from (adjacency is sorted). Legacy-path
/// lookup; the arena path uses the precomputed reverse-port table instead.
std::uint32_t port_of(const graph::Graph& g, Vertex receiver, Vertex from) {
  const auto nb = g.neighbors(receiver);
  const auto it = std::lower_bound(nb.begin(), nb.end(), from);
  DECYCLE_CHECK(it != nb.end() && *it == from);
  return static_cast<std::uint32_t>(it - nb.begin());
}

}  // namespace

/// Per-run machinery for the arena delivery path. All buffers are sized
/// once (at first run, or lazily on first use for pool-dependent state) and
/// reused across rounds and runs, so a steady-state round performs no heap
/// allocation. See DESIGN.md §4 for the architecture.
struct SimRuntime {
  static constexpr std::size_t kWheelSize = 64;
  /// Upper bound on step chunks / delivery shards; bounds the number of
  /// persistent per-chunk buffers regardless of pool size.
  static constexpr std::size_t kMaxChunks = 32;
  /// Receiver-group granularity for the parallel delivery passes: groups
  /// are the work-stealing unit of pass B and the resolution of the
  /// cost-weighted split, so ~1024 of them keep both the split accurate and
  /// the per-chunk group tables tiny (kMaxChunks * kMaxGroups counters).
  static constexpr std::size_t kMaxGroups = 1024;

  /// One persistent step-execution lane: a reusable Context plus the outbox
  /// all nodes stepped by this lane append to (metadata and payloads in
  /// lockstep parallel arrays), and the chunk's slice of the parallel
  /// delivery state — per-receiver-group counters and the counting-sort
  /// scatter of its own outbox (bucket holds meta indices ordered by
  /// receiver group, preserving outbox order within a group).
  struct ChunkState {
    Context ctx;
    std::vector<Context::OutMeta> meta;
    std::vector<Message> payload;

    std::vector<std::uint32_t> group_env;     ///< non-dropped envelopes per group
    std::vector<std::uint32_t> group_recv;    ///< first-touched receivers per group
    std::vector<std::uint32_t> group_start;   ///< bucket prefix (kMaxGroups+1)
    std::vector<std::uint32_t> group_cursor;  ///< scatter cursors (scratch)
    std::vector<std::uint32_t> bucket;        ///< meta indices, grouped
    std::size_t messages = 0;                 ///< round stats, reduced in chunk order
    std::uint64_t bits = 0;
    std::uint64_t max_link_bits = 0;
    std::size_t dropped = 0;

    ChunkState(const graph::Graph& g, const graph::IdAssignment& ids,
               const std::uint32_t* rev_ports, const CommModel& model)
        : ctx(g, ids, rev_ports, model) {}
  };

  /// Per-shard delivery accumulator; reduced into RoundStats in fixed shard
  /// order so statistics are bit-identical for any thread count.
  struct ShardAcc {
    std::vector<Vertex> receivers;  ///< first-message receivers, sorted at pass end
    std::uint64_t bits = 0;
    std::uint64_t max_link_bits = 0;
    std::size_t messages = 0;
    std::size_t dropped = 0;
  };

  // Double-buffered flat envelope arena: round r's inboxes live in
  // arena[r & 1] as contiguous per-receiver segments, already sorted by
  // receiver port (counting placement in ascending sender order). Each
  // buffer grows lazily to the traffic high-water mark (bounded by the 2m
  // directed links), so sparse event-driven runs never pay for dense-case
  // capacity.
  std::array<std::vector<Envelope>, 2> arena;
  std::vector<std::uint64_t> inbox_stamp;  ///< round whose step may read offset/count
  std::vector<std::uint32_t> count;        ///< per-receiver envelope count
  std::vector<std::uint32_t> fill;         ///< pass-B placement cursor
  std::vector<std::size_t> offset;         ///< per-receiver arena segment start

  std::vector<Vertex> active;
  std::vector<Vertex> next_active;
  std::vector<Vertex> merge_buf;
  std::vector<Vertex> wake_scratch;
  std::vector<std::uint64_t> wakeup_rounds;  ///< per active index, from the step phase

  std::vector<std::unique_ptr<ChunkState>> chunks;
  std::vector<ShardAcc> shards;

  // Receiver-group tables for the parallel delivery path: vertex v belongs
  // to group v >> group_shift (at most kMaxGroups groups). The serial
  // mid-phase folds the per-chunk group counters into these and prefix-sums
  // them, giving every group its arena base (env) and next_active base
  // (recv) — pass B then processes groups independently in any order while
  // producing output identical to the serial sorted-receiver sweep.
  std::uint32_t group_shift = 0;
  std::size_t num_groups = 0;
  std::vector<std::uint64_t> group_env;
  std::vector<std::uint64_t> group_recv;
  std::vector<std::uint64_t> group_env_base;
  std::vector<std::uint64_t> group_recv_base;
  std::vector<std::uint64_t> group_weight;
  std::vector<std::uint64_t> chunk_weight;  ///< per-chunk cost for weighted splits

  // Bucketed timer wheel for near wake-ups (< kWheelSize rounds ahead) with
  // a min-heap for far ones. At drain time every entry in a bucket targets
  // exactly the current round (targets within the horizon occupy distinct
  // buckets); entries carry their round so that invariant is checked.
  std::array<std::vector<std::pair<std::uint64_t, Vertex>>, kWheelSize> wheel;
  std::vector<std::pair<std::uint64_t, Vertex>> far_heap;
  std::size_t pending_wakeups = 0;

  void size_for(Vertex n) {
    inbox_stamp.resize(n);
    count.resize(n);
    fill.resize(n);
    offset.resize(n);
    active.reserve(n);
    next_active.reserve(n);
    merge_buf.reserve(n);
    wake_scratch.reserve(n);
    wakeup_rounds.reserve(n);

    group_shift = 0;
    while (n != 0 && ((std::size_t{n} - 1) >> group_shift) + 1 > kMaxGroups) ++group_shift;
    num_groups = n == 0 ? 0 : ((std::size_t{n} - 1) >> group_shift) + 1;
    group_env.resize(num_groups);
    group_recv.resize(num_groups);
    group_env_base.resize(num_groups);
    group_recv_base.resize(num_groups);
    group_weight.resize(num_groups);
    chunk_weight.resize(kMaxChunks);
  }

  void begin_run(Vertex n) {
    std::fill(inbox_stamp.begin(), inbox_stamp.end(), kNeverStamp);
    // The parallel counting pass relies on count[v] == 0 outside the
    // current round's receiver set; a previous run capped by max_rounds can
    // leave undelivered counts behind.
    std::fill(count.begin(), count.end(), 0);
    for (auto& bucket : wheel) bucket.clear();
    far_heap.clear();
    pending_wakeups = 0;
    active.resize(n);
    std::iota(active.begin(), active.end(), Vertex{0});
    next_active.clear();
  }

  void schedule_wakeup(Vertex v, std::uint64_t target, std::uint64_t now) {
    if (target - now < kWheelSize) {
      wheel[target % kWheelSize].emplace_back(target, v);
    } else {
      far_heap.emplace_back(target, v);
      std::push_heap(far_heap.begin(), far_heap.end(), std::greater<>{});
    }
    ++pending_wakeups;
  }

  /// Moves every wake-up scheduled for \p round into wake_scratch
  /// (unsorted, possibly with duplicates).
  void drain_due_wakeups(std::uint64_t round) {
    wake_scratch.clear();
    auto& bucket = wheel[round % kWheelSize];
    for (const auto& [target, v] : bucket) {
      DECYCLE_CHECK_MSG(target == round, "timer wheel bucket holds a foreign round");
      wake_scratch.push_back(v);
    }
    pending_wakeups -= bucket.size();
    bucket.clear();
    while (!far_heap.empty() && far_heap.front().first == round) {
      wake_scratch.push_back(far_heap.front().second);
      std::pop_heap(far_heap.begin(), far_heap.end(), std::greater<>{});
      far_heap.pop_back();
      --pending_wakeups;
    }
  }

  /// Earliest round with a pending wake-up strictly after \p round.
  /// Requires pending_wakeups > 0. O(kWheelSize) — only used on the rare
  /// fast-forward over fully idle rounds.
  [[nodiscard]] std::uint64_t min_pending_round() const {
    std::uint64_t best = far_heap.empty() ? kNoWakeup : far_heap.front().first;
    for (const auto& bucket : wheel) {
      if (!bucket.empty()) best = std::min(best, bucket.front().first);
    }
    DECYCLE_CHECK_MSG(best != kNoWakeup, "no pending wakeup to fast-forward to");
    return best;
  }

  ChunkState& chunk(std::size_t i, const graph::Graph& g, const graph::IdAssignment& ids,
                    const std::uint32_t* rev_ports, const CommModel& model) {
    while (chunks.size() <= i) {
      chunks.push_back(std::make_unique<ChunkState>(g, ids, rev_ports, model));
    }
    return *chunks[i];
  }
};

Simulator::Simulator(const graph::Graph& g, const graph::IdAssignment& ids,
                     const CommModel& model, const ProgramFactory& factory)
    : Simulator(g, ids, model) {
  reset(factory);
}

Simulator::Simulator(const graph::Graph& g, const graph::IdAssignment& ids,
                     const ProgramFactory& factory)
    : Simulator(g, ids, CommModel::congest(), factory) {}

Simulator::Simulator(const graph::Graph& g, const graph::IdAssignment& ids)
    : Simulator(g, ids, CommModel::congest()) {}

Simulator::Simulator(const graph::Graph& g, const graph::IdAssignment& ids,
                     const CommModel& model)
    : graph_(&g), ids_(&ids), model_(&model) {
  DECYCLE_CHECK_MSG(ids.num_vertices() == g.num_vertices(),
                    "ID assignment size does not match graph");
  link_graph_ = model.build_links(g);
  comm_graph_ = link_graph_.has_value() ? &*link_graph_ : &g;
  DECYCLE_CHECK_MSG(comm_graph_->num_vertices() == g.num_vertices(),
                    "communication model changed the vertex set");
  const graph::Graph& cg = *comm_graph_;
  const Vertex n = cg.num_vertices();

  // CSR reverse-port table over the COMMUNICATION graph: visiting senders u
  // in ascending order visits each receiver v's neighbors in ascending
  // order too, so a running cursor per receiver yields u's rank in v's
  // sorted adjacency — no searches.
  adj_offsets_.resize(n + std::size_t{1});
  adj_offsets_[0] = 0;
  for (Vertex v = 0; v < n; ++v) adj_offsets_[v + 1] = adj_offsets_[v] + cg.degree(v);
  rev_ports_.resize(adj_offsets_[n]);
  std::vector<std::uint32_t> cursor(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    const auto nb = cg.neighbors(u);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      rev_ports_[adj_offsets_[u] + p] = cursor[nb[p]]++;
    }
  }
}

Simulator::~Simulator() = default;

void Simulator::reset(const ProgramFactory& factory) {
  const Vertex n = graph_->num_vertices();
  // Route program blocks through this simulator's pool: the assignments
  // below free the previous trial's programs into the free lists the
  // factory's new instances immediately reuse, so a steady-state reset
  // allocates nothing (programs whose own members allocate still pay for
  // those members — the pool covers the object blocks).
  const util::PoolScope pool_scope(&program_pool_);
  programs_.resize(n);  // keeps capacity across resets
  try {
    for (Vertex v = 0; v < n; ++v) {
      programs_[v] = factory(v);
      DECYCLE_CHECK_MSG(programs_[v] != nullptr, "program factory returned null");
    }
  } catch (...) {
    // Never leave a half-programmed simulator behind: fall back to the
    // needs-reset state so a later run() refuses instead of dereferencing
    // the null entries.
    programs_.clear();
    throw;
  }
}

RunStats Simulator::run(const Options& options) {
  DECYCLE_CHECK_MSG(!programs_.empty() || graph_->num_vertices() == 0,
                    "Simulator::run before reset(): topology-only simulator has no programs");
  return options.delivery == DeliveryMode::kArena ? run_arena(options) : run_legacy(options);
}

RunStats Simulator::run_arena(const Options& options) {
  const Vertex n = graph_->num_vertices();
  if (runtime_ == nullptr) {
    runtime_ = std::make_unique<SimRuntime>();
    runtime_->size_for(n);
  }
  SimRuntime& rt = *runtime_;
  rt.begin_run(n);

  RunStats stats;
  std::uint64_t round = 0;

  while (round <= options.max_rounds) {
    // --- Fold wake-ups due this round into the (sorted, unique) active set.
    rt.drain_due_wakeups(round);
    if (!rt.wake_scratch.empty()) {
      std::sort(rt.wake_scratch.begin(), rt.wake_scratch.end());
      rt.wake_scratch.erase(std::unique(rt.wake_scratch.begin(), rt.wake_scratch.end()),
                            rt.wake_scratch.end());
      rt.merge_buf.clear();
      std::set_union(rt.active.begin(), rt.active.end(), rt.wake_scratch.begin(),
                     rt.wake_scratch.end(), std::back_inserter(rt.merge_buf));
      rt.active.swap(rt.merge_buf);
    }

    if (rt.active.empty()) {
      if (rt.pending_wakeups == 0) {
        stats.halted = true;
        break;
      }
      round = rt.min_pending_round();  // fast-forward over idle rounds
      continue;
    }

    // --- Step all active nodes (parallel when worthwhile). Chunks write to
    // persistent per-chunk outboxes; iterating chunks in index order later
    // recovers the global ascending-sender order, whatever the chunking.
    const std::size_t num_active = rt.active.size();
    std::size_t num_chunks = 1;
    if (options.pool != nullptr && num_active >= options.parallel_threshold) {
      num_chunks = std::min({SimRuntime::kMaxChunks, 2 * options.pool->size(), num_active});
    }
    for (std::size_t c = 0; c < num_chunks; ++c) {
      rt.chunk(c, *comm_graph_, *ids_, rev_ports_.data(), *model_);
    }
    const std::size_t chunk_len = (num_active + num_chunks - 1) / num_chunks;
    rt.wakeup_rounds.resize(num_active);

    const std::vector<Envelope>& in_arena = rt.arena[round & 1];
    const auto step_chunk = [&](std::size_t c) {
      SimRuntime::ChunkState& cs = *rt.chunks[c];
      cs.meta.clear();
      cs.payload.clear();
      const std::size_t begin = c * chunk_len;
      const std::size_t end = std::min(num_active, begin + chunk_len);
      for (std::size_t i = begin; i < end; ++i) {
        const Vertex v = rt.active[i];
        std::span<const Envelope> inbox;
        if (rt.inbox_stamp[v] == round) {
          inbox = {in_arena.data() + rt.offset[v], rt.count[v]};
        }
        cs.ctx.reset(v, round, adj_offsets_[v], &cs.meta, &cs.payload);
        programs_[v]->on_round(cs.ctx, inbox);
        rt.wakeup_rounds[i] = cs.ctx.wakeup_;
      }
    };
    if (num_chunks > 1) {
      // Cost-weighted split: a chunk's step cost tracks the mail it has to
      // digest, not how many nodes it holds — weight each chunk by its
      // inbox envelope total (plus 1 per node for mailless wake-ups).
      std::fill_n(rt.chunk_weight.begin(), num_chunks, 0);
      for (std::size_t i = 0; i < num_active; ++i) {
        const Vertex v = rt.active[i];
        const std::uint64_t mail = rt.inbox_stamp[v] == round ? rt.count[v] : 0;
        rt.chunk_weight[i / chunk_len] += mail + 1;
      }
      options.pool->for_weighted(num_chunks, rt.chunk_weight.data(), step_chunk);
    } else {
      step_chunk(0);
    }

    // --- Wake-up scheduling (serial; ascending sender order), fused with
    // releasing consumed inboxes: count[v] must return to 0 once v's step
    // read its envelope span, because the parallel counting pass below
    // relies on count[v] == 0 outside the current round's receiver set.
    for (std::size_t i = 0; i < num_active; ++i) {
      const Vertex v = rt.active[i];
      if (rt.inbox_stamp[v] == round) rt.count[v] = 0;
      if (rt.wakeup_rounds[i] != kNoWakeup) {
        rt.schedule_wakeup(v, rt.wakeup_rounds[i], round);
      }
    }

    // --- Delivery. Pass A counts envelopes per receiver (and applies the
    // drop adversary, marking entries); a serial mid-phase assigns arena
    // segments; pass B places envelopes by counting placement. Ascending
    // sender order within each receiver's segment yields ascending receiver
    // ports, so inboxes are born sorted.
    //
    // The parallel variant never range-filters: pass A runs per sender
    // chunk over that chunk's own outbox only (atomic counts, per-group
    // tallies, counting-sort scatter), and pass B runs per receiver group
    // with work-stolen, envelope-weighted scheduling. Both produce output
    // bit-identical to the serial sweep: group prefix sums pin every
    // receiver's arena segment and next_active slot to its global sorted
    // position, and chunk-order placement within a group preserves
    // ascending sender order. The n/64 floor keeps the group sweep (which
    // touches every vertex of a non-empty group) amortized against traffic.
    std::size_t total_out = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) total_out += rt.chunks[c]->meta.size();

    const std::uint64_t next_stamp = round + 1;
    const bool parallel_delivery =
        options.pool != nullptr &&
        total_out >= std::max<std::size_t>(options.parallel_threshold, n / 64);

    RoundStats rs;
    rs.round = round;
    rs.active_nodes = num_active;
    std::vector<Envelope>& out_arena = rt.arena[next_stamp & 1];

    if (!parallel_delivery) {
      if (rt.shards.empty()) rt.shards.emplace_back();
      SimRuntime::ShardAcc& acc = rt.shards[0];
      acc.receivers.clear();
      acc.bits = 0;
      acc.max_link_bits = 0;
      acc.messages = 0;
      acc.dropped = 0;
      for (std::size_t c = 0; c < num_chunks; ++c) {
        for (Context::OutMeta& e : rt.chunks[c]->meta) {
          acc.messages += 1;
          acc.bits += e.bits;
          acc.max_link_bits = std::max(acc.max_link_bits, e.bits);
          // The message was *sent* either way (it occupies the link and
          // counts towards the stats); the adversary removes it before
          // delivery.
          if (options.drop && options.drop(round, e.from, e.dest)) {
            e.dropped = 1;
            acc.dropped += 1;
            continue;
          }
          if (rt.inbox_stamp[e.dest] != next_stamp) {
            rt.inbox_stamp[e.dest] = next_stamp;
            acc.receivers.push_back(e.dest);
          }
          rt.count[e.dest] += 1;
        }
      }
      std::sort(acc.receivers.begin(), acc.receivers.end());

      rt.next_active.clear();
      std::size_t cum = 0;
      for (const Vertex v : acc.receivers) {
        rt.offset[v] = cum;
        rt.fill[v] = 0;
        cum += rt.count[v];
        rt.next_active.push_back(v);
      }
      rs.messages += acc.messages;
      rs.bits += acc.bits;
      rs.max_link_bits = std::max(rs.max_link_bits, acc.max_link_bits);
      stats.dropped_messages += acc.dropped;

      if (out_arena.size() < cum) out_arena.resize(std::max(cum, 2 * out_arena.size()));
      for (std::size_t c = 0; c < num_chunks; ++c) {
        SimRuntime::ChunkState& cs = *rt.chunks[c];
        for (std::size_t j = 0; j < cs.meta.size(); ++j) {
          const Context::OutMeta& e = cs.meta[j];
          if (e.dropped != 0) continue;
          Envelope& slot = out_arena[rt.offset[e.dest] + rt.fill[e.dest]++];
          slot.port = e.rport;
          slot.payload = std::move(cs.payload[j]);
        }
      }
    } else {
      const std::size_t groups = rt.num_groups;
      const std::uint32_t shift = rt.group_shift;

      // Pass A, parallel over sender chunks (each scans its own outbox
      // only), weighted by outbox size.
      for (std::size_t c = 0; c < num_chunks; ++c) {
        rt.chunk_weight[c] = rt.chunks[c]->meta.size() + 1;
      }
      const auto count_chunk = [&](std::size_t c) {
        SimRuntime::ChunkState& cs = *rt.chunks[c];
        cs.messages = 0;
        cs.bits = 0;
        cs.max_link_bits = 0;
        cs.dropped = 0;
        cs.group_env.assign(groups, 0);
        cs.group_recv.assign(groups, 0);
        for (Context::OutMeta& e : cs.meta) {
          cs.messages += 1;
          cs.bits += e.bits;
          cs.max_link_bits = std::max(cs.max_link_bits, e.bits);
          if (options.drop && options.drop(round, e.from, e.dest)) {
            e.dropped = 1;
            cs.dropped += 1;
            continue;
          }
          const std::size_t g = e.dest >> shift;
          ++cs.group_env[g];
          // First toucher of a receiver claims it for its group tally;
          // atomicity makes the claim unique across chunks.
          const std::uint32_t prev =
              std::atomic_ref<std::uint32_t>(rt.count[e.dest])
                  .fetch_add(1, std::memory_order_relaxed);
          if (prev == 0) ++cs.group_recv[g];
        }
        // Counting-sort scatter: bucket the chunk's surviving meta indices
        // by receiver group (stable, so outbox order survives per group).
        cs.group_start.resize(groups + 1);
        cs.group_start[0] = 0;
        for (std::size_t g = 0; g < groups; ++g) {
          cs.group_start[g + 1] = cs.group_start[g] + cs.group_env[g];
        }
        cs.group_cursor.assign(cs.group_start.begin(), cs.group_start.end() - 1);
        if (cs.bucket.size() < cs.group_start[groups]) cs.bucket.resize(cs.group_start[groups]);
        for (std::size_t j = 0; j < cs.meta.size(); ++j) {
          const Context::OutMeta& e = cs.meta[j];
          if (e.dropped != 0) continue;
          cs.bucket[cs.group_cursor[e.dest >> shift]++] = static_cast<std::uint32_t>(j);
        }
      };
      if (num_chunks > 1) {
        options.pool->for_weighted(num_chunks, rt.chunk_weight.data(), count_chunk);
      } else {
        count_chunk(0);
      }

      // Serial mid-phase: fold per-chunk group tallies, prefix-sum them
      // into arena / next_active bases, reduce stats in fixed chunk order.
      std::fill(rt.group_env.begin(), rt.group_env.end(), 0);
      std::fill(rt.group_recv.begin(), rt.group_recv.end(), 0);
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const SimRuntime::ChunkState& cs = *rt.chunks[c];
        for (std::size_t g = 0; g < groups; ++g) {
          rt.group_env[g] += cs.group_env[g];
          rt.group_recv[g] += cs.group_recv[g];
        }
        rs.messages += cs.messages;
        rs.bits += cs.bits;
        rs.max_link_bits = std::max(rs.max_link_bits, cs.max_link_bits);
        stats.dropped_messages += cs.dropped;
      }
      std::size_t cum = 0;
      std::size_t num_receivers = 0;
      for (std::size_t g = 0; g < groups; ++g) {
        rt.group_env_base[g] = cum;
        rt.group_recv_base[g] = num_receivers;
        rt.group_weight[g] = rt.group_env[g];
        cum += rt.group_env[g];
        num_receivers += rt.group_recv[g];
      }
      if (out_arena.size() < cum) out_arena.resize(std::max(cum, 2 * out_arena.size()));
      rt.next_active.resize(num_receivers);  // within reserve(n), no allocation

      // Pass B, parallel over receiver groups: sweep the group's vertex
      // span in ascending order (stamps, arena offsets, next_active slots —
      // all landing exactly where the serial sweep would put them), then
      // place envelopes chunk-by-chunk so each receiver's segment fills in
      // ascending sender order.
      const auto place_group = [&](std::size_t g) {
        if (rt.group_env[g] == 0) return;
        const Vertex lo = static_cast<Vertex>(std::size_t{g} << shift);
        const Vertex hi =
            static_cast<Vertex>(std::min<std::size_t>(n, (std::size_t{g} + 1) << shift));
        std::size_t env_cursor = rt.group_env_base[g];
        std::size_t recv_cursor = rt.group_recv_base[g];
        for (Vertex v = lo; v < hi; ++v) {
          const std::uint32_t cnt = rt.count[v];
          if (cnt == 0) continue;
          rt.inbox_stamp[v] = next_stamp;
          rt.offset[v] = env_cursor;
          rt.fill[v] = 0;
          env_cursor += cnt;
          rt.next_active[recv_cursor++] = v;
        }
        for (std::size_t c = 0; c < num_chunks; ++c) {
          SimRuntime::ChunkState& cs = *rt.chunks[c];
          const std::uint32_t bucket_end = cs.group_start[g + 1];
          for (std::uint32_t k = cs.group_start[g]; k < bucket_end; ++k) {
            const std::uint32_t j = cs.bucket[k];
            const Context::OutMeta& e = cs.meta[j];
            Envelope& slot = out_arena[rt.offset[e.dest] + rt.fill[e.dest]++];
            slot.port = e.rport;
            slot.payload = std::move(cs.payload[j]);
          }
        }
      };
      options.pool->for_weighted(groups, rt.group_weight.data(), place_group);
    }

    stats.rounds_executed += 1;
    stats.total_messages += rs.messages;
    stats.total_bits += rs.bits;
    stats.max_link_bits = std::max(stats.max_link_bits, rs.max_link_bits);
    stats.max_active_nodes = std::max(stats.max_active_nodes, rs.active_nodes);
    if (options.record_rounds) stats.per_round.push_back(rs);

    rt.active.swap(rt.next_active);
    ++round;
  }

  return stats;
}

// ---------------------------------------------------------------------------
// Legacy delivery: the straightforward loop this simulator shipped with —
// per-receiver vector inboxes (sorted after the fact), binary-search port
// lookup per message, std::map wake-up schedule, fresh containers every
// round. Kept as a semantics oracle for the arena path and as the baseline
// bench/m2_simulator_micro measures against.
// ---------------------------------------------------------------------------

namespace {

struct LegacyStepResult {
  std::vector<Context::OutMeta> meta;
  std::vector<Message> payload;
  std::uint64_t wakeup = kNoWakeup;
};

}  // namespace

RunStats Simulator::run_legacy(const Options& options) {
  const Vertex n = graph_->num_vertices();
  std::vector<std::vector<Envelope>> inbox(n);
  std::map<std::uint64_t, std::vector<Vertex>> wakeups;

  std::vector<Vertex> active(n);
  std::iota(active.begin(), active.end(), Vertex{0});

  RunStats stats;
  std::uint64_t round = 0;

  while (round <= options.max_rounds) {
    if (const auto it = wakeups.find(round); it != wakeups.end()) {
      active.insert(active.end(), it->second.begin(), it->second.end());
      std::sort(active.begin(), active.end());
      active.erase(std::unique(active.begin(), active.end()), active.end());
      wakeups.erase(it);
    }

    if (active.empty()) {
      if (wakeups.empty()) {
        stats.halted = true;
        break;
      }
      round = wakeups.begin()->first;  // fast-forward over idle rounds
      continue;
    }

    std::vector<LegacyStepResult> results(active.size());
    const auto step_range = [&](std::size_t begin, std::size_t end) {
      Context ctx(*comm_graph_, *ids_, nullptr, *model_);
      for (std::size_t i = begin; i < end; ++i) {
        const Vertex v = active[i];
        ctx.reset(v, round, adj_offsets_[v], &results[i].meta, &results[i].payload);
        programs_[v]->on_round(ctx, inbox[v]);
        results[i].wakeup = ctx.wakeup_;
      }
    };
    if (options.pool != nullptr && active.size() >= options.parallel_threshold) {
      options.pool->parallel_for_chunked(active.size(), step_range);
    } else {
      step_range(0, active.size());
    }

    // Consumed inboxes must be cleared before any delivery: an active node
    // may both read mail this round and receive fresh mail for the next one.
    for (const Vertex v : active) inbox[v].clear();

    RoundStats rs;
    rs.round = round;
    rs.active_nodes = active.size();
    std::vector<Vertex> next_active;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Vertex from = active[i];
      for (std::size_t j = 0; j < results[i].meta.size(); ++j) {
        const Context::OutMeta& out = results[i].meta[j];
        const Vertex dest = out.dest;
        rs.messages += 1;
        rs.bits += out.bits;
        rs.max_link_bits = std::max(rs.max_link_bits, out.bits);
        if (options.drop && options.drop(round, from, dest)) {
          stats.dropped_messages += 1;
          continue;
        }
        const std::uint32_t rport = port_of(*comm_graph_, dest, from);
        if (inbox[dest].empty()) next_active.push_back(dest);
        inbox[dest].push_back(Envelope{rport, std::move(results[i].payload[j])});
      }
      if (results[i].wakeup != kNoWakeup) {
        wakeups[results[i].wakeup].push_back(from);
      }
    }
    std::sort(next_active.begin(), next_active.end());
    for (const Vertex v : next_active) {
      std::sort(inbox[v].begin(), inbox[v].end(),
                [](const Envelope& a, const Envelope& b) { return a.port < b.port; });
    }

    stats.rounds_executed += 1;
    stats.total_messages += rs.messages;
    stats.total_bits += rs.bits;
    stats.max_link_bits = std::max(stats.max_link_bits, rs.max_link_bits);
    stats.max_active_nodes = std::max(stats.max_active_nodes, rs.active_nodes);
    if (options.record_rounds) stats.per_round.push_back(rs);

    active = std::move(next_active);
    ++round;
  }

  return stats;
}

}  // namespace decycle::congest
