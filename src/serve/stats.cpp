#include "serve/stats.hpp"

#include <algorithm>

#include "lab/json.hpp"

namespace decycle::serve {

void ServeStats::record(std::string_view tenant, double latency_ms, std::size_t depth_at_admit) {
  std::lock_guard lock(mutex_);
  global_.latency.add(latency_ms);
  global_.online.add(latency_ms);
  if (!tenant.empty()) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) it = tenants_.emplace(std::string(tenant), Window{}).first;
    it->second.latency.add(latency_ms);
    it->second.online.add(latency_ms);
  }
  ++queue_.admitted;
  queue_.peak_depth = std::max<std::uint64_t>(queue_.peak_depth, depth_at_admit);
}

void ServeStats::record_shed(std::string_view tenant, std::size_t depth_at_admit) {
  std::lock_guard lock(mutex_);
  ++global_.shed;
  ++queue_.shed_total;
  queue_.peak_depth = std::max<std::uint64_t>(queue_.peak_depth, depth_at_admit);
  if (!tenant.empty()) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) it = tenants_.emplace(std::string(tenant), Window{}).first;
    ++it->second.shed;
  }
}

LatencySnapshot ServeStats::snapshot_locked(Window& w) {
  LatencySnapshot out;
  out.count = w.online.count();
  out.shed = w.shed;
  out.p50_ms = w.latency.quantile(0.50);
  out.p95_ms = w.latency.quantile(0.95);
  out.p99_ms = w.latency.quantile(0.99);
  out.mean_ms = w.online.mean();
  out.max_ms = w.online.count() > 0 ? w.online.max() : 0.0;
  return out;
}

LatencySnapshot ServeStats::global() const {
  std::lock_guard lock(mutex_);
  return snapshot_locked(global_);
}

LatencySnapshot ServeStats::tenant(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return {};
  return snapshot_locked(it->second);
}

QueueSnapshot ServeStats::queue() const {
  std::lock_guard lock(mutex_);
  return queue_;
}

std::string ServeStats::jsonl(std::string_view extra) const {
  std::lock_guard lock(mutex_);
  std::string out;
  const auto emit = [](std::string_view scope, std::string_view name, Window& w) {
    lab::JsonWriter json;
    json.begin_object();
    json.field("record", scope);
    if (!name.empty()) json.field("tenant", name);
    const LatencySnapshot snap = snapshot_locked(w);
    json.field("count", snap.count);
    json.field("shed", snap.shed);
    json.field("p50_ms", snap.p50_ms);
    json.field("p95_ms", snap.p95_ms);
    json.field("p99_ms", snap.p99_ms);
    json.field("mean_ms", snap.mean_ms);
    json.field("max_ms", snap.max_ms);
    json.end_object();
    return std::move(json).str();
  };
  for (auto& [name, window] : tenants_) {
    out += emit("tenant", name, window);
    out.push_back('\n');
  }
  {
    lab::JsonWriter json;
    json.begin_object();
    json.field("record", "global");
    const LatencySnapshot snap = snapshot_locked(global_);
    json.field("count", snap.count);
    json.field("shed", snap.shed);
    json.field("p50_ms", snap.p50_ms);
    json.field("p95_ms", snap.p95_ms);
    json.field("p99_ms", snap.p99_ms);
    json.field("mean_ms", snap.mean_ms);
    json.field("max_ms", snap.max_ms);
    json.field("queue_peak_depth", queue_.peak_depth);
    json.field("admitted", queue_.admitted);
    json.field("shed_total", queue_.shed_total);
    json.end_object();
    out += std::move(json).str();
  }
  if (!extra.empty()) {
    // Splice caller fields into the global record: "…}" + ",extra}".
    out.pop_back();
    out.push_back(',');
    out.append(extra);
    out.push_back('}');
  }
  out.push_back('\n');
  return out;
}

}  // namespace decycle::serve
